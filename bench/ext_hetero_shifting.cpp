// Extension experiment (DESIGN.md Section 6): CPU<->GPU power shifting on
// heterogeneous nodes. Each node carries two programmable power-limit
// domains (RAPL package + GPU device limit) drawn against one node budget.
// Three questions:
//   1. Does HeteroAdaptive — which re-splits every host's share between
//      the domains from live per-domain bottleneck slack — beat the best
//      static CPU/GPU split?
//   2. How much does the win depend on the mix (CPU-bound, GPU-bound,
//      half-and-half)?
//   3. Is the single-domain MixedAdaptive dynamics with a fixed
//      TDP-proportional GPU reservation (the natural retrofit) enough?
//
// All variants run the same lockstep epoch cadence over the same cluster
// and budget; only the allocation rule differs. HeteroAdaptive runs
// through the real CoordinationLoop; the static-split variants fix GPU
// caps up front and run MixedAdaptive over the remaining CPU budget in a
// local loop with the same live-demand ratchet (MixedAdaptive on a GPU
// cluster inside the CoordinationLoop would rightly trip the
// caps-fit-budget invariant: it cannot see the second domain).
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/sweep.hpp"
#include "bench_common.hpp"
#include "core/coordination.hpp"
#include "core/policies.hpp"
#include "runtime/power_balancer_agent.hpp"
#include "sim/cluster.hpp"
#include "util/table.hpp"

namespace {

using namespace ps;

// GPU caps of the static variants sit at gpu_min + f * headroom, where
// headroom is the per-host share above both domains' floors — every
// fraction in [0, 1] is feasible (the CPU side keeps at least its
// settable floor). kTdpFraction marks "TDP-proportional", the split the
// coordination bootstrap uses.
constexpr double kTdpFraction = -1.0;

struct Variant {
  const char* name;
  double gpu_fraction;  ///< kTdpFraction or a headroom fraction in [0, 1].
  bool hetero;          ///< True: dynamic two-domain HeteroAdaptive.
};

constexpr Variant kVariants[] = {
    {"static-gpu-25", 0.25, false},
    {"static-gpu-50", 0.50, false},
    {"static-gpu-75", 0.75, false},
    {"mixed-adaptive-tdp-split", kTdpFraction, false},
    {"hetero-adaptive", 0.0, true},
};

struct Mix {
  const char* name;
  kernel::WorkloadConfig job_a;
  kernel::WorkloadConfig job_b;
};

std::vector<Mix> make_mixes() {
  // CPU-heavy phase: compute-bound kernel, token GPU phase (the GPU idles
  // near its floor — its watts are better spent on the package domain).
  kernel::WorkloadConfig cpu_heavy;
  cpu_heavy.intensity = 32.0;
  cpu_heavy.gpu_gigabytes_per_iteration = 4.0;
  cpu_heavy.gpu_intensity = 8.0;
  // GPU-heavy phase: light CPU work, compute-bound offloaded kernel whose
  // time responds strongly to the device power limit.
  kernel::WorkloadConfig gpu_heavy;
  gpu_heavy.intensity = 4.0;
  gpu_heavy.gigabytes_per_iteration = 1.0;
  gpu_heavy.gpu_gigabytes_per_iteration = 60.0;
  gpu_heavy.gpu_intensity = 40.0;
  return {{"cpu-bound", cpu_heavy, cpu_heavy},
          {"gpu-bound", gpu_heavy, gpu_heavy},
          {"mixed", gpu_heavy, cpu_heavy}};
}

struct Scenario {
  std::unique_ptr<sim::Cluster> cluster;
  std::vector<std::unique_ptr<sim::JobSimulation>> jobs;
  std::vector<sim::JobSimulation*> ptrs;
};

Scenario make_scenario(const Mix& mix, std::size_t hosts_per_job) {
  Scenario scenario;
  scenario.cluster = std::make_unique<sim::Cluster>(hosts_per_job * 2);
  std::vector<hw::NodeModel*> a;
  std::vector<hw::NodeModel*> b;
  for (std::size_t i = 0; i < hosts_per_job; ++i) {
    scenario.cluster->node(i).attach_gpu();
    scenario.cluster->node(i + hosts_per_job).attach_gpu();
    a.push_back(&scenario.cluster->node(i));
    b.push_back(&scenario.cluster->node(i + hosts_per_job));
  }
  scenario.jobs.push_back(
      std::make_unique<sim::JobSimulation>("job-a", a, mix.job_a));
  scenario.jobs.push_back(
      std::make_unique<sim::JobSimulation>("job-b", b, mix.job_b));
  scenario.ptrs = {scenario.jobs[0].get(), scenario.jobs[1].get()};
  return scenario;
}

/// One node budget spanning both domains: the two-domain floor plus 35%
/// of the headroom to TDP — tight enough that the split decides which
/// bottleneck gets relieved.
double scenario_budget(const Scenario& scenario) {
  double floors = 0.0;
  double tdp = 0.0;
  for (const auto* job : scenario.ptrs) {
    for (std::size_t h = 0; h < job->host_count(); ++h) {
      floors += job->host(h).min_cap() + job->host_gpu_min_cap(h);
      tdp += job->host(h).tdp() + job->host_gpu_tdp(h);
    }
  }
  return floors + 0.35 * (tdp - floors);
}

struct CellResult {
  double elapsed_seconds = 0.0;
  double energy_joules = 0.0;
  double gflop = 0.0;
};

CellResult collect_totals(const Scenario& scenario) {
  CellResult result;
  for (const auto* job : scenario.ptrs) {
    result.elapsed_seconds += job->totals().elapsed_seconds;
    result.energy_joules += job->totals().energy_joules;
    result.gflop += job->totals().gflop;
  }
  return result;
}

/// The static-split variants: GPU caps fixed up front, MixedAdaptive
/// re-allocated each epoch over the remaining (CPU) budget with the same
/// live-demand ratchet the CoordinationLoop keeps.
CellResult run_static_split(Scenario& scenario, double budget,
                            double gpu_fraction, std::size_t iterations,
                            std::size_t epoch_iterations) {
  const runtime::BalancerOptions balancer{};
  const std::size_t total_hosts =
      scenario.ptrs[0]->host_count() + scenario.ptrs[1]->host_count();
  const double share = budget / static_cast<double>(total_hosts);

  // Fix the GPU domain. TDP-proportional mirrors the coordination
  // bootstrap split; otherwise the cap sits at the requested fraction of
  // the share's two-domain headroom.
  double gpu_total = 0.0;
  for (auto* job : scenario.ptrs) {
    for (std::size_t h = 0; h < job->host_count(); ++h) {
      const double cpu_min = job->host(h).min_cap();
      const double gpu_min = job->host_gpu_min_cap(h);
      const double gpu_tdp = job->host_gpu_tdp(h);
      double cap = 0.0;
      if (gpu_fraction == kTdpFraction) {
        const double ratio =
            gpu_tdp / (job->host(h).tdp() + gpu_tdp);
        cap = share * ratio;
      } else {
        const double headroom = std::max(0.0, share - cpu_min - gpu_min);
        cap = gpu_min + gpu_fraction * headroom;
      }
      job->set_host_gpu_cap(h, std::clamp(cap, gpu_min, gpu_tdp));
      gpu_total += job->host_gpu_cap(h);
    }
  }
  const double cpu_budget = budget - gpu_total;

  // Bootstrap the CPU domain at the uniform share of what is left.
  for (auto* job : scenario.ptrs) {
    for (std::size_t h = 0; h < job->host_count(); ++h) {
      job->set_host_cap(h, cpu_budget / static_cast<double>(total_hosts));
    }
    job->reset_totals();
  }

  // Live demand ratchet, seeded at the floor like the CoordinationLoop.
  std::vector<std::vector<double>> demand;
  for (auto* job : scenario.ptrs) {
    demand.emplace_back(job->host_count(), job->host(0).min_cap());
  }

  const core::MixedAdaptivePolicy policy;
  std::size_t done = 0;
  while (done < iterations) {
    const std::size_t step = std::min(epoch_iterations, iterations - done);
    for (std::size_t j = 0; j < scenario.ptrs.size(); ++j) {
      sim::JobSimulation& job = *scenario.ptrs[j];
      for (std::size_t i = 0; i < step; ++i) {
        const sim::IterationResult iteration = job.run_iteration();
        for (std::size_t h = 0; h < job.host_count(); ++h) {
          demand[j][h] = std::max(
              demand[j][h], iteration.hosts[h].average_power_watts);
        }
      }
    }
    done += step;

    core::PolicyContext context;
    context.system_budget_watts = cpu_budget;
    context.node_tdp_watts = scenario.ptrs[0]->host(0).tdp();
    context.uncappable_watts =
        scenario.ptrs[0]->host(0).params().dram_watts;
    for (std::size_t j = 0; j < scenario.ptrs.size(); ++j) {
      sim::JobSimulation& job = *scenario.ptrs[j];
      runtime::JobCharacterization data;
      data.host_count = job.host_count();
      data.min_settable_cap_watts = job.host(0).min_cap();
      double tdp_budget = 0.0;
      for (std::size_t h = 0; h < job.host_count(); ++h) {
        tdp_budget += job.host(h).tdp();
      }
      data.balancer.host_needed_power_watts =
          runtime::balance_power(job, tdp_budget, balancer);
      data.balancer.min_host_needed_watts =
          *std::min_element(data.balancer.host_needed_power_watts.begin(),
                            data.balancer.host_needed_power_watts.end());
      data.balancer.max_host_needed_watts =
          *std::max_element(data.balancer.host_needed_power_watts.begin(),
                            data.balancer.host_needed_power_watts.end());
      data.monitor.host_average_power_watts = demand[j];
      data.monitor.min_host_power_watts =
          *std::min_element(demand[j].begin(), demand[j].end());
      data.monitor.max_host_power_watts =
          *std::max_element(demand[j].begin(), demand[j].end());
      context.jobs.push_back(std::move(data));
    }
    const rm::PowerAllocation allocation = policy.allocate(context);
    for (std::size_t j = 0; j < scenario.ptrs.size(); ++j) {
      for (std::size_t h = 0; h < scenario.ptrs[j]->host_count(); ++h) {
        scenario.ptrs[j]->set_host_cap(h, allocation.job_host_caps[j][h]);
      }
    }
  }
  return collect_totals(scenario);
}

CellResult run_hetero(Scenario& scenario, double budget,
                      std::size_t iterations,
                      std::size_t epoch_iterations) {
  core::CoordinationOptions options;
  options.policy = core::PolicyKind::kHeteroAdaptive;
  options.epoch_iterations = epoch_iterations;
  core::CoordinationLoop loop(budget, options);
  for (auto* job : scenario.ptrs) {
    job->reset_totals();
  }
  static_cast<void>(loop.run(scenario.ptrs, iterations));
  return collect_totals(scenario);
}

}  // namespace

int main(int argc, char** argv) {
  const analysis::ExperimentOptions options =
      ps::bench::parse_options(argc, argv);
  const std::vector<Mix> mixes = make_mixes();
  const std::size_t variant_count = std::size(kVariants);
  const std::size_t cells = mixes.size() * variant_count;
  const std::size_t epoch_iterations = 5;

  // Every cell builds its own cluster from its (mix, variant) coordinates
  // alone, so results are bit-identical at any worker count.
  std::vector<CellResult> results(cells);
  const analysis::SweepExecutor executor(options.sweep_workers);
  executor.for_each(cells, [&](std::size_t cell) {
    const Mix& mix = mixes[cell / variant_count];
    const Variant& variant = kVariants[cell % variant_count];
    Scenario scenario = make_scenario(mix, options.nodes_per_job);
    const double budget = scenario_budget(scenario);
    results[cell] =
        variant.hetero
            ? run_hetero(scenario, budget, options.iterations,
                         epoch_iterations)
            : run_static_split(scenario, budget, variant.gpu_fraction,
                               options.iterations, epoch_iterations);
  });

  std::printf("CPU<->GPU power shifting (2 jobs x %zu hetero hosts, "
              "%zu iterations)\n\n",
              options.nodes_per_job, options.iterations);
  bool hetero_wins_gpu_mixes = true;
  for (std::size_t m = 0; m < mixes.size(); ++m) {
    util::TextTable table;
    table.add_column("allocation", util::Align::kLeft);
    table.add_column("job time (s)", util::Align::kRight, 3);
    table.add_column("energy (kJ)", util::Align::kRight, 1);
    table.add_column("vs best static", util::Align::kRight, 2);
    double best_static = 0.0;
    for (std::size_t v = 0; v + 1 < variant_count; ++v) {
      const double t = results[m * variant_count + v].elapsed_seconds;
      best_static = best_static == 0.0 ? t : std::min(best_static, t);
    }
    for (std::size_t v = 0; v < variant_count; ++v) {
      const CellResult& cell = results[m * variant_count + v];
      table.begin_row();
      table.add_cell(kVariants[v].name);
      table.add_number(cell.elapsed_seconds);
      table.add_number(cell.energy_joules / 1000.0);
      table.add_percent(cell.elapsed_seconds / best_static - 1.0);
    }
    const double hetero_time =
        results[m * variant_count + variant_count - 1].elapsed_seconds;
    std::printf("mix %s:\n%s\n", mixes[m].name,
                table.to_string().c_str());
    if (std::string(mixes[m].name) != "cpu-bound" &&
        hetero_time >= best_static) {
      hetero_wins_gpu_mixes = false;
    }
  }
  std::printf("HeteroAdaptive %s the best static split on the GPU-bound "
              "and mixed mixes.\n",
              hetero_wins_gpu_mixes ? "beats" : "DOES NOT beat");

  const std::string csv_path =
      ps::bench::output_path(argc, argv, "ext_hetero_shifting.csv");
  std::ofstream csv(csv_path);
  csv << "mix,variant,elapsed_seconds,energy_joules,gflop\n";
  char line[256];
  for (std::size_t m = 0; m < mixes.size(); ++m) {
    for (std::size_t v = 0; v < variant_count; ++v) {
      const CellResult& cell = results[m * variant_count + v];
      std::snprintf(line, sizeof(line), "%s,%s,%.6f,%.6f,%.6f\n",
                    mixes[m].name, kVariants[v].name, cell.elapsed_seconds,
                    cell.energy_joules, cell.gflop);
      csv << line;
    }
  }
  std::printf("\nWrote %s\n", csv_path.c_str());
  return hetero_wins_gpu_mixes ? 0 : 1;
}
