#pragma once

#include <filesystem>
#include <string>
#include <string_view>

#include "analysis/experiment.hpp"
#include "util/args.hpp"

namespace ps::bench {

/// Shared command line for the figure/table harnesses:
///   --quick        reduced scale (12 nodes/job, 20 iterations)
///   --nodes N      nodes per job (paper: 100)
///   --iterations N measured iterations per run (paper: 100)
///   --no-variation homogeneous nodes instead of the Quartz model
///   --jobs N       sweep worker threads (0 = all cores, 1 = serial)
///
/// Explicit --nodes / --iterations override the --quick defaults, so
/// `--quick --nodes 8` runs 8 nodes/job at quick iteration count.
inline analysis::ExperimentOptions parse_options(int argc, char** argv) {
  util::ArgParser parser;
  parser.add_flag("--quick", "reduced scale (12 nodes/job, 20 iterations)")
      .add_flag("--no-variation", "homogeneous nodes")
      .add_option("--nodes", "100", "nodes per job")
      .add_option("--iterations", "100", "measured iterations per run")
      .add_option("--jobs", "0",
                  "sweep worker threads (0 = all cores, 1 = serial)")
      .add_option("--out", "", "CSV output path (default: under build/)");
  parser.parse(argc, argv);

  analysis::ExperimentOptions options;
  options.characterization_iterations = 5;
  if (parser.flag("--quick")) {
    options.nodes_per_job =
        parser.provided("--nodes") ? parser.option_size("--nodes") : 12;
    options.iterations = parser.provided("--iterations")
                             ? parser.option_size("--iterations")
                             : 20;
  } else {
    options.nodes_per_job = parser.option_size("--nodes");
    options.iterations = parser.option_size("--iterations");
  }
  options.hardware_variation = !parser.flag("--no-variation");
  options.sweep_workers = parser.option_size("--jobs");
  return options;
}

/// Where a harness should write its CSV deliverable: `--out PATH` wins;
/// otherwise `default_name` under ./build when that directory exists
/// (running from the repo root must not litter the source tree), else
/// the current directory.
inline std::string output_path(int argc, const char* const* argv,
                               std::string_view default_name) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string_view(argv[i]) == "--out") {
      return argv[i + 1];
    }
  }
  const std::filesystem::path build = "build";
  std::error_code ec;
  if (std::filesystem::is_directory(build, ec)) {
    return (build / default_name).string();
  }
  return std::string(default_name);
}

/// Scales a mix-level wattage to the paper's 900-node deployment so the
/// printed numbers are directly comparable with Table III even when the
/// harness runs at reduced scale.
inline double to_paper_scale_kw(double watts, std::size_t hosts) {
  return watts / static_cast<double>(hosts) * 900.0 / 1000.0;
}

}  // namespace ps::bench
