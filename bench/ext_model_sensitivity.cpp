// Extension experiment: robustness of the reproduction's conclusions to
// its calibration. Each model constant that was fitted to the paper's
// measurements is perturbed around its default; the headline savings
// magnitudes move, but the policy orderings (the paper's actual claims)
// must survive every perturbation.
#include <cstdio>

#include "analysis/sensitivity.hpp"
#include "util/table.hpp"

int main() {
  using namespace ps;
  const analysis::SensitivityOptions options;
  std::printf("Calibration sensitivity on the WastefulPower mix "
              "(%zu nodes/job, %zu iterations)\n\n",
              options.nodes_per_job, options.iterations);

  const std::vector<analysis::SensitivityCase> cases =
      analysis::run_sensitivity(options);
  util::TextTable table;
  table.add_column("parameter", util::Align::kLeft);
  table.add_column("value", util::Align::kRight, 3);
  table.add_column("MA time @ideal", util::Align::kRight, 2);
  table.add_column("MA energy @max", util::Align::kRight, 2);
  table.add_column("marker (d)", util::Align::kLeft);
  table.add_column("time ordering", util::Align::kLeft);
  bool all_hold = true;
  for (const auto& test_case : cases) {
    table.begin_row();
    table.add_cell(test_case.parameter);
    table.add_number(test_case.value);
    table.add_percent(test_case.time_savings_ideal);
    table.add_percent(test_case.energy_savings_max);
    table.add_cell(test_case.marker_d_holds ? "holds" : "BROKEN");
    table.add_cell(test_case.time_ordering_holds ? "holds" : "BROKEN");
    all_hold = all_hold && test_case.marker_d_holds &&
               test_case.time_ordering_holds;
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("%s\n",
              all_hold
                  ? "Every ordering survives every perturbation: the "
                    "conclusions are\nproperties of the mechanism, not of "
                    "the calibration."
                  : "WARNING: some orderings broke under perturbation.");
  return all_hold ? 0 : 1;
}
