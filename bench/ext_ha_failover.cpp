// Failover benchmark: time-to-takeover of the hot-standby control plane.
//
// Each episode wires the full HA pair — primary PowerDaemon + Replicator,
// StandbyDaemon replicating over the lease protocol, one RuntimeClient on
// an ordered {primary, standby} endpoint list — runs a few allocation
// rounds, kills the primary (daemon and replicator, mid-run), and
// measures the wall time from the kill to the client's first successful
// exchange against the promoted standby. Takeover is dominated by the
// replication lease (the standby must observe a full silent lease before
// promoting), so p50/p99 land a little above --lease and stay stable
// across machines; CI pins them via BENCH_failover.json and
// tools/check_bench.py --mode failover.
//
//   ./ext_ha_failover --episodes 7 --lease 300 --out failover.json
//
// The quantiles are read back from the obs metrics histogram
// "ha.failover.takeover_seconds" (bucket upper edges — conservative),
// exactly what a production scrape of the same instrument would report.
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/endpoint.hpp"
#include "ha/replicator.hpp"
#include "ha/standby.hpp"
#include "net/client.hpp"
#include "net/daemon.hpp"
#include "net/socket.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "util/args.hpp"

namespace {

using std::chrono::milliseconds;
using Clock = std::chrono::steady_clock;

/// Takeover-time bucket lower edges (seconds): 50 ms resolution through
/// the lease-dominated region, coarser above.
const std::vector<double> kTakeoverBounds = {
    0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50,
    0.60, 0.70, 0.80, 0.90, 1.00, 1.25, 1.50, 2.00, 3.00, 5.00};

std::string unique_path(const std::string& tag, int episode) {
  return "/tmp/ps-habench-" + tag + "-" + std::to_string(::getpid()) + "-" +
         std::to_string(episode) + ".sock";
}

ps::core::SampleMessage make_sample(std::uint64_t sequence) {
  ps::core::SampleMessage sample;
  sample.sequence = sequence;
  sample.job_name = "bench-job";
  sample.min_settable_cap_watts = 100.0;
  sample.host_observed_watts = {180.0, 170.0};
  sample.host_needed_watts = {175.0, 165.0};
  return sample;
}

/// One kill-and-takeover episode; returns the takeover time in seconds.
double run_episode(int episode, milliseconds lease,
                   ps::obs::Observability obs) {
  const std::string primary_path = unique_path("primary", episode);
  const std::string standby_path = unique_path("standby", episode);
  const std::string repl_path = unique_path("repl", episode);

  ps::ha::ReplicatorOptions replicator_options;
  replicator_options.lease = lease;
  replicator_options.obs = obs;
  auto replicator = std::make_unique<ps::ha::Replicator>(replicator_options);
  replicator->listen_unix(repl_path);
  replicator->start();

  ps::net::DaemonOptions daemon_options;
  daemon_options.system_budget_watts = 1'000.0;
  daemon_options.min_jobs = 1;
  daemon_options.tick_interval = milliseconds(10);

  ps::net::DaemonOptions primary_options = daemon_options;
  primary_options.replication_sink = replicator->sink();
  primary_options.fence_check = replicator->fence_check();
  auto primary = std::make_unique<ps::net::PowerDaemon>(primary_options);
  primary->listen_unix(primary_path);
  std::thread primary_thread([&primary] { primary->run(); });

  ps::ha::StandbyOptions standby_options;
  standby_options.primary = [repl_path] {
    return ps::net::make_transport(ps::net::connect_unix(repl_path));
  };
  standby_options.daemon = daemon_options;
  standby_options.lease = lease;
  standby_options.dial_retry = milliseconds(10);
  standby_options.obs = obs;
  standby_options.bind = [&standby_path](ps::net::PowerDaemon& daemon) {
    daemon.listen_unix(standby_path);
  };
  ps::ha::StandbyDaemon standby(standby_options);
  std::thread standby_thread([&standby] { standby.run(); });

  ps::net::ClientOptions client_options;
  client_options.request_timeout = milliseconds(10'000);
  client_options.backoff_initial = milliseconds(5);
  client_options.backoff_max = milliseconds(25);
  client_options.connect_attempts_per_endpoint = 2;
  client_options.endpoint_probe_timeout = milliseconds(200);
  std::vector<ps::net::RuntimeClient::TransportConnector> endpoints;
  for (const std::string* path : {&primary_path, &standby_path}) {
    endpoints.push_back([path = *path] {
      return ps::net::make_transport(ps::net::connect_unix(path));
    });
  }
  ps::net::RuntimeClient client(std::move(endpoints), client_options);

  // Warm rounds on the primary so the standby has replicated real state
  // by the time the kill lands.
  std::uint64_t sequence = 1;
  for (int round = 0; round < 3; ++round) {
    if (!client.exchange(make_sample(sequence)).has_value()) {
      std::cerr << "episode " << episode << ": warm exchange " << sequence
                << " failed\n";
      std::exit(1);
    }
    ++sequence;
  }
  const auto synced_deadline = Clock::now() + std::chrono::seconds(10);
  while (!standby.synced() && Clock::now() < synced_deadline) {
    std::this_thread::sleep_for(milliseconds(2));
  }
  if (!standby.synced()) {
    std::cerr << "episode " << episode << ": standby never synced\n";
    std::exit(1);
  }

  // The kill: primary and replicator vanish; the clock runs until the
  // client's next exchange succeeds (against the promoted standby).
  primary->stop();
  primary_thread.join();
  primary.reset();
  replicator.reset();
  const auto killed_at = Clock::now();

  std::optional<ps::core::PolicyMessage> policy;
  while (!policy.has_value()) {
    policy = client.exchange(make_sample(sequence));
    ++sequence;
  }
  const double takeover =
      std::chrono::duration<double>(Clock::now() - killed_at).count();

  if (policy->fence_epoch != 1 || client.fence_epoch() != 1) {
    std::cerr << "episode " << episode
              << ": takeover reply not fenced as the successor\n";
    std::exit(1);
  }
  standby.stop();
  standby_thread.join();
  std::remove(standby_path.c_str());
  return takeover;
}

}  // namespace

int main(int argc, char** argv) {
  ps::util::ArgParser parser;
  parser.add_option("--episodes", "7", "kill-and-takeover episodes")
      .add_option("--lease", "300", "replication lease in milliseconds")
      .add_option("--out", "", "JSON output path (default: stdout only)");
  parser.parse(argc, argv);
  const auto episodes = static_cast<int>(parser.option_size("--episodes"));
  const milliseconds lease(parser.option_size("--lease"));

  ps::obs::MetricsRegistry registry;
  const ps::obs::Observability obs{&registry, nullptr};
  ps::obs::Histogram& takeover_hist =
      registry.histogram("ha.failover.takeover_seconds", kTakeoverBounds);

  for (int episode = 0; episode < episodes; ++episode) {
    const double takeover = run_episode(episode, lease, obs);
    takeover_hist.observe(takeover);
    std::printf("episode %d: takeover %.3f s\n", episode, takeover);
  }

  const ps::obs::HistogramSnapshot snapshot = takeover_hist.snapshot();
  const double p50 = ps::obs::histogram_quantile(snapshot, 0.50);
  const double p99 = ps::obs::histogram_quantile(snapshot, 0.99);
  const double mean =
      snapshot.total() == 0
          ? 0.0
          : snapshot.sum / static_cast<double>(snapshot.total());
  std::printf(
      "takeover over %d episodes (lease %lld ms): p50 %.3f s, p99 %.3f s, "
      "mean %.3f s\n",
      episodes, static_cast<long long>(lease.count()), p50, p99, mean);

  const std::string out = parser.option("--out");
  if (!out.empty()) {
    std::ofstream file(out, std::ios::trunc);
    file << "{\n"
         << "  \"bench\": \"ext_ha_failover\",\n"
         << "  \"episodes\": " << episodes << ",\n"
         << "  \"lease_ms\": " << lease.count() << ",\n"
         << "  \"takeover_p50_seconds\": " << p50 << ",\n"
         << "  \"takeover_p99_seconds\": " << p99 << ",\n"
         << "  \"takeover_mean_seconds\": " << mean << "\n"
         << "}\n";
  }
  return 0;
}
