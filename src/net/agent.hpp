#pragma once

#include <cstdint>
#include <vector>

#include "net/client.hpp"
#include "runtime/power_balancer_agent.hpp"
#include "sim/job_sim.hpp"

namespace ps::net {

struct AgentOptions {
  /// Iterations between samples — must match the daemon mix's epoch
  /// length for lockstep coordination (mirrors CoordinationOptions).
  std::size_t epoch_iterations = 5;
  runtime::BalancerOptions balancer{};
  /// Request the uniform-share launch allocation (a sequence-0 sample)
  /// before the first epoch. Disable for a job joining a running system.
  bool bootstrap = true;
};

struct AgentResult {
  std::size_t iterations = 0;
  std::size_t epochs = 0;
  std::size_t policies_applied = 0;
  /// Epochs that got no daemon reply and kept the last-known caps.
  std::size_t fallback_epochs = 0;
  double elapsed_seconds = 0.0;
  double energy_joules = 0.0;
  double total_gflop = 0.0;
};

/// The job-side driver of the daemon protocol: per epoch it runs the
/// job's iterations, maintains the live demand estimate (running max of
/// observed per-host power, seeded at the settable floor), re-derives the
/// balancer's needed power, and exchanges a SampleMessage for a
/// PolicyMessage whose caps it programs. Epoch for epoch this is the
/// per-job body of core::CoordinationLoop — which is why a daemon-run
/// mix lands on the same allocation watt-for-watt.
///
/// When the daemon is unreachable the agent keeps computing on its
/// last-known caps and lets the client's backoff schedule drive
/// reconnection: a dead daemon degrades throughput, never correctness.
class CoordinatedAgent {
 public:
  CoordinatedAgent(sim::JobSimulation& job, RuntimeClient& client,
                   const AgentOptions& options = {});

  /// Runs `total_iterations` more iterations. May be called repeatedly;
  /// sequence numbering and the demand estimate carry over.
  AgentResult run(std::size_t total_iterations);

  [[nodiscard]] std::uint64_t sequence() const noexcept {
    return sequence_;
  }
  [[nodiscard]] const std::vector<double>& demand_watts() const noexcept {
    return demand_watts_;
  }

 private:
  [[nodiscard]] core::SampleMessage build_sample() const;
  [[nodiscard]] double tdp_budget_watts() const;
  void apply_reply(const core::PolicyMessage& reply, AgentResult& result);

  sim::JobSimulation& job_;
  RuntimeClient& client_;
  AgentOptions options_;
  std::vector<double> demand_watts_;
  std::uint64_t sequence_ = 0;
  bool bootstrapped_ = false;
};

}  // namespace ps::net
