#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ps::net {

/// One registered job as persisted by the daemon: enough to rehydrate the
/// session registry after a restart. Samples are deliberately absent —
/// clients re-send their current sample on reconnect, so persisting them
/// would only risk replaying stale telemetry.
struct SnapshotJob {
  std::string name;
  std::uint64_t sequence = 0;  ///< Sequence of the last policy sent.
  std::vector<double> caps_watts;
  /// GPU-domain caps of the last policy sent; empty for single-domain
  /// jobs. When present it holds one cap per host (same length as
  /// `caps_watts`).
  std::vector<double> gpu_caps_watts;

  [[nodiscard]] bool operator==(const SnapshotJob&) const = default;
};

/// Durable daemon state: the facility budget it was enforcing, whether
/// the min-jobs launch barrier had been met, and the last caps pushed to
/// every registered job. A daemon restarted over a snapshot re-admits the
/// jobs without re-running the launch barrier and re-serves their last
/// caps, so the cluster-wide budget invariant survives the restart.
struct DaemonSnapshot {
  double system_budget_watts = 0.0;
  /// Budget renegotiation epoch in force when the snapshot was taken
  /// (0 = the construction-time budget was never revised). Persisting it
  /// is what stops a restarted daemon from resurrecting a pre-brownout
  /// budget: the restored epoch wins over the configured one.
  std::uint64_t budget_epoch = 0;
  /// Fencing epoch of the daemon incarnation that wrote the snapshot
  /// (0 = a control plane that has never failed over). A standby promotes
  /// at fence + 1; persisting the fence keeps a restart of a promoted
  /// daemon from regressing below caps its clients already ratcheted.
  std::uint64_t fence_epoch = 0;
  bool launch_barrier_met = false;
  std::uint64_t allocations = 0;  ///< Monotone: detects stale snapshots.
  std::vector<SnapshotJob> jobs;

  [[nodiscard]] bool operator==(const DaemonSnapshot&) const = default;
  /// Sum of all persisted caps — what the snapshot claims is allocated.
  [[nodiscard]] double allocated_watts() const;
};

/// Line-based serialization (versioned, human-readable, exact numeric
/// fidelity) with a trailing CRC-32 line guarding the whole body:
///
///   powerstack-snapshot v2
///   budget 2880
///   budget_epoch 3
///   barrier 1
///   allocations 7
///   jobs 2
///   job lulesh-512
///   sequence 6
///   caps 181.25 181.25
///   ...
///   checksum 89abcdef
///
/// The writer always emits v2; the parser also accepts the v1 grammar
/// (no budget_epoch line), reading it as epoch 0.
///
/// When any job carries GPU-domain caps the snapshot is v3: every job
/// block gains a fourth `gpu_caps` line after `caps` (left bare for the
/// single-domain jobs of a mixed cluster). A snapshot with no GPU caps
/// anywhere still serializes as v2, byte-identical to pre-hetero builds.
///
/// A non-zero fence_epoch makes it v4: a `fence` line follows
/// `budget_epoch` and every job block carries the fixed four-line (v3)
/// form. A control plane that never failed over keeps fence_epoch 0 and
/// stays byte-identical to v2/v3 — the same discipline as the wire.
[[nodiscard]] std::string serialize(const DaemonSnapshot& snapshot);

/// Parses and validates a serialized snapshot. Throws ps::InvalidArgument
/// on malformed input: truncated bodies, non-numeric or non-finite watts,
/// duplicated job names, and checksum mismatches (a torn write).
[[nodiscard]] DaemonSnapshot parse_snapshot(std::string_view text);

/// Atomically replaces the snapshot at `path` (write to a sibling temp
/// file, fsync, rename) so a crash mid-write can never leave a torn
/// snapshot where the next boot will read it. Throws ps::Error on I/O
/// failure.
void save_snapshot(const std::string& path, const DaemonSnapshot& snapshot);

/// Loads the snapshot at `path`. Returns nullopt when the file does not
/// exist or fails validation (corrupt snapshots must degrade a restart to
/// a cold start, never crash the daemon).
[[nodiscard]] std::optional<DaemonSnapshot> load_snapshot(
    const std::string& path);

}  // namespace ps::net
