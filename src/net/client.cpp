#include "net/client.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <thread>

#include "util/error.hpp"

namespace ps::net {

namespace {
using Clock = std::chrono::steady_clock;

std::chrono::milliseconds remaining_until(Clock::time_point deadline) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
}
}  // namespace

namespace {
RuntimeClient::TransportConnector wrap_connector(
    RuntimeClient::Connector inner) {
  PS_REQUIRE(inner != nullptr, "client needs a connector");
  return [inner = std::move(inner)]() { return make_transport(inner()); };
}
}  // namespace

namespace {
std::vector<RuntimeClient::TransportConnector> one_connector(
    RuntimeClient::TransportConnector connector) {
  PS_REQUIRE(connector != nullptr, "client needs a connector");
  std::vector<RuntimeClient::TransportConnector> connectors;
  connectors.push_back(std::move(connector));
  return connectors;
}
}  // namespace

RuntimeClient::RuntimeClient(Connector connector, ClientOptions options)
    : RuntimeClient(wrap_connector(std::move(connector)), options) {}

RuntimeClient::RuntimeClient(TransportConnector connector,
                             ClientOptions options)
    : RuntimeClient(one_connector(std::move(connector)), options) {}

RuntimeClient::RuntimeClient(std::vector<TransportConnector> connectors,
                             ClientOptions options)
    : connectors_(std::move(connectors)),
      options_(options),
      backoff_(options.backoff_initial),
      jitter_rng_(options.jitter_seed) {
  PS_REQUIRE(!connectors_.empty(), "client needs at least one endpoint");
  for (const TransportConnector& connector : connectors_) {
    PS_REQUIRE(connector != nullptr, "client needs a connector");
  }
  PS_REQUIRE(options.request_timeout.count() > 0,
             "request timeout must be positive");
  PS_REQUIRE(options.backoff_initial.count() > 0 &&
                 options.backoff_max >= options.backoff_initial,
             "backoff range is invalid");
  PS_REQUIRE(options.backoff_jitter >= 0.0 && options.backoff_jitter < 1.0,
             "backoff jitter must be in [0, 1)");
  PS_REQUIRE(options.endpoint_probe_timeout.count() >= 0,
             "endpoint probe timeout must be non-negative");
  if (options_.obs.metrics != nullptr) {
    obs::MetricsRegistry& metrics = *options_.obs.metrics;
    exchanges_metric_ = &metrics.counter("net.client.exchanges");
    failures_metric_ = &metrics.counter("net.client.exchange_failures");
    reconnects_metric_ = &metrics.counter("net.client.reconnects");
    stale_replies_metric_ = &metrics.counter("net.client.stale_replies");
    stale_epoch_metric_ = &metrics.counter("net.client.stale_epoch_caps");
    revisions_metric_ = &metrics.counter("net.client.budget_revisions");
    rotations_metric_ = &metrics.counter("net.client.endpoint_rotations");
    stale_fence_metric_ = &metrics.counter("net.client.stale_fence_caps");
    // Lower bucket edges in seconds: loopback exchanges land in the
    // sub-millisecond buckets, reconnect-burdened ones in the tail.
    static constexpr double kExchangeBounds[] = {
        0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
        0.05,   0.1,     0.25,   0.5,   1.0,    2.5};
    exchange_seconds_ =
        &metrics.histogram("net.client.exchange_seconds", kExchangeBounds);
  }
}

void RuntimeClient::drop_connection() {
  if (transport_) {
    transport_->close();
    transport_.reset();
  }
  decoder_ = FrameDecoder();  // a new connection starts a new stream
  // Budget epochs are a per-connection contract: after an outage the
  // daemon (possibly a restarted one) is the authority and resyncs us on
  // registration.
  session_budget_epoch_ = 0;
}

void RuntimeClient::reset_daemon_lost() noexcept {
  daemon_lost_ = false;
  in_outage_ = false;
  attempts_this_outage_ = 0;
  backoff_ = options_.backoff_initial;
  next_connect_attempt_ = Clock::time_point{};
}

void RuntimeClient::rotate_endpoint() {
  if (connectors_.size() <= 1) {
    return;  // a 1-element list keeps the single-endpoint behavior
  }
  endpoint_index_ = (endpoint_index_ + 1) % connectors_.size();
  attempts_this_endpoint_ = 0;
  ++stats_.endpoint_rotations;
  if (rotations_metric_ != nullptr) {
    rotations_metric_->add();
  }
}

void RuntimeClient::register_connect_failure() {
  ++stats_.connect_failures;
  if (!in_outage_) {
    in_outage_ = true;
    ++stats_.outages;
  }
  ++attempts_this_outage_;
  ++attempts_this_endpoint_;
  if (options_.max_connect_attempts_per_outage > 0 &&
      attempts_this_outage_ >= options_.max_connect_attempts_per_outage) {
    // Terminal only once the whole list has been exhausted: with
    // standbys configured, losing one address is a rotation, not the
    // end of the control plane.
    daemon_lost_ = true;  // terminal until reset_daemon_lost()
    return;
  }
  if (options_.connect_attempts_per_endpoint > 0 &&
      attempts_this_endpoint_ >= options_.connect_attempts_per_endpoint) {
    rotate_endpoint();
  }
  const double factor = jitter_rng_.uniform(1.0 - options_.backoff_jitter,
                                            1.0 + options_.backoff_jitter);
  const auto delay = std::chrono::milliseconds(std::max<std::int64_t>(
      1, std::llround(static_cast<double>(backoff_.count()) * factor)));
  next_connect_attempt_ = Clock::now() + delay;
  backoff_ = std::min(backoff_ * 2, options_.backoff_max);
}

bool RuntimeClient::ensure_connected(Clock::time_point deadline) {
  if (transport_ && transport_->valid()) {
    return true;
  }
  for (;;) {
    if (daemon_lost_) {
      return false;
    }
    const auto now = Clock::now();
    if (now >= deadline) {
      return false;
    }
    if (now < next_connect_attempt_) {
      // Honour the backoff, but never sleep past the caller's deadline.
      std::this_thread::sleep_for(
          std::min(next_connect_attempt_, deadline) - now);
      continue;
    }
    ++stats_.connect_attempts;
    try {
      std::unique_ptr<Transport> transport = connectors_[endpoint_index_]();
      PS_REQUIRE(transport != nullptr && transport->valid(),
                 "connector returned an invalid transport");
      transport_ = std::move(transport);
      decoder_ = FrameDecoder();
      session_budget_epoch_ = 0;  // the daemon resyncs on registration
      if (ever_connected_) {
        ++stats_.reconnects;
        if (reconnects_metric_ != nullptr) {
          reconnects_metric_->add();
        }
      }
      ever_connected_ = true;
      in_outage_ = false;
      attempts_this_outage_ = 0;
      attempts_this_endpoint_ = 0;
      backoff_ = options_.backoff_initial;
      return true;
    } catch (const Error&) {
      register_connect_failure();
    }
  }
}

bool RuntimeClient::send_frame(const std::string& frame,
                               Clock::time_point deadline) {
  std::string_view rest = frame;
  while (!rest.empty()) {
    const IoResult result = transport_->write_some(rest);
    if (result.status == IoStatus::kOk) {
      rest.remove_prefix(result.bytes);
      continue;
    }
    if (result.status == IoStatus::kClosed) {
      drop_connection();
      return false;
    }
    const auto remaining = remaining_until(deadline);
    if (remaining.count() <= 0 || !transport_->wait_writable(remaining)) {
      return false;  // deadline; keep the connection for the next try
    }
  }
  return true;
}

std::optional<core::PolicyMessage> RuntimeClient::exchange(
    const core::SampleMessage& sample) {
  if (exchanges_metric_ != nullptr) {
    exchanges_metric_->add();
  }
  if (exchange_seconds_ == nullptr) {
    // Unobserved clients never read the clock for metrics.
    std::optional<core::PolicyMessage> reply = exchange_impl(sample);
    if (!reply && failures_metric_ != nullptr) {
      failures_metric_->add();
    }
    return reply;
  }
  const auto started = Clock::now();
  std::optional<core::PolicyMessage> reply = exchange_impl(sample);
  exchange_seconds_->observe(
      std::chrono::duration<double>(Clock::now() - started).count());
  if (!reply && failures_metric_ != nullptr) {
    failures_metric_->add();
  }
  return reply;
}

std::optional<core::PolicyMessage> RuntimeClient::exchange_impl(
    const core::SampleMessage& sample) {
  ++stats_.exchanges;
  if (daemon_lost_) {
    ++stats_.exchange_failures;  // fail fast: no dialing a lost daemon
    return std::nullopt;
  }
  const auto deadline = Clock::now() + options_.request_timeout;
  const std::string frame =
      encode_frame(serialize(sample, core::WireFidelity::kExact));

  while (Clock::now() < deadline && !daemon_lost_) {
    if (!ensure_connected(deadline)) {
      break;
    }
    if (!send_frame(frame, deadline)) {
      continue;  // reconnect (or run out the clock)
    }
    // With standbys configured, one endpoint only gets the probe window
    // to answer before the exchange abandons it and rotates — a fenced
    // zombie primary accepts samples but can never reply.
    const bool probing =
        connectors_.size() > 1 && options_.endpoint_probe_timeout.count() > 0;
    const auto probe_deadline =
        probing ? Clock::now() + options_.endpoint_probe_timeout
                : Clock::time_point::max();

    bool dropped = false;
    bool rotate = false;
    while (!dropped) {
      // Drain complete frames first: replies to older sequences may have
      // arrived late and must not shadow the one we are waiting for.
      std::optional<std::string> payload;
      try {
        payload = decoder_.next();
      } catch (const Error&) {
        dropped = true;
        break;
      }
      if (payload) {
        try {
          if (core::wire_message_kind(*payload) ==
              core::WireMessageKind::kBudget) {
            // A renegotiated budget: advance the session epoch so any
            // caps computed under the superseded budget are rejected.
            core::BudgetMessage budget = core::parse_budget_message(*payload);
            if (budget.epoch > session_budget_epoch_) {
              session_budget_epoch_ = budget.epoch;
              last_budget_ = std::move(budget);
              ++stats_.budget_revisions;
              if (revisions_metric_ != nullptr) {
                revisions_metric_->add();
              }
            } else {
              ++stats_.budget_pushes_stale;
            }
            continue;
          }
          core::PolicyMessage policy = core::parse_policy_message(*payload);
          PS_REQUIRE(policy.job_name == sample.job_name,
                     "policy reply addressed to a different job");
          if (policy.fence_epoch < fence_epoch_) {
            // Caps from a daemon incarnation we know has been superseded
            // (a zombie primary resending from before the failover).
            // Programming them could double-grant watts the promoted
            // daemon has already reallocated — reject, and abandon the
            // endpoint entirely.
            ++stats_.stale_fence_caps;
            if (stale_fence_metric_ != nullptr) {
              stale_fence_metric_->add();
            }
            dropped = true;
            rotate = true;
            break;
          }
          fence_epoch_ = std::max(fence_epoch_, policy.fence_epoch);
          if (policy.budget_epoch < session_budget_epoch_) {
            // Caps computed under a budget we have heard revoked (a
            // duplicated or delayed frame): programming them could
            // overspend the revised envelope.
            ++stats_.stale_epoch_caps;
            if (stale_epoch_metric_ != nullptr) {
              stale_epoch_metric_->add();
            }
            continue;
          }
          session_budget_epoch_ =
              std::max(session_budget_epoch_, policy.budget_epoch);
          if (policy.sequence < sample.sequence) {
            ++stats_.stale_replies;
            if (stale_replies_metric_ != nullptr) {
              stale_replies_metric_->add();
            }
            continue;
          }
          last_known_policy_ = std::move(policy);
          return last_known_policy_;
        } catch (const Error&) {
          dropped = true;  // malformed or misaddressed reply
          break;
        }
      }

      const auto remaining = remaining_until(deadline);
      if (remaining.count() <= 0) {
        ++stats_.exchange_failures;
        return std::nullopt;  // timed out; connection stays for next time
      }
      auto wait_for = remaining;
      if (probing) {
        const auto probe_remaining =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                probe_deadline - Clock::now());
        if (probe_remaining.count() <= 0) {
          // The endpoint sat on the request for the whole probe window:
          // wedged or fenced. Retry the same sample on the next one,
          // still inside this exchange's deadline.
          ++stats_.probe_timeouts;
          dropped = true;
          rotate = true;
          break;
        }
        wait_for = std::min(wait_for, probe_remaining);
      }
      if (!transport_->wait_readable(wait_for)) {
        if (!probing) {
          ++stats_.exchange_failures;
          return std::nullopt;  // timed out; connection stays for next time
        }
        continue;  // re-check the probe window and the deadline
      }
      char buffer[4096];
      const IoResult result = transport_->read_some(buffer, sizeof(buffer));
      if (result.status == IoStatus::kClosed) {
        dropped = true;
        break;
      }
      if (result.status == IoStatus::kOk) {
        decoder_.feed(std::string_view(buffer, result.bytes));
      }
    }
    if (dropped) {
      drop_connection();
      if (rotate) {
        rotate_endpoint();
      }
    }
  }
  ++stats_.exchange_failures;
  return std::nullopt;
}

}  // namespace ps::net
