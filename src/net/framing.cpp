#include "net/framing.hpp"

#include "util/error.hpp"

namespace ps::net {

std::string encode_frame(std::string_view payload) {
  PS_REQUIRE(payload.size() <= kMaxFrameBytes, "frame payload too large");
  const auto length = static_cast<std::uint32_t>(payload.size());
  std::string frame;
  frame.reserve(4 + payload.size());
  frame.push_back(static_cast<char>((length >> 24) & 0xff));
  frame.push_back(static_cast<char>((length >> 16) & 0xff));
  frame.push_back(static_cast<char>((length >> 8) & 0xff));
  frame.push_back(static_cast<char>(length & 0xff));
  frame.append(payload);
  return frame;
}

void FrameDecoder::feed(std::string_view bytes) {
  buffer_.append(bytes);
}

std::optional<std::string> FrameDecoder::next() {
  if (buffer_.size() < 4) {
    return std::nullopt;
  }
  const auto byte = [&](std::size_t i) {
    return static_cast<std::uint32_t>(
        static_cast<unsigned char>(buffer_[i]));
  };
  const std::uint32_t length =
      (byte(0) << 24) | (byte(1) << 16) | (byte(2) << 8) | byte(3);
  if (length > max_frame_bytes_) {
    throw Error("frame length " + std::to_string(length) +
                " exceeds the maximum of " +
                std::to_string(max_frame_bytes_));
  }
  if (buffer_.size() < 4 + static_cast<std::size_t>(length)) {
    return std::nullopt;
  }
  std::string payload = buffer_.substr(4, length);
  buffer_.erase(0, 4 + static_cast<std::size_t>(length));
  return payload;
}

}  // namespace ps::net
