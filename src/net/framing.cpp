#include "net/framing.hpp"

#include <array>

#include "util/error.hpp"

namespace ps::net {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t value = i;
    for (int bit = 0; bit < 8; ++bit) {
      value = (value & 1u) != 0 ? 0xEDB88320u ^ (value >> 1) : value >> 1;
    }
    table[i] = value;
  }
  return table;
}

void append_be32(std::string& out, std::uint32_t value) {
  out.push_back(static_cast<char>((value >> 24) & 0xff));
  out.push_back(static_cast<char>((value >> 16) & 0xff));
  out.push_back(static_cast<char>((value >> 8) & 0xff));
  out.push_back(static_cast<char>(value & 0xff));
}

std::uint32_t read_be32(std::string_view bytes, std::size_t offset) {
  const auto byte = [&](std::size_t i) {
    return static_cast<std::uint32_t>(
        static_cast<unsigned char>(bytes[offset + i]));
  };
  return (byte(0) << 24) | (byte(1) << 16) | (byte(2) << 8) | byte(3);
}

}  // namespace

std::uint32_t crc32(std::string_view bytes) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char c : bytes) {
    crc = table[(crc ^ static_cast<unsigned char>(c)) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string encode_frame(std::string_view payload) {
  PS_REQUIRE(payload.size() <= kMaxFrameBytes, "frame payload too large");
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  append_be32(frame, static_cast<std::uint32_t>(payload.size()));
  append_be32(frame, crc32(payload));
  frame.append(payload);
  return frame;
}

void FrameDecoder::feed(std::string_view bytes) {
  buffer_.append(bytes);
}

std::optional<std::string> FrameDecoder::next() {
  // Validate the length the moment its four bytes arrive — before waiting
  // for the CRC — so a hostile prefix is rejected as early as possible.
  if (buffer_.size() >= 4) {
    const std::uint32_t claimed = read_be32(buffer_, 0);
    if (claimed > max_frame_bytes_) {
      throw Error("frame length " + std::to_string(claimed) +
                  " exceeds the maximum of " +
                  std::to_string(max_frame_bytes_));
    }
  }
  if (buffer_.size() < kFrameHeaderBytes) {
    return std::nullopt;
  }
  const std::uint32_t length = read_be32(buffer_, 0);
  if (buffer_.size() <
      kFrameHeaderBytes + static_cast<std::size_t>(length)) {
    return std::nullopt;
  }
  const std::uint32_t expected = read_be32(buffer_, 4);
  std::string payload = buffer_.substr(kFrameHeaderBytes, length);
  const std::uint32_t actual = crc32(payload);
  if (actual != expected) {
    throw Error("frame checksum mismatch: payload corrupted in transit");
  }
  buffer_.erase(0, kFrameHeaderBytes + static_cast<std::size_t>(length));
  return payload;
}

}  // namespace ps::net
