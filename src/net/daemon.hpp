#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/budget_governor.hpp"
#include "core/endpoint.hpp"
#include "core/policy.hpp"
#include "net/event_loop.hpp"
#include "net/framing.hpp"
#include "net/session.hpp"
#include "net/snapshot.hpp"
#include "net/socket.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace ps::net {

struct DaemonOptions {
  /// The site's system-wide power budget (required, > 0).
  double system_budget_watts = 0.0;
  /// The policy re-run on every allocation round.
  core::PolicyKind policy = core::PolicyKind::kMixedAdaptive;
  /// Node hardware limits forwarded into the PolicyContext.
  double node_tdp_watts = 256.0;
  double uncappable_watts = 16.0;
  /// Launch barrier: no allocation happens until this many jobs have
  /// registered — a coordinated mix starts from one uniform share, like
  /// the in-memory CoordinationLoop. Once met, allocations continue with
  /// whatever jobs remain (an evicted job returns watts to the pool).
  std::size_t min_jobs = 1;
  /// Connections silent for longer than this are closed on a tick.
  std::chrono::milliseconds idle_timeout{30'000};
  std::chrono::milliseconds tick_interval{100};

  /// Root mode: additionally accept rack-aggregate frames from per-rack
  /// AggregatorDaemons (the two-level daemon tree). One rack session
  /// carries many jobs; the root allocates over the union of all jobs
  /// exactly as a flat daemon would — sharding changes the fan-out
  /// topology, not a single watt — and replies one batched rack-policy
  /// frame per rack per round, whose rack budget it renegotiates every
  /// epoch as the sum of that rack's caps. Off by default: a flat daemon
  /// rejects rack frames as protocol errors, keeping the v1 contract
  /// strict.
  bool root_mode = false;
  /// Readiness backend for the event loop (poll or epoll), selectable at
  /// construction; defaults to PS_EVENT_BACKEND / platform default.
  EventBackend event_backend = default_event_backend();

  /// Disconnect grace: a registered job keeps its seat (and its watts)
  /// this long after its connection drops, so a client that reconnects
  /// promptly resumes without disturbing the allocation. Past the grace
  /// the job is evicted and its watts return to the pool.
  std::chrono::milliseconds reclaim_timeout{2'000};
  /// Liveness: a connected job that has not produced a sample for this
  /// long while another job's fresh sample is waiting on it is treated
  /// as dead-but-connected (half-open peer) and evicted.
  std::chrono::milliseconds heartbeat_timeout{10'000};
  /// Protocol-error quarantine: after this many protocol errors a job is
  /// evicted and barred from re-registering for quarantine_period, so a
  /// misbehaving client cannot wedge the allocation round forever.
  std::size_t quarantine_errors = 3;
  std::chrono::milliseconds quarantine_period{1'000};
  /// Hard bound on quarantine bookkeeping: the record of evicted
  /// misbehaving jobs must stay O(1) over an unbounded churn of client
  /// identities, so inserting past the bound drops the entry closest to
  /// expiry (the least valuable one). Expired entries are also pruned on
  /// every tick rather than lazily on re-registration.
  std::size_t max_quarantine_entries = 1024;

  /// When non-empty, the daemon persists a write-ahead snapshot of its
  /// coordination state (budget, launch barrier, every job's last caps)
  /// here before each reply leaves, and rehydrates from it at startup —
  /// a restarted daemon re-admits its jobs without re-running the launch
  /// barrier and re-serves their last caps on demand.
  std::string snapshot_path;

  /// Server-side transport decorator applied to every accepted or
  /// adopted connection (e.g. fault::FaultyTransport in tests). Null
  /// means connections are used as-is.
  std::function<std::unique_ptr<Transport>(std::unique_ptr<Transport>)>
      transport_wrapper;

  /// High-availability seams (all inert by default; a single-daemon
  /// deployment that sets none of these keeps byte-identical wire
  /// traffic, snapshots, and golden traces).
  ///
  /// In-memory boot state: a promoted standby constructs its daemon over
  /// the replicated snapshot instead of a disk file. Takes priority over
  /// snapshot_path restoration; the same validation rules apply (a
  /// revised budget wins over the configured one, adopted scheduled
  /// revisions do not replay).
  std::optional<DaemonSnapshot> initial_state;
  /// This incarnation's fencing epoch. Non-zero stamps every outgoing
  /// PolicyMessage (including resends) and the snapshot, so clients that
  /// have heard a newer fence reject this daemon's caps as zombie
  /// output. A restored snapshot's higher fence wins over this value.
  std::uint64_t fence_epoch = 0;
  /// Write-ahead replication sink: invoked with the freshly built state
  /// snapshot at every point the daemon persists (before round replies
  /// leave, on revision adoption, on eviction) — even when snapshot_path
  /// is empty. The HA Replicator plugs in here.
  std::function<void(const DaemonSnapshot&)> replication_sink;
  /// Fencing gate: when set and returning true, allocation rounds are
  /// refused (counted in stats.rounds_fenced) — the primary has lost its
  /// standby's acks for longer than the fence window and must assume a
  /// promoted successor exists. Registrations and stored-cap resends
  /// still answer; their stale fence tag is what failed-over clients
  /// reject.
  std::function<bool()> fence_check;

  /// Scheduled budget revisions, sorted by at_epoch. The daemon adopts a
  /// revision with at_epoch e before the allocation round that consumes
  /// sample sequence e + 1 — the round that corresponds to coordination
  /// epoch e's RM step — so a socket run replays the exact budget
  /// trajectory CoordinationLoop::run_dynamic follows in memory.
  std::vector<core::BudgetRevision> budget_revisions;

  /// Observability seam. With a trace sink attached the daemon emits the
  /// "daemon" stream (restore/barrier/revision/caps/round/snapshot on the
  /// allocation-round logical clock — deterministic for a seeded run) and
  /// the "netio" stream (session lifecycle, eviction, quarantine — these
  /// follow transport timing and are excluded from golden comparisons);
  /// with a metrics registry, "net.daemon.*" counters. Inert by default.
  obs::Observability obs{};
};

struct DaemonStats {
  std::size_t sessions_accepted = 0;
  std::size_t sessions_closed = 0;
  std::size_t sessions_timed_out = 0;
  std::size_t samples_received = 0;
  std::size_t samples_stale = 0;
  std::size_t protocol_errors = 0;
  std::size_t allocations = 0;
  std::size_t policies_sent = 0;
  std::size_t budget_violations = 0;

  /// How many times the min-jobs launch barrier was crossed. Stays 0 on
  /// a daemon restored from a snapshot whose barrier was already met —
  /// the proof that a restart does not re-run the launch barrier.
  std::size_t launch_barriers = 0;
  std::size_t jobs_restored = 0;   ///< Records rehydrated from snapshot.
  std::size_t sessions_rehydrated = 0;  ///< Reconnects into a live record.
  std::size_t jobs_evicted = 0;
  std::size_t quarantines = 0;
  std::size_t quarantine_rejections = 0;
  std::size_t policies_resent = 0;  ///< Lost-reply retransmissions.
  std::size_t snapshots_written = 0;
  double watts_reclaimed = 0.0;  ///< Total returned to the pool by eviction.
  double reclaim_seconds_total = 0.0;  ///< Disconnect -> reclaim latency sum.

  /// Dynamic-budget accounting. `budget_watts` / `budget_epoch` are the
  /// budget currently enforced (epoch 0 until the first revision).
  double budget_watts = 0.0;
  std::uint64_t budget_epoch = 0;
  std::size_t budget_revisions_applied = 0;
  std::size_t budget_revisions_stale = 0;  ///< Rejected: epoch not newer.
  std::size_t budget_pushes = 0;     ///< BudgetMessages queued to clients.
  std::size_t emergency_clamps = 0;  ///< Rounds that took the clamp path.

  /// High-availability accounting.
  std::uint64_t fence_epoch = 0;      ///< This incarnation's fence.
  std::size_t rounds_fenced = 0;      ///< Allocations refused while fenced.
  std::size_t replication_updates = 0;  ///< States handed to the sink.
  /// Quarantine bookkeeping (the bounded-memory satellite): the current
  /// entry count and how many were dropped at the bound.
  std::size_t quarantine_entries = 0;
  std::size_t quarantine_entries_dropped = 0;

  /// Hierarchical-coordination accounting (root mode).
  std::size_t rack_sessions = 0;        ///< Registered racks, current.
  std::size_t rack_frames_received = 0; ///< Aggregate sample frames in.
  std::size_t rack_policies_sent = 0;   ///< Batched policy frames out.
  std::size_t rack_policies_resent = 0; ///< Batched stale-round resends.
};

/// The resource-manager power daemon: accepts many concurrent runtime
/// clients over any combination of Unix-domain, TCP, and loopback
/// transports, tracks one job record per job name, and coordinates them
/// with the configured core policy.
///
/// Protocol (framed endpoint messages, exact numeric fidelity):
///   1. A client's first SampleMessage registers (or re-attaches) its
///      connection to the job record named by the sample. One live
///      connection per job name; a reconnect within the grace window
///      resumes the existing record.
///   2. Samples are sequence-checked per record (core::SampleLatch):
///      a sample whose sequence the daemon has already answered gets the
///      stored caps resent (the reply was lost); newest wins otherwise.
///   3. When every registered record holds a fresh sample (and the
///      min_jobs launch barrier has been met), the daemon allocates:
///      all sequence-0 samples -> the uniform bootstrap share; otherwise
///      the configured policy over every record's latest sample, in
///      job-name order. Each job is sent a PolicyMessage echoing its
///      own sample sequence; the caps are persisted first (write-ahead)
///      when a snapshot path is configured.
///   4. A disconnect starts the reclaim_timeout grace; eviction (grace
///      expiry, heartbeat stall, or protocol-error quarantine) frees the
///      job's watts for the next round.
///
/// run() serves the event loop on the calling thread; stop(), adopt()
/// and stats() are safe to call from other threads.
class PowerDaemon {
 public:
  explicit PowerDaemon(const DaemonOptions& options);
  ~PowerDaemon();

  PowerDaemon(const PowerDaemon&) = delete;
  PowerDaemon& operator=(const PowerDaemon&) = delete;

  /// Binds a listener. May be called multiple times (one per transport)
  /// before or between run() calls, from the owning thread.
  void listen_unix(const std::string& path);
  /// Port 0 picks an ephemeral port; see tcp_port().
  void listen_tcp(std::uint16_t port);
  [[nodiscard]] std::uint16_t tcp_port() const noexcept {
    return tcp_port_;
  }

  /// Adopts a pre-connected socket (the loopback transport). Thread-safe;
  /// the session becomes live on the next loop cycle.
  void adopt(Socket socket);
  /// Adopts a pre-connected transport (e.g. a fault-injecting decorator).
  void adopt(std::unique_ptr<Transport> transport);

  /// Serves until stop(). Blocks the calling thread.
  void run();
  /// Thread-safe: makes run() return after the current cycle.
  void stop();

  /// Thread-safe: renegotiates the system budget from outside the loop
  /// (a facility manager reacting to a live headroom signal). Applied on
  /// the next loop cycle: a stale epoch is rejected, a newer one becomes
  /// the enforced budget, every live client is pushed a BudgetMessage,
  /// stored caps that no longer fit are emergency-clamped (proportional,
  /// floor-respecting), and the snapshot is rewritten so a restart
  /// cannot resurrect the superseded budget.
  void revise_budget(const core::BudgetRevision& revision);

  [[nodiscard]] DaemonStats stats() const;
  [[nodiscard]] const DaemonOptions& options() const noexcept {
    return options_;
  }

 private:
  using Clock = std::chrono::steady_clock;

  /// A job's seat at the coordination table. Outlives its connection: a
  /// record persists across reconnects (and, via the snapshot, across
  /// daemon restarts) until the job is evicted.
  struct JobRecord {
    core::SampleLatch latch;
    std::vector<double> last_caps_watts;
    /// GPU-domain caps of the last policy; empty for single-domain jobs.
    std::vector<double> last_gpu_caps_watts;
    std::uint64_t last_sequence = 0;
    bool have_policy = false;
    int session_fd = -1;  ///< -1: disconnected (grace running).
    Clock::time_point disconnected_at{};
    Clock::time_point last_sample_at{};
    std::size_t protocol_errors = 0;
  };

  void add_session(std::unique_ptr<Transport> transport);
  void adopt_pending_transports();
  void on_listener_ready(std::size_t listener_index);
  void on_session_ready(int fd, short revents);
  void handle_frame(int fd, NetSession& session, const std::string& payload);
  void handle_sample_frame(int fd, NetSession& session,
                           core::SampleMessage sample);
  void handle_rack_frame(int fd, NetSession& session,
                         const std::string& payload);
  /// Quarantine gate + job-record attach for one sample's job.
  JobRecord& bind_job_record(int fd, const std::string& job_name);
  /// Registration-time budget-epoch resync push (throws if the push
  /// kills the session).
  void send_budget_resync(int fd, NetSession& session);
  /// Returns true when the sequence was already answered — the caller
  /// must resend the stored caps; otherwise offers the sample.
  bool offer_sample(JobRecord& record, core::SampleMessage sample,
                    Clock::time_point now);
  void close_session(int fd, bool protocol_error);
  void evict_job(const std::string& name);
  void queue_message(int fd, NetSession& session,
                     const core::PolicyMessage& message);
  [[nodiscard]] core::PolicyMessage stored_policy(const std::string& name,
                                                  const JobRecord& record)
      const;
  void resend_last_policy(int fd, NetSession& session, JobRecord& record);
  void try_allocate();
  void allocate_once();
  void maybe_write_snapshot();
  void restore_from_snapshot();
  void restore_state(const DaemonSnapshot& snapshot);
  void record_quarantine(const std::string& name, Clock::time_point until);
  void prune_quarantine(Clock::time_point now);
  void on_tick();
  void apply_pending_revisions();
  void apply_revision(const core::BudgetRevision& revision);
  void push_budget_to_sessions();
  void clamp_stored_caps();
  /// Rounds completed across incarnations — the "netio" stream's tick.
  [[nodiscard]] std::uint64_t completed_rounds() const;

  DaemonOptions options_;
  std::unique_ptr<core::Policy> policy_;
  EventLoop loop_;
  std::vector<Listener> listeners_;
  SessionTable sessions_;
  /// Name-keyed: iteration order is the deterministic round order.
  std::map<std::string, JobRecord> jobs_;
  /// Per-level round latency (barrier satisfied -> replies flushed) and
  /// fan-out gauges; null when no metrics registry is attached.
  obs::Histogram* round_latency_ = nullptr;
  std::map<std::string, Clock::time_point> quarantine_;
  bool launch_barrier_met_ = false;
  std::uint64_t allocation_epoch_base_ = 0;  ///< From a restored snapshot.
  bool in_allocate_ = false;
  bool allocate_again_ = false;
  std::uint16_t tcp_port_ = 0;
  /// The budget currently enforced (options budget until revised, then
  /// the newest adopted revision; a restored snapshot's revised budget
  /// wins over the configured one).
  double budget_watts_ = 0.0;
  std::uint64_t budget_epoch_ = 0;
  std::size_t next_scheduled_revision_ = 0;
  /// This incarnation's fencing epoch: the configured one, or a restored
  /// snapshot's if higher. Stamped on every policy and snapshot when > 0.
  std::uint64_t fence_epoch_ = 0;

  mutable std::mutex shared_mutex_;  ///< Guards stats_ and pending_.
  DaemonStats stats_;
  std::vector<std::unique_ptr<Transport>> pending_adoptions_;
  std::vector<core::BudgetRevision> pending_revisions_;
};

}  // namespace ps::net
