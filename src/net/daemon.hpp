#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/endpoint.hpp"
#include "core/policy.hpp"
#include "net/event_loop.hpp"
#include "net/framing.hpp"
#include "net/socket.hpp"

namespace ps::net {

struct DaemonOptions {
  /// The site's system-wide power budget (required, > 0).
  double system_budget_watts = 0.0;
  /// The policy re-run on every allocation round.
  core::PolicyKind policy = core::PolicyKind::kMixedAdaptive;
  /// Node hardware limits forwarded into the PolicyContext.
  double node_tdp_watts = 256.0;
  double uncappable_watts = 16.0;
  /// Launch barrier: no allocation happens until this many jobs have
  /// registered — a coordinated mix starts from one uniform share, like
  /// the in-memory CoordinationLoop. Once met, allocations continue with
  /// whatever sessions remain (a disconnect returns watts to the pool).
  std::size_t min_jobs = 1;
  /// Connections silent for longer than this are closed on a tick.
  std::chrono::milliseconds idle_timeout{30'000};
  std::chrono::milliseconds tick_interval{100};
};

struct DaemonStats {
  std::size_t sessions_accepted = 0;
  std::size_t sessions_closed = 0;
  std::size_t sessions_timed_out = 0;
  std::size_t samples_received = 0;
  std::size_t samples_stale = 0;
  std::size_t protocol_errors = 0;
  std::size_t allocations = 0;
  std::size_t policies_sent = 0;
  std::size_t budget_violations = 0;
};

/// The resource-manager power daemon: accepts many concurrent runtime
/// clients over any combination of Unix-domain, TCP, and loopback
/// transports, tracks one session per job, and coordinates them with the
/// configured core policy.
///
/// Protocol (framed endpoint messages, exact numeric fidelity):
///   1. A client's first SampleMessage registers its session under the
///      sample's job name (one session per job name).
///   2. Samples are sequence-checked per session (core::SampleLatch):
///      stale and duplicate sequences are ignored, newest wins.
///   3. When every registered session holds a fresh sample (and the
///      min_jobs launch barrier has been met), the daemon allocates:
///      all sequence-0 samples -> the uniform bootstrap share; otherwise
///      the configured policy over every session's latest sample, in
///      job-name order. Each session is sent a PolicyMessage echoing its
///      own sample sequence.
///   4. A disconnect drops the session; subsequent rounds redistribute
///      the full budget over the remaining jobs.
///
/// run() serves the event loop on the calling thread; stop(), adopt()
/// and stats() are safe to call from other threads.
class PowerDaemon {
 public:
  explicit PowerDaemon(const DaemonOptions& options);
  ~PowerDaemon();

  PowerDaemon(const PowerDaemon&) = delete;
  PowerDaemon& operator=(const PowerDaemon&) = delete;

  /// Binds a listener. May be called multiple times (one per transport)
  /// before or between run() calls, from the owning thread.
  void listen_unix(const std::string& path);
  /// Port 0 picks an ephemeral port; see tcp_port().
  void listen_tcp(std::uint16_t port);
  [[nodiscard]] std::uint16_t tcp_port() const noexcept {
    return tcp_port_;
  }

  /// Adopts a pre-connected socket (the loopback transport). Thread-safe;
  /// the session becomes live on the next loop cycle.
  void adopt(Socket socket);

  /// Serves until stop(). Blocks the calling thread.
  void run();
  /// Thread-safe: makes run() return after the current cycle.
  void stop();

  [[nodiscard]] DaemonStats stats() const;
  [[nodiscard]] const DaemonOptions& options() const noexcept {
    return options_;
  }

 private:
  struct Session {
    Socket socket;
    FrameDecoder decoder;
    std::string outbox;
    core::SampleLatch latch;
    std::string job_name;
    bool registered = false;
    std::chrono::steady_clock::time_point last_activity;
  };

  void add_session(Socket socket);
  void adopt_pending_sockets();
  void on_listener_ready(std::size_t listener_index);
  void on_session_ready(int fd, short revents);
  void handle_frame(Session& session, const std::string& payload);
  void close_session(int fd, bool protocol_error);
  void flush_outbox(int fd, Session& session);
  void queue_message(int fd, Session& session,
                     const core::PolicyMessage& message);
  void try_allocate();
  void on_tick();

  DaemonOptions options_;
  std::unique_ptr<core::Policy> policy_;
  EventLoop loop_;
  std::vector<Listener> listeners_;
  std::map<int, Session> sessions_;
  bool launch_barrier_met_ = false;
  std::uint16_t tcp_port_ = 0;

  mutable std::mutex shared_mutex_;  ///< Guards stats_ and pending_.
  DaemonStats stats_;
  std::vector<Socket> pending_adoptions_;
};

}  // namespace ps::net
