#include "net/socket.hpp"

#include <algorithm>
#include <arpa/inet.h>
#include <cerrno>
#include <climits>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/error.hpp"

namespace ps::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl(O_NONBLOCK)");
  }
}

bool poll_one(int fd, short events, std::chrono::milliseconds timeout) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = events;
  const int timeout_ms =
      timeout.count() < 0
          ? -1
          : static_cast<int>(
                std::min<std::chrono::milliseconds::rep>(timeout.count(),
                                                         INT_MAX));
  for (;;) {
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0 && errno == EINTR) {
      continue;
    }
    return ready > 0;
  }
}

sockaddr_un make_unix_address(const std::string& path) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  PS_REQUIRE(path.size() < sizeof(address.sun_path),
             "unix socket path too long");
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
  return address;
}

sockaddr_in make_local_tcp_address(std::uint16_t port) {
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return address;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

IoResult Socket::read_some(char* out, std::size_t max_bytes) {
  for (;;) {
    const ssize_t n = ::recv(fd_, out, max_bytes, 0);
    if (n > 0) {
      return {IoStatus::kOk, static_cast<std::size_t>(n)};
    }
    if (n == 0) {
      return {IoStatus::kClosed, 0};
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoStatus::kWouldBlock, 0};
    }
    return {IoStatus::kClosed, 0};
  }
}

IoResult Socket::write_some(std::string_view bytes) {
  for (;;) {
    const ssize_t n =
        ::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    if (n >= 0) {
      return {IoStatus::kOk, static_cast<std::size_t>(n)};
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoStatus::kWouldBlock, 0};
    }
    return {IoStatus::kClosed, 0};
  }
}

bool Socket::wait_readable(std::chrono::milliseconds timeout) {
  return poll_one(fd_, POLLIN, timeout);
}

bool Socket::wait_writable(std::chrono::milliseconds timeout) {
  return poll_one(fd_, POLLOUT, timeout);
}

Listener::~Listener() {
  if (!unlink_path_.empty()) {
    ::unlink(unlink_path_.c_str());
  }
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    if (!unlink_path_.empty()) {
      ::unlink(unlink_path_.c_str());
    }
    socket_ = std::move(other.socket_);
    unlink_path_ = std::exchange(other.unlink_path_, {});
  }
  return *this;
}

std::optional<Socket> Listener::accept() {
  for (;;) {
    const int fd = ::accept(socket_.fd(), nullptr, nullptr);
    if (fd >= 0) {
      Socket accepted(fd);
      set_nonblocking(fd);
      return accepted;
    }
    if (errno == EINTR) {
      continue;
    }
    return std::nullopt;  // EAGAIN or a transient accept error
  }
}

Listener listen_unix(const std::string& path, int backlog) {
  Socket socket(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!socket.valid()) {
    throw_errno("socket(AF_UNIX)");
  }
  ::unlink(path.c_str());  // replace a stale socket file
  const sockaddr_un address = make_unix_address(path);
  if (::bind(socket.fd(), reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) < 0) {
    throw_errno("bind(" + path + ")");
  }
  if (::listen(socket.fd(), backlog) < 0) {
    throw_errno("listen(" + path + ")");
  }
  set_nonblocking(socket.fd());
  return Listener(std::move(socket), path);
}

Listener listen_tcp(std::uint16_t port, std::uint16_t* bound_port,
                    int backlog) {
  Socket socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!socket.valid()) {
    throw_errno("socket(AF_INET)");
  }
  const int enable = 1;
  ::setsockopt(socket.fd(), SOL_SOCKET, SO_REUSEADDR, &enable,
               sizeof(enable));
  sockaddr_in address = make_local_tcp_address(port);
  if (::bind(socket.fd(), reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) < 0) {
    throw_errno("bind(127.0.0.1:" + std::to_string(port) + ")");
  }
  if (::listen(socket.fd(), backlog) < 0) {
    throw_errno("listen(127.0.0.1:" + std::to_string(port) + ")");
  }
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t length = sizeof(bound);
    if (::getsockname(socket.fd(), reinterpret_cast<sockaddr*>(&bound),
                      &length) < 0) {
      throw_errno("getsockname");
    }
    *bound_port = ntohs(bound.sin_port);
  }
  set_nonblocking(socket.fd());
  return Listener(std::move(socket), {});
}

Socket connect_unix(const std::string& path) {
  Socket socket(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!socket.valid()) {
    throw_errno("socket(AF_UNIX)");
  }
  const sockaddr_un address = make_unix_address(path);
  if (::connect(socket.fd(), reinterpret_cast<const sockaddr*>(&address),
                sizeof(address)) < 0) {
    throw_errno("connect(" + path + ")");
  }
  set_nonblocking(socket.fd());
  return socket;
}

Socket connect_tcp(std::uint16_t port) {
  Socket socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!socket.valid()) {
    throw_errno("socket(AF_INET)");
  }
  const sockaddr_in address = make_local_tcp_address(port);
  if (::connect(socket.fd(), reinterpret_cast<const sockaddr*>(&address),
                sizeof(address)) < 0) {
    throw_errno("connect(127.0.0.1:" + std::to_string(port) + ")");
  }
  set_nonblocking(socket.fd());
  return socket;
}

std::pair<Socket, Socket> loopback_pair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) < 0) {
    throw_errno("socketpair");
  }
  Socket a(fds[0]);
  Socket b(fds[1]);
  set_nonblocking(fds[0]);
  set_nonblocking(fds[1]);
  return {std::move(a), std::move(b)};
}

}  // namespace ps::net
