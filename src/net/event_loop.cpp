#include "net/event_loop.hpp"

#include <algorithm>
#include <cerrno>
#include <climits>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <unistd.h>
#include <vector>

#include "util/error.hpp"

namespace ps::net {

EventLoop::EventLoop() {
  int fds[2];
  if (::pipe(fds) < 0) {
    throw Error(std::string("pipe: ") + std::strerror(errno));
  }
  // Both ends non-blocking: the drain loop must not hang, and stop()
  // must not block on a full pipe.
  for (const int fd : fds) {
    ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
  }
  wake_read_fd_ = fds[0];
  wake_write_fd_ = fds[1];
}

EventLoop::~EventLoop() {
  ::close(wake_read_fd_);
  ::close(wake_write_fd_);
}

void EventLoop::add_fd(int fd, short events, FdCallback callback) {
  PS_REQUIRE(fd >= 0, "cannot watch an invalid fd");
  PS_REQUIRE(callback != nullptr, "fd callback must not be empty");
  registrations_[fd] = Registration{events, std::move(callback)};
}

void EventLoop::set_events(int fd, short events) {
  const auto it = registrations_.find(fd);
  PS_REQUIRE(it != registrations_.end(), "fd is not registered");
  it->second.events = events;
}

void EventLoop::remove_fd(int fd) {
  registrations_.erase(fd);
}

void EventLoop::set_tick(std::chrono::milliseconds interval,
                         std::function<void()> on_tick) {
  PS_REQUIRE(interval.count() > 0, "tick interval must be positive");
  tick_interval_ = interval;
  on_tick_ = std::move(on_tick);
  next_tick_ = std::chrono::steady_clock::now() + interval;
}

void EventLoop::fire_tick_if_due() {
  if (!on_tick_) {
    return;
  }
  const auto now = std::chrono::steady_clock::now();
  if (now < next_tick_) {
    return;
  }
  // One tick per cycle; a loop that fell behind catches up gradually
  // rather than firing a burst.
  next_tick_ = now + tick_interval_;
  on_tick_();
}

bool EventLoop::run_once(std::chrono::milliseconds timeout) {
  if (stopped()) {
    return false;
  }

  std::vector<pollfd> pollfds;
  pollfds.reserve(registrations_.size() + 1);
  pollfds.push_back(pollfd{wake_read_fd_, POLLIN, 0});
  for (const auto& [fd, registration] : registrations_) {
    pollfds.push_back(pollfd{fd, registration.events, 0});
  }

  auto wait = timeout;
  if (on_tick_) {
    const auto until_tick =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            next_tick_ - std::chrono::steady_clock::now());
    const auto clamped = std::max(std::chrono::milliseconds(0), until_tick);
    wait = wait.count() < 0 ? clamped : std::min(wait, clamped);
  }
  const int timeout_ms =
      wait.count() < 0
          ? -1
          : static_cast<int>(std::min<std::chrono::milliseconds::rep>(
                wait.count(), INT_MAX));

  const int ready = ::poll(pollfds.data(), pollfds.size(), timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) {
      return !stopped();
    }
    throw Error(std::string("poll: ") + std::strerror(errno));
  }

  // Drain wake-up bytes first so a stop() requested mid-cycle is seen.
  if ((pollfds[0].revents & POLLIN) != 0) {
    char sink[64];
    while (::read(wake_read_fd_, sink, sizeof(sink)) > 0) {
    }
  }

  for (std::size_t i = 1; i < pollfds.size(); ++i) {
    const short revents = pollfds[i].revents;
    if (revents == 0) {
      continue;
    }
    const auto it = registrations_.find(pollfds[i].fd);
    if (it == registrations_.end()) {
      continue;  // removed by an earlier callback this cycle
    }
    // Copy so a callback that removes itself does not destroy the
    // std::function it is executing.
    const FdCallback callback = it->second.callback;
    callback(revents);
    if (stopped()) {
      return false;
    }
  }

  fire_tick_if_due();
  return !stopped();
}

void EventLoop::run() {
  while (run_once(std::chrono::milliseconds(-1))) {
  }
}

void EventLoop::stop() {
  stop_requested_.store(true, std::memory_order_release);
  wake();
}

void EventLoop::wake() {
  const char byte = 1;
  // A full pipe already guarantees a pending wake-up.
  static_cast<void>(::write(wake_write_fd_, &byte, 1));
}

}  // namespace ps::net
