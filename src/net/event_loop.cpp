#include "net/event_loop.hpp"

#include <algorithm>
#include <cerrno>
#include <climits>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <string_view>
#include <unistd.h>
#include <vector>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include "util/error.hpp"

namespace ps::net {

namespace {

#ifdef __linux__
std::uint32_t to_epoll_events(short events) {
  std::uint32_t out = 0;
  if ((events & POLLIN) != 0) {
    out |= EPOLLIN;
  }
  if ((events & POLLOUT) != 0) {
    out |= EPOLLOUT;
  }
  return out;
}

short to_poll_revents(std::uint32_t events) {
  short out = 0;
  if ((events & EPOLLIN) != 0) {
    out |= POLLIN;
  }
  if ((events & EPOLLOUT) != 0) {
    out |= POLLOUT;
  }
  if ((events & EPOLLERR) != 0) {
    out |= POLLERR;
  }
  if ((events & EPOLLHUP) != 0) {
    out |= POLLHUP;
  }
  return out;
}
#endif

}  // namespace

EventBackend default_event_backend() {
  if (const char* env = std::getenv("PS_EVENT_BACKEND")) {
    const std::string_view value(env);
    if (value == "poll") {
      return EventBackend::kPoll;
    }
    if (value == "epoll") {
      return EventBackend::kEpoll;
    }
    throw InvalidArgument("PS_EVENT_BACKEND must be 'poll' or 'epoll'");
  }
#ifdef __linux__
  return EventBackend::kEpoll;
#else
  return EventBackend::kPoll;
#endif
}

const char* to_string(EventBackend backend) noexcept {
  return backend == EventBackend::kEpoll ? "epoll" : "poll";
}

EventLoop::EventLoop(EventBackend backend) : backend_(backend) {
  int fds[2];
  if (::pipe(fds) < 0) {
    throw Error(std::string("pipe: ") + std::strerror(errno));
  }
  // Both ends non-blocking: the drain loop must not hang, and stop()
  // must not block on a full pipe.
  for (const int fd : fds) {
    ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
  }
  wake_read_fd_ = fds[0];
  wake_write_fd_ = fds[1];

#ifdef __linux__
  if (backend_ == EventBackend::kEpoll) {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) {
      backend_ = EventBackend::kPoll;  // fall back, never fail construction
    } else {
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = wake_read_fd_;
      if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_read_fd_, &ev) < 0) {
        ::close(epoll_fd_);
        epoll_fd_ = -1;
        backend_ = EventBackend::kPoll;
      }
    }
  }
#else
  backend_ = EventBackend::kPoll;
#endif
}

EventLoop::~EventLoop() {
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
  }
  ::close(wake_read_fd_);
  ::close(wake_write_fd_);
}

void EventLoop::backend_add(int fd, short events) {
#ifdef __linux__
  if (epoll_fd_ < 0) {
    return;
  }
  epoll_event ev{};
  ev.events = to_epoll_events(events);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    if (errno == EEXIST) {
      // add_fd() over an existing registration replaces it, mirroring
      // the map assignment on the poll backend.
      if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0) {
        return;
      }
    }
    throw Error(std::string("epoll_ctl(add): ") + std::strerror(errno));
  }
#else
  static_cast<void>(fd);
  static_cast<void>(events);
#endif
}

void EventLoop::backend_mod(int fd, short events) {
#ifdef __linux__
  if (epoll_fd_ < 0) {
    return;
  }
  epoll_event ev{};
  ev.events = to_epoll_events(events);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) < 0) {
    throw Error(std::string("epoll_ctl(mod): ") + std::strerror(errno));
  }
#else
  static_cast<void>(fd);
  static_cast<void>(events);
#endif
}

void EventLoop::backend_del(int fd) noexcept {
#ifdef __linux__
  if (epoll_fd_ < 0) {
    return;
  }
  // Best effort: a closed fd has already left the interest set, so
  // EBADF/ENOENT here are expected, not errors.
  epoll_event ev{};
  static_cast<void>(::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, &ev));
#else
  static_cast<void>(fd);
#endif
}

void EventLoop::add_fd(int fd, short events, FdCallback callback) {
  PS_REQUIRE(fd >= 0, "cannot watch an invalid fd");
  PS_REQUIRE(callback != nullptr, "fd callback must not be empty");
  registrations_[fd] = Registration{events, std::move(callback)};
  backend_add(fd, events);
}

void EventLoop::set_events(int fd, short events) {
  const auto it = registrations_.find(fd);
  PS_REQUIRE(it != registrations_.end(), "fd is not registered");
  it->second.events = events;
  backend_mod(fd, events);
}

void EventLoop::remove_fd(int fd) {
  if (registrations_.erase(fd) > 0) {
    backend_del(fd);
  }
}

void EventLoop::set_tick(std::chrono::milliseconds interval,
                         std::function<void()> on_tick) {
  PS_REQUIRE(interval.count() > 0, "tick interval must be positive");
  tick_interval_ = interval;
  on_tick_ = std::move(on_tick);
  next_tick_ = std::chrono::steady_clock::now() + interval;
}

void EventLoop::fire_tick_if_due() {
  if (!on_tick_) {
    return;
  }
  const auto now = std::chrono::steady_clock::now();
  if (now < next_tick_) {
    return;
  }
  // One tick per cycle; a loop that fell behind catches up gradually
  // rather than firing a burst.
  next_tick_ = now + tick_interval_;
  on_tick_();
}

int EventLoop::wait_timeout_ms(std::chrono::milliseconds timeout) const {
  auto wait = timeout;
  if (on_tick_) {
    const auto until_tick =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            next_tick_ - std::chrono::steady_clock::now());
    const auto clamped = std::max(std::chrono::milliseconds(0), until_tick);
    wait = wait.count() < 0 ? clamped : std::min(wait, clamped);
  }
  return wait.count() < 0
             ? -1
             : static_cast<int>(std::min<std::chrono::milliseconds::rep>(
                   wait.count(), INT_MAX));
}

void EventLoop::drain_wake_pipe() {
  char sink[64];
  while (::read(wake_read_fd_, sink, sizeof(sink)) > 0) {
  }
}

bool EventLoop::run_once(std::chrono::milliseconds timeout) {
  if (stopped()) {
    return false;
  }
  return backend_ == EventBackend::kEpoll ? run_once_epoll(timeout)
                                          : run_once_poll(timeout);
}

bool EventLoop::run_once_poll(std::chrono::milliseconds timeout) {
  std::vector<pollfd> pollfds;
  pollfds.reserve(registrations_.size() + 1);
  pollfds.push_back(pollfd{wake_read_fd_, POLLIN, 0});
  for (const auto& [fd, registration] : registrations_) {
    pollfds.push_back(pollfd{fd, registration.events, 0});
  }

  const int ready =
      ::poll(pollfds.data(), pollfds.size(), wait_timeout_ms(timeout));
  if (ready < 0) {
    if (errno == EINTR) {
      return !stopped();
    }
    throw Error(std::string("poll: ") + std::strerror(errno));
  }

  // Drain wake-up bytes first so a stop() requested mid-cycle is seen.
  if ((pollfds[0].revents & POLLIN) != 0) {
    drain_wake_pipe();
  }

  for (std::size_t i = 1; i < pollfds.size(); ++i) {
    const short revents = pollfds[i].revents;
    if (revents == 0) {
      continue;
    }
    const auto it = registrations_.find(pollfds[i].fd);
    if (it == registrations_.end()) {
      continue;  // removed by an earlier callback this cycle
    }
    // Copy so a callback that removes itself does not destroy the
    // std::function it is executing.
    const FdCallback callback = it->second.callback;
    callback(revents);
    if (stopped()) {
      return false;
    }
  }

  fire_tick_if_due();
  return !stopped();
}

bool EventLoop::run_once_epoll(std::chrono::milliseconds timeout) {
#ifdef __linux__
  epoll_event events[128];
  const int ready = ::epoll_wait(epoll_fd_, events,
                                 static_cast<int>(std::size(events)),
                                 wait_timeout_ms(timeout));
  if (ready < 0) {
    if (errno == EINTR) {
      return !stopped();
    }
    throw Error(std::string("epoll_wait: ") + std::strerror(errno));
  }

  // Drain wake-up bytes first so a stop() requested mid-cycle is seen.
  for (int i = 0; i < ready; ++i) {
    if (events[i].data.fd == wake_read_fd_) {
      drain_wake_pipe();
      break;
    }
  }

  for (int i = 0; i < ready; ++i) {
    const int fd = events[i].data.fd;
    if (fd == wake_read_fd_) {
      continue;
    }
    const short revents = to_poll_revents(events[i].events);
    if (revents == 0) {
      continue;
    }
    const auto it = registrations_.find(fd);
    if (it == registrations_.end()) {
      continue;  // removed by an earlier callback this cycle
    }
    const FdCallback callback = it->second.callback;
    callback(revents);
    if (stopped()) {
      return false;
    }
  }

  fire_tick_if_due();
  return !stopped();
#else
  return run_once_poll(timeout);
#endif
}

void EventLoop::run() {
  while (run_once(std::chrono::milliseconds(-1))) {
  }
}

void EventLoop::stop() {
  stop_requested_.store(true, std::memory_order_release);
  wake();
}

void EventLoop::wake() {
  const char byte = 1;
  // A full pipe already guarantees a pending wake-up.
  static_cast<void>(::write(wake_write_fd_, &byte, 1));
}

}  // namespace ps::net
