#pragma once

#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "net/event_loop.hpp"
#include "net/framing.hpp"
#include "net/transport.hpp"

namespace ps::net {

/// One framed peer connection: the transport, its incremental frame
/// decoder, pending output, and the registration identity its owner
/// assigns once the peer's first message arrives. Sessions carry no
/// coordination state — job records live with the daemon that owns the
/// table, which is what lets PowerDaemon and AggregatorDaemon share this
/// layer.
struct NetSession {
  std::unique_ptr<Transport> transport;
  FrameDecoder decoder;
  std::string outbox;
  /// Flat-client registration: the one job this connection speaks for.
  std::string job_name;
  bool registered = false;
  /// Root-mode registration: this session is a rack aggregator carrying
  /// many jobs' traffic in batched frames.
  bool is_rack = false;
  std::string rack_name;
  std::vector<std::string> rack_jobs;  ///< Jobs bound through this rack.
  std::chrono::steady_clock::time_point last_activity;
};

/// Session bookkeeping decoupled from the transport loop: owns the
/// fd -> NetSession map and the entire write path, so a daemon deals in
/// sessions and frames while the table deals in readiness and partial
/// writes.
///
/// Write coalescing: inside a Batch, queue_frame() only appends — every
/// touched session is flushed exactly once when the batch closes, so a
/// round that fans caps out to hundreds of sessions issues one write(2)
/// per session instead of one per frame. Outside a batch, queue_frame()
/// flushes immediately (the pre-coalescing behavior, kept for
/// registration replies and resends where latency beats batching).
///
/// A flush that hits a dead peer invokes on_dead_peer(fd); the owner is
/// expected to close the session (via remove()), record consequences,
/// and start its reclamation grace — the table never decides what a
/// disconnect means.
class SessionTable {
 public:
  using Clock = std::chrono::steady_clock;

  SessionTable(EventLoop& loop, std::function<void(int fd)> on_dead_peer);

  SessionTable(const SessionTable&) = delete;
  SessionTable& operator=(const SessionTable&) = delete;

  /// Registers the transport for POLLIN and returns its fd. `on_ready`
  /// receives (fd, revents) on readiness.
  int add(std::unique_ptr<Transport> transport,
          std::function<void(int fd, short revents)> on_ready);

  [[nodiscard]] NetSession* find(int fd);
  [[nodiscard]] bool contains(int fd) const;
  [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }

  /// Unregisters from the loop and erases the session, returning the
  /// transport so the owner can keep the peer's fd open until every
  /// consequence of the close has been recorded.
  std::unique_ptr<Transport> remove(int fd);

  /// Appends a frame to the session's outbox; flushes now, or at batch
  /// close when a Batch is open.
  void queue_frame(int fd, NetSession& session, std::string_view frame);
  /// Drives pending output (the POLLOUT path). May invoke on_dead_peer.
  void flush(int fd, NetSession& session);

  /// Sessions silent for longer than `idle_timeout`, oldest first.
  [[nodiscard]] std::vector<int> idle_fds(
      Clock::time_point now, std::chrono::milliseconds idle_timeout) const;

  /// Iteration (job-order determinism never depends on it; fd order is
  /// only used to collect candidates that are then re-found). Erasure
  /// must go through remove().
  [[nodiscard]] std::map<int, NetSession>& map() noexcept { return map_; }

  /// RAII write-coalescing scope. Nested batches collapse into the
  /// outermost one. The destructor flushes and may propagate an
  /// invariant failure raised while recording a dead peer's close —
  /// hence noexcept(false).
  class Batch {
   public:
    explicit Batch(SessionTable& table);
    ~Batch() noexcept(false);
    Batch(const Batch&) = delete;
    Batch& operator=(const Batch&) = delete;

   private:
    SessionTable& table_;
    bool engaged_;
  };

 private:
  void flush_pending();

  EventLoop& loop_;
  std::function<void(int fd)> on_dead_peer_;
  std::map<int, NetSession> map_;
  bool corked_ = false;
  std::vector<int> pending_flush_;
};

}  // namespace ps::net
