#include "net/session.hpp"

#include <poll.h>

#include <utility>

#include "util/error.hpp"

namespace ps::net {

SessionTable::SessionTable(EventLoop& loop,
                           std::function<void(int fd)> on_dead_peer)
    : loop_(loop), on_dead_peer_(std::move(on_dead_peer)) {
  PS_REQUIRE(on_dead_peer_ != nullptr, "dead-peer callback must be set");
}

int SessionTable::add(std::unique_ptr<Transport> transport,
                      std::function<void(int fd, short revents)> on_ready) {
  PS_REQUIRE(transport != nullptr && transport->valid(),
             "cannot add an invalid transport");
  PS_REQUIRE(on_ready != nullptr, "ready callback must be set");
  const int fd = transport->fd();
  NetSession session;
  session.transport = std::move(transport);
  session.last_activity = Clock::now();
  map_.emplace(fd, std::move(session));
  loop_.add_fd(fd, POLLIN, [on_ready = std::move(on_ready), fd](
                               short revents) { on_ready(fd, revents); });
  return fd;
}

NetSession* SessionTable::find(int fd) {
  const auto it = map_.find(fd);
  return it == map_.end() ? nullptr : &it->second;
}

bool SessionTable::contains(int fd) const {
  return map_.find(fd) != map_.end();
}

std::unique_ptr<Transport> SessionTable::remove(int fd) {
  const auto it = map_.find(fd);
  if (it == map_.end()) {
    return nullptr;
  }
  loop_.remove_fd(fd);
  std::unique_ptr<Transport> transport = std::move(it->second.transport);
  map_.erase(it);
  return transport;
}

void SessionTable::queue_frame(int fd, NetSession& session,
                               std::string_view frame) {
  session.outbox.append(frame);
  if (corked_) {
    pending_flush_.push_back(fd);
    return;
  }
  flush(fd, session);
}

void SessionTable::flush(int fd, NetSession& session) {
  while (!session.outbox.empty()) {
    const IoResult result = session.transport->write_some(session.outbox);
    if (result.status == IoStatus::kOk) {
      session.outbox.erase(0, result.bytes);
      continue;
    }
    if (result.status == IoStatus::kWouldBlock) {
      loop_.set_events(fd, POLLIN | POLLOUT);
      return;
    }
    on_dead_peer_(fd);
    return;
  }
  loop_.set_events(fd, POLLIN);
}

std::vector<int> SessionTable::idle_fds(
    Clock::time_point now, std::chrono::milliseconds idle_timeout) const {
  std::vector<int> expired;
  for (const auto& [fd, session] : map_) {
    if (now - session.last_activity > idle_timeout) {
      expired.push_back(fd);
    }
  }
  return expired;
}

void SessionTable::flush_pending() {
  // A flush may close sessions (erasing map entries) or queue follow-up
  // frames (repopulating pending_flush_), so drain by swapping and
  // re-finding every fd rather than holding iterators.
  while (!pending_flush_.empty()) {
    std::vector<int> fds;
    fds.swap(pending_flush_);
    for (const int fd : fds) {
      const auto it = map_.find(fd);
      if (it == map_.end() || it->second.outbox.empty()) {
        continue;  // closed meanwhile, or an earlier pass drained it
      }
      flush(fd, it->second);
    }
  }
}

SessionTable::Batch::Batch(SessionTable& table)
    : table_(table), engaged_(!table.corked_) {
  table.corked_ = true;
}

SessionTable::Batch::~Batch() noexcept(false) {
  if (!engaged_) {
    return;
  }
  table_.corked_ = false;
  table_.flush_pending();
}

}  // namespace ps::net
