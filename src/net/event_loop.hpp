#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <map>

#include "net/socket.hpp"

namespace ps::net {

/// A poll(2)-based single-threaded event loop: file-descriptor readiness
/// callbacks plus a periodic tick. The loop itself is not thread-safe —
/// everything except stop() must be called from the thread running it.
/// stop() may be called from any thread (or a signal-safe context via the
/// self-pipe) and wakes the loop immediately.
class EventLoop {
 public:
  /// Receives the poll() revents bits (POLLIN / POLLOUT / POLLHUP / ...).
  using FdCallback = std::function<void(short revents)>;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` for `events` (POLLIN and/or POLLOUT). A callback may
  /// add or remove registrations freely, including removing itself.
  void add_fd(int fd, short events, FdCallback callback);
  /// Changes the interest set of a registered fd.
  void set_events(int fd, short events);
  void remove_fd(int fd);
  [[nodiscard]] std::size_t watched_fds() const noexcept {
    return registrations_.size();
  }

  /// Installs a periodic callback; the poll timeout is derived from it.
  void set_tick(std::chrono::milliseconds interval,
                std::function<void()> on_tick);

  /// Runs poll cycles until stop(). Reentrant calls are invalid.
  void run();
  /// Runs at most one poll cycle, waiting up to `timeout` for activity
  /// (negative = until the next tick or forever). Returns false once the
  /// loop has been stopped.
  bool run_once(std::chrono::milliseconds timeout);
  /// Thread-safe: requests the loop to exit and wakes it.
  void stop();
  /// Thread-safe: wakes a blocked poll without stopping, so work queued
  /// from another thread is noticed promptly.
  void wake();
  [[nodiscard]] bool stopped() const noexcept {
    return stop_requested_.load(std::memory_order_acquire);
  }

 private:
  struct Registration {
    short events = 0;
    FdCallback callback;
  };

  void fire_tick_if_due();

  std::map<int, Registration> registrations_;
  std::chrono::milliseconds tick_interval_{0};
  std::function<void()> on_tick_;
  std::chrono::steady_clock::time_point next_tick_{};
  std::atomic<bool> stop_requested_{false};
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
};

}  // namespace ps::net
