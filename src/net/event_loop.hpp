#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <map>

#include "net/socket.hpp"

namespace ps::net {

/// Which readiness mechanism an EventLoop multiplexes with. kPoll is the
/// original poll(2) backend and the portable fallback; kEpoll uses a
/// level-triggered epoll(7) interest set, so a cycle costs O(ready fds)
/// instead of O(watched fds) — the difference between a flat daemon and
/// a 10k-session aggregator tree. Both backends present the identical
/// callback contract (poll-style revents bits), so everything built on
/// the seam runs unchanged on either.
enum class EventBackend { kPoll, kEpoll };

/// The construction-time default: the PS_EVENT_BACKEND environment
/// variable ("poll" / "epoll") wins when set; otherwise epoll on Linux
/// and poll everywhere else.
[[nodiscard]] EventBackend default_event_backend();
[[nodiscard]] const char* to_string(EventBackend backend) noexcept;

/// A single-threaded event loop: file-descriptor readiness callbacks
/// plus a periodic tick, multiplexed by the backend selected at
/// construction. The loop itself is not thread-safe — everything except
/// stop() must be called from the thread running it. stop() may be
/// called from any thread (or a signal-safe context via the self-pipe)
/// and wakes the loop immediately.
class EventLoop {
 public:
  /// Receives the poll() revents bits (POLLIN / POLLOUT / POLLHUP / ...)
  /// regardless of backend.
  using FdCallback = std::function<void(short revents)>;

  explicit EventLoop(EventBackend backend = default_event_backend());
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// The backend actually in use (kPoll when an epoll instance could not
  /// be created — epoll degrades to the fallback, never to a throw).
  [[nodiscard]] EventBackend backend() const noexcept { return backend_; }

  /// Registers `fd` for `events` (POLLIN and/or POLLOUT). A callback may
  /// add or remove registrations freely, including removing itself.
  void add_fd(int fd, short events, FdCallback callback);
  /// Changes the interest set of a registered fd.
  void set_events(int fd, short events);
  void remove_fd(int fd);
  [[nodiscard]] std::size_t watched_fds() const noexcept {
    return registrations_.size();
  }

  /// Installs a periodic callback; the wait timeout is derived from it.
  void set_tick(std::chrono::milliseconds interval,
                std::function<void()> on_tick);

  /// Runs cycles until stop(). Reentrant calls are invalid.
  void run();
  /// Runs at most one cycle, waiting up to `timeout` for activity
  /// (negative = until the next tick or forever). Returns false once the
  /// loop has been stopped.
  bool run_once(std::chrono::milliseconds timeout);
  /// Thread-safe: requests the loop to exit and wakes it.
  void stop();
  /// Thread-safe: wakes a blocked wait without stopping, so work queued
  /// from another thread is noticed promptly.
  void wake();
  [[nodiscard]] bool stopped() const noexcept {
    return stop_requested_.load(std::memory_order_acquire);
  }

 private:
  struct Registration {
    short events = 0;
    FdCallback callback;
  };

  void fire_tick_if_due();
  [[nodiscard]] int wait_timeout_ms(std::chrono::milliseconds timeout) const;
  void drain_wake_pipe();
  bool run_once_poll(std::chrono::milliseconds timeout);
  bool run_once_epoll(std::chrono::milliseconds timeout);
  /// epoll interest-set maintenance; no-ops on the poll backend (which
  /// rebuilds its pollfd array from registrations_ every cycle).
  void backend_add(int fd, short events);
  void backend_mod(int fd, short events);
  void backend_del(int fd) noexcept;

  EventBackend backend_ = EventBackend::kPoll;
  std::map<int, Registration> registrations_;
  std::chrono::milliseconds tick_interval_{0};
  std::function<void()> on_tick_;
  std::chrono::steady_clock::time_point next_tick_{};
  std::atomic<bool> stop_requested_{false};
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  int epoll_fd_ = -1;  ///< -1 on the poll backend.
};

}  // namespace ps::net
