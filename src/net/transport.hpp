#pragma once

#include <chrono>
#include <memory>
#include <string_view>

#include "net/socket.hpp"

namespace ps::net {

/// The byte-stream seam between the protocol machinery (daemon sessions,
/// RuntimeClient) and the wire. A Transport has the same non-blocking
/// contract as Socket — read/write never block, poll()-style waits do —
/// plus an fd() so the daemon's event loop can multiplex it.
///
/// The indirection exists so a decorator can sit between the protocol and
/// the kernel: fault::FaultyTransport injects seeded connection drops,
/// partial I/O, payload corruption, duplicated frames, and delays at this
/// layer, which is how every failure mode the daemon must survive becomes
/// reproducible from a seed.
class Transport {
 public:
  virtual ~Transport() = default;

  [[nodiscard]] virtual int fd() const noexcept = 0;
  [[nodiscard]] virtual bool valid() const noexcept = 0;
  virtual void close() noexcept = 0;

  /// Reads up to `max_bytes` into `out`. Never blocks.
  virtual IoResult read_some(char* out, std::size_t max_bytes) = 0;
  /// Writes as much of `bytes` as the peer accepts. Never blocks.
  virtual IoResult write_some(std::string_view bytes) = 0;

  /// poll()s for readability/writability. Returns false on timeout; a
  /// negative timeout means wait forever.
  [[nodiscard]] virtual bool wait_readable(
      std::chrono::milliseconds timeout) = 0;
  [[nodiscard]] virtual bool wait_writable(
      std::chrono::milliseconds timeout) = 0;
};

/// The production Transport: a thin pass-through over a connected Socket.
class SocketTransport final : public Transport {
 public:
  explicit SocketTransport(Socket socket) : socket_(std::move(socket)) {}

  [[nodiscard]] int fd() const noexcept override { return socket_.fd(); }
  [[nodiscard]] bool valid() const noexcept override {
    return socket_.valid();
  }
  void close() noexcept override { socket_.close(); }

  IoResult read_some(char* out, std::size_t max_bytes) override {
    return socket_.read_some(out, max_bytes);
  }
  IoResult write_some(std::string_view bytes) override {
    return socket_.write_some(bytes);
  }
  [[nodiscard]] bool wait_readable(
      std::chrono::milliseconds timeout) override {
    return socket_.wait_readable(timeout);
  }
  [[nodiscard]] bool wait_writable(
      std::chrono::milliseconds timeout) override {
    return socket_.wait_writable(timeout);
  }

 private:
  Socket socket_;
};

/// Convenience: wraps a connected socket in its production transport.
[[nodiscard]] std::unique_ptr<Transport> make_transport(Socket socket);

}  // namespace ps::net
