#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace ps::net {

/// Frames larger than this are treated as a protocol violation. A
/// 100k-host sample message is ~2 MB; 16 MB leaves an order of magnitude
/// of headroom while still bounding a malicious or corrupt length prefix.
inline constexpr std::size_t kMaxFrameBytes = 16u << 20;

/// Wraps a payload in the transport framing: a 4-byte big-endian length
/// prefix followed by the payload bytes. The endpoint wire format is
/// line-based text; the prefix is what lets a byte stream carry many
/// messages back to back without a sentinel.
[[nodiscard]] std::string encode_frame(std::string_view payload);

/// Incremental decoder for the other direction: feed it whatever the
/// socket produced, take complete frames out as they form. Tolerates
/// arbitrary fragmentation (a frame split across many reads, many frames
/// in one read). Throws ps::Error when a length prefix exceeds
/// `max_frame_bytes` — the connection is unrecoverable at that point
/// because the stream offset is no longer trustworthy.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_frame_bytes = kMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void feed(std::string_view bytes);

  /// Extracts the next complete frame's payload, or nullopt if more bytes
  /// are needed.
  [[nodiscard]] std::optional<std::string> next();

  /// Bytes buffered but not yet returned as frames.
  [[nodiscard]] std::size_t buffered_bytes() const noexcept {
    return buffer_.size();
  }

 private:
  std::size_t max_frame_bytes_;
  std::string buffer_;
};

}  // namespace ps::net
