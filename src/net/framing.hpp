#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace ps::net {

/// Frames larger than this are treated as a protocol violation. A
/// 100k-host sample message is ~2 MB; 16 MB leaves an order of magnitude
/// of headroom while still bounding a malicious or corrupt length prefix.
inline constexpr std::size_t kMaxFrameBytes = 16u << 20;

/// Bytes of framing overhead per message: a 4-byte big-endian length
/// prefix followed by a 4-byte big-endian CRC-32 of the payload.
inline constexpr std::size_t kFrameHeaderBytes = 8;

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320 polynomial) of `bytes`.
/// The framing checksum; also reused to guard daemon snapshots on disk.
[[nodiscard]] std::uint32_t crc32(std::string_view bytes);

/// Wraps a payload in the transport framing: a 4-byte big-endian length
/// prefix and a 4-byte big-endian CRC-32 of the payload, followed by the
/// payload bytes. The endpoint wire format is line-based text; the prefix
/// is what lets a byte stream carry many messages back to back without a
/// sentinel, and the checksum is what lets a receiver tell a corrupted
/// frame from a validly different one (the line grammar alone cannot: a
/// flipped digit still parses).
[[nodiscard]] std::string encode_frame(std::string_view payload);

/// Incremental decoder for the other direction: feed it whatever the
/// socket produced, take complete frames out as they form. Tolerates
/// arbitrary fragmentation (a frame split across many reads, many frames
/// in one read). Never allocates ahead of the bytes actually received, so
/// a hostile length prefix cannot balloon memory. Throws ps::Error when a
/// length prefix exceeds `max_frame_bytes` or a payload fails its CRC —
/// the connection is unrecoverable at that point because the stream
/// offset is no longer trustworthy.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_frame_bytes = kMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void feed(std::string_view bytes);

  /// Extracts the next complete frame's payload, or nullopt if more bytes
  /// are needed.
  [[nodiscard]] std::optional<std::string> next();

  /// Bytes buffered but not yet returned as frames.
  [[nodiscard]] std::size_t buffered_bytes() const noexcept {
    return buffer_.size();
  }

 private:
  std::size_t max_frame_bytes_;
  std::string buffer_;
};

}  // namespace ps::net
