#include "net/transport.hpp"

namespace ps::net {

std::unique_ptr<Transport> make_transport(Socket socket) {
  return std::make_unique<SocketTransport>(std::move(socket));
}

}  // namespace ps::net
