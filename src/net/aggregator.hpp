#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/endpoint.hpp"
#include "net/event_loop.hpp"
#include "net/framing.hpp"
#include "net/session.hpp"
#include "net/socket.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace ps::net {

struct AggregatorOptions {
  /// The rack this aggregator speaks for (required, one wire token).
  std::string rack;
  /// Connects (or reconnects) the upstream link to the parent daemon.
  /// Invoked from the loop thread; may return nullptr to signal "parent
  /// unreachable right now" (retried on the next tick).
  std::function<std::unique_ptr<Transport>()> parent_connector;

  /// Local launch barrier: no aggregate is forwarded until this many
  /// jobs have registered. Mirrors the daemon's min_jobs so a rack does
  /// not forward a half-assembled mix upward.
  std::size_t min_jobs = 1;
  std::chrono::milliseconds tick_interval{20};
  /// Local connections silent for longer than this are closed on a tick.
  std::chrono::milliseconds idle_timeout{30'000};
  /// Disconnect grace before a local job's seat is dropped from the
  /// aggregate (the root runs its own, longer grace on top).
  std::chrono::milliseconds reclaim_timeout{2'000};
  /// Readiness backend for the event loop (poll or epoll).
  EventBackend event_backend = default_event_backend();

  /// Server-side transport decorator applied to every accepted or
  /// adopted local connection (fault injection in tests).
  std::function<std::unique_ptr<Transport>(std::unique_ptr<Transport>)>
      transport_wrapper;

  /// Observability seam: "net.aggregator.*" counters, the per-level
  /// round-latency histogram, and fan-out gauges. Inert by default.
  obs::Observability obs{};
};

struct AggregatorStats {
  std::size_t sessions_accepted = 0;
  std::size_t sessions_closed = 0;
  std::size_t sessions_timed_out = 0;
  std::size_t samples_received = 0;
  std::size_t samples_stale = 0;      ///< Answered from the stored policy.
  std::size_t protocol_errors = 0;
  std::size_t jobs_evicted = 0;       ///< Local grace expiries.
  std::size_t rounds_forwarded = 0;   ///< Aggregate frames sent upward.
  std::size_t aggregate_resends = 0;  ///< Re-forwards (reconnect/stale).
  std::size_t policies_received = 0;  ///< Rack-policy frames from parent.
  std::size_t policies_fanned_out = 0;  ///< Per-job caps relayed down.
  std::size_t policies_resent = 0;    ///< Stored caps re-served locally.
  std::size_t budget_relays = 0;      ///< BudgetMessages relayed down.
  std::size_t parent_connects = 0;    ///< Successful upstream (re)connects.
  std::size_t parent_disconnects = 0;
  std::size_t jobs = 0;               ///< Local jobs currently seated.
  /// The rack budget granted by the parent's last rack-policy frame.
  double rack_budget_watts = 0.0;
  std::uint64_t budget_epoch = 0;     ///< Last relayed budget epoch.
};

/// Per-rack aggregation tier of the daemon tree: terminates its rack's
/// client sessions, batches their samples into one rack-aggregate frame
/// per round toward the parent (root) daemon, and fans the parent's
/// batched rack-policy reply back out as per-job caps.
///
/// The aggregator holds no power policy of its own — every watt decision
/// is the root's. What it owns is fan-in/fan-out mechanics:
///
///   1. A local client's first SampleMessage registers its job, exactly
///      as with a flat PowerDaemon (one live connection per job name,
///      reconnect-into-grace semantics).
///   2. When every seated job holds a fresh sample (and min_jobs is
///      met), the samples are serialized into one RackSampleMessage and
///      forwarded upstream. One aggregate frame is in flight at a time.
///   3. The parent's RackPolicyMessage is split back into per-job
///      PolicyMessages, each stored (for lost-reply resends) and relayed
///      to its client in one coalesced write per session.
///   4. BudgetMessages from the parent are relayed verbatim to every
///      registered client, and replayed to late registrants, so budget
///      epochs propagate through the tree unchanged.
///   5. A parent disconnect triggers reconnect-with-resend: the last
///      un-answered aggregate frame is sent again on the new link (the
///      root's stale-round handling answers duplicates idempotently).
///
/// run() serves the event loop on the calling thread; stop(), adopt()
/// and stats() are safe to call from other threads.
class AggregatorDaemon {
 public:
  explicit AggregatorDaemon(const AggregatorOptions& options);
  ~AggregatorDaemon();

  AggregatorDaemon(const AggregatorDaemon&) = delete;
  AggregatorDaemon& operator=(const AggregatorDaemon&) = delete;

  void listen_unix(const std::string& path);
  void listen_tcp(std::uint16_t port);
  [[nodiscard]] std::uint16_t tcp_port() const noexcept {
    return tcp_port_;
  }

  /// Adopts a pre-connected local client socket/transport. Thread-safe.
  void adopt(Socket socket);
  void adopt(std::unique_ptr<Transport> transport);

  /// Serves until stop(). Blocks the calling thread.
  void run();
  /// Thread-safe: makes run() return after the current cycle.
  void stop();

  [[nodiscard]] AggregatorStats stats() const;
  [[nodiscard]] const AggregatorOptions& options() const noexcept {
    return options_;
  }

 private:
  using Clock = std::chrono::steady_clock;

  /// A local job's seat. Like the daemon's JobRecord it outlives its
  /// connection (grace window), but stores the *parent's* last policy
  /// rather than computing one.
  struct LocalJob {
    core::SampleLatch latch;
    core::PolicyMessage last_policy;
    bool have_policy = false;
    int session_fd = -1;  ///< -1: disconnected (grace running).
    Clock::time_point disconnected_at{};
  };

  void add_session(std::unique_ptr<Transport> transport);
  void adopt_pending_transports();
  void on_listener_ready(std::size_t listener_index);
  void on_session_ready(int fd, short revents);
  void handle_client_frame(int fd, NetSession& session,
                           const std::string& payload);
  void close_session(int fd, bool protocol_error);
  void evict_job(const std::string& name);
  /// Forwards one aggregate frame when every seated job is fresh and no
  /// frame is awaiting its reply.
  void try_forward();
  /// (Re)establishes the upstream link; re-sends the outstanding
  /// aggregate if one is awaiting a reply.
  void ensure_parent(bool resend_outstanding);
  /// Drives the upstream outbox (non-blocking); drops the link on error.
  void flush_parent();
  void on_parent_ready(short revents);
  void handle_parent_frame(const std::string& payload);
  void handle_rack_policy(core::RackPolicyMessage policy);
  void relay_budget(const core::BudgetMessage& budget);
  void drop_parent();
  void queue_to_client(int fd, NetSession& session,
                       const core::PolicyMessage& message);
  void on_tick();

  AggregatorOptions options_;
  EventLoop loop_;
  std::vector<Listener> listeners_;
  SessionTable sessions_;
  /// Name-keyed: the aggregate frame's job order is the deterministic
  /// name order, matching the root's allocation order.
  std::map<std::string, LocalJob> jobs_;

  /// Upstream link. The parent is NOT a SessionTable session: its frames
  /// follow the client protocol (policies inbound), not the server one,
  /// and its loss is a reconnect trigger rather than a close.
  std::unique_ptr<Transport> parent_;
  FrameDecoder parent_decoder_;
  std::string parent_outbox_;
  bool launch_barrier_met_ = false;
  /// The last aggregate frame forwarded and whether its reply is still
  /// outstanding. Kept encoded so a reconnect can resend byte-identical.
  std::string last_aggregate_frame_;
  std::uint64_t last_forwarded_round_ = 0;
  bool in_flight_ = false;
  Clock::time_point forward_started_at_{};

  /// The budget state relayed from the parent, replayed to registrants.
  core::BudgetMessage last_budget_;
  bool have_budget_ = false;

  obs::Histogram* round_latency_ = nullptr;
  std::uint16_t tcp_port_ = 0;

  mutable std::mutex shared_mutex_;  ///< Guards stats_ and pending_.
  AggregatorStats stats_;
  std::vector<std::unique_ptr<Transport>> pending_adoptions_;
};

}  // namespace ps::net
