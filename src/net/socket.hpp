#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace ps::net {

/// Outcome of one non-blocking read or write.
enum class IoStatus {
  kOk,          ///< Some bytes moved.
  kWouldBlock,  ///< Nothing to do right now; retry after poll().
  kClosed,      ///< Peer closed (EOF / EPIPE / ECONNRESET).
};

struct IoResult {
  IoStatus status = IoStatus::kClosed;
  std::size_t bytes = 0;
};

/// Move-only RAII wrapper around a connected stream-socket fd. All
/// sockets handed out by this header are non-blocking; callers pair the
/// I/O calls with poll() (the event loop on the daemon side, the
/// wait_readable/wait_writable helpers on the client side).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }
  void close() noexcept;

  /// Reads up to `max_bytes` into `out`. Never blocks.
  IoResult read_some(char* out, std::size_t max_bytes);
  /// Writes as much of `bytes` as the kernel accepts. Never blocks, never
  /// raises SIGPIPE.
  IoResult write_some(std::string_view bytes);

  /// poll()s this fd for readability/writability. Returns false on
  /// timeout. A negative timeout means wait forever.
  [[nodiscard]] bool wait_readable(std::chrono::milliseconds timeout);
  [[nodiscard]] bool wait_writable(std::chrono::milliseconds timeout);

 private:
  int fd_ = -1;
};

/// A listening socket. For Unix-domain listeners the socket file is
/// unlinked when the listener is destroyed.
class Listener {
 public:
  Listener() = default;
  Listener(Socket socket, std::string unlink_path)
      : socket_(std::move(socket)), unlink_path_(std::move(unlink_path)) {}
  ~Listener();

  Listener(Listener&&) noexcept = default;
  Listener& operator=(Listener&&) noexcept;

  [[nodiscard]] bool valid() const noexcept { return socket_.valid(); }
  [[nodiscard]] int fd() const noexcept { return socket_.fd(); }

  /// Accepts one pending connection (already non-blocking), or nullopt
  /// when none is pending.
  [[nodiscard]] std::optional<Socket> accept();

 private:
  Socket socket_;
  std::string unlink_path_;
};

/// Binds a Unix-domain stream listener at `path` (any stale socket file
/// is replaced). Throws ps::Error on failure.
[[nodiscard]] Listener listen_unix(const std::string& path,
                                   int backlog = 64);

/// Binds a TCP listener on 127.0.0.1. `port` 0 picks an ephemeral port;
/// the port actually bound is returned through `bound_port`.
[[nodiscard]] Listener listen_tcp(std::uint16_t port,
                                  std::uint16_t* bound_port = nullptr,
                                  int backlog = 64);

/// Connects to a Unix-domain / local TCP listener. Throws ps::Error when
/// the peer is unreachable (the client's reconnect loop catches this).
[[nodiscard]] Socket connect_unix(const std::string& path);
[[nodiscard]] Socket connect_tcp(std::uint16_t port);

/// The loopback transport: an in-process connected socket pair (no
/// filesystem path, no port — tests and the simulator stay hermetic).
/// One end is adopted by the daemon, the other drives a RuntimeClient.
[[nodiscard]] std::pair<Socket, Socket> loopback_pair();

}  // namespace ps::net
