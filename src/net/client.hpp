#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/endpoint.hpp"
#include "net/framing.hpp"
#include "net/socket.hpp"
#include "net/transport.hpp"
#include "obs/obs.hpp"
#include "util/rng.hpp"

namespace ps::net {

struct ClientOptions {
  /// Total budget for one sample -> policy exchange, including any
  /// reconnect attempts it makes.
  std::chrono::milliseconds request_timeout{2'000};
  /// Reconnect backoff: doubles from initial to max, with +/- jitter so a
  /// fleet of agents does not hammer a restarting daemon in lockstep.
  std::chrono::milliseconds backoff_initial{20};
  std::chrono::milliseconds backoff_max{1'000};
  double backoff_jitter = 0.25;
  /// Seed for the jitter stream (deterministic per agent).
  std::uint64_t jitter_seed = 0x9e3779b97f4a7c15ULL;
  /// Consecutive failed connect attempts (one outage) after which the
  /// client stops dialing and latches daemon_lost() instead of retrying
  /// forever. 0 disables the cap. A successful connect ends the outage
  /// and resets the count. With an endpoint list the budget spans the
  /// whole list: an outage only counts as terminal when every endpoint
  /// has had its share of attempts.
  std::size_t max_connect_attempts_per_outage = 1'000;

  /// Failover policy (active only with more than one endpoint; a
  /// 1-element list behaves exactly like the single-connector client).
  /// Consecutive failed connects on the current endpoint before rotating
  /// to the next one in order — each retry still honours the jittered
  /// backoff schedule, so a fleet fails over without a thundering herd.
  /// 0 never rotates on connect failure.
  std::size_t connect_attempts_per_endpoint = 8;
  /// How long one endpoint may sit on an unanswered request before the
  /// client abandons it mid-exchange and rotates — the escape hatch from
  /// a fenced zombie primary that accepts samples but can no longer
  /// allocate. The exchange continues on the next endpoint within the
  /// same request_timeout. 0 disables mid-exchange rotation.
  std::chrono::milliseconds endpoint_probe_timeout{500};

  /// Observability seam. The client publishes metrics only — exchange
  /// round-trip latency ("net.client.exchange_seconds"), reconnect /
  /// stale-reply / stale-epoch counters — never trace events: its
  /// activity follows transport timing and has no deterministic clock.
  obs::Observability obs{};
};

struct ClientStats {
  std::size_t exchanges = 0;
  std::size_t exchange_failures = 0;  ///< Timed out / unreachable rounds.
  std::size_t connect_attempts = 0;
  std::size_t connect_failures = 0;
  std::size_t reconnects = 0;  ///< Successful connects after the first.
  std::size_t stale_replies = 0;
  std::size_t outages = 0;  ///< Transitions from connected to dialing.
  std::size_t budget_revisions = 0;    ///< BudgetMessages that advanced us.
  std::size_t budget_pushes_stale = 0; ///< BudgetMessages already known.
  std::size_t stale_epoch_caps = 0;    ///< Caps rejected: superseded budget.
  std::size_t endpoint_rotations = 0;  ///< Failovers to the next endpoint.
  std::size_t stale_fence_caps = 0;    ///< Caps rejected: fenced zombie.
  std::size_t probe_timeouts = 0;      ///< Mid-exchange endpoint abandons.
};

/// The runtime side of the daemon protocol: synchronous request/response
/// with a deadline. When the daemon is unreachable the client degrades
/// gracefully — exchange() returns nullopt, the caller keeps running on
/// its last-known caps (last_known_policy()), and subsequent exchanges
/// retry the connection under exponential backoff with jitter. An outage
/// that outlives max_connect_attempts_per_outage latches the terminal
/// daemon_lost() state: the client stops dialing (no more connect storms
/// against a decommissioned endpoint) until reset_daemon_lost().
class RuntimeClient {
 public:
  /// Produces a connected socket; throws ps::Error when the daemon is
  /// unreachable (e.g. a bound connect_unix / connect_tcp call).
  using Connector = std::function<Socket()>;
  /// Produces a connected transport — the seam where fault injection
  /// (fault::FaultyTransport) or any other decorator slots in.
  using TransportConnector = std::function<std::unique_ptr<Transport>()>;

  explicit RuntimeClient(Connector connector, ClientOptions options = {});
  explicit RuntimeClient(TransportConnector connector,
                         ClientOptions options = {});
  /// Ordered endpoint list (primary first, standbys after): the client
  /// dials endpoints in order and fails over mid-run under the rotation
  /// policy in ClientOptions, re-registering and resyncing its budget
  /// epoch on the new daemon. A 1-element list is exactly the
  /// single-connector client.
  explicit RuntimeClient(std::vector<TransportConnector> connectors,
                         ClientOptions options = {});

  /// Sends one sample and waits for the daemon's matching policy (a reply
  /// for this job with sequence >= the sample's; older replies are
  /// drained as stale). Returns nullopt when no policy arrived within
  /// request_timeout — the caller's cue to fall back.
  [[nodiscard]] std::optional<core::PolicyMessage> exchange(
      const core::SampleMessage& sample);

  /// The most recent policy ever received — the fallback caps.
  [[nodiscard]] const std::optional<core::PolicyMessage>& last_known_policy()
      const noexcept {
    return last_known_policy_;
  }
  /// The newest budget revision heard on the *current* connection. The
  /// epoch resets to 0 on every (re)connect — the daemon is the
  /// authority after an outage and resyncs the client on registration —
  /// and advances on each BudgetMessage or newer-tagged policy. Caps
  /// tagged with an older epoch than this are rejected as stale.
  [[nodiscard]] std::uint64_t session_budget_epoch() const noexcept {
    return session_budget_epoch_;
  }
  /// The last BudgetMessage ever received (survives reconnects; what a
  /// fallback caller should treat as its budget ceiling).
  [[nodiscard]] const std::optional<core::BudgetMessage>& last_budget()
      const noexcept {
    return last_budget_;
  }
  [[nodiscard]] bool connected() const noexcept {
    return transport_ != nullptr && transport_->valid();
  }
  /// The highest fencing epoch ever heard, across connections and
  /// endpoints — unlike the budget epoch it never resets: a daemon's
  /// identity claim can only ratchet up, so a zombie primary's caps
  /// (tagged with its superseded fence) are rejected forever.
  [[nodiscard]] std::uint64_t fence_epoch() const noexcept {
    return fence_epoch_;
  }
  /// Which endpoint of the ordered list the client is currently on.
  [[nodiscard]] std::size_t endpoint_index() const noexcept {
    return endpoint_index_;
  }
  [[nodiscard]] std::size_t endpoint_count() const noexcept {
    return connectors_.size();
  }
  [[nodiscard]] const ClientStats& stats() const noexcept { return stats_; }
  /// The delay the next failed connect attempt will impose.
  [[nodiscard]] std::chrono::milliseconds current_backoff() const noexcept {
    return backoff_;
  }

  /// Terminal state: the outage exceeded the per-outage connect budget.
  /// Every exchange() fails fast (no dialing) until reset_daemon_lost().
  [[nodiscard]] bool daemon_lost() const noexcept { return daemon_lost_; }
  /// Re-arms a daemon_lost() client (e.g. after operators repaired or
  /// re-pointed the endpoint). Resets the outage budget and backoff.
  void reset_daemon_lost() noexcept;

 private:
  using Clock = std::chrono::steady_clock;

  [[nodiscard]] std::optional<core::PolicyMessage> exchange_impl(
      const core::SampleMessage& sample);
  bool ensure_connected(Clock::time_point deadline);
  bool send_frame(const std::string& frame, Clock::time_point deadline);
  void drop_connection();
  void register_connect_failure();
  void rotate_endpoint();

  /// Cached instruments (owned by the registry in options_.obs); all null
  /// when the client is unobserved.
  obs::Counter* exchanges_metric_ = nullptr;
  obs::Counter* failures_metric_ = nullptr;
  obs::Counter* reconnects_metric_ = nullptr;
  obs::Counter* stale_replies_metric_ = nullptr;
  obs::Counter* stale_epoch_metric_ = nullptr;
  obs::Counter* revisions_metric_ = nullptr;
  obs::Counter* rotations_metric_ = nullptr;
  obs::Counter* stale_fence_metric_ = nullptr;
  obs::Histogram* exchange_seconds_ = nullptr;

  std::vector<TransportConnector> connectors_;
  std::size_t endpoint_index_ = 0;
  std::size_t attempts_this_endpoint_ = 0;
  ClientOptions options_;
  std::unique_ptr<Transport> transport_;
  FrameDecoder decoder_;
  std::optional<core::PolicyMessage> last_known_policy_;
  std::optional<core::BudgetMessage> last_budget_;
  std::uint64_t session_budget_epoch_ = 0;
  std::uint64_t fence_epoch_ = 0;  ///< Max ever heard; never resets.
  ClientStats stats_;
  std::chrono::milliseconds backoff_;
  Clock::time_point next_connect_attempt_{};
  bool ever_connected_ = false;
  bool in_outage_ = false;
  bool daemon_lost_ = false;
  std::size_t attempts_this_outage_ = 0;
  util::Rng jitter_rng_;
};

}  // namespace ps::net
