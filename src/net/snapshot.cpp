#include "net/snapshot.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "net/framing.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace ps::net {

namespace {

std::string format_exact(double value) {
  char buffer[32];
  const auto [ptr, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  PS_REQUIRE(ec == std::errc{}, "unencodable watt value");
  return std::string(buffer, ptr);
}

double parse_watts(std::string_view token, std::string_view what) {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  PS_REQUIRE(ec == std::errc{} && ptr == token.data() + token.size(),
             "non-numeric " + std::string(what) + " field");
  PS_REQUIRE(std::isfinite(value), std::string(what) + " must be finite");
  PS_REQUIRE(value >= 0.0, std::string(what) + " must be non-negative");
  return value;
}

std::uint64_t parse_u64(std::string_view token, std::string_view what) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  PS_REQUIRE(ec == std::errc{} && ptr == token.data() + token.size(),
             "non-numeric " + std::string(what) + " field");
  return value;
}

std::string_view expect_field(std::string_view line, std::string_view key) {
  PS_REQUIRE(util::starts_with(line, key),
             "expected '" + std::string(key) + "' line");
  return util::trim(line.substr(key.size()));
}

}  // namespace

double DaemonSnapshot::allocated_watts() const {
  double total = 0.0;
  for (const SnapshotJob& job : jobs) {
    for (const double cap : job.caps_watts) {
      total += cap;
    }
    for (const double cap : job.gpu_caps_watts) {
      total += cap;
    }
  }
  return total;
}

std::string serialize(const DaemonSnapshot& snapshot) {
  bool any_gpu = false;
  for (const SnapshotJob& job : snapshot.jobs) {
    if (!job.gpu_caps_watts.empty()) {
      any_gpu = true;
      break;
    }
  }
  // v4 (a control plane that has failed over at least once) fixes the
  // job block at the four-line v3 form regardless of GPU presence.
  const bool v4 = snapshot.fence_epoch > 0;
  if (v4) {
    any_gpu = true;
  }
  std::ostringstream out;
  out << (v4        ? "powerstack-snapshot v4\n"
          : any_gpu ? "powerstack-snapshot v3\n"
                    : "powerstack-snapshot v2\n");
  out << "budget " << format_exact(snapshot.system_budget_watts) << '\n';
  out << "budget_epoch " << snapshot.budget_epoch << '\n';
  if (v4) {
    out << "fence " << snapshot.fence_epoch << '\n';
  }
  out << "barrier " << (snapshot.launch_barrier_met ? 1 : 0) << '\n';
  out << "allocations " << snapshot.allocations << '\n';
  out << "jobs " << snapshot.jobs.size() << '\n';
  for (const SnapshotJob& job : snapshot.jobs) {
    out << "job " << job.name << '\n';
    out << "sequence " << job.sequence << '\n';
    out << "caps";
    for (const double cap : job.caps_watts) {
      out << ' ' << format_exact(cap);
    }
    out << '\n';
    if (any_gpu) {
      // v3 keeps the per-job line count fixed: single-domain jobs of a
      // mixed cluster write a bare `gpu_caps` line.
      out << "gpu_caps";
      for (const double cap : job.gpu_caps_watts) {
        out << ' ' << format_exact(cap);
      }
      out << '\n';
    }
  }
  std::string body = out.str();
  char checksum[32];  // "checksum " + 8 hex digits + '\n' + NUL = 20 bytes
  std::snprintf(checksum, sizeof(checksum), "checksum %08x\n",
                crc32(body));
  body += checksum;
  return body;
}

DaemonSnapshot parse_snapshot(std::string_view text) {
  std::vector<std::string> lines;
  for (const std::string& line : util::split(text, '\n')) {
    if (!util::trim(line).empty()) {
      lines.push_back(line);
    }
  }
  PS_REQUIRE(lines.size() >= 6, "snapshot is truncated");

  // The checksum line guards everything before it, byte for byte.
  const std::string& last = lines.back();
  const std::string_view checksum_token = expect_field(last, "checksum ");
  const std::size_t body_end = text.rfind("checksum ");
  PS_REQUIRE(body_end != std::string_view::npos, "missing checksum line");
  std::uint32_t expected = 0;
  {
    const auto [ptr, ec] = std::from_chars(
        checksum_token.data(),
        checksum_token.data() + checksum_token.size(), expected, 16);
    PS_REQUIRE(ec == std::errc{} &&
                   ptr == checksum_token.data() + checksum_token.size(),
               "non-hex checksum field");
  }
  PS_REQUIRE(crc32(text.substr(0, body_end)) == expected,
             "snapshot checksum mismatch (torn or corrupted write)");

  const bool v4 = lines[0] == "powerstack-snapshot v4";
  const bool v3 = v4 || lines[0] == "powerstack-snapshot v3";
  const bool v2 = v3 || lines[0] == "powerstack-snapshot v2";
  PS_REQUIRE(v2 || lines[0] == "powerstack-snapshot v1",
             "not a v1/v2/v3/v4 snapshot");
  DaemonSnapshot snapshot;
  snapshot.system_budget_watts =
      parse_watts(expect_field(lines[1], "budget "), "budget");
  PS_REQUIRE(snapshot.system_budget_watts > 0.0,
             "snapshot budget must be positive");
  std::size_t next = 2;
  if (v2) {
    snapshot.budget_epoch = parse_u64(
        expect_field(lines[next], "budget_epoch "), "budget_epoch");
    ++next;
  }
  if (v4) {
    snapshot.fence_epoch =
        parse_u64(expect_field(lines[next], "fence "), "fence");
    PS_REQUIRE(snapshot.fence_epoch != 0,
               "v4 snapshot fence must be non-zero");
    ++next;
  }
  const std::string_view barrier = expect_field(lines[next], "barrier ");
  PS_REQUIRE(barrier == "0" || barrier == "1", "barrier must be 0 or 1");
  snapshot.launch_barrier_met = barrier == "1";
  ++next;
  snapshot.allocations =
      parse_u64(expect_field(lines[next], "allocations "), "allocations");
  ++next;
  const std::uint64_t job_count =
      parse_u64(expect_field(lines[next], "jobs "), "jobs");
  ++next;
  const std::uint64_t lines_per_job = v3 ? 4 : 3;
  PS_REQUIRE(lines.size() == next + 1 + lines_per_job * job_count,
             "snapshot job count disagrees with its body");

  std::set<std::string> seen;
  for (std::uint64_t j = 0; j < job_count; ++j) {
    const std::size_t base = next + lines_per_job * j;
    SnapshotJob job;
    job.name = std::string(expect_field(lines[base], "job "));
    PS_REQUIRE(!job.name.empty(), "empty job name");
    PS_REQUIRE(seen.insert(job.name).second,
               "duplicate job '" + job.name + "' in snapshot");
    job.sequence =
        parse_u64(expect_field(lines[base + 1], "sequence "), "sequence");
    const std::string_view caps = expect_field(lines[base + 2], "caps");
    for (const std::string& token : util::split(caps, ' ')) {
      if (!token.empty()) {
        job.caps_watts.push_back(parse_watts(token, "caps"));
      }
    }
    PS_REQUIRE(!job.caps_watts.empty(),
               "job '" + job.name + "' has no caps");
    if (v3) {
      const std::string_view gpu_caps =
          expect_field(lines[base + 3], "gpu_caps");
      for (const std::string& token : util::split(gpu_caps, ' ')) {
        if (!token.empty()) {
          job.gpu_caps_watts.push_back(parse_watts(token, "gpu_caps"));
        }
      }
      PS_REQUIRE(job.gpu_caps_watts.empty() ||
                     job.gpu_caps_watts.size() == job.caps_watts.size(),
                 "job '" + job.name +
                     "' GPU caps disagree with its host count");
    }
    snapshot.jobs.push_back(std::move(job));
  }
  return snapshot;
}

void save_snapshot(const std::string& path,
                   const DaemonSnapshot& snapshot) {
  PS_REQUIRE(!path.empty(), "snapshot path must not be empty");
  const std::string body = serialize(snapshot);
  const std::string temp = path + ".tmp";
  {
    const int fd = ::open(temp.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
    if (fd < 0) {
      throw Error("cannot open snapshot temp file " + temp);
    }
    std::size_t written = 0;
    while (written < body.size()) {
      const ssize_t n =
          ::write(fd, body.data() + written, body.size() - written);
      if (n < 0) {
        ::close(fd);
        ::unlink(temp.c_str());
        throw Error("cannot write snapshot temp file " + temp);
      }
      written += static_cast<std::size_t>(n);
    }
    // The rename below is only atomic on durable contents.
    ::fsync(fd);
    ::close(fd);
  }
  if (::rename(temp.c_str(), path.c_str()) != 0) {
    ::unlink(temp.c_str());
    throw Error("cannot rename snapshot into place at " + path);
  }
}

std::optional<DaemonSnapshot> load_snapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return std::nullopt;
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  try {
    return parse_snapshot(contents.str());
  } catch (const Error&) {
    return std::nullopt;  // corrupt snapshot: restart cold, do not crash
  }
}

}  // namespace ps::net
