#include "net/daemon.hpp"

#include <poll.h>

#include <algorithm>
#include <iterator>
#include <utility>

#include "core/degradation.hpp"
#include "core/invariants.hpp"
#include "net/snapshot.hpp"
#include "obs/replay.hpp"
#include "rm/allocation.hpp"
#include "rm/power_manager.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace ps::net {

namespace {

/// Round-latency bucket edges (seconds): sub-millisecond loopback rounds
/// through multi-second stalls.
constexpr double kRoundLatencyBounds[] = {0.0005, 0.001, 0.002, 0.005,
                                          0.01,   0.02,  0.05,  0.1,
                                          0.25,   0.5,   1.0,   2.5,
                                          5.0};

}  // namespace

PowerDaemon::PowerDaemon(const DaemonOptions& options)
    : options_(options),
      policy_(core::make_policy(options.policy)),
      loop_(options.event_backend),
      sessions_(loop_,
                [this](int fd) { close_session(fd, /*protocol_error=*/false); }) {
  PS_REQUIRE(options.system_budget_watts > 0.0,
             "system budget must be positive");
  PS_REQUIRE(options.min_jobs > 0, "launch barrier needs at least one job");
  PS_REQUIRE(options.tick_interval.count() > 0,
             "tick interval must be positive");
  PS_REQUIRE(options.reclaim_timeout.count() >= 0,
             "reclaim timeout must be non-negative");
  PS_REQUIRE(options.heartbeat_timeout.count() > 0,
             "heartbeat timeout must be positive");
  PS_REQUIRE(options.quarantine_errors > 0,
             "quarantine threshold must be positive");
  for (std::size_t r = 0; r < options.budget_revisions.size(); ++r) {
    PS_REQUIRE(options.budget_revisions[r].budget_watts > 0.0,
               "scheduled budget revision must be positive");
    PS_REQUIRE(r == 0 || options.budget_revisions[r - 1].at_epoch <=
                             options.budget_revisions[r].at_epoch,
               "scheduled budget revisions must be sorted by at_epoch");
  }
  budget_watts_ = options.system_budget_watts;
  fence_epoch_ = options.fence_epoch;
  if (options_.initial_state) {
    // A promoted standby boots over the replicated state it applied —
    // the in-memory analogue of a disk-snapshot restore, with the same
    // authority rules.
    restore_state(*options_.initial_state);
  } else {
    restore_from_snapshot();
  }
  stats_.budget_watts = budget_watts_;
  stats_.budget_epoch = budget_epoch_;
  stats_.fence_epoch = fence_epoch_;
  if (options_.obs.metrics != nullptr) {
    round_latency_ = &options_.obs.metrics->histogram(
        "net.daemon.round_seconds", kRoundLatencyBounds);
  }
  loop_.set_tick(options_.tick_interval, [this] { on_tick(); });
}

PowerDaemon::~PowerDaemon() = default;

void PowerDaemon::restore_from_snapshot() {
  if (options_.snapshot_path.empty()) {
    return;
  }
  const auto snapshot = load_snapshot(options_.snapshot_path);
  if (!snapshot) {
    return;  // no snapshot (or a corrupt one): cold start
  }
  restore_state(*snapshot);
}

void PowerDaemon::restore_state(const DaemonSnapshot& snapshot) {
  if (snapshot.budget_epoch > 0) {
    // The budget was renegotiated before the crash. The snapshot is the
    // authority: restoring the configured budget would resurrect a
    // pre-brownout envelope the clients already heard revoked.
    budget_watts_ = snapshot.system_budget_watts;
    budget_epoch_ = snapshot.budget_epoch;
    // Scheduled revisions the previous incarnation already adopted must
    // not replay (their epochs are not newer).
    while (next_scheduled_revision_ < options_.budget_revisions.size() &&
           options_.budget_revisions[next_scheduled_revision_].epoch <=
               budget_epoch_) {
      ++next_scheduled_revision_;
    }
  } else if (snapshot.system_budget_watts != options_.system_budget_watts) {
    // The persisted caps were computed under a different facility budget;
    // restoring them could violate the new one. Cold start instead.
    return;
  }
  // A restart of a once-promoted daemon must not regress its fence: the
  // highest fence its clients ratcheted is the persisted one.
  fence_epoch_ = std::max(fence_epoch_, snapshot.fence_epoch);
  launch_barrier_met_ = snapshot.launch_barrier_met;
  allocation_epoch_base_ = snapshot.allocations;
  const auto now = Clock::now();
  for (const SnapshotJob& job : snapshot.jobs) {
    JobRecord record;
    record.last_caps_watts = job.caps_watts;
    record.last_gpu_caps_watts = job.gpu_caps_watts;
    record.last_sequence = job.sequence;
    record.have_policy = true;
    record.session_fd = -1;
    record.disconnected_at = now;  // the grace clock starts at boot
    jobs_.emplace(job.name, std::move(record));
    ++stats_.jobs_restored;
  }
  options_.obs.count("net.daemon.jobs_restored", snapshot.jobs.size());
  options_.obs.emit(
      allocation_epoch_base_, obs::cat::kDaemon, "restore",
      {{"jobs", static_cast<std::uint64_t>(snapshot.jobs.size())},
       {"budget_watts", budget_watts_},
       {"budget_epoch", budget_epoch_}});
}

std::uint64_t PowerDaemon::completed_rounds() const {
  const std::lock_guard<std::mutex> lock(shared_mutex_);
  return allocation_epoch_base_ + stats_.allocations;
}

void PowerDaemon::listen_unix(const std::string& path) {
  listeners_.push_back(net::listen_unix(path));
  const std::size_t index = listeners_.size() - 1;
  loop_.add_fd(listeners_.back().fd(), POLLIN,
               [this, index](short) { on_listener_ready(index); });
}

void PowerDaemon::listen_tcp(std::uint16_t port) {
  listeners_.push_back(net::listen_tcp(port, &tcp_port_));
  const std::size_t index = listeners_.size() - 1;
  loop_.add_fd(listeners_.back().fd(), POLLIN,
               [this, index](short) { on_listener_ready(index); });
}

void PowerDaemon::adopt(Socket socket) {
  PS_REQUIRE(socket.valid(), "cannot adopt an invalid socket");
  adopt(make_transport(std::move(socket)));
}

void PowerDaemon::adopt(std::unique_ptr<Transport> transport) {
  PS_REQUIRE(transport != nullptr && transport->valid(),
             "cannot adopt an invalid transport");
  {
    const std::lock_guard<std::mutex> lock(shared_mutex_);
    pending_adoptions_.push_back(std::move(transport));
  }
  loop_.wake();
}

void PowerDaemon::run() {
  adopt_pending_transports();
  apply_pending_revisions();
  while (loop_.run_once(std::chrono::milliseconds(-1))) {
    adopt_pending_transports();
    apply_pending_revisions();
  }
}

void PowerDaemon::stop() {
  loop_.stop();
}

void PowerDaemon::revise_budget(const core::BudgetRevision& revision) {
  PS_REQUIRE(revision.budget_watts > 0.0,
             "budget revision must be positive");
  {
    const std::lock_guard<std::mutex> lock(shared_mutex_);
    pending_revisions_.push_back(revision);
  }
  loop_.wake();
}

void PowerDaemon::apply_pending_revisions() {
  std::vector<core::BudgetRevision> revisions;
  {
    const std::lock_guard<std::mutex> lock(shared_mutex_);
    revisions.swap(pending_revisions_);
  }
  for (const core::BudgetRevision& revision : revisions) {
    apply_revision(revision);
  }
}

void PowerDaemon::apply_revision(const core::BudgetRevision& revision) {
  if (revision.epoch <= budget_epoch_) {
    // A replayed or superseded revision: rejecting it (rather than
    // re-applying) is what makes delivery idempotent.
    {
      const std::lock_guard<std::mutex> lock(shared_mutex_);
      ++stats_.budget_revisions_stale;
    }
    options_.obs.count("net.daemon.revisions_stale");
    options_.obs.emit(revision.at_epoch, obs::cat::kDaemon, "revision",
                      {{"revision_epoch", revision.epoch},
                       {"budget_watts", revision.budget_watts},
                       {"applied", false}});
    return;
  }
  budget_watts_ = revision.budget_watts;
  budget_epoch_ = revision.epoch;
  {
    const std::lock_guard<std::mutex> lock(shared_mutex_);
    ++stats_.budget_revisions_applied;
    stats_.budget_watts = budget_watts_;
    stats_.budget_epoch = budget_epoch_;
  }
  options_.obs.count("net.daemon.revisions_applied");
  options_.obs.emit(revision.at_epoch, obs::cat::kDaemon, "revision",
                    {{"revision_epoch", revision.epoch},
                     {"budget_watts", revision.budget_watts},
                     {"applied", true}});
  clamp_stored_caps();
  push_budget_to_sessions();
  // The revised budget must survive a restart: persist before any
  // further reply can leave under the new epoch.
  maybe_write_snapshot();
}

void PowerDaemon::push_budget_to_sessions() {
  core::BudgetMessage message;
  message.epoch = budget_epoch_;
  message.budget_watts = budget_watts_;
  const std::string frame = encode_frame(
      serialize(message, core::WireFidelity::kExact));
  std::vector<int> fds;
  fds.reserve(sessions_.size());
  for (const auto& [fd, session] : sessions_.map()) {
    if (session.registered) {
      fds.push_back(fd);
    }
  }
  std::size_t pushed = 0;
  {
    // Coalesce: one flush per session once every push is queued; a dead
    // peer is closed when the batch drains, never mid-collection.
    const SessionTable::Batch batch(sessions_);
    for (const int fd : fds) {
      NetSession* session = sessions_.find(fd);
      if (session == nullptr) {
        continue;  // closed since collection
      }
      sessions_.queue_frame(fd, *session, frame);
      ++pushed;
    }
  }
  const std::lock_guard<std::mutex> lock(shared_mutex_);
  stats_.budget_pushes += pushed;
}

void PowerDaemon::clamp_stored_caps() {
  // Gather every job's stored caps; if together they no longer fit the
  // revised budget, scale them onto it (shape-preserving, never below
  // the job's settable floor) so a resend or a snapshot restore cannot
  // reprogram a superseded allocation.
  rm::PowerAllocation stored;
  std::vector<std::vector<double>> floors;
  std::vector<std::vector<double>> gpu_floors;
  std::vector<sim::SlaClass> classes;
  std::vector<std::string> names;
  std::size_t total_limits = 0;
  for (const auto& [name, record] : jobs_) {
    if (!record.have_policy) {
      continue;
    }
    const double floor =
        record.latch.latest() ? record.latch.latest()->min_settable_cap_watts
                              : 0.0;
    stored.job_host_caps.push_back(record.last_caps_watts);
    floors.emplace_back(record.last_caps_watts.size(), floor);
    // The GPU domain clamps against its own settable floor, never the
    // CPU one — the per-domain floor-preservation satellite.
    const double gpu_floor =
        record.latch.latest() ? record.latch.latest()->gpu_min_cap_watts : 0.0;
    stored.job_host_gpu_caps.push_back(record.last_gpu_caps_watts);
    gpu_floors.emplace_back(record.last_gpu_caps_watts.size(), gpu_floor);
    classes.push_back(record.latch.latest() ? record.latch.latest()->sla_class
                                            : sim::SlaClass::kStandard);
    names.push_back(name);
    total_limits +=
        record.last_caps_watts.size() + record.last_gpu_caps_watts.size();
  }
  if (names.empty()) {
    return;
  }
  const double tolerance = 0.5 * static_cast<double>(total_limits);
  if (stored.total_watts() <= budget_watts_ + tolerance) {
    return;  // the allocation still fits; nothing to clamp
  }
  const rm::PowerAllocation clamped = rm::clamp_allocation_to_budget(
      stored, floors, budget_watts_, gpu_floors, classes);
  for (std::size_t j = 0; j < names.size(); ++j) {
    jobs_.at(names[j]).last_caps_watts = clamped.job_host_caps[j];
    jobs_.at(names[j]).last_gpu_caps_watts = clamped.job_host_gpu_caps[j];
  }
  const std::lock_guard<std::mutex> lock(shared_mutex_);
  ++stats_.emergency_clamps;
}

DaemonStats PowerDaemon::stats() const {
  const std::lock_guard<std::mutex> lock(shared_mutex_);
  return stats_;
}

void PowerDaemon::adopt_pending_transports() {
  std::vector<std::unique_ptr<Transport>> adopted;
  {
    const std::lock_guard<std::mutex> lock(shared_mutex_);
    adopted.swap(pending_adoptions_);
  }
  for (std::unique_ptr<Transport>& transport : adopted) {
    add_session(std::move(transport));
  }
}

void PowerDaemon::add_session(std::unique_ptr<Transport> transport) {
  if (options_.transport_wrapper) {
    transport = options_.transport_wrapper(std::move(transport));
    PS_REQUIRE(transport != nullptr && transport->valid(),
               "transport wrapper returned an invalid transport");
  }
  sessions_.add(std::move(transport), [this](int fd, short revents) {
    on_session_ready(fd, revents);
  });
  {
    const std::lock_guard<std::mutex> lock(shared_mutex_);
    ++stats_.sessions_accepted;
  }
  options_.obs.count("net.daemon.sessions_accepted");
  options_.obs.emit(completed_rounds(), obs::cat::kNetIo, "session_accepted");
}

void PowerDaemon::on_listener_ready(std::size_t listener_index) {
  while (auto socket = listeners_[listener_index].accept()) {
    add_session(make_transport(std::move(*socket)));
  }
}

void PowerDaemon::close_session(int fd, bool protocol_error) {
  NetSession* session = sessions_.find(fd);
  if (session == nullptr) {
    return;  // idempotent: double-close (e.g. close during flush) no-ops
  }
  const bool registered = session->registered;
  const std::string job_name = session->job_name;
  const bool is_rack = session->is_rack;
  const std::vector<std::string> rack_jobs = session->rack_jobs;
  // The peer observes EOF the moment the fd closes, so keep the
  // transport alive until every consequence of this close (protocol
  // error attribution, quarantine, eviction) is recorded: a stats()
  // reader who saw the disconnect must see final counters.
  const std::unique_ptr<Transport> transport = sessions_.remove(fd);
  {
    const std::lock_guard<std::mutex> lock(shared_mutex_);
    ++stats_.sessions_closed;
    if (protocol_error) {
      ++stats_.protocol_errors;
    }
    if (is_rack && stats_.rack_sessions > 0) {
      --stats_.rack_sessions;
    }
  }
  options_.obs.count("net.daemon.sessions_closed");
  options_.obs.emit(completed_rounds(), obs::cat::kNetIo, "session_closed",
                    {{"job", job_name}, {"protocol_error", protocol_error}});

  bool quarantined = false;
  if (registered && !is_rack) {
    const auto jit = jobs_.find(job_name);
    // The fd guard keeps a stale close (a late error on a connection the
    // job already replaced) from detaching the job's live session.
    if (jit != jobs_.end() && jit->second.session_fd == fd) {
      JobRecord& record = jit->second;
      record.session_fd = -1;
      record.disconnected_at = Clock::now();
      if (protocol_error) {
        ++record.protocol_errors;
        if (record.protocol_errors >= options_.quarantine_errors) {
          record_quarantine(job_name,
                            Clock::now() + options_.quarantine_period);
          {
            const std::lock_guard<std::mutex> lock(shared_mutex_);
            ++stats_.quarantines;
          }
          options_.obs.count("net.daemon.quarantines");
          options_.obs.emit(completed_rounds(), obs::cat::kNetIo,
                            "quarantine", {{"job", job_name}});
          evict_job(job_name);
          quarantined = true;
        }
      }
    }
  } else if (registered && is_rack) {
    // Every job the rack carried enters grace together; each is still
    // reclaimed exactly once (by the ordinary grace-expiry eviction) if
    // the aggregator does not reconnect in time. Rack protocol errors
    // are not attributed to individual jobs: an aggregator is trusted
    // infrastructure, and quarantining a whole rack's jobs for one bad
    // frame would amplify a transient fault into a mass eviction.
    const auto now = Clock::now();
    for (const std::string& name : rack_jobs) {
      const auto jit = jobs_.find(name);
      if (jit != jobs_.end() && jit->second.session_fd == fd) {
        jit->second.session_fd = -1;
        jit->second.disconnected_at = now;
      }
    }
  }
  transport->close();
  // Membership may have changed (a quarantined job frees its watts); a
  // disconnect within grace does not, but a pending round may now be
  // waiting only on jobs that can still answer.
  if (quarantined) {
    try_allocate();
  }
}

void PowerDaemon::record_quarantine(const std::string& name,
                                    Clock::time_point until) {
  quarantine_[name] = until;
  if (options_.max_quarantine_entries > 0) {
    while (quarantine_.size() > options_.max_quarantine_entries) {
      // Bounded bookkeeping: shed the entry closest to expiry — the one
      // whose bar was about to lift anyway — so an unbounded churn of
      // misbehaving client identities cannot grow this map forever.
      auto victim = quarantine_.begin();
      for (auto it = std::next(quarantine_.begin()); it != quarantine_.end();
           ++it) {
        if (it->second < victim->second) {
          victim = it;
        }
      }
      quarantine_.erase(victim);
      {
        const std::lock_guard<std::mutex> lock(shared_mutex_);
        ++stats_.quarantine_entries_dropped;
      }
      options_.obs.count("net.daemon.quarantine_entries_dropped");
    }
  }
  {
    const std::lock_guard<std::mutex> lock(shared_mutex_);
    stats_.quarantine_entries = quarantine_.size();
  }
  options_.obs.set_gauge("net.daemon.quarantine_entries",
                         static_cast<double>(quarantine_.size()));
}

void PowerDaemon::prune_quarantine(Clock::time_point now) {
  const std::size_t before = quarantine_.size();
  for (auto it = quarantine_.begin(); it != quarantine_.end();) {
    if (now >= it->second) {
      it = quarantine_.erase(it);  // served its time; forget the name
    } else {
      ++it;
    }
  }
  if (quarantine_.size() != before) {
    {
      const std::lock_guard<std::mutex> lock(shared_mutex_);
      stats_.quarantine_entries = quarantine_.size();
    }
    options_.obs.set_gauge("net.daemon.quarantine_entries",
                           static_cast<double>(quarantine_.size()));
  }
}

void PowerDaemon::evict_job(const std::string& name) {
  const auto it = jobs_.find(name);
  if (it == jobs_.end()) {
    return;  // idempotent: watts can only be returned once
  }
  double stored_before = 0.0;
  for (const auto& [job_name, job_record] : jobs_) {
    for (const double cap : job_record.last_caps_watts) {
      stored_before += cap;
    }
    for (const double cap : job_record.last_gpu_caps_watts) {
      stored_before += cap;
    }
  }
  const JobRecord record = std::move(it->second);
  jobs_.erase(it);

  if (record.session_fd >= 0) {
    NetSession* session = sessions_.find(record.session_fd);
    if (session != nullptr && session->is_rack) {
      // A rack session multiplexes many jobs: evicting one (heartbeat
      // stall, quarantine) must not sever the aggregator's link and take
      // the whole rack down with it. Unbind the job and keep serving the
      // rest of the rack.
      session->rack_jobs.erase(std::remove(session->rack_jobs.begin(),
                                           session->rack_jobs.end(), name),
                               session->rack_jobs.end());
    } else if (session != nullptr) {
      const std::unique_ptr<Transport> transport =
          sessions_.remove(record.session_fd);
      transport->close();
      const std::lock_guard<std::mutex> lock(shared_mutex_);
      ++stats_.sessions_closed;
    }
  }

  double reclaimed = 0.0;
  for (const double cap : record.last_caps_watts) {
    reclaimed += cap;
  }
  for (const double cap : record.last_gpu_caps_watts) {
    reclaimed += cap;
  }
  double stored_after = 0.0;
  for (const auto& [job_name, job_record] : jobs_) {
    for (const double cap : job_record.last_caps_watts) {
      stored_after += cap;
    }
    for (const double cap : job_record.last_gpu_caps_watts) {
      stored_after += cap;
    }
  }
  // Exactly-once reclamation in watt terms: the pool before the eviction
  // equals what the job freed plus what everyone else still holds.
  core::invariants::check_watts_conserved(stored_before, reclaimed,
                                          stored_after, 1e-9,
                                          "daemon.evict");
  {
    const std::lock_guard<std::mutex> lock(shared_mutex_);
    ++stats_.jobs_evicted;
    if (record.have_policy) {
      stats_.watts_reclaimed += reclaimed;
    }
    if (record.session_fd < 0 &&
        record.disconnected_at != Clock::time_point{}) {
      stats_.reclaim_seconds_total +=
          std::chrono::duration<double>(Clock::now() -
                                        record.disconnected_at)
              .count();
    }
  }
  options_.obs.count("net.daemon.jobs_evicted");
  options_.obs.emit(completed_rounds(), obs::cat::kNetIo, "evict",
                    {{"job", name},
                     {"watts_reclaimed", record.have_policy ? reclaimed : 0.0}});
  maybe_write_snapshot();
}

void PowerDaemon::on_session_ready(int fd, short revents) {
  {
    NetSession* session = sessions_.find(fd);
    if (session == nullptr) {
      return;
    }
    session->last_activity = Clock::now();

    if ((revents & POLLOUT) != 0) {
      sessions_.flush(fd, *session);
      session = sessions_.find(fd);
      if (session == nullptr) {
        return;  // flush hit a dead peer and closed the session
      }
    }
    if ((revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
      return;
    }

    char buffer[4096];
    for (;;) {
      const IoResult result =
          session->transport->read_some(buffer, sizeof(buffer));
      if (result.status == IoStatus::kWouldBlock) {
        break;
      }
      if (result.status == IoStatus::kClosed) {
        close_session(fd, /*protocol_error=*/false);
        return;
      }
      try {
        session->decoder.feed(std::string_view(buffer, result.bytes));
        while (auto payload = session->decoder.next()) {
          handle_frame(fd, *session, *payload);
          session = sessions_.find(fd);
          if (session == nullptr) {
            return;  // a resend hit a dead peer and closed this session
          }
        }
      } catch (const Error&) {
        // Oversized frame, checksum mismatch, or malformed message: the
        // stream offset can no longer be trusted, drop the connection.
        close_session(fd, /*protocol_error=*/true);
        return;
      }
    }
  }
  try_allocate();
}

void PowerDaemon::handle_frame(int fd, NetSession& session,
                               const std::string& payload) {
  const core::WireMessageKind kind = core::wire_message_kind(payload);
  if (kind == core::WireMessageKind::kRackSample) {
    PS_REQUIRE(options_.root_mode,
               "rack frames require a root-mode daemon");
    handle_rack_frame(fd, session, payload);
    return;
  }
  // Everything else must be a sample; parse_sample_message rejects the
  // rest (including rack frames on a flat daemon) as protocol errors.
  handle_sample_frame(fd, session, core::parse_sample_message(payload));
}

PowerDaemon::JobRecord& PowerDaemon::bind_job_record(
    int fd, const std::string& job_name) {
  const auto now = Clock::now();
  const auto quarantined = quarantine_.find(job_name);
  if (quarantined != quarantine_.end()) {
    if (now < quarantined->second) {
      {
        const std::lock_guard<std::mutex> lock(shared_mutex_);
        ++stats_.quarantine_rejections;
      }
      options_.obs.count("net.daemon.quarantine_rejections");
      throw InvalidArgument("job '" + job_name + "' is quarantined");
    }
    quarantine_.erase(quarantined);  // served its time
    {
      const std::lock_guard<std::mutex> lock(shared_mutex_);
      stats_.quarantine_entries = quarantine_.size();
    }
  }
  auto it = jobs_.find(job_name);
  if (it != jobs_.end()) {
    // A rack session re-binds its own jobs every round (fd already
    // bound); only a *different* live session is a registration clash.
    PS_REQUIRE(it->second.session_fd < 0 || it->second.session_fd == fd,
               "job '" + job_name + "' is already registered");
    if (it->second.session_fd != fd) {
      it->second.session_fd = fd;
      {
        const std::lock_guard<std::mutex> lock(shared_mutex_);
        ++stats_.sessions_rehydrated;
      }
      options_.obs.count("net.daemon.sessions_rehydrated");
      options_.obs.emit(completed_rounds(), obs::cat::kNetIo, "rehydrate",
                        {{"job", job_name}});
    }
  } else {
    JobRecord record;
    record.session_fd = fd;
    it = jobs_.emplace(job_name, std::move(record)).first;
  }
  return it->second;
}

void PowerDaemon::send_budget_resync(int fd, NetSession& session) {
  if (budget_epoch_ == 0) {
    return;
  }
  // Resync: a client registering (or reconnecting after an outage)
  // must hear the current budget epoch before any caps, or it would
  // reject them as stale / accept superseded ones.
  core::BudgetMessage budget;
  budget.epoch = budget_epoch_;
  budget.budget_watts = budget_watts_;
  sessions_.queue_frame(
      fd, session,
      encode_frame(serialize(budget, core::WireFidelity::kExact)));
  if (!sessions_.contains(fd)) {
    throw InvalidArgument("session closed during budget resync");
  }
  const std::lock_guard<std::mutex> lock(shared_mutex_);
  ++stats_.budget_pushes;
}

bool PowerDaemon::offer_sample(JobRecord& record, core::SampleMessage sample,
                               Clock::time_point now) {
  if (record.have_policy && record.last_sequence >= sample.sequence) {
    // A sequence the daemon already answered: the reply was lost (to a
    // drop, a corrupted frame, or a daemon restart). Resending the
    // stored caps — instead of re-running the round — keeps a retried
    // sample from tearing a round in half when its peers have moved on.
    {
      const std::lock_guard<std::mutex> lock(shared_mutex_);
      ++stats_.samples_received;
      ++stats_.samples_stale;
    }
    options_.obs.count("net.daemon.samples_stale");
    return true;
  }
  const bool accepted = record.latch.offer(std::move(sample));
  if (accepted) {
    // The heartbeat clock measures fresh-sample progress, not traffic: a
    // client looping on stale sequences must still stall-evict.
    record.last_sample_at = now;
  }
  {
    const std::lock_guard<std::mutex> lock(shared_mutex_);
    ++stats_.samples_received;
    if (!accepted) {
      ++stats_.samples_stale;
    }
  }
  if (!accepted) {
    options_.obs.count("net.daemon.samples_stale");
  }
  return false;
}

void PowerDaemon::handle_sample_frame(int fd, NetSession& session,
                                      core::SampleMessage sample) {
  PS_REQUIRE(!session.is_rack,
             "rack session sent a flat sample message");
  if (!session.registered) {
    bind_job_record(fd, sample.job_name);
    session.job_name = sample.job_name;
    session.registered = true;
    send_budget_resync(fd, session);
  } else {
    PS_REQUIRE(sample.job_name == session.job_name,
               "session is bound to job '" + session.job_name + "'");
  }
  JobRecord& record = jobs_.at(session.job_name);
  if (offer_sample(record, std::move(sample), Clock::now())) {
    resend_last_policy(fd, session, record);
  }
}

void PowerDaemon::handle_rack_frame(int fd, NetSession& session,
                                    const std::string& payload) {
  core::RackSampleMessage rack = core::parse_rack_sample_message(payload);
  if (!session.registered) {
    session.registered = true;
    session.is_rack = true;
    session.rack_name = rack.rack;
    {
      const std::lock_guard<std::mutex> lock(shared_mutex_);
      ++stats_.rack_sessions;
    }
    options_.obs.count("net.daemon.rack_sessions_registered");
    options_.obs.emit(completed_rounds(), obs::cat::kNetIo, "rack_register",
                      {{"rack", rack.rack}});
    send_budget_resync(fd, session);
  } else {
    PS_REQUIRE(session.is_rack, "flat session sent a rack frame");
    PS_REQUIRE(rack.rack == session.rack_name,
               "session is bound to rack '" + session.rack_name + "'");
  }

  const auto now = Clock::now();
  core::RackPolicyMessage resend;
  resend.rack = session.rack_name;
  for (core::SampleMessage& sample : rack.samples) {
    const std::string job_name = sample.job_name;
    JobRecord& record = bind_job_record(fd, job_name);
    if (std::find(session.rack_jobs.begin(), session.rack_jobs.end(),
                  job_name) == session.rack_jobs.end()) {
      session.rack_jobs.push_back(job_name);
    }
    if (offer_sample(record, std::move(sample), now)) {
      resend.policies.push_back(stored_policy(job_name, record));
    }
  }
  {
    const std::lock_guard<std::mutex> lock(shared_mutex_);
    ++stats_.rack_frames_received;
  }
  options_.obs.count("net.daemon.rack_frames_received");

  if (!resend.policies.empty()) {
    // Already-answered rounds (post-crash reconnects, lost replies) get
    // one batched resend of the stored caps, mirroring the flat path's
    // per-job resend.
    for (const core::PolicyMessage& policy : resend.policies) {
      resend.round = std::max(resend.round, policy.sequence);
      for (const double cap : policy.host_caps_watts) {
        resend.rack_budget_watts += cap;
      }
      for (const double cap : policy.host_gpu_caps_watts) {
        resend.rack_budget_watts += cap;
      }
    }
    {
      const std::lock_guard<std::mutex> lock(shared_mutex_);
      ++stats_.rack_policies_resent;
      stats_.policies_resent += resend.policies.size();
    }
    options_.obs.count("net.daemon.rack_policies_resent");
    sessions_.queue_frame(
        fd, session,
        encode_frame(serialize(resend, core::WireFidelity::kExact)));
  }
}

core::PolicyMessage PowerDaemon::stored_policy(
    const std::string& name, const JobRecord& record) const {
  core::PolicyMessage message;
  message.job_name = name;
  message.sequence = record.last_sequence;
  message.host_caps_watts = record.last_caps_watts;
  message.host_gpu_caps_watts = record.last_gpu_caps_watts;
  // Tag with the *current* renegotiation epoch: the stored caps are kept
  // valid under it (clamp_stored_caps runs on every revision), and an
  // untagged resend would read as epoch 0 — rejected as stale by any
  // client that has already heard a newer budget.
  message.budget_epoch = budget_epoch_;
  // The fence tag is deliberately this incarnation's own: a zombie
  // primary's resends carry its superseded fence, which is exactly what
  // lets a failed-over client refuse them.
  message.fence_epoch = fence_epoch_;
  return message;
}

void PowerDaemon::resend_last_policy(int fd, NetSession& session,
                                     JobRecord& record) {
  {
    const std::lock_guard<std::mutex> lock(shared_mutex_);
    ++stats_.policies_resent;
  }
  queue_message(fd, session, stored_policy(session.job_name, record));
}

void PowerDaemon::queue_message(int fd, NetSession& session,
                                const core::PolicyMessage& message) {
  sessions_.queue_frame(
      fd, session,
      encode_frame(serialize(message, core::WireFidelity::kExact)));
}

void PowerDaemon::try_allocate() {
  if (in_allocate_) {
    // A send from the round in flight closed a session and re-entered;
    // note it and let the outer call re-examine membership when done.
    allocate_again_ = true;
    return;
  }
  in_allocate_ = true;
  do {
    allocate_again_ = false;
    allocate_once();
  } while (allocate_again_);
  in_allocate_ = false;
}

void PowerDaemon::allocate_once() {
  if (jobs_.empty()) {
    return;
  }
  if (options_.fence_check && options_.fence_check()) {
    // Fenced: a promoted successor may exist, so computing new caps here
    // could double-grant the same watts. Stored-cap resends still answer
    // (tagged with this incarnation's now-stale fence, which failed-over
    // clients reject), but no new allocation leaves this daemon.
    {
      const std::lock_guard<std::mutex> lock(shared_mutex_);
      ++stats_.rounds_fenced;
    }
    options_.obs.count("net.daemon.rounds_fenced");
    return;
  }
  if (!launch_barrier_met_) {
    if (jobs_.size() < options_.min_jobs) {
      return;
    }
    launch_barrier_met_ = true;
    {
      const std::lock_guard<std::mutex> lock(shared_mutex_);
      ++stats_.launch_barriers;
    }
    options_.obs.emit(0, obs::cat::kDaemon, "barrier",
                      {{"jobs", static_cast<std::uint64_t>(jobs_.size())}});
  }
  for (const auto& [name, record] : jobs_) {
    if (!record.latch.has_fresh()) {
      return;  // wait until every job has reported this round
    }
  }
  // Round latency is measured from the barrier (last sample in) to the
  // last coalesced frame flushed: the daemon-side share of what a client
  // experiences as round-trip time at this level of the tree.
  const auto round_start = Clock::now();

  // jobs_ is keyed by name, so iteration order is the deterministic
  // job-name order: the allocation must not depend on fd values or
  // connection timing.
  std::vector<std::string> names;
  std::vector<core::SampleMessage> samples;
  names.reserve(jobs_.size());
  samples.reserve(jobs_.size());
  bool all_bootstrap = true;
  for (auto& [name, record] : jobs_) {
    names.push_back(name);
    samples.push_back(record.latch.consume());
    all_bootstrap = all_bootstrap && samples.back().sequence == 0;
  }

  // Adopt scheduled budget revisions due for this round. A revision
  // with at_epoch e maps to the round consuming sample sequence e + 1
  // (the in-memory loop's epoch-e RM step), so both executions see the
  // same budget at the same allocation.
  std::uint64_t round_sequence = 0;
  for (const core::SampleMessage& sample : samples) {
    round_sequence = std::max(round_sequence, sample.sequence);
  }
  while (next_scheduled_revision_ < options_.budget_revisions.size() &&
         options_.budget_revisions[next_scheduled_revision_].at_epoch <
             round_sequence) {
    core::invariants::check_epoch_monotone(
        budget_epoch_,
        options_.budget_revisions[next_scheduled_revision_].epoch,
        "daemon.scheduled_revision");
    apply_revision(options_.budget_revisions[next_scheduled_revision_]);
    ++next_scheduled_revision_;
  }

  std::size_t total_hosts = 0;
  std::size_t total_limits = 0;
  for (const core::SampleMessage& sample : samples) {
    total_hosts += sample.host_observed_watts.size();
    total_limits += sample.host_observed_watts.size() +
                    sample.host_gpu_needed_watts.size();
  }
  const double tolerance = 0.5 * static_cast<double>(total_limits);

  std::vector<core::PolicyMessage> messages(samples.size());
  bool round_clamped = false;
  if (all_bootstrap) {
    // Launch: every job starts from the uniform share of the budget,
    // exactly as the in-memory CoordinationLoop seeds itself. A
    // heterogeneous job's hosts split their share CPU:GPU by TDP ratio.
    const double share = budget_watts_ / static_cast<double>(total_hosts);
    for (std::size_t j = 0; j < samples.size(); ++j) {
      if (samples[j].has_gpu_domain()) {
        const double cpu_tdp = options_.node_tdp_watts;
        const double gpu_tdp = samples[j].gpu_tdp_watts;
        const double cpu_fraction = cpu_tdp / (cpu_tdp + gpu_tdp);
        messages[j].host_caps_watts.assign(
            samples[j].host_observed_watts.size(), share * cpu_fraction);
        messages[j].host_gpu_caps_watts.assign(
            samples[j].host_observed_watts.size(),
            share * (1.0 - cpu_fraction));
      } else {
        messages[j].host_caps_watts.assign(
            samples[j].host_observed_watts.size(), share);
      }
    }
  } else {
    const core::PolicyContext context = core::context_from_samples(
        budget_watts_, options_.node_tdp_watts, options_.uncappable_watts,
        samples);
    // The same class-ordered degradation step the in-memory loop runs on
    // its policy output — called with the identical context and budget,
    // so multi-tenant rounds stay watt-for-watt equal across transports.
    const rm::PowerAllocation allocation = core::apply_sla_degradation(
        context, policy_->allocate(context), budget_watts_, "daemon.degrade");
    if (policy_->is_system_aware() &&
        !allocation.within_budget(budget_watts_, tolerance)) {
      // A policy output a site would reject. If the stored caps still
      // fit (the pre-revision behavior) keep every job on them; if a
      // revision left even those over budget, emergency-clamp the
      // policy's output onto it rather than staying in excursion.
      {
        const std::lock_guard<std::mutex> lock(shared_mutex_);
        ++stats_.budget_violations;
      }
      options_.obs.count("net.daemon.budget_violations");
      options_.obs.emit(round_sequence, obs::cat::kDaemon, "violation",
                        {{"budget_watts", budget_watts_}});
      double stored_watts = 0.0;
      for (const auto& [name, record] : jobs_) {
        for (const double cap : record.last_caps_watts) {
          stored_watts += cap;
        }
        for (const double cap : record.last_gpu_caps_watts) {
          stored_watts += cap;
        }
      }
      if (stored_watts <= budget_watts_ + tolerance) {
        return;
      }
      std::vector<std::vector<double>> floors;
      floors.reserve(samples.size());
      for (const core::SampleMessage& sample : samples) {
        floors.emplace_back(sample.host_observed_watts.size(),
                            sample.min_settable_cap_watts);
      }
      // GPU floors mirror the shape of the policy's GPU output: each
      // domain scales toward its own settable floor under the clamp.
      std::vector<std::vector<double>> gpu_floors;
      gpu_floors.reserve(allocation.job_host_gpu_caps.size());
      for (std::size_t j = 0; j < allocation.job_host_gpu_caps.size(); ++j) {
        gpu_floors.emplace_back(allocation.job_host_gpu_caps[j].size(),
                                samples[j].gpu_min_cap_watts);
      }
      std::vector<sim::SlaClass> classes;
      classes.reserve(samples.size());
      for (const core::SampleMessage& sample : samples) {
        classes.push_back(sample.sla_class);
      }
      const rm::PowerAllocation clamped = rm::clamp_allocation_to_budget(
          allocation, floors, budget_watts_, gpu_floors, classes);
      for (std::size_t j = 0; j < samples.size(); ++j) {
        messages[j].host_caps_watts = clamped.job_host_caps[j];
        messages[j].host_gpu_caps_watts = clamped.job_gpu_caps(j);
      }
      round_clamped = true;
      options_.obs.count("net.daemon.emergency_clamps");
      const std::lock_guard<std::mutex> lock(shared_mutex_);
      ++stats_.emergency_clamps;
    } else {
      for (std::size_t j = 0; j < samples.size(); ++j) {
        messages[j].host_caps_watts = allocation.job_host_caps[j];
        messages[j].host_gpu_caps_watts = allocation.job_gpu_caps(j);
      }
    }
  }

  double round_watts = 0.0;
  double round_floors = 0.0;
  for (std::size_t j = 0; j < samples.size(); ++j) {
    messages[j].sequence = samples[j].sequence;
    messages[j].job_name = samples[j].job_name;
    messages[j].budget_epoch = budget_epoch_;
    messages[j].fence_epoch = fence_epoch_;
    JobRecord& record = jobs_.at(names[j]);
    record.last_caps_watts = messages[j].host_caps_watts;
    record.last_gpu_caps_watts = messages[j].host_gpu_caps_watts;
    record.last_sequence = messages[j].sequence;
    record.have_policy = true;
    for (const double cap : messages[j].host_caps_watts) {
      round_watts += cap;
    }
    for (const double cap : messages[j].host_gpu_caps_watts) {
      round_watts += cap;
    }
    round_floors += samples[j].min_settable_cap_watts *
                    static_cast<double>(messages[j].host_caps_watts.size());
    round_floors +=
        samples[j].gpu_min_cap_watts *
        static_cast<double>(messages[j].host_gpu_caps_watts.size());
  }
  if (all_bootstrap || policy_->is_system_aware()) {
    // The invariant the whole stack exists to hold: what this round
    // programs fits the budget in force (or, degenerately, the floors).
    core::invariants::check_caps_fit_budget(
        round_watts, std::max(budget_watts_, round_floors), total_limits,
        "daemon.allocate");
  }
  // The round's deterministic trace record, on the round-sequence clock:
  // round r here is coordination epoch r-1's RM step, and the caps carry
  // exact numeric fidelity — enough to replay the allocation watt-for-watt.
  if (options_.obs.tracing()) {
    for (std::size_t j = 0; j < messages.size(); ++j) {
      obs::TraceEvent event;
      event.tick = round_sequence;
      event.category = std::string(obs::cat::kDaemon);
      event.name = "caps";
      event.args.reserve(messages[j].host_caps_watts.size() + 2);
      event.args.push_back({"job", messages[j].job_name});
      event.args.push_back({"sequence", messages[j].sequence});
      for (std::size_t h = 0; h < messages[j].host_caps_watts.size(); ++h) {
        event.args.push_back(
            {obs::cap_key(h), messages[j].host_caps_watts[h]});
      }
      for (std::size_t h = 0; h < messages[j].host_gpu_caps_watts.size();
           ++h) {
        event.args.push_back(
            {obs::gpu_cap_key(h), messages[j].host_gpu_caps_watts[h]});
      }
      options_.obs.trace->emit(std::move(event));
    }
    options_.obs.emit(round_sequence, obs::cat::kDaemon, "round",
                      {{"round", round_sequence},
                       {"jobs", static_cast<std::uint64_t>(messages.size())},
                       {"budget_watts", budget_watts_},
                       {"budget_epoch", budget_epoch_},
                       {"allocated_watts", round_watts},
                       {"bootstrap", all_bootstrap},
                       {"emergency", round_clamped}});
  }
  options_.obs.count("net.daemon.allocations");
  {
    const std::lock_guard<std::mutex> lock(shared_mutex_);
    ++stats_.allocations;
  }
  // Write-ahead: persist the round before any reply can leave, so a
  // crash between send and restart rehydrates exactly the caps a client
  // may already have heard.
  maybe_write_snapshot();

  std::size_t sent = 0;
  std::size_t rack_frames = 0;
  std::size_t fanout_sessions = 0;
  {
    // Coalesce the whole round's fan-out: each session is flushed once
    // at batch close, so a round writes one frame run per peer instead
    // of one write(2) per policy.
    const SessionTable::Batch batch(sessions_);
    std::map<int, core::RackPolicyMessage> rack_replies;
    for (std::size_t j = 0; j < samples.size(); ++j) {
      const auto it = jobs_.find(names[j]);
      if (it == jobs_.end() || it->second.session_fd < 0) {
        continue;  // in grace: caps are stored, resent on reconnect
      }
      const int fd = it->second.session_fd;
      NetSession* session = sessions_.find(fd);
      if (session == nullptr) {
        continue;
      }
      if (session->is_rack) {
        // One batched rack-policy frame per aggregator, not one frame
        // per job: the rack budget it carries is the sum of its jobs'
        // caps, i.e. the rack's renegotiated share for this epoch.
        core::RackPolicyMessage& reply = rack_replies[fd];
        reply.rack = session->rack_name;
        reply.round = std::max(reply.round, messages[j].sequence);
        for (const double cap : messages[j].host_caps_watts) {
          reply.rack_budget_watts += cap;
        }
        for (const double cap : messages[j].host_gpu_caps_watts) {
          reply.rack_budget_watts += cap;
        }
        reply.policies.push_back(messages[j]);
      } else {
        queue_message(fd, *session, messages[j]);
        ++fanout_sessions;
      }
      ++sent;
    }
    for (auto& [fd, reply] : rack_replies) {
      NetSession* session = sessions_.find(fd);
      if (session == nullptr) {
        continue;  // closed while queueing its peers' frames
      }
      sessions_.queue_frame(
          fd, *session,
          encode_frame(serialize(reply, core::WireFidelity::kExact)));
      ++rack_frames;
      ++fanout_sessions;
    }
  }
  if (round_latency_ != nullptr) {
    round_latency_->observe(
        std::chrono::duration<double>(Clock::now() - round_start).count());
  }
  options_.obs.set_gauge("net.daemon.fanout",
                         static_cast<double>(fanout_sessions));
  options_.obs.set_gauge("net.daemon.racks",
                         static_cast<double>(rack_frames));
  const std::lock_guard<std::mutex> lock(shared_mutex_);
  stats_.policies_sent += sent;
  stats_.rack_policies_sent += rack_frames;
}

void PowerDaemon::maybe_write_snapshot() {
  if (options_.snapshot_path.empty() && !options_.replication_sink) {
    return;
  }
  DaemonSnapshot snapshot;
  snapshot.system_budget_watts = budget_watts_;
  snapshot.budget_epoch = budget_epoch_;
  snapshot.fence_epoch = fence_epoch_;
  snapshot.launch_barrier_met = launch_barrier_met_;
  {
    const std::lock_guard<std::mutex> lock(shared_mutex_);
    snapshot.allocations = allocation_epoch_base_ + stats_.allocations;
  }
  for (const auto& [name, record] : jobs_) {
    if (!record.have_policy) {
      continue;
    }
    SnapshotJob job;
    job.name = name;
    job.sequence = record.last_sequence;
    job.caps_watts = record.last_caps_watts;
    job.gpu_caps_watts = record.last_gpu_caps_watts;
    snapshot.jobs.push_back(std::move(job));
  }
  if (!options_.snapshot_path.empty()) {
    try {
      save_snapshot(options_.snapshot_path, snapshot);
      {
        const std::lock_guard<std::mutex> lock(shared_mutex_);
        ++stats_.snapshots_written;
      }
      options_.obs.count("net.daemon.snapshots_written");
      options_.obs.emit(
          snapshot.allocations, obs::cat::kDaemon, "snapshot",
          {{"jobs", static_cast<std::uint64_t>(snapshot.jobs.size())},
           {"budget_epoch", budget_epoch_}});
    } catch (const Error&) {
      // Disk trouble must degrade durability, never live coordination.
    }
  }
  if (options_.replication_sink) {
    // Same write-ahead point as the disk snapshot: the standby always
    // holds at least the state any client may already have heard.
    options_.replication_sink(snapshot);
    {
      const std::lock_guard<std::mutex> lock(shared_mutex_);
      ++stats_.replication_updates;
    }
    options_.obs.count("net.daemon.replication_updates");
  }
}

void PowerDaemon::on_tick() {
  adopt_pending_transports();
  apply_pending_revisions();
  const auto now = Clock::now();
  prune_quarantine(now);

  for (const int fd : sessions_.idle_fds(now, options_.idle_timeout)) {
    {
      const std::lock_guard<std::mutex> lock(shared_mutex_);
      ++stats_.sessions_timed_out;
    }
    close_session(fd, /*protocol_error=*/false);
  }

  std::vector<std::string> evictions;
  for (const auto& [name, record] : jobs_) {
    if (record.session_fd < 0 &&
        now - record.disconnected_at > options_.reclaim_timeout) {
      evictions.push_back(name);  // grace expired: reclaim the watts
    }
  }
  bool round_waiting = false;
  for (const auto& [name, record] : jobs_) {
    if (record.latch.has_fresh()) {
      round_waiting = true;
      break;
    }
  }
  if (round_waiting) {
    // A half-open peer (connected, never heard from again) only matters
    // when it is holding a round hostage; an idle-but-healthy mix
    // between epochs is not a liveness failure.
    for (const auto& [name, record] : jobs_) {
      if (record.session_fd >= 0 && !record.latch.has_fresh() &&
          record.last_sample_at != Clock::time_point{} &&
          now - record.last_sample_at > options_.heartbeat_timeout) {
        evictions.push_back(name);
      }
    }
  }
  for (const std::string& name : evictions) {
    evict_job(name);
  }
  try_allocate();
}

}  // namespace ps::net
