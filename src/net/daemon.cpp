#include "net/daemon.hpp"

#include <poll.h>

#include <algorithm>
#include <utility>

#include "rm/allocation.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace ps::net {

PowerDaemon::PowerDaemon(const DaemonOptions& options)
    : options_(options), policy_(core::make_policy(options.policy)) {
  PS_REQUIRE(options.system_budget_watts > 0.0,
             "system budget must be positive");
  PS_REQUIRE(options.min_jobs > 0, "launch barrier needs at least one job");
  PS_REQUIRE(options.tick_interval.count() > 0,
             "tick interval must be positive");
  loop_.set_tick(options_.tick_interval, [this] { on_tick(); });
}

PowerDaemon::~PowerDaemon() = default;

void PowerDaemon::listen_unix(const std::string& path) {
  listeners_.push_back(net::listen_unix(path));
  const std::size_t index = listeners_.size() - 1;
  loop_.add_fd(listeners_.back().fd(), POLLIN,
               [this, index](short) { on_listener_ready(index); });
}

void PowerDaemon::listen_tcp(std::uint16_t port) {
  listeners_.push_back(net::listen_tcp(port, &tcp_port_));
  const std::size_t index = listeners_.size() - 1;
  loop_.add_fd(listeners_.back().fd(), POLLIN,
               [this, index](short) { on_listener_ready(index); });
}

void PowerDaemon::adopt(Socket socket) {
  PS_REQUIRE(socket.valid(), "cannot adopt an invalid socket");
  {
    const std::lock_guard<std::mutex> lock(shared_mutex_);
    pending_adoptions_.push_back(std::move(socket));
  }
  loop_.wake();
}

void PowerDaemon::run() {
  adopt_pending_sockets();
  while (loop_.run_once(std::chrono::milliseconds(-1))) {
    adopt_pending_sockets();
  }
}

void PowerDaemon::stop() {
  loop_.stop();
}

DaemonStats PowerDaemon::stats() const {
  const std::lock_guard<std::mutex> lock(shared_mutex_);
  return stats_;
}

void PowerDaemon::adopt_pending_sockets() {
  std::vector<Socket> adopted;
  {
    const std::lock_guard<std::mutex> lock(shared_mutex_);
    adopted.swap(pending_adoptions_);
  }
  for (Socket& socket : adopted) {
    add_session(std::move(socket));
  }
}

void PowerDaemon::add_session(Socket socket) {
  const int fd = socket.fd();
  Session session;
  session.socket = std::move(socket);
  session.last_activity = std::chrono::steady_clock::now();
  sessions_.emplace(fd, std::move(session));
  loop_.add_fd(fd, POLLIN,
               [this, fd](short revents) { on_session_ready(fd, revents); });
  const std::lock_guard<std::mutex> lock(shared_mutex_);
  ++stats_.sessions_accepted;
}

void PowerDaemon::on_listener_ready(std::size_t listener_index) {
  while (auto socket = listeners_[listener_index].accept()) {
    add_session(std::move(*socket));
  }
}

void PowerDaemon::close_session(int fd, bool protocol_error) {
  loop_.remove_fd(fd);
  sessions_.erase(fd);
  {
    const std::lock_guard<std::mutex> lock(shared_mutex_);
    ++stats_.sessions_closed;
    if (protocol_error) {
      ++stats_.protocol_errors;
    }
  }
  // Membership changed: the remaining jobs may now form a complete round
  // (and a departed job's watts return to the pool).
  try_allocate();
}

void PowerDaemon::on_session_ready(int fd, short revents) {
  const auto it = sessions_.find(fd);
  if (it == sessions_.end()) {
    return;
  }
  Session& session = it->second;
  session.last_activity = std::chrono::steady_clock::now();

  if ((revents & POLLOUT) != 0) {
    flush_outbox(fd, session);
    if (sessions_.find(fd) == sessions_.end()) {
      return;  // flush hit a dead peer and closed the session
    }
  }
  if ((revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
    return;
  }

  char buffer[4096];
  for (;;) {
    const IoResult result = session.socket.read_some(buffer, sizeof(buffer));
    if (result.status == IoStatus::kWouldBlock) {
      break;
    }
    if (result.status == IoStatus::kClosed) {
      close_session(fd, /*protocol_error=*/false);
      return;
    }
    try {
      session.decoder.feed(std::string_view(buffer, result.bytes));
      while (auto payload = session.decoder.next()) {
        handle_frame(session, *payload);
      }
    } catch (const Error&) {
      // Oversized frame or malformed message: the stream offset can no
      // longer be trusted, drop the connection.
      close_session(fd, /*protocol_error=*/true);
      return;
    }
  }
  try_allocate();
}

void PowerDaemon::handle_frame(Session& session,
                               const std::string& payload) {
  core::SampleMessage sample = core::parse_sample_message(payload);
  if (!session.registered) {
    for (const auto& [fd, other] : sessions_) {
      PS_REQUIRE(!other.registered || other.job_name != sample.job_name,
                 "job '" + sample.job_name + "' is already registered");
    }
    session.job_name = sample.job_name;
    session.registered = true;
  } else {
    PS_REQUIRE(sample.job_name == session.job_name,
               "session is bound to job '" + session.job_name + "'");
  }
  const bool accepted = session.latch.offer(std::move(sample));
  const std::lock_guard<std::mutex> lock(shared_mutex_);
  ++stats_.samples_received;
  if (!accepted) {
    ++stats_.samples_stale;
  }
}

void PowerDaemon::queue_message(int fd, Session& session,
                                const core::PolicyMessage& message) {
  session.outbox.append(
      encode_frame(serialize(message, core::WireFidelity::kExact)));
  flush_outbox(fd, session);
}

void PowerDaemon::flush_outbox(int fd, Session& session) {
  while (!session.outbox.empty()) {
    const IoResult result = session.socket.write_some(session.outbox);
    if (result.status == IoStatus::kOk) {
      session.outbox.erase(0, result.bytes);
      continue;
    }
    if (result.status == IoStatus::kWouldBlock) {
      loop_.set_events(fd, POLLIN | POLLOUT);
      return;
    }
    close_session(fd, /*protocol_error=*/false);
    return;
  }
  loop_.set_events(fd, POLLIN);
}

void PowerDaemon::try_allocate() {
  std::vector<std::pair<int, Session*>> round;
  for (auto& [fd, session] : sessions_) {
    if (!session.registered) {
      continue;  // connected but not yet bound to a job
    }
    round.emplace_back(fd, &session);
  }
  if (round.empty()) {
    return;
  }
  if (!launch_barrier_met_) {
    if (round.size() < options_.min_jobs) {
      return;
    }
    launch_barrier_met_ = true;
  }
  for (const auto& [fd, session] : round) {
    if (!session->latch.has_fresh()) {
      return;  // wait until every job has reported this round
    }
  }

  // Deterministic job order: the allocation must not depend on fd values
  // or connection timing.
  std::sort(round.begin(), round.end(),
            [](const auto& a, const auto& b) {
              return a.second->job_name < b.second->job_name;
            });
  std::vector<core::SampleMessage> samples;
  samples.reserve(round.size());
  bool all_bootstrap = true;
  for (const auto& [fd, session] : round) {
    samples.push_back(session->latch.consume());
    all_bootstrap = all_bootstrap && samples.back().sequence == 0;
  }

  std::vector<core::PolicyMessage> messages(round.size());
  if (all_bootstrap) {
    // Launch: every job starts from the uniform share of the budget,
    // exactly as the in-memory CoordinationLoop seeds itself.
    std::size_t total_hosts = 0;
    for (const core::SampleMessage& sample : samples) {
      total_hosts += sample.host_observed_watts.size();
    }
    const double share =
        options_.system_budget_watts / static_cast<double>(total_hosts);
    for (std::size_t j = 0; j < round.size(); ++j) {
      messages[j].host_caps_watts.assign(
          samples[j].host_observed_watts.size(), share);
    }
  } else {
    const core::PolicyContext context = core::context_from_samples(
        options_.system_budget_watts, options_.node_tdp_watts,
        options_.uncappable_watts, samples);
    const rm::PowerAllocation allocation = policy_->allocate(context);
    if (policy_->is_system_aware() &&
        !allocation.within_budget(
            options_.system_budget_watts,
            0.5 * static_cast<double>(allocation.host_count()))) {
      // A policy output a site would reject; keep every job on its last
      // caps rather than programming an over-budget allocation.
      const std::lock_guard<std::mutex> lock(shared_mutex_);
      ++stats_.budget_violations;
      return;
    }
    for (std::size_t j = 0; j < round.size(); ++j) {
      messages[j].host_caps_watts = allocation.job_host_caps[j];
    }
  }

  for (std::size_t j = 0; j < round.size(); ++j) {
    messages[j].sequence = samples[j].sequence;
    messages[j].job_name = samples[j].job_name;
    queue_message(round[j].first, *round[j].second, messages[j]);
  }
  const std::lock_guard<std::mutex> lock(shared_mutex_);
  ++stats_.allocations;
  stats_.policies_sent += messages.size();
}

void PowerDaemon::on_tick() {
  adopt_pending_sockets();
  const auto now = std::chrono::steady_clock::now();
  std::vector<int> expired;
  for (const auto& [fd, session] : sessions_) {
    if (now - session.last_activity > options_.idle_timeout) {
      expired.push_back(fd);
    }
  }
  for (const int fd : expired) {
    {
      const std::lock_guard<std::mutex> lock(shared_mutex_);
      ++stats_.sessions_timed_out;
    }
    close_session(fd, /*protocol_error=*/false);
  }
  try_allocate();
}

}  // namespace ps::net
