#include "net/agent.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ps::net {

CoordinatedAgent::CoordinatedAgent(sim::JobSimulation& job,
                                   RuntimeClient& client,
                                   const AgentOptions& options)
    : job_(job), client_(client), options_(options) {
  PS_REQUIRE(options.epoch_iterations > 0,
             "epochs need at least one iteration");
  demand_watts_.assign(job_.host_count(), job_.host(0).min_cap());
}

double CoordinatedAgent::tdp_budget_watts() const {
  double budget = 0.0;
  for (std::size_t h = 0; h < job_.host_count(); ++h) {
    budget += job_.host(h).tdp();
  }
  return budget;
}

core::SampleMessage CoordinatedAgent::build_sample() const {
  core::SampleMessage sample;
  sample.sequence = sequence_;
  sample.job_name = job_.name();
  sample.sla_class = job_.sla_class();
  sample.min_settable_cap_watts = job_.host(0).min_cap();
  sample.host_observed_watts = demand_watts_;
  sample.host_needed_watts =
      runtime::balance_power(job_, tdp_budget_watts(), options_.balancer);
  return sample;
}

void CoordinatedAgent::apply_reply(const core::PolicyMessage& reply,
                                   AgentResult& result) {
  PS_REQUIRE(reply.host_caps_watts.size() == job_.host_count(),
             "policy caps do not match the job's host count");
  for (std::size_t h = 0; h < job_.host_count(); ++h) {
    job_.set_host_cap(h, reply.host_caps_watts[h]);
  }
  ++result.policies_applied;
}

AgentResult CoordinatedAgent::run(std::size_t total_iterations) {
  PS_REQUIRE(total_iterations > 0, "need at least one iteration");
  AgentResult result;

  if (options_.bootstrap && !bootstrapped_) {
    // Launch handshake: a sequence-0 sample asks for the uniform share,
    // the caps CoordinationLoop programs before its first iteration.
    const auto reply = client_.exchange(build_sample());
    if (reply) {
      apply_reply(*reply, result);
    } else {
      ++result.fallback_epochs;  // run on current caps until reachable
    }
    bootstrapped_ = true;
  }

  std::size_t done = 0;
  while (done < total_iterations) {
    const std::size_t this_epoch =
        std::min(options_.epoch_iterations, total_iterations - done);
    for (std::size_t i = 0; i < this_epoch; ++i) {
      const sim::IterationResult iteration = job_.run_iteration();
      result.elapsed_seconds += iteration.iteration_seconds;
      result.energy_joules += iteration.total_energy_joules;
      result.total_gflop += iteration.total_gflop;
      for (std::size_t h = 0; h < job_.host_count(); ++h) {
        demand_watts_[h] = std::max(
            demand_watts_[h], iteration.hosts[h].average_power_watts);
      }
    }
    done += this_epoch;
    result.iterations += this_epoch;
    ++result.epochs;

    ++sequence_;
    const auto reply = client_.exchange(build_sample());
    if (reply) {
      apply_reply(*reply, result);
    } else if (client_.last_known_policy()) {
      // Daemon unreachable: hold the last caps it gave us.
      ++result.fallback_epochs;
    } else {
      ++result.fallback_epochs;  // never heard from it; keep current caps
    }
  }
  return result;
}

}  // namespace ps::net
