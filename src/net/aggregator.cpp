#include "net/aggregator.hpp"

#include <poll.h>

#include <algorithm>
#include <utility>

#include "util/error.hpp"

namespace ps::net {

namespace {

/// Same bucket edges as the root daemon's round histogram, so per-level
/// latency distributions compare bucket-for-bucket across the tree.
constexpr double kRoundLatencyBounds[] = {0.0005, 0.001, 0.002, 0.005,
                                          0.01,   0.02,  0.05,  0.1,
                                          0.25,   0.5,   1.0,   2.5,
                                          5.0};

}  // namespace

AggregatorDaemon::AggregatorDaemon(const AggregatorOptions& options)
    : options_(options),
      loop_(options.event_backend),
      sessions_(loop_, [this](int fd) {
        close_session(fd, /*protocol_error=*/false);
      }) {
  PS_REQUIRE(!options.rack.empty() &&
                 options.rack.find_first_of(" \n") == std::string::npos,
             "rack name must be one non-empty token");
  PS_REQUIRE(options.parent_connector != nullptr,
             "aggregator needs a parent connector");
  PS_REQUIRE(options.min_jobs > 0, "launch barrier needs at least one job");
  PS_REQUIRE(options.tick_interval.count() > 0,
             "tick interval must be positive");
  PS_REQUIRE(options.reclaim_timeout.count() >= 0,
             "reclaim timeout must be non-negative");
  if (options_.obs.metrics != nullptr) {
    round_latency_ = &options_.obs.metrics->histogram(
        "net.aggregator.round_seconds", kRoundLatencyBounds);
  }
  loop_.set_tick(options_.tick_interval, [this] { on_tick(); });
}

AggregatorDaemon::~AggregatorDaemon() = default;

void AggregatorDaemon::listen_unix(const std::string& path) {
  listeners_.push_back(net::listen_unix(path));
  const std::size_t index = listeners_.size() - 1;
  loop_.add_fd(listeners_.back().fd(), POLLIN,
               [this, index](short) { on_listener_ready(index); });
}

void AggregatorDaemon::listen_tcp(std::uint16_t port) {
  listeners_.push_back(net::listen_tcp(port, &tcp_port_));
  const std::size_t index = listeners_.size() - 1;
  loop_.add_fd(listeners_.back().fd(), POLLIN,
               [this, index](short) { on_listener_ready(index); });
}

void AggregatorDaemon::adopt(Socket socket) {
  PS_REQUIRE(socket.valid(), "cannot adopt an invalid socket");
  adopt(make_transport(std::move(socket)));
}

void AggregatorDaemon::adopt(std::unique_ptr<Transport> transport) {
  PS_REQUIRE(transport != nullptr && transport->valid(),
             "cannot adopt an invalid transport");
  {
    const std::lock_guard<std::mutex> lock(shared_mutex_);
    pending_adoptions_.push_back(std::move(transport));
  }
  loop_.wake();
}

void AggregatorDaemon::run() {
  adopt_pending_transports();
  ensure_parent(/*resend_outstanding=*/false);
  while (loop_.run_once(std::chrono::milliseconds(-1))) {
    adopt_pending_transports();
  }
}

void AggregatorDaemon::stop() {
  loop_.stop();
}

AggregatorStats AggregatorDaemon::stats() const {
  const std::lock_guard<std::mutex> lock(shared_mutex_);
  return stats_;
}

void AggregatorDaemon::adopt_pending_transports() {
  std::vector<std::unique_ptr<Transport>> adopted;
  {
    const std::lock_guard<std::mutex> lock(shared_mutex_);
    adopted.swap(pending_adoptions_);
  }
  for (std::unique_ptr<Transport>& transport : adopted) {
    add_session(std::move(transport));
  }
}

void AggregatorDaemon::add_session(std::unique_ptr<Transport> transport) {
  if (options_.transport_wrapper) {
    transport = options_.transport_wrapper(std::move(transport));
    PS_REQUIRE(transport != nullptr && transport->valid(),
               "transport wrapper returned an invalid transport");
  }
  sessions_.add(std::move(transport), [this](int fd, short revents) {
    on_session_ready(fd, revents);
  });
  {
    const std::lock_guard<std::mutex> lock(shared_mutex_);
    ++stats_.sessions_accepted;
  }
  options_.obs.count("net.aggregator.sessions_accepted");
}

void AggregatorDaemon::on_listener_ready(std::size_t listener_index) {
  while (auto socket = listeners_[listener_index].accept()) {
    add_session(make_transport(std::move(*socket)));
  }
}

void AggregatorDaemon::close_session(int fd, bool protocol_error) {
  NetSession* session = sessions_.find(fd);
  if (session == nullptr) {
    return;  // idempotent: double-close no-ops
  }
  const bool registered = session->registered;
  const std::string job_name = session->job_name;
  const std::unique_ptr<Transport> transport = sessions_.remove(fd);
  {
    const std::lock_guard<std::mutex> lock(shared_mutex_);
    ++stats_.sessions_closed;
    if (protocol_error) {
      ++stats_.protocol_errors;
    }
  }
  options_.obs.count("net.aggregator.sessions_closed");
  if (registered) {
    const auto it = jobs_.find(job_name);
    // fd guard: a late close on a replaced connection must not detach
    // the job's live session.
    if (it != jobs_.end() && it->second.session_fd == fd) {
      it->second.session_fd = -1;
      it->second.disconnected_at = Clock::now();
    }
  }
  transport->close();
}

void AggregatorDaemon::evict_job(const std::string& name) {
  const auto it = jobs_.find(name);
  if (it == jobs_.end()) {
    return;
  }
  const int fd = it->second.session_fd;
  jobs_.erase(it);
  if (fd >= 0) {
    NetSession* session = sessions_.find(fd);
    if (session != nullptr) {
      const std::unique_ptr<Transport> transport = sessions_.remove(fd);
      transport->close();
      const std::lock_guard<std::mutex> lock(shared_mutex_);
      ++stats_.sessions_closed;
    }
  }
  {
    const std::lock_guard<std::mutex> lock(shared_mutex_);
    ++stats_.jobs_evicted;
    stats_.jobs = jobs_.size();
  }
  options_.obs.count("net.aggregator.jobs_evicted");
  // The watts the job held are NOT reclaimed here: the aggregator owns
  // no budget. The root's own grace/eviction machinery reclaims the seat
  // when the job stops appearing in this rack's aggregates.
}

void AggregatorDaemon::on_session_ready(int fd, short revents) {
  NetSession* session = sessions_.find(fd);
  if (session == nullptr) {
    return;
  }
  session->last_activity = Clock::now();

  if ((revents & POLLOUT) != 0) {
    sessions_.flush(fd, *session);
    session = sessions_.find(fd);
    if (session == nullptr) {
      return;
    }
  }
  if ((revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
    return;
  }

  char buffer[4096];
  for (;;) {
    const IoResult result =
        session->transport->read_some(buffer, sizeof(buffer));
    if (result.status == IoStatus::kWouldBlock) {
      break;
    }
    if (result.status == IoStatus::kClosed) {
      close_session(fd, /*protocol_error=*/false);
      return;
    }
    try {
      session->decoder.feed(std::string_view(buffer, result.bytes));
      while (auto payload = session->decoder.next()) {
        handle_client_frame(fd, *session, *payload);
        session = sessions_.find(fd);
        if (session == nullptr) {
          return;  // a resend hit a dead peer and closed this session
        }
      }
    } catch (const Error&) {
      close_session(fd, /*protocol_error=*/true);
      return;
    }
  }
  try_forward();
}

void AggregatorDaemon::handle_client_frame(int fd, NetSession& session,
                                           const std::string& payload) {
  core::SampleMessage sample = core::parse_sample_message(payload);
  if (!session.registered) {
    auto it = jobs_.find(sample.job_name);
    if (it != jobs_.end()) {
      PS_REQUIRE(it->second.session_fd < 0,
                 "job '" + sample.job_name + "' is already registered");
      it->second.session_fd = fd;
    } else {
      LocalJob job;
      job.session_fd = fd;
      it = jobs_.emplace(sample.job_name, std::move(job)).first;
      const std::lock_guard<std::mutex> lock(shared_mutex_);
      stats_.jobs = jobs_.size();
    }
    session.job_name = sample.job_name;
    session.registered = true;
    if (have_budget_) {
      // Epoch propagation: a registrant (or reconnect) must hear the
      // tree's current budget epoch before any caps, exactly as the
      // root resyncs its direct clients.
      sessions_.queue_frame(
          fd, session,
          encode_frame(serialize(last_budget_, core::WireFidelity::kExact)));
      if (!sessions_.contains(fd)) {
        throw InvalidArgument("session closed during budget resync");
      }
      const std::lock_guard<std::mutex> lock(shared_mutex_);
      ++stats_.budget_relays;
    }
  } else {
    PS_REQUIRE(sample.job_name == session.job_name,
               "session is bound to job '" + session.job_name + "'");
  }

  LocalJob& job = jobs_.at(session.job_name);
  const std::uint64_t sequence = sample.sequence;
  if (job.have_policy && job.last_policy.sequence >= sequence) {
    // Already answered by the parent: the reply was lost somewhere below
    // us. Re-serve the stored caps without bothering the root.
    {
      const std::lock_guard<std::mutex> lock(shared_mutex_);
      ++stats_.samples_received;
      ++stats_.samples_stale;
      ++stats_.policies_resent;
    }
    options_.obs.count("net.aggregator.policies_resent");
    queue_to_client(fd, session, job.last_policy);
    return;
  }
  const bool accepted = job.latch.offer(std::move(sample));
  {
    const std::lock_guard<std::mutex> lock(shared_mutex_);
    ++stats_.samples_received;
    if (!accepted) {
      ++stats_.samples_stale;
    }
  }
  if (!accepted && in_flight_ && !last_aggregate_frame_.empty()) {
    // The client is retrying a round we forwarded but cannot answer yet:
    // our aggregate (or its reply) may have been lost above us. Nudge
    // the parent by re-sending the outstanding frame — the root answers
    // duplicates idempotently from its stored caps.
    parent_outbox_.append(last_aggregate_frame_);
    flush_parent();
    {
      const std::lock_guard<std::mutex> lock(shared_mutex_);
      ++stats_.aggregate_resends;
    }
    options_.obs.count("net.aggregator.aggregate_resends");
  }
}

void AggregatorDaemon::try_forward() {
  if (parent_ == nullptr) {
    ensure_parent(/*resend_outstanding=*/true);
    if (parent_ == nullptr) {
      return;  // unreachable; retried on the next tick
    }
  }
  if (in_flight_ || jobs_.empty()) {
    return;
  }
  if (!launch_barrier_met_) {
    if (jobs_.size() < options_.min_jobs) {
      return;
    }
    launch_barrier_met_ = true;
  }
  for (const auto& [name, job] : jobs_) {
    if (!job.latch.has_fresh()) {
      return;  // wait until every seated job has reported this round
    }
  }

  core::RackSampleMessage aggregate;
  aggregate.rack = options_.rack;
  // jobs_ is name-keyed, so the aggregate's job order is the same
  // deterministic order the root allocates in.
  for (auto& [name, job] : jobs_) {
    aggregate.samples.push_back(job.latch.consume());
    aggregate.round =
        std::max(aggregate.round, aggregate.samples.back().sequence);
  }
  last_aggregate_frame_ =
      encode_frame(serialize(aggregate, core::WireFidelity::kExact));
  last_forwarded_round_ = aggregate.round;
  in_flight_ = true;
  forward_started_at_ = Clock::now();
  parent_outbox_.append(last_aggregate_frame_);
  flush_parent();
  {
    const std::lock_guard<std::mutex> lock(shared_mutex_);
    ++stats_.rounds_forwarded;
  }
  options_.obs.count("net.aggregator.rounds_forwarded");
  options_.obs.set_gauge("net.aggregator.jobs",
                         static_cast<double>(aggregate.samples.size()));
}

void AggregatorDaemon::ensure_parent(bool resend_outstanding) {
  if (parent_ != nullptr && parent_->valid()) {
    return;
  }
  std::unique_ptr<Transport> link = options_.parent_connector();
  if (link == nullptr || !link->valid()) {
    return;  // parent unreachable; retried on the next tick
  }
  parent_ = std::move(link);
  parent_decoder_ = FrameDecoder{};
  parent_outbox_.clear();
  loop_.add_fd(parent_->fd(), POLLIN,
               [this](short revents) { on_parent_ready(revents); });
  {
    const std::lock_guard<std::mutex> lock(shared_mutex_);
    ++stats_.parent_connects;
  }
  options_.obs.count("net.aggregator.parent_connects");
  if (resend_outstanding && in_flight_ && !last_aggregate_frame_.empty()) {
    // Reconnect-with-resend: the outstanding round must not be lost to
    // the old link. The root's stale-round handling makes the duplicate
    // harmless if the original did arrive.
    parent_outbox_.append(last_aggregate_frame_);
    flush_parent();
    {
      const std::lock_guard<std::mutex> lock(shared_mutex_);
      ++stats_.aggregate_resends;
    }
    options_.obs.count("net.aggregator.aggregate_resends");
  }
}

void AggregatorDaemon::drop_parent() {
  if (parent_ == nullptr) {
    return;
  }
  loop_.remove_fd(parent_->fd());
  parent_->close();
  parent_.reset();
  parent_outbox_.clear();
  {
    const std::lock_guard<std::mutex> lock(shared_mutex_);
    ++stats_.parent_disconnects;
  }
  options_.obs.count("net.aggregator.parent_disconnects");
  // in_flight_ stays set: the reply may never come over the dead link,
  // so the reconnect path re-sends the outstanding aggregate.
}

void AggregatorDaemon::flush_parent() {
  if (parent_ == nullptr) {
    return;
  }
  while (!parent_outbox_.empty()) {
    const IoResult result = parent_->write_some(parent_outbox_);
    if (result.status == IoStatus::kOk) {
      parent_outbox_.erase(0, result.bytes);
      continue;
    }
    if (result.status == IoStatus::kWouldBlock) {
      loop_.set_events(parent_->fd(), POLLIN | POLLOUT);
      return;
    }
    drop_parent();
    return;
  }
  loop_.set_events(parent_->fd(), POLLIN);
}

void AggregatorDaemon::on_parent_ready(short revents) {
  if (parent_ == nullptr) {
    return;
  }
  if ((revents & POLLOUT) != 0) {
    flush_parent();
    if (parent_ == nullptr) {
      return;  // flush found the link dead
    }
  }
  if ((revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
    return;
  }
  char buffer[4096];
  for (;;) {
    const IoResult result = parent_->read_some(buffer, sizeof(buffer));
    if (result.status == IoStatus::kWouldBlock) {
      break;
    }
    if (result.status == IoStatus::kClosed) {
      drop_parent();
      return;
    }
    try {
      parent_decoder_.feed(std::string_view(buffer, result.bytes));
      while (auto payload = parent_decoder_.next()) {
        handle_parent_frame(*payload);
        if (parent_ == nullptr) {
          return;
        }
      }
    } catch (const Error&) {
      // A corrupt upstream stream is indistinguishable from a torn link:
      // drop and reconnect rather than guessing at the offset.
      {
        const std::lock_guard<std::mutex> lock(shared_mutex_);
        ++stats_.protocol_errors;
      }
      drop_parent();
      return;
    }
  }
  try_forward();
}

void AggregatorDaemon::handle_parent_frame(const std::string& payload) {
  switch (core::wire_message_kind(payload)) {
    case core::WireMessageKind::kRackPolicy:
      handle_rack_policy(core::parse_rack_policy_message(payload));
      return;
    case core::WireMessageKind::kBudget:
      relay_budget(core::parse_budget_message(payload));
      return;
    default:
      throw InvalidArgument("unexpected message kind from parent daemon");
  }
}

void AggregatorDaemon::handle_rack_policy(core::RackPolicyMessage policy) {
  PS_REQUIRE(policy.rack == options_.rack,
             "rack-policy frame addressed to rack '" + policy.rack + "'");
  {
    const std::lock_guard<std::mutex> lock(shared_mutex_);
    ++stats_.policies_received;
    stats_.rack_budget_watts = policy.rack_budget_watts;
  }
  options_.obs.count("net.aggregator.policies_received");
  options_.obs.set_gauge("net.aggregator.rack_budget_watts",
                         policy.rack_budget_watts);
  if (in_flight_ && policy.round >= last_forwarded_round_) {
    in_flight_ = false;
    if (round_latency_ != nullptr) {
      round_latency_->observe(std::chrono::duration<double>(
                                  Clock::now() - forward_started_at_)
                                  .count());
    }
  }
  std::size_t fanned = 0;
  {
    // One coalesced write per client session for the whole fan-out.
    const SessionTable::Batch batch(sessions_);
    for (core::PolicyMessage& message : policy.policies) {
      const auto it = jobs_.find(message.job_name);
      if (it == jobs_.end()) {
        continue;  // evicted locally while the round was in flight
      }
      LocalJob& job = it->second;
      job.last_policy = message;
      job.have_policy = true;
      if (job.session_fd < 0) {
        continue;  // in grace: stored, re-served on reconnect
      }
      NetSession* session = sessions_.find(job.session_fd);
      if (session == nullptr) {
        continue;
      }
      queue_to_client(job.session_fd, *session, message);
      ++fanned;
    }
  }
  {
    const std::lock_guard<std::mutex> lock(shared_mutex_);
    stats_.policies_fanned_out += fanned;
  }
  options_.obs.count("net.aggregator.policies_fanned_out", fanned);
  options_.obs.set_gauge("net.aggregator.fanout",
                         static_cast<double>(fanned));
  try_forward();
}

void AggregatorDaemon::relay_budget(const core::BudgetMessage& budget) {
  last_budget_ = budget;
  have_budget_ = true;
  const std::string frame =
      encode_frame(serialize(budget, core::WireFidelity::kExact));
  std::vector<int> fds;
  for (const auto& [fd, session] : sessions_.map()) {
    if (session.registered) {
      fds.push_back(fd);
    }
  }
  std::size_t relayed = 0;
  {
    const SessionTable::Batch batch(sessions_);
    for (const int fd : fds) {
      NetSession* session = sessions_.find(fd);
      if (session == nullptr) {
        continue;
      }
      sessions_.queue_frame(fd, *session, frame);
      ++relayed;
    }
  }
  {
    const std::lock_guard<std::mutex> lock(shared_mutex_);
    stats_.budget_relays += relayed;
    stats_.budget_epoch = budget.epoch;
  }
  options_.obs.count("net.aggregator.budget_relays", relayed);
}

void AggregatorDaemon::queue_to_client(int fd, NetSession& session,
                                       const core::PolicyMessage& message) {
  sessions_.queue_frame(
      fd, session,
      encode_frame(serialize(message, core::WireFidelity::kExact)));
}

void AggregatorDaemon::on_tick() {
  adopt_pending_transports();
  const auto now = Clock::now();

  for (const int fd : sessions_.idle_fds(now, options_.idle_timeout)) {
    {
      const std::lock_guard<std::mutex> lock(shared_mutex_);
      ++stats_.sessions_timed_out;
    }
    close_session(fd, /*protocol_error=*/false);
  }

  std::vector<std::string> evictions;
  for (const auto& [name, job] : jobs_) {
    if (job.session_fd < 0 &&
        now - job.disconnected_at > options_.reclaim_timeout) {
      evictions.push_back(name);  // grace expired: drop the seat
    }
  }
  for (const std::string& name : evictions) {
    evict_job(name);
  }

  if (parent_ == nullptr) {
    ensure_parent(/*resend_outstanding=*/true);
  }
  try_forward();
}

}  // namespace ps::net
