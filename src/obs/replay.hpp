#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace ps::obs {

/// Aggregate view of a trace: how many events, which streams, which
/// event types. Deterministically ordered.
struct TraceSummary {
  std::size_t event_count = 0;
  std::uint64_t first_tick = 0;
  std::uint64_t last_tick = 0;
  /// category -> events, sorted by category.
  std::vector<std::pair<std::string, std::size_t>> category_counts;
  /// "category/name" -> events, sorted.
  std::vector<std::pair<std::string, std::size_t>> event_counts;
};

[[nodiscard]] TraceSummary summarize(std::span<const TraceEvent> events);

/// Arg key of host `host`'s cap within a "caps" event ("c0", "c1", ...).
/// Shared by the emitters (coordination loop, daemon) and the replayer.
[[nodiscard]] std::string cap_key(std::size_t host);

/// Arg key of host `host`'s GPU-domain cap within a "caps" event
/// ("g0", "g1", ...). Only present for heterogeneous jobs; CPU-only
/// traces never carry g-keys, so their byte form is unchanged.
[[nodiscard]] std::string gpu_cap_key(std::size_t host);

/// One job's caps within a reconstructed allocation step.
struct ReplayedJobCaps {
  std::string job;
  std::vector<double> caps_watts;
  /// GPU-domain caps per host; empty for single-domain jobs.
  std::vector<double> gpu_caps_watts;

  [[nodiscard]] bool operator==(const ReplayedJobCaps&) const = default;
};

/// One allocation step (coordination epoch or daemon round) rebuilt from
/// "caps" + "epoch"/"round" events alone — the proof that the trace is a
/// complete record of what the stack programmed.
struct ReplayedAllocation {
  std::uint64_t tick = 0;
  double budget_watts = 0.0;
  std::uint64_t budget_epoch = 0;
  bool emergency = false;
  std::vector<ReplayedJobCaps> jobs;

  [[nodiscard]] double total_watts() const;
};

/// Reconstructs the watt-allocation sequence from a trace's deterministic
/// streams ("coord" and "daemon"). Events must be tick-ordered within
/// each stream, the way the sink recorded them. A trace with both streams
/// (an in-memory run traced alongside a daemon) replays as two
/// interleaved sequences ordered by first appearance; in practice traces
/// carry one stream.
[[nodiscard]] std::vector<ReplayedAllocation> replay_allocations(
    std::span<const TraceEvent> events);

/// Human-readable trace report: the summary, then (with `replay`) the
/// reconstructed allocation sequence.
void print_trace_report(std::ostream& out, std::span<const TraceEvent> events,
                        bool replay);

}  // namespace ps::obs
