#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <ostream>

#include "util/error.hpp"
#include "util/table.hpp"

namespace ps::obs {

namespace {

bool valid_metric_name(std::string_view name) {
  if (name.empty()) {
    return false;
  }
  return std::all_of(name.begin(), name.end(), [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_' || c == '.';
  });
}

}  // namespace

void Gauge::set(double value) noexcept {
  bits_.store(std::bit_cast<std::uint64_t>(value),
              std::memory_order_relaxed);
}

double Gauge::value() const noexcept {
  return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
}

std::uint64_t HistogramSnapshot::total() const noexcept {
  std::uint64_t total = 0;
  for (std::uint64_t count : counts) {
    total += count;
  }
  return total;
}

double histogram_quantile(const HistogramSnapshot& snapshot, double q) {
  const std::uint64_t total = snapshot.total();
  if (total == 0 || snapshot.bounds.empty()) {
    return 0.0;
  }
  const auto rank =
      static_cast<std::uint64_t>(q * static_cast<double>(total - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < snapshot.counts.size(); ++i) {
    seen += snapshot.counts[i];
    if (seen > rank) {
      return i < snapshot.bounds.size() ? snapshot.bounds[i]
                                        : snapshot.bounds.back();
    }
  }
  return snapshot.bounds.back();
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {
  PS_REQUIRE(!bounds_.empty(), "histogram needs at least one bucket edge");
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    PS_REQUIRE(std::isfinite(bounds_[i]), "bucket edges must be finite");
    if (i > 0) {
      PS_REQUIRE(bounds_[i - 1] < bounds_[i],
                 "bucket edges must be strictly increasing");
    }
  }
}

void Histogram::observe(double value) noexcept {
  if (!std::isfinite(value)) {
    invalid_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // upper_bound: first edge > value. A value below every edge yields
  // index 0 (underflow); on or above the last edge, bounds_.size().
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), value);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.reserve(counts_.size());
  for (const auto& count : counts_) {
    snap.counts.push_back(count.load(std::memory_order_relaxed));
  }
  snap.invalid = invalid_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  PS_REQUIRE(valid_metric_name(name), "malformed metric name");
  const std::lock_guard<std::mutex> lock(mutex_);
  PS_REQUIRE(gauges_.find(name) == gauges_.end() &&
                 histograms_.find(name) == histograms_.end(),
             "metric name already registered as another kind");
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  PS_REQUIRE(valid_metric_name(name), "malformed metric name");
  const std::lock_guard<std::mutex> lock(mutex_);
  PS_REQUIRE(counters_.find(name) == counters_.end() &&
                 histograms_.find(name) == histograms_.end(),
             "metric name already registered as another kind");
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::span<const double> bounds) {
  PS_REQUIRE(valid_metric_name(name), "malformed metric name");
  const std::lock_guard<std::mutex> lock(mutex_);
  PS_REQUIRE(counters_.find(name) == counters_.end() &&
                 gauges_.find(name) == gauges_.end(),
             "metric name already registered as another kind");
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::vector<double>(
                          bounds.begin(), bounds.end())))
             .first;
  } else {
    PS_REQUIRE(std::equal(bounds.begin(), bounds.end(),
                          it->second->bounds().begin(),
                          it->second->bounds().end()),
               "histogram re-registered with different bucket edges");
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.emplace_back(name, histogram->snapshot());
  }
  return snap;
}

void MetricsRegistry::render_text(std::ostream& out) const {
  const MetricsSnapshot snap = snapshot();
  for (const auto& [name, value] : snap.counters) {
    out << name << ' ' << value << '\n';
  }
  for (const auto& [name, value] : snap.gauges) {
    out << name << ' ' << util::format_fixed(value, 3) << '\n';
  }
  for (const auto& [name, histogram] : snap.histograms) {
    for (std::size_t b = 0; b < histogram.counts.size(); ++b) {
      out << name << "{bucket=";
      if (b == 0) {
        out << "underflow";
      } else {
        out << "ge_" << util::format_fixed(histogram.bounds[b - 1], 6);
      }
      out << "} " << histogram.counts[b] << '\n';
    }
    out << name << ".invalid " << histogram.invalid << '\n';
    out << name << ".sum " << util::format_fixed(histogram.sum, 6) << '\n';
  }
}

}  // namespace ps::obs
