#pragma once

#include <cstdint>
#include <deque>
#include <initializer_list>
#include <iosfwd>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace ps::obs {

/// One typed argument value. Numbers keep their arithmetic kind:
/// unsigned integers stay integers, doubles render as their shortest
/// round-tripping decimal — so a serialized trace survives
/// encode -> parse -> encode byte-for-byte and a replay can reconstruct
/// watt values bit-exactly. Non-finite doubles are rejected at emit time
/// (JSON has no NaN/inf, and the deterministic path never produces one).
using TraceValue = std::variant<std::uint64_t, double, bool, std::string>;

struct TraceArg {
  std::string key;
  TraceValue value;

  [[nodiscard]] bool operator==(const TraceArg&) const = default;
};

/// A structured trace event on the stack's logical clock. `tick` is
/// supplied by the instrumentation site from its own logical progress —
/// the coordination epoch, the daemon's allocation round — never from a
/// wall clock, which is what makes a seeded run's trace byte-identical
/// across runs, machines, and worker counts.
struct TraceEvent {
  std::uint64_t tick = 0;
  std::string category;  ///< Layer stream: "coord", "rm", "daemon", "netio".
  std::string name;      ///< Event type within the category.
  std::vector<TraceArg> args;

  [[nodiscard]] bool operator==(const TraceEvent&) const = default;
};

/// Convenience accessors: an integer-valued double and a uint64 are
/// interchangeable on the wire (2432.0 serializes as "2432"), so readers
/// ask for the arithmetic kind they need. Throws ps::NotFound when the
/// key is missing, ps::InvalidArgument on an incompatible kind.
[[nodiscard]] double arg_as_double(const TraceEvent& event,
                                   std::string_view key);
[[nodiscard]] std::uint64_t arg_as_uint(const TraceEvent& event,
                                        std::string_view key);
[[nodiscard]] bool arg_as_bool(const TraceEvent& event, std::string_view key);
[[nodiscard]] const std::string& arg_as_string(const TraceEvent& event,
                                               std::string_view key);
[[nodiscard]] bool has_arg(const TraceEvent& event, std::string_view key);

/// Thread-safe append-only event sink with optional ring-buffer capacity
/// (0 = unbounded). Append takes a mutex — the trace path is
/// epoch-grained, not per-iteration, so contention is negligible; the
/// lock-free requirement applies to the metrics hot path.
class TraceSink {
 public:
  explicit TraceSink(std::size_t capacity = 0) : capacity_(capacity) {}

  void emit(TraceEvent event);
  void emit(std::uint64_t tick, std::string_view category,
            std::string_view name,
            std::initializer_list<TraceArg> args = {});

  /// Copies of the held events, in emission order; with `categories`,
  /// only events whose category is in the list.
  [[nodiscard]] std::vector<TraceEvent> events() const;
  [[nodiscard]] std::vector<TraceEvent> events(
      std::span<const std::string_view> categories) const;

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t total_emitted() const;
  void clear();

 private:
  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::deque<TraceEvent> events_;
  std::size_t emitted_ = 0;
};

/// One event as a single JSONL line (no trailing newline):
///
///   {"tick":12,"cat":"coord","name":"epoch","args":{"budget_watts":2432}}
///
/// Keys appear in exactly this order, args in emission order; doubles use
/// shortest round-trip formatting. parse_jsonl accepts exactly this
/// grammar (strict: unknown keys, duplicate arg keys, non-finite numbers
/// and malformed escapes all throw ps::InvalidArgument), which is what
/// makes encode -> parse -> encode the identity.
[[nodiscard]] std::string to_jsonl(const TraceEvent& event);
[[nodiscard]] TraceEvent parse_jsonl(std::string_view line);

/// Whole-stream JSONL I/O (one event per line; blank lines are skipped on
/// read).
void write_jsonl(std::ostream& out, std::span<const TraceEvent> events);
[[nodiscard]] std::vector<TraceEvent> read_jsonl(std::istream& in);

/// Chrome trace_event JSON ("catapult" / about:tracing / Perfetto): each
/// event becomes a global instant event with ts = tick (microsecond
/// column reused as the logical clock).
void write_chrome_trace(std::ostream& out, std::span<const TraceEvent> events);

}  // namespace ps::obs
