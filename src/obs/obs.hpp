#pragma once

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ps::obs {

/// The cross-layer observability seam: a pair of non-owning pointers
/// threaded through the stack's option structs (CoordinationOptions,
/// DaemonOptions, ClientOptions, SweepExecutor). Default-constructed it
/// is inert — every call is a null check and nothing else — so
/// uninstrumented runs pay (and allocate) nothing.
struct Observability {
  MetricsRegistry* metrics = nullptr;
  TraceSink* trace = nullptr;

  [[nodiscard]] bool enabled() const noexcept {
    return metrics != nullptr || trace != nullptr;
  }
  [[nodiscard]] bool tracing() const noexcept { return trace != nullptr; }

  void emit(std::uint64_t tick, std::string_view category,
            std::string_view name,
            std::initializer_list<TraceArg> args = {}) const {
    if (trace != nullptr) {
      trace->emit(tick, category, name, args);
    }
  }

  /// Registry-lookup conveniences for cold paths; hot paths should cache
  /// the Counter/Histogram reference from `metrics` directly.
  void count(std::string_view name, std::uint64_t delta = 1) const {
    if (metrics != nullptr) {
      metrics->counter(name).add(delta);
    }
  }
  void set_gauge(std::string_view name, double value) const {
    if (metrics != nullptr) {
      metrics->gauge(name).set(value);
    }
  }
};

/// Category names of the stack's event streams. `kCoord`, `kRm` and
/// `kDaemon` are *deterministic*: their events derive only from logical
/// progress (epochs, allocation rounds) and seeded state, so a seeded
/// run's stream is byte-identical across runs, machines and worker
/// counts. `kNetIo` events follow transport timing (connects, evictions,
/// reconnects) and are excluded from golden-trace comparisons.
/// `kHa` carries control-plane failover events (standby promotion,
/// fencing transitions); like `kNetIo` they follow transport timing and
/// are excluded from golden-trace comparisons.
namespace cat {
inline constexpr std::string_view kCoord = "coord";
inline constexpr std::string_view kRm = "rm";
inline constexpr std::string_view kDaemon = "daemon";
inline constexpr std::string_view kNetIo = "netio";
inline constexpr std::string_view kHa = "ha";
}  // namespace cat

/// The deterministic streams, in the order golden traces are exported.
[[nodiscard]] std::span<const std::string_view> deterministic_categories();

}  // namespace ps::obs
