#include "obs/trace.hpp"

#include <charconv>
#include <cmath>
#include <istream>
#include <ostream>

#include "util/error.hpp"

namespace ps::obs {

namespace {

const TraceValue& find_arg(const TraceEvent& event, std::string_view key) {
  for (const TraceArg& arg : event.args) {
    if (arg.key == key) {
      return arg.value;
    }
  }
  throw NotFound("trace event '" + event.name + "' has no arg '" +
                 std::string(key) + "'");
}

void append_escaped(std::string& out, std::string_view text) {
  out.push_back('"');
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char hex[] = "0123456789abcdef";
          out += "\\u00";
          out.push_back(hex[(static_cast<unsigned char>(c) >> 4) & 0xF]);
          out.push_back(hex[static_cast<unsigned char>(c) & 0xF]);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_value(std::string& out, const TraceValue& value) {
  if (const auto* u = std::get_if<std::uint64_t>(&value)) {
    out += std::to_string(*u);
  } else if (const auto* d = std::get_if<double>(&value)) {
    PS_REQUIRE(std::isfinite(*d), "trace values must be finite");
    char buffer[32];
    const auto [ptr, ec] = std::to_chars(buffer, buffer + sizeof(buffer), *d);
    PS_REQUIRE(ec == std::errc{}, "unencodable trace value");
    out.append(buffer, ptr);
  } else if (const auto* b = std::get_if<bool>(&value)) {
    out += *b ? "true" : "false";
  } else {
    append_escaped(out, std::get<std::string>(value));
  }
}

/// Strict cursor over one JSONL line: accepts exactly the grammar
/// to_jsonl emits (no whitespace, fixed key order).
class LineParser {
 public:
  explicit LineParser(std::string_view text) : text_(text) {}

  void expect(std::string_view literal) {
    PS_REQUIRE(text_.substr(pos_, literal.size()) == literal,
               "malformed trace line: expected literal");
    pos_ += literal.size();
  }

  [[nodiscard]] bool peek(char c) const {
    return pos_ < text_.size() && text_[pos_] == c;
  }

  [[nodiscard]] std::string parse_string() {
    expect("\"");
    std::string out;
    while (true) {
      PS_REQUIRE(pos_ < text_.size(), "unterminated trace string");
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      PS_REQUIRE(pos_ < text_.size(), "unterminated trace escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 'u': {
          PS_REQUIRE(pos_ + 4 <= text_.size(), "truncated \\u escape");
          unsigned code = 0;
          const auto [ptr, ec] = std::from_chars(
              text_.data() + pos_, text_.data() + pos_ + 4, code, 16);
          PS_REQUIRE(ec == std::errc{} && ptr == text_.data() + pos_ + 4,
                     "malformed \\u escape");
          PS_REQUIRE(code < 0x20, "only control-character \\u escapes");
          pos_ += 4;
          out.push_back(static_cast<char>(code));
          break;
        }
        default:
          throw InvalidArgument("unknown trace string escape");
      }
    }
  }

  [[nodiscard]] std::uint64_t parse_uint() {
    std::uint64_t value = 0;
    const auto [ptr, ec] = std::from_chars(
        text_.data() + pos_, text_.data() + text_.size(), value);
    PS_REQUIRE(ec == std::errc{} && ptr != text_.data() + pos_,
               "malformed trace integer");
    pos_ = static_cast<std::size_t>(ptr - text_.data());
    return value;
  }

  [[nodiscard]] TraceValue parse_value() {
    PS_REQUIRE(pos_ < text_.size(), "truncated trace value");
    const char c = text_[pos_];
    if (c == '"') {
      return parse_string();
    }
    if (c == 't') {
      expect("true");
      return true;
    }
    if (c == 'f') {
      expect("false");
      return false;
    }
    // A number. Integers (pure digits in uint64 range) keep their
    // arithmetic kind; everything else — sign, fraction, exponent, or a
    // digit run too large for uint64 — is a double.
    const std::size_t start = pos_;
    std::size_t end = pos_;
    bool integral = true;
    while (end < text_.size()) {
      const char n = text_[end];
      if (n >= '0' && n <= '9') {
        ++end;
      } else if (n == '-' || n == '+' || n == '.' || n == 'e' || n == 'E') {
        integral = false;
        ++end;
      } else {
        break;
      }
    }
    PS_REQUIRE(end > start, "malformed trace number");
    if (integral) {
      std::uint64_t value = 0;
      const auto [ptr, ec] = std::from_chars(text_.data() + start,
                                             text_.data() + end, value);
      if (ec == std::errc{} && ptr == text_.data() + end) {
        pos_ = end;
        return value;
      }
      // Out of uint64 range: fall through to the double parse.
    }
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + end, value);
    PS_REQUIRE(ec == std::errc{} && ptr == text_.data() + end,
               "malformed trace number");
    PS_REQUIRE(std::isfinite(value), "trace numbers must be finite");
    pos_ = end;
    return value;
  }

  void expect_end() {
    PS_REQUIRE(pos_ == text_.size(), "trailing bytes after trace event");
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

double arg_as_double(const TraceEvent& event, std::string_view key) {
  const TraceValue& value = find_arg(event, key);
  if (const auto* d = std::get_if<double>(&value)) {
    return *d;
  }
  if (const auto* u = std::get_if<std::uint64_t>(&value)) {
    return static_cast<double>(*u);
  }
  throw InvalidArgument("trace arg '" + std::string(key) +
                        "' is not numeric");
}

std::uint64_t arg_as_uint(const TraceEvent& event, std::string_view key) {
  const TraceValue& value = find_arg(event, key);
  if (const auto* u = std::get_if<std::uint64_t>(&value)) {
    return *u;
  }
  throw InvalidArgument("trace arg '" + std::string(key) +
                        "' is not an integer");
}

bool arg_as_bool(const TraceEvent& event, std::string_view key) {
  const TraceValue& value = find_arg(event, key);
  if (const auto* b = std::get_if<bool>(&value)) {
    return *b;
  }
  throw InvalidArgument("trace arg '" + std::string(key) +
                        "' is not a bool");
}

const std::string& arg_as_string(const TraceEvent& event,
                                 std::string_view key) {
  const TraceValue& value = find_arg(event, key);
  if (const auto* s = std::get_if<std::string>(&value)) {
    return *s;
  }
  throw InvalidArgument("trace arg '" + std::string(key) +
                        "' is not a string");
}

bool has_arg(const TraceEvent& event, std::string_view key) {
  for (const TraceArg& arg : event.args) {
    if (arg.key == key) {
      return true;
    }
  }
  return false;
}

void TraceSink::emit(TraceEvent event) {
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(event));
  if (capacity_ != 0 && events_.size() > capacity_) {
    events_.pop_front();
  }
  ++emitted_;
}

void TraceSink::emit(std::uint64_t tick, std::string_view category,
                     std::string_view name,
                     std::initializer_list<TraceArg> args) {
  TraceEvent event;
  event.tick = tick;
  event.category = std::string(category);
  event.name = std::string(name);
  event.args.assign(args.begin(), args.end());
  emit(std::move(event));
}

std::vector<TraceEvent> TraceSink::events() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return {events_.begin(), events_.end()};
}

std::vector<TraceEvent> TraceSink::events(
    std::span<const std::string_view> categories) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> out;
  for (const TraceEvent& event : events_) {
    for (std::string_view category : categories) {
      if (event.category == category) {
        out.push_back(event);
        break;
      }
    }
  }
  return out;
}

std::size_t TraceSink::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::size_t TraceSink::total_emitted() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return emitted_;
}

void TraceSink::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

std::string to_jsonl(const TraceEvent& event) {
  std::string out;
  out += "{\"tick\":";
  out += std::to_string(event.tick);
  out += ",\"cat\":";
  append_escaped(out, event.category);
  out += ",\"name\":";
  append_escaped(out, event.name);
  out += ",\"args\":{";
  for (std::size_t i = 0; i < event.args.size(); ++i) {
    if (i > 0) {
      out.push_back(',');
    }
    append_escaped(out, event.args[i].key);
    out.push_back(':');
    append_value(out, event.args[i].value);
  }
  out += "}}";
  return out;
}

TraceEvent parse_jsonl(std::string_view line) {
  LineParser parser(line);
  TraceEvent event;
  parser.expect("{\"tick\":");
  event.tick = parser.parse_uint();
  parser.expect(",\"cat\":");
  event.category = parser.parse_string();
  parser.expect(",\"name\":");
  event.name = parser.parse_string();
  parser.expect(",\"args\":{");
  if (!parser.peek('}')) {
    while (true) {
      TraceArg arg;
      arg.key = parser.parse_string();
      for (const TraceArg& seen : event.args) {
        PS_REQUIRE(seen.key != arg.key, "duplicate trace arg key");
      }
      parser.expect(":");
      arg.value = parser.parse_value();
      event.args.push_back(std::move(arg));
      if (parser.peek('}')) {
        break;
      }
      parser.expect(",");
    }
  }
  parser.expect("}}");
  parser.expect_end();
  return event;
}

void write_jsonl(std::ostream& out, std::span<const TraceEvent> events) {
  for (const TraceEvent& event : events) {
    out << to_jsonl(event) << '\n';
  }
}

std::vector<TraceEvent> read_jsonl(std::istream& in) {
  std::vector<TraceEvent> events;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    events.push_back(parse_jsonl(line));
  }
  return events;
}

void write_chrome_trace(std::ostream& out,
                        std::span<const TraceEvent> events) {
  out << "{\"traceEvents\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& event = events[i];
    if (i > 0) {
      out << ',';
    }
    std::string entry;
    entry += "\n{\"name\":";
    append_escaped(entry, event.name);
    entry += ",\"cat\":";
    append_escaped(entry, event.category);
    entry += ",\"ph\":\"i\",\"s\":\"g\",\"pid\":0,\"tid\":0,\"ts\":";
    entry += std::to_string(event.tick);
    entry += ",\"args\":{";
    for (std::size_t a = 0; a < event.args.size(); ++a) {
      if (a > 0) {
        entry.push_back(',');
      }
      append_escaped(entry, event.args[a].key);
      entry.push_back(':');
      append_value(entry, event.args[a].value);
    }
    entry += "}}";
    out << entry;
  }
  out << "\n]}\n";
}

}  // namespace ps::obs
