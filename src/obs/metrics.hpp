#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ps::obs {

/// Monotone event counter. The hot path is a single relaxed atomic
/// add — wait-free, TSan-clean, safe to hammer from any number of
/// threads while another thread scrapes.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins double. Stored as the bit pattern in a 64-bit atomic,
/// so reads and writes are lock-free and never tear.
class Gauge {
 public:
  void set(double value) noexcept;
  [[nodiscard]] double value() const noexcept;

 private:
  std::atomic<std::uint64_t> bits_{0};  ///< bit_cast of the double.
};

/// Point-in-time copy of one histogram.
struct HistogramSnapshot {
  std::vector<double> bounds;        ///< The configured bucket lower bounds.
  std::vector<std::uint64_t> counts; ///< bounds.size() + 1 buckets.
  std::uint64_t invalid = 0;         ///< Non-finite observations.
  double sum = 0.0;                  ///< Sum of finite observations.

  [[nodiscard]] std::uint64_t total() const noexcept;
};

/// Conservative quantile from a fixed-bucket histogram: the upper edge of
/// the bucket holding the q-th observation (overflow reports the last
/// bound — nothing above it is resolvable). 0.0 on an empty snapshot.
[[nodiscard]] double histogram_quantile(const HistogramSnapshot& snapshot,
                                        double q);

/// Fixed-bucket histogram. `bounds` are strictly increasing, finite
/// bucket *lower* edges: an observation v lands in
///
///   bucket 0 (underflow)        when v <  bounds[0]
///   bucket i                    when bounds[i-1] <= v < bounds[i]
///   bucket bounds.size() (over) when v >= bounds.back()
///
/// so a value exactly on an edge belongs to the bucket it opens.
/// observe() is lock-free (binary search + relaxed atomic add) and safe
/// against a concurrent snapshot(). Non-finite observations land in the
/// `invalid` counter instead of a bucket and are excluded from `sum`.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double value) noexcept;
  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  [[nodiscard]] HistogramSnapshot snapshot() const;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;  ///< bounds_.size() + 1.
  std::atomic<std::uint64_t> invalid_{0};
  std::atomic<double> sum_{0.0};
};

/// Point-in-time copy of a whole registry, name-sorted (the registry is
/// name-keyed, so scrape order is deterministic).
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

/// Name-keyed registry of counters, gauges and histograms. Registration
/// (get-or-create) takes a mutex — the cold path; instruments returned by
/// it have stable addresses for the registry's lifetime, so hot paths
/// cache the reference and touch only the instrument's atomics.
///
/// Metric names are dotted identifiers: [A-Za-z0-9_.], non-empty.
class MetricsRegistry {
 public:
  /// Get-or-create. Throws ps::InvalidArgument on a malformed name or
  /// when the name is already registered as a different kind.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` must match the registered histogram's bounds exactly when
  /// the name already exists.
  Histogram& histogram(std::string_view name, std::span<const double> bounds);

  [[nodiscard]] MetricsSnapshot snapshot() const;
  /// Deterministically ordered text rendering (one `name value` line per
  /// counter/gauge, `name{le=...}` style lines per histogram bucket).
  void render_text(std::ostream& out) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace ps::obs
