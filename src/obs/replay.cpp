#include "obs/replay.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <ostream>

#include "obs/obs.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace ps::obs {

namespace {

constexpr std::array<std::string_view, 3> kDeterministic = {
    cat::kCoord, cat::kRm, cat::kDaemon};

/// Reads the per-host caps ("c0", "c1", ...) off a "caps" event.
std::vector<double> caps_from_event(const TraceEvent& event) {
  std::vector<double> caps;
  for (std::size_t h = 0;; ++h) {
    const std::string key = cap_key(h);
    if (!has_arg(event, key)) {
      break;
    }
    caps.push_back(arg_as_double(event, key));
  }
  PS_REQUIRE(!caps.empty(), "caps event carries no host caps");
  return caps;
}

/// Reads the per-host GPU caps ("g0", "g1", ...) off a "caps" event.
/// Empty for single-domain jobs — g-keys only appear on hetero traces.
std::vector<double> gpu_caps_from_event(const TraceEvent& event) {
  std::vector<double> caps;
  for (std::size_t h = 0;; ++h) {
    const std::string key = gpu_cap_key(h);
    if (!has_arg(event, key)) {
      break;
    }
    caps.push_back(arg_as_double(event, key));
  }
  return caps;
}

}  // namespace

std::span<const std::string_view> deterministic_categories() {
  return kDeterministic;
}

std::string cap_key(std::size_t host) {
  // Built digits-first: GCC 12's -Wrestrict misfires on ("c" + ...).
  std::string key = std::to_string(host);
  key.insert(key.begin(), 'c');
  return key;
}

std::string gpu_cap_key(std::size_t host) {
  std::string key = std::to_string(host);
  key.insert(key.begin(), 'g');
  return key;
}

TraceSummary summarize(std::span<const TraceEvent> events) {
  TraceSummary summary;
  summary.event_count = events.size();
  std::map<std::string, std::size_t> by_category;
  std::map<std::string, std::size_t> by_name;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& event = events[i];
    if (i == 0) {
      summary.first_tick = event.tick;
      summary.last_tick = event.tick;
    } else {
      summary.first_tick = std::min(summary.first_tick, event.tick);
      summary.last_tick = std::max(summary.last_tick, event.tick);
    }
    ++by_category[event.category];
    ++by_name[event.category + "/" + event.name];
  }
  summary.category_counts.assign(by_category.begin(), by_category.end());
  summary.event_counts.assign(by_name.begin(), by_name.end());
  return summary;
}

double ReplayedAllocation::total_watts() const {
  double total = 0.0;
  for (const ReplayedJobCaps& job : jobs) {
    for (double cap : job.caps_watts) {
      total += cap;
    }
    for (double cap : job.gpu_caps_watts) {
      total += cap;
    }
  }
  return total;
}

std::vector<ReplayedAllocation> replay_allocations(
    std::span<const TraceEvent> events) {
  std::vector<ReplayedAllocation> steps;
  // One in-flight step per stream: "caps" events accumulate into the
  // step their (category, tick) names; the matching "epoch"/"round"
  // event fills in the budget columns. A new tick on a stream opens a
  // new step.
  std::map<std::string, std::size_t> open;  // category -> index into steps.
  const auto step_for = [&](const TraceEvent& event) -> ReplayedAllocation& {
    const auto it = open.find(event.category);
    if (it != open.end() && steps[it->second].tick == event.tick) {
      return steps[it->second];
    }
    ReplayedAllocation step;
    step.tick = event.tick;
    steps.push_back(std::move(step));
    open[event.category] = steps.size() - 1;
    return steps.back();
  };
  for (const TraceEvent& event : events) {
    if (event.category != cat::kCoord && event.category != cat::kDaemon) {
      continue;
    }
    if (event.name == "caps") {
      ReplayedJobCaps job;
      job.job = arg_as_string(event, "job");
      job.caps_watts = caps_from_event(event);
      job.gpu_caps_watts = gpu_caps_from_event(event);
      step_for(event).jobs.push_back(std::move(job));
    } else if (event.name == "epoch" || event.name == "round") {
      ReplayedAllocation& step = step_for(event);
      step.budget_watts = arg_as_double(event, "budget_watts");
      step.budget_epoch = arg_as_uint(event, "budget_epoch");
      if (has_arg(event, "emergency")) {
        step.emergency = arg_as_bool(event, "emergency");
      }
    }
  }
  return steps;
}

void print_trace_report(std::ostream& out, std::span<const TraceEvent> events,
                        bool replay) {
  const TraceSummary summary = summarize(events);
  out << summary.event_count << " events";
  if (summary.event_count > 0) {
    out << ", ticks " << summary.first_tick << ".." << summary.last_tick;
  }
  out << '\n';
  for (const auto& [category, count] : summary.category_counts) {
    out << "  " << category << ": " << count << '\n';
  }
  for (const auto& [name, count] : summary.event_counts) {
    out << "    " << name << ": " << count << '\n';
  }
  if (!replay) {
    return;
  }
  const std::vector<ReplayedAllocation> steps = replay_allocations(events);
  out << "replayed allocation steps: " << steps.size() << '\n';
  for (const ReplayedAllocation& step : steps) {
    out << "  tick " << step.tick << ": "
        << util::format_watts(step.total_watts());
    if (step.budget_watts > 0.0) {
      out << " / budget " << util::format_watts(step.budget_watts)
          << " (epoch " << step.budget_epoch << ")";
    }
    if (step.emergency) {
      out << " [emergency clamp]";
    }
    out << '\n';
    for (const ReplayedJobCaps& job : step.jobs) {
      out << "    " << job.job << ":";
      for (double cap : job.caps_watts) {
        out << ' ' << util::format_watts(cap, 1);
      }
      if (!job.gpu_caps_watts.empty()) {
        out << " | gpu:";
        for (double cap : job.gpu_caps_watts) {
          out << ' ' << util::format_watts(cap, 1);
        }
      }
      out << '\n';
    }
  }
}

}  // namespace ps::obs
