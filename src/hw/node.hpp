#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hw/gpu_model.hpp"
#include "hw/perf_model.hpp"
#include "hw/power_model.hpp"
#include "hw/quartz_spec.hpp"
#include "hw/rapl.hpp"

namespace ps::hw {

using NodeId = std::uint32_t;

/// How a node-level cap is divided between its two packages.
enum class CapSplitPolicy {
  kEven,             ///< Half each (what naive tooling does).
  kEfficiencyAware,  ///< Equalize package frequencies: the leakier
                     ///< package receives proportionally more budget.
};

struct NodeParams {
  SocketPowerParams power{};
  RooflineParams roofline{};
  ActivityModel activity{};
  double tdp_per_socket_watts = QuartzSpec::kTdpPerSocketW;
  double min_rapl_per_socket_watts = QuartzSpec::kMinRaplPerSocketW;
  /// DRAM plane power: always drawn, not governed by the package limits.
  /// Node-level caps and reported node power include it.
  double dram_watts = QuartzSpec::kDramPowerPerNodeW;
  CapSplitPolicy cap_split = CapSplitPolicy::kEven;
};

/// Outcome of running (or previewing) one phase on a node.
struct PhaseResult {
  double seconds = 0.0;
  double frequency_ghz = 0.0;
  double power_watts = 0.0;  ///< Node power (both sockets) during the phase.
  double gflops = 0.0;       ///< Achieved node GFLOP/s.
  double energy_joules = 0.0;
  double cpu_utilization = 0.0;
  double mem_utilization = 0.0;
};

/// A simulated dual-socket compute node: RAPL domains + power model +
/// roofline, with a self-consistent frequency solution.
///
/// Frequency under a cap depends on activity, and activity depends on the
/// pipeline utilizations at that frequency, so run_compute() solves the
/// fixed point (a few iterations; the map is a contraction because activity
/// varies weakly with frequency).
class NodeModel {
 public:
  NodeModel(NodeId id, double eta, const NodeParams& params = {});

  /// Heterogeneous packages: the two sockets of one node rarely leak
  /// identically; under a shared node cap the leakier one sets the pace
  /// unless the cap split compensates (see CapSplitPolicy).
  NodeModel(NodeId id, double eta_socket0, double eta_socket1,
            const NodeParams& params = {});

  [[nodiscard]] NodeId id() const noexcept { return id_; }
  /// Mean of the package efficiency multipliers.
  [[nodiscard]] double eta() const noexcept { return eta_; }
  [[nodiscard]] double eta_of(std::size_t socket) const;

  /// Programs the package RAPL limits from a node-level cap: the DRAM
  /// plane cannot be capped, so the packages absorb the whole reduction,
  /// divided per the configured CapSplitPolicy. Returns the node cap
  /// actually applied (after firmware clamping/quantization), including
  /// the DRAM share.
  double set_power_cap(double node_watts);
  [[nodiscard]] double power_cap() const;
  /// Highest settable node power (2 x package TDP + DRAM).
  [[nodiscard]] double tdp() const noexcept;
  /// Lowest settable node power cap (paper: 2 x 68 W, plus DRAM).
  [[nodiscard]] double min_cap() const noexcept;

  /// Runs a compute phase moving `gigabytes` at `intensity` FLOPs/byte and
  /// accrues the consumed energy into the RAPL counters.
  PhaseResult run_compute(double gigabytes, double intensity,
                          VectorWidth width);

  /// The solution run_compute would use under the node's current limits,
  /// without accruing energy. Memoized: the solver only re-runs when an
  /// input (phase shape, a package limit, the frequency cap) changed
  /// since the last call, so iteration-stable callers pay one fixed-point
  /// solve instead of one per iteration. The key is compared against the
  /// live register state, so limits written behind the node's back
  /// (PlatformIO pokes packages directly) still invalidate correctly.
  /// The returned reference stays valid until the next solve.
  const PhaseResult& compute_solution(double gigabytes, double intensity,
                                      VectorWidth width);

  /// Accrues a phase previously obtained from compute_solution() into the
  /// RAPL/DRAM energy counters (run_compute == compute_solution + this).
  void accrue_phase(const PhaseResult& phase);

  /// Busy-polls at a barrier for `seconds`, accruing energy. The poll
  /// power/frequency solution is memoized the same way as
  /// compute_solution() (it depends only on the limits).
  PhaseResult run_poll(double seconds);

  /// Disables (or re-enables) the solve memoization; with the cache off
  /// every call re-runs the fixed-point solver. Results are bit-identical
  /// either way — the flag exists for the equivalence regression tests.
  void set_solve_cache_enabled(bool enabled) noexcept {
    solve_cache_enabled_ = enabled;
    compute_cache_valid_ = false;
    poll_cache_valid_ = false;
  }

  /// DVFS control: an upper bound on the core frequency, independent of
  /// the RAPL limits (the OS cpufreq / P-state interface). The effective
  /// frequency is min(frequency under the power cap, this cap). Clamped
  /// to the part's [f_min, f_max]; returns the applied value.
  double set_frequency_cap(double ghz);
  [[nodiscard]] double frequency_cap() const noexcept {
    return frequency_cap_ghz_;
  }

  /// Pure query: what run_compute would report under `node_cap_watts`
  /// without changing any state. Used by agents to search cap settings.
  /// The node's current frequency cap applies.
  [[nodiscard]] PhaseResult preview_compute(double gigabytes, double intensity,
                                            VectorWidth width,
                                            double node_cap_watts) const;

  /// Same, with an explicit frequency cap (for DVFS searches).
  [[nodiscard]] PhaseResult preview_compute(double gigabytes, double intensity,
                                            VectorWidth width,
                                            double node_cap_watts,
                                            double frequency_cap_ghz) const;

  /// Node power while polling under `node_cap_watts`.
  [[nodiscard]] double poll_power(double node_cap_watts) const;

  /// Total node energy read back through the (wrapping) RAPL counters.
  [[nodiscard]] double read_energy_joules();

  /// --- Optional GPU devices (heterogeneous nodes) -----------------------
  ///
  /// GPUs form a second, independently capped power domain: their limits,
  /// draw, and energy are reported separately from the CPU/package numbers
  /// above, so CPU-only callers see bit-identical behavior whether or not
  /// a node could host GPUs.

  /// Attaches one more GPU device to this node and returns it.
  GpuModel& attach_gpu(const GpuParams& params = {});
  [[nodiscard]] std::size_t gpu_count() const noexcept { return gpus_.size(); }
  [[nodiscard]] GpuModel& gpu(std::size_t index);
  [[nodiscard]] const GpuModel& gpu(std::size_t index) const;

  /// Programs a node-level GPU cap, split evenly across the devices.
  /// Returns the total actually applied (after per-device clamping).
  double set_gpu_power_cap(double watts);
  /// Sum of the per-device GPU limits (0 when the node has no GPUs).
  [[nodiscard]] double gpu_power_cap() const noexcept;
  /// Lowest / highest settable node-level GPU cap (sums over devices).
  [[nodiscard]] double gpu_min_cap() const noexcept;
  [[nodiscard]] double gpu_tdp() const noexcept;
  /// Total GPU energy (monotone NVML-style counters, summed).
  [[nodiscard]] double read_gpu_energy_joules() const noexcept;

  [[nodiscard]] const NodeParams& params() const noexcept { return params_; }
  [[nodiscard]] const RooflineModel& roofline() const noexcept {
    return roofline_;
  }
  [[nodiscard]] RaplPackageDomain& package(std::size_t socket);

 private:
  /// Solves the frequency/activity fixed point for a compute phase under a
  /// per-socket cap (using the node's current frequency cap, or an
  /// explicit one).
  [[nodiscard]] PhaseResult solve_compute(double gigabytes, double intensity,
                                          VectorWidth width,
                                          std::span<const double> socket_caps)
      const;
  [[nodiscard]] PhaseResult solve_compute(double gigabytes, double intensity,
                                          VectorWidth width,
                                          std::span<const double> socket_caps,
                                          double frequency_cap_ghz) const;

  /// Splits node energy between the DRAM plane and the RAPL counters.
  void accrue_energy(double node_joules, double seconds);

  /// Per-package cap split for a node-level cap, honoring cap_split.
  [[nodiscard]] std::vector<double> split_node_cap(double node_watts) const;

  /// Memo key: every input that reaches the compute solver. Caps are
  /// sampled from the live package registers on every lookup rather than
  /// tracked by invalidation hooks, so out-of-band limit writes miss the
  /// cache instead of serving a stale solution.
  struct SolveKey {
    double gigabytes = 0.0;
    double intensity = 0.0;
    VectorWidth width = VectorWidth::kScalar;
    double socket_caps[2] = {0.0, 0.0};
    double frequency_cap_ghz = 0.0;

    bool operator==(const SolveKey&) const = default;
  };

  NodeId id_;
  double eta_;
  std::vector<double> etas_;
  NodeParams params_;
  SocketPowerModel power_model_;
  RooflineModel roofline_;
  std::vector<RaplPackageDomain> packages_;
  std::vector<GpuModel> gpus_;
  double dram_energy_joules_ = 0.0;
  double frequency_cap_ghz_ = 0.0;  ///< Set to f_max by the constructor.

  /// Solve memoization (see compute_solution). Written only by the
  /// non-const run paths: shared, const-accessed clones (the sweep's
  /// per-cell cloning sources) never mutate it concurrently.
  bool solve_cache_enabled_ = true;
  bool compute_cache_valid_ = false;
  SolveKey compute_key_;
  PhaseResult compute_cached_;
  bool poll_cache_valid_ = false;
  SolveKey poll_key_;
  PhaseResult poll_cached_;  ///< seconds/energy unset (scaled per call).
};

}  // namespace ps::hw
