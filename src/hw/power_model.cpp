#include "hw/power_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ps::hw {

SocketPowerModel::SocketPowerModel(const SocketPowerParams& params)
    : params_(params) {
  PS_REQUIRE(params.idle_watts > 0.0, "idle power must be positive");
  PS_REQUIRE(params.max_dynamic_watts > 0.0,
             "dynamic power range must be positive");
  PS_REQUIRE(params.min_frequency_ghz > 0.0 &&
                 params.min_frequency_ghz <= params.max_frequency_ghz,
             "frequency range must satisfy 0 < f_min <= f_max");
  PS_REQUIRE(params.exponent >= 1.0, "power exponent must be >= 1");
}

double SocketPowerModel::power(double frequency_ghz, double activity,
                               double eta) const {
  PS_REQUIRE(activity >= 0.0 && activity <= 1.0, "activity must be in [0,1]");
  PS_REQUIRE(eta > 0.0, "efficiency multiplier must be positive");
  const double clamped_f =
      std::clamp(frequency_ghz, params_.min_frequency_ghz,
                 params_.max_frequency_ghz);
  const double ratio = clamped_f / params_.max_frequency_ghz;
  return params_.idle_watts + eta * params_.max_dynamic_watts * activity *
                                  std::pow(ratio, params_.exponent);
}

double SocketPowerModel::frequency_at_cap(double cap_watts, double activity,
                                          double eta) const {
  PS_REQUIRE(activity >= 0.0 && activity <= 1.0, "activity must be in [0,1]");
  PS_REQUIRE(eta > 0.0, "efficiency multiplier must be positive");
  const double dynamic_budget = cap_watts - params_.idle_watts;
  const double scale = eta * params_.max_dynamic_watts * activity;
  if (scale <= 0.0) {
    // No dynamic draw at all (idle workload): frequency is unconstrained.
    return params_.max_frequency_ghz;
  }
  if (dynamic_budget <= 0.0) {
    return params_.min_frequency_ghz;
  }
  const double ratio =
      std::pow(dynamic_budget / scale, 1.0 / params_.exponent);
  return std::clamp(ratio * params_.max_frequency_ghz,
                    params_.min_frequency_ghz, params_.max_frequency_ghz);
}

double SocketPowerModel::power_at_cap(double cap_watts, double activity,
                                      double eta) const {
  return power(frequency_at_cap(cap_watts, activity, eta), activity, eta);
}

}  // namespace ps::hw
