#pragma once

namespace ps::hw {

/// Parameters of the GPU power model
///
///   P(clk, occ) = P_idle + P_dyn_max * occ * (clk / clk_max)^exponent
///
/// where `occ` in (0, 1] is the achieved occupancy (how many SMs the
/// kernel keeps busy) and the exponent captures V^2 * f scaling with the
/// shallower voltage/frequency curve GPUs run (wide-and-slow silicon).
/// Defaults describe a 300 W HPC accelerator: a 45 W idle/leakage floor
/// (HBM + uncore, drawn even when no kernel runs) plus 255 W of dynamic
/// power at the 1.4 GHz boost clock and full occupancy.
struct GpuPowerParams {
  double idle_watts = 45.0;          ///< Leakage + HBM floor, always drawn.
  double max_dynamic_watts = 255.0;  ///< Dynamic power at clk_max, occ = 1.
  double min_clock_ghz = 0.6;
  double max_clock_ghz = 1.4;
  double exponent = 2.5;
};

/// Firmware limits of the GPU power-limit domain (the nvidia-smi -pl /
/// RAPL-equivalent knob).
struct GpuLimitParams {
  double tdp_watts = 300.0;     ///< Default and thermal-spec limit.
  double min_cap_watts = 100.0; ///< Lowest settable limit.
};

/// Roofline of the GPU compute pipeline. Compute throughput scales with
/// clock and occupancy; memory bandwidth holds until the core clock drops
/// below `bandwidth_clock_floor` of clk_max (shared clock domain), below
/// which it degrades proportionally. This is what makes GPU-bound,
/// memory-bound, and mixed kernels respond differently to a power cap.
struct GpuRooflineParams {
  double peak_gflops = 7000.0;       ///< At clk_max, occupancy 1.
  double bandwidth_gbps = 900.0;     ///< HBM streaming bandwidth.
  double bandwidth_clock_floor = 0.8;///< Fraction of clk_max; see above.
};

struct GpuParams {
  GpuPowerParams power{};
  GpuLimitParams limit{};
  GpuRooflineParams roofline{};
};

/// Outcome of running (or previewing) one kernel phase on a GPU.
struct GpuPhaseResult {
  double seconds = 0.0;
  double clock_ghz = 0.0;
  double power_watts = 0.0;   ///< Device power during the phase.
  double gflops = 0.0;        ///< Achieved GFLOP/s.
  double energy_joules = 0.0;
  double occupancy = 0.0;
  bool compute_bound = false; ///< Compute time exceeded memory time.
};

/// A simulated GPU power-limit domain: a RAPL-like capped device (its own
/// settable min/TDP, 1/8 W limit quantization, an idle/leakage floor the
/// cap cannot reclaim) plus an occupancy/roofline performance model with
/// an exact cap-to-clock inversion. The analogue of RaplPackageDomain +
/// SocketPowerModel + RooflineModel for the second power domain of a
/// heterogeneous node; unlike the package domain it exposes energy as a
/// monotone joule counter (the NVML convention), not a wrapping MSR.
class GpuModel {
 public:
  explicit GpuModel(const GpuParams& params = {});

  /// Sets the device power limit. Values are clamped to the settable
  /// [min_cap, TDP] range and quantized to 1/8 W (same granularity as
  /// the package RAPL units). Returns the limit actually programmed.
  double set_power_cap(double watts);
  [[nodiscard]] double power_cap() const noexcept { return cap_watts_; }
  [[nodiscard]] double tdp() const noexcept { return params_.limit.tdp_watts; }
  [[nodiscard]] double min_cap() const noexcept {
    return params_.limit.min_cap_watts;
  }
  [[nodiscard]] double idle_watts() const noexcept {
    return params_.power.idle_watts;
  }

  /// Device power at the given clock / occupancy.
  [[nodiscard]] double power(double clock_ghz, double occupancy) const;

  /// Highest clock (clamped to [clk_min, clk_max]) whose power respects
  /// `cap_watts` at `occupancy`. Like the CPU part, the device cannot run
  /// below its floor clock, so a cap below the floor power is not met.
  [[nodiscard]] double clock_at_cap(double cap_watts, double occupancy) const;

  /// Runs a kernel phase moving `gigabytes` at `intensity` FLOPs/byte
  /// with `occupancy`, accruing consumed energy.
  GpuPhaseResult run_compute(double gigabytes, double intensity,
                             double occupancy);

  /// Idles for `seconds` (no kernel resident), drawing the leakage floor.
  void run_idle(double seconds);

  /// Pure query: what run_compute would report under `cap_watts` without
  /// changing any state. Used by agents to search cap settings.
  [[nodiscard]] GpuPhaseResult preview_compute(double gigabytes,
                                               double intensity,
                                               double occupancy,
                                               double cap_watts) const;

  /// Monotone consumed-energy counter, in joules.
  [[nodiscard]] double read_energy_joules() const noexcept {
    return energy_joules_;
  }

  /// Occupancy of the most recent run_compute (0 before any kernel ran) —
  /// the GPU_OCCUPANCY telemetry signal.
  [[nodiscard]] double last_occupancy() const noexcept {
    return last_occupancy_;
  }

  [[nodiscard]] const GpuParams& params() const noexcept { return params_; }

 private:
  GpuParams params_;
  double cap_watts_ = 0.0;  ///< Set to the TDP by the constructor.
  double energy_joules_ = 0.0;
  double last_occupancy_ = 0.0;
};

}  // namespace ps::hw
