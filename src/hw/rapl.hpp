#pragma once

#include <cstdint>

#include "hw/msr.hpp"

namespace ps::hw {

/// RAPL package power domain implemented over a simulated MSR file.
///
/// Encodes power limits and energy in the fixed-point units advertised by
/// MSR_RAPL_POWER_UNIT (power in 1/8 W steps, energy in ~61 uJ steps) and
/// models the 32-bit wrapping package energy counter, so software layered
/// on top must handle exactly the quirks real RAPL software handles.
class RaplPackageDomain {
 public:
  /// `tdp_watts` populates PKG_POWER_INFO's thermal spec power field;
  /// `min_watts` populates its minimum power field. The initial power
  /// limit is the TDP with clamping enabled.
  RaplPackageDomain(double tdp_watts, double min_watts);

  /// Sets the package power limit. Values are clamped to the
  /// [min, 1.5*TDP] range the firmware accepts, then quantized to RAPL
  /// power units. Returns the limit that was actually programmed.
  double set_power_limit(double watts);

  /// Currently programmed power limit (after quantization), in watts.
  [[nodiscard]] double power_limit() const;

  [[nodiscard]] double tdp() const noexcept { return tdp_watts_; }
  [[nodiscard]] double min_limit() const noexcept { return min_watts_; }

  /// Hardware-side: accrues consumed energy into the wrapping counter.
  void accumulate_energy(double joules);

  /// Software-side: reads the raw 32-bit counter (wraps ~every 73 kJ).
  [[nodiscard]] std::uint32_t read_energy_counter() const;

  /// Software-side: total energy in joules, reconstructed across counter
  /// wraps. Call at least once per wrap period for correct results (the
  /// paper's runtime samples far faster than that).
  [[nodiscard]] double read_energy_joules();

  /// Joules represented by one LSB of the energy counter.
  [[nodiscard]] double energy_unit_joules() const noexcept;
  /// Watts represented by one LSB of the power-limit field.
  [[nodiscard]] double power_unit_watts() const noexcept;

  [[nodiscard]] MsrFile& msr_file() noexcept { return msrs_; }
  [[nodiscard]] const MsrFile& msr_file() const noexcept { return msrs_; }

 private:
  double tdp_watts_;
  double min_watts_;
  MsrFile msrs_;
  double fractional_energy_ = 0.0;  ///< Sub-LSB residue awaiting the counter.
  std::uint32_t last_counter_ = 0;
  double unwrapped_joules_ = 0.0;
};

}  // namespace ps::hw
