#include "hw/rapl.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ps::hw {

namespace {
// MSR_RAPL_POWER_UNIT typical Broadwell encoding: power unit 2^-3 W,
// energy unit 2^-14 J, time unit 2^-10 s.
constexpr std::uint64_t kPowerUnitExp = 3;
constexpr std::uint64_t kEnergyUnitExp = 14;
constexpr std::uint64_t kTimeUnitExp = 10;
constexpr std::uint64_t kRaplUnitValue =
    kPowerUnitExp | (kEnergyUnitExp << 8) | (kTimeUnitExp << 16);

constexpr std::uint64_t kPowerLimitFieldMask = 0x7fffULL;  // bits 14:0
constexpr std::uint64_t kPowerLimitEnableBit = 1ULL << 15;
constexpr std::uint64_t kPowerLimitClampBit = 1ULL << 16;

std::uint64_t encode_power(double watts, double unit_watts) {
  const double raw = std::round(watts / unit_watts);
  return static_cast<std::uint64_t>(std::max(raw, 0.0)) &
         kPowerLimitFieldMask;
}
}  // namespace

RaplPackageDomain::RaplPackageDomain(double tdp_watts, double min_watts)
    : tdp_watts_(tdp_watts), min_watts_(min_watts) {
  PS_REQUIRE(tdp_watts > 0.0, "TDP must be positive");
  PS_REQUIRE(min_watts > 0.0 && min_watts <= tdp_watts,
             "min RAPL limit must be in (0, TDP]");
  msrs_.hw_store(msr::kRaplPowerUnit, kRaplUnitValue);
  const double unit = power_unit_watts();
  const std::uint64_t info = encode_power(tdp_watts_, unit) |
                             (encode_power(min_watts_, unit) << 16);
  msrs_.hw_store(msr::kPkgPowerInfo, info);
  set_power_limit(tdp_watts_);
}

double RaplPackageDomain::power_unit_watts() const noexcept {
  const std::uint64_t units = msrs_.hw_load(msr::kRaplPowerUnit);
  return 1.0 / static_cast<double>(1ULL << (units & 0xf));
}

double RaplPackageDomain::energy_unit_joules() const noexcept {
  const std::uint64_t units = msrs_.hw_load(msr::kRaplPowerUnit);
  return 1.0 / static_cast<double>(1ULL << ((units >> 8) & 0x1f));
}

double RaplPackageDomain::set_power_limit(double watts) {
  PS_REQUIRE(std::isfinite(watts), "power limit must be finite");
  const double clamped =
      std::clamp(watts, min_watts_, 1.5 * tdp_watts_);
  const std::uint64_t encoded = encode_power(clamped, power_unit_watts());
  msrs_.write(msr::kPkgPowerLimit,
              encoded | kPowerLimitEnableBit | kPowerLimitClampBit);
  return power_limit();
}

double RaplPackageDomain::power_limit() const {
  const std::uint64_t raw = msrs_.hw_load(msr::kPkgPowerLimit);
  return static_cast<double>(raw & kPowerLimitFieldMask) * power_unit_watts();
}

void RaplPackageDomain::accumulate_energy(double joules) {
  PS_REQUIRE(joules >= 0.0, "energy cannot decrease");
  fractional_energy_ += joules / energy_unit_joules();
  const double whole = std::floor(fractional_energy_);
  fractional_energy_ -= whole;
  const auto counter =
      static_cast<std::uint32_t>(msrs_.hw_load(msr::kPkgEnergyStatus));
  // 32-bit wrap-around is intentional: real PKG_ENERGY_STATUS wraps.
  const std::uint32_t next =
      counter + static_cast<std::uint32_t>(
                    static_cast<std::uint64_t>(whole) & 0xffffffffULL);
  msrs_.hw_store(msr::kPkgEnergyStatus, next);
}

std::uint32_t RaplPackageDomain::read_energy_counter() const {
  return static_cast<std::uint32_t>(msrs_.read(msr::kPkgEnergyStatus));
}

double RaplPackageDomain::read_energy_joules() {
  const std::uint32_t counter = read_energy_counter();
  const std::uint32_t delta = counter - last_counter_;  // modular arithmetic
  last_counter_ = counter;
  unwrapped_joules_ += static_cast<double>(delta) * energy_unit_joules();
  return unwrapped_joules_;
}

}  // namespace ps::hw
