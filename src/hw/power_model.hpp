#pragma once

namespace ps::hw {

/// Parameters of the socket power model
///
///   P(f, a, eta) = P_idle + eta * P_dyn_max * a * (f / f_max)^3
///
/// where `a` in [0, 1] is the workload activity factor (how hard the core
/// and memory pipelines are driven), `eta` is the per-part manufacturing
/// efficiency multiplier (1.0 = nominal; larger = leakier part needing more
/// power for the same frequency), and the cubic captures the classic
/// V^2 * f dynamic-power scaling with voltage tracking frequency.
/// Defaults are calibrated jointly against the paper's Fig. 4 (uncapped
/// node power peaks ~230 W incl. a 16 W DRAM plane => idle + dynamic =
/// 107 W per package at activity 1) and Fig. 6 (medium-cluster nodes
/// reach ~1.8 GHz under a 70 W package cap => 51.6 + 55.4*(1.8/2.6)^3
/// ~= 70).
struct SocketPowerParams {
  double idle_watts = 51.6;           ///< Uncore + idle power per package.
  double max_dynamic_watts = 55.4;  ///< Dynamic power at f_max, a=1, eta=1.
  double min_frequency_ghz = 1.2;
  double max_frequency_ghz = 2.6;
  double exponent = 3.0;
};

/// Analytic socket power model with an exact cap-to-frequency inversion.
///
/// This substitutes for the silicon behavior RAPL firmware controls: given
/// a package power limit, the part runs at the highest frequency whose
/// modeled power respects the limit.
class SocketPowerModel {
 public:
  SocketPowerModel() = default;
  explicit SocketPowerModel(const SocketPowerParams& params);

  /// Power in watts at the given frequency / activity / efficiency.
  [[nodiscard]] double power(double frequency_ghz, double activity,
                             double eta) const;

  /// Highest frequency (clamped to [f_min, f_max]) whose power does not
  /// exceed `cap_watts`. If even f_min exceeds the cap, returns f_min:
  /// like real silicon, the part cannot run below its floor, so a cap
  /// below the floor power is simply not met.
  [[nodiscard]] double frequency_at_cap(double cap_watts, double activity,
                                        double eta) const;

  /// Power actually drawn under `cap_watts` (power at frequency_at_cap).
  [[nodiscard]] double power_at_cap(double cap_watts, double activity,
                                    double eta) const;

  [[nodiscard]] const SocketPowerParams& params() const noexcept {
    return params_;
  }

 private:
  SocketPowerParams params_{};
};

}  // namespace ps::hw
