#pragma once

#include <cstddef>
#include <vector>

namespace ps::util {
class Rng;
}

namespace ps::hw {

/// One manufacturing-variation population: `count` parts whose efficiency
/// multiplier eta is normally distributed (see SocketPowerModel: larger eta
/// means a leakier part that needs more power for the same frequency, so it
/// achieves a lower frequency under a power cap).
struct VariationComponent {
  std::size_t count = 0;
  double mean_eta = 1.0;
  double sigma_eta = 0.0;
};

/// Generator of per-node efficiency multipliers.
///
/// Substitutes for the 2000-node hardware survey in the paper's Fig. 6: the
/// real cluster's achieved frequencies under a 70 W cap fall into three
/// k-means clusters of 522 / 918 / 560 nodes; we generate etas from three
/// populations calibrated so the same clustering emerges at ~1.65 / 1.80 /
/// 1.95 GHz.
class VariationModel {
 public:
  explicit VariationModel(std::vector<VariationComponent> components);

  /// The three-population Quartz calibration described above.
  [[nodiscard]] static VariationModel quartz_default();

  /// Generates one eta per node across all components (component order is
  /// randomized by a deterministic shuffle). Etas are clamped to be
  /// strictly positive.
  [[nodiscard]] std::vector<double> generate(util::Rng& rng) const;

  [[nodiscard]] std::size_t total_count() const noexcept;
  [[nodiscard]] const std::vector<VariationComponent>& components()
      const noexcept {
    return components_;
  }

 private:
  std::vector<VariationComponent> components_;
};

}  // namespace ps::hw
