#pragma once

#include <cstddef>

namespace ps::hw {

/// Platform constants for the modeled system (paper Table I: LLNL Quartz,
/// dual-socket Intel Xeon E5-2695 v4 "Broadwell").
///
/// The roofline ceilings reproduce the per-core envelope the paper reports
/// in Fig. 3 (generated with Intel Advisor on the target platform).
struct QuartzSpec {
  // --- Topology (Table I) ---
  static constexpr std::size_t kSocketsPerNode = 2;
  static constexpr std::size_t kCoresPerNode = 36;
  /// The paper reserves 2 cores for monitoring; 34 run the benchmark.
  static constexpr std::size_t kBenchmarkCoresPerNode = 34;

  // --- Power (Table I) ---
  static constexpr double kTdpPerSocketW = 120.0;
  static constexpr double kMinRaplPerSocketW = 68.0;
  static constexpr double kTdpPerNodeW = kTdpPerSocketW * kSocketsPerNode;
  static constexpr double kMinRaplPerNodeW =
      kMinRaplPerSocketW * kSocketsPerNode;

  // --- Frequency ---
  static constexpr double kBaseFrequencyGHz = 2.1;
  /// All-core turbo ceiling used when power headroom allows.
  static constexpr double kMaxFrequencyGHz = 2.6;
  static constexpr double kMinFrequencyGHz = 1.2;

  // --- Node-level memory bandwidth (sustained, both sockets) ---
  /// Calibrated so the roofline ridge falls between 8 and 16 FLOPs/byte,
  /// where the paper's Fig. 4 power peaks.
  static constexpr double kNodeMemoryBandwidthGBs = 150.0;

  /// DRAM plane power per node. Drawn whenever the node is up and NOT
  /// governed by the package RAPL limits, which is why measured node
  /// power never falls to the bare 2 x 68 W package floor (the paper's
  /// Table III min budgets imply a ~152 W per-node floor).
  static constexpr double kDramPowerPerNodeW = 16.0;

  // --- Per-core roofline ceilings (Fig. 3) ---
  static constexpr double kDramBandwidthGBsPerCore = 12.44;
  static constexpr double kL3BandwidthGBsPerCore = 35.18;
  static constexpr double kL2BandwidthGBsPerCore = 84.5;
  static constexpr double kL1BandwidthGBsPerCore = 314.65;
  static constexpr double kScalarAddPeakGflops = 27.3;
  static constexpr double kDpVectorAddPeakGflops = 43.9;
  static constexpr double kDpVectorFmaPeakGflops = 87.9;
  static constexpr double kSpVectorFmaPeakGflops = 175.8;

  // --- Cluster scale (Sections V-A/V-B) ---
  static constexpr std::size_t kClusterNodeCount = 2000;
  static constexpr std::size_t kExperimentNodeCount = 900;  // 9 jobs x 100
  /// "TDP of all CPUs is 216 kW" (Table III footnote): 900 nodes x 240 W.
  static constexpr double kExperimentTdpW =
      kTdpPerNodeW * static_cast<double>(kExperimentNodeCount);
};

}  // namespace ps::hw
