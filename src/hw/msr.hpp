#pragma once

#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ps::hw {

/// Well-known MSR addresses used by the RAPL simulation (Intel SDM names).
namespace msr {
inline constexpr std::uint32_t kRaplPowerUnit = 0x606;
inline constexpr std::uint32_t kPkgPowerLimit = 0x610;
inline constexpr std::uint32_t kPkgEnergyStatus = 0x611;
inline constexpr std::uint32_t kPkgPowerInfo = 0x614;
}  // namespace msr

/// Access control entry mirroring msr-safe's allowlist semantics: a register
/// is readable if listed, and only the bits in `write_mask` are writable.
struct MsrAccessEntry {
  std::uint32_t address = 0;
  std::uint64_t write_mask = 0;
};

/// Parses an msr-safe-style allowlist:
///
///   # comment
///   0x606 0x0000000000000000   # MSR_RAPL_POWER_UNIT (read-only)
///   0x610 0x00FFFFFFFFFFFFFF   # MSR_PKG_POWER_LIMIT
///
/// One "address writemask" pair per line; blank lines and '#' comments are
/// ignored. Throws ps::InvalidArgument on malformed or duplicate entries.
[[nodiscard]] std::vector<MsrAccessEntry> parse_msr_allowlist(
    std::string_view text);

/// Simulated per-package MSR file with msr-safe-style access control.
///
/// This is the lowest layer of the hardware substitution: RAPL domains are
/// implemented on top of these registers exactly as the real driver stack
/// (msr-safe -> libmsr/GEOPM PlatformIO) layers on real MSRs, including the
/// 32-bit wrapping energy counter.
class MsrFile {
 public:
  /// Constructs with the default allowlist (RAPL registers, as msr-safe
  /// ships for power management use).
  MsrFile();

  explicit MsrFile(std::vector<MsrAccessEntry> allowlist);

  /// Reads a 64-bit register. Throws ps::NotFound if not allowlisted.
  [[nodiscard]] std::uint64_t read(std::uint32_t address) const;

  /// Writes the writable bits of a register; non-writable bits of `value`
  /// are ignored (as msr-safe masks them). Throws ps::NotFound if the
  /// register is not allowlisted or has an empty write mask.
  void write(std::uint32_t address, std::uint64_t value);

  /// Backdoor used by the hardware model itself (not subject to the
  /// allowlist) — e.g. the package updating its own energy counter.
  void hw_store(std::uint32_t address, std::uint64_t value);
  [[nodiscard]] std::uint64_t hw_load(std::uint32_t address) const noexcept;

  [[nodiscard]] bool is_readable(std::uint32_t address) const noexcept;
  [[nodiscard]] bool is_writable(std::uint32_t address) const noexcept;

 private:
  const MsrAccessEntry* find_entry(std::uint32_t address) const noexcept;

  std::vector<MsrAccessEntry> allowlist_;
  std::unordered_map<std::uint32_t, std::uint64_t> registers_;
};

}  // namespace ps::hw
