#pragma once

#include <cstddef>
#include <string_view>

namespace ps::hw {

/// SIMD register width used by the kernel's floating-point loops.
enum class VectorWidth { kScalar, kXmm128, kYmm256 };

[[nodiscard]] std::string_view to_string(VectorWidth width) noexcept;

/// Double-precision FLOPs retired per core per cycle at the given width
/// (two FMA ports, 2 FLOPs per FMA per lane on the modeled Broadwell part).
[[nodiscard]] double flops_per_cycle(VectorWidth width) noexcept;

/// Parameters of the node performance roofline.
struct RooflineParams {
  std::size_t active_cores = 34;
  double max_frequency_ghz = 2.6;
  /// Sustained node DRAM bandwidth at max frequency, GB/s.
  double memory_bandwidth_gbs = 150.0;
  /// Fraction of peak memory bandwidth still available at zero core
  /// frequency (uncore clocks are mostly independent of core DVFS, so
  /// memory-bound codes lose little performance when cores slow down).
  double bandwidth_frequency_floor = 0.70;
};

/// Time and pipeline utilization of one compute phase.
struct PhaseProfile {
  double seconds = 0.0;
  double cpu_utilization = 0.0;  ///< Fraction of phase the FPUs are busy.
  double mem_utilization = 0.0;  ///< Fraction of phase memory is busy.
  double gflops = 0.0;           ///< Achieved GFLOP/s during the phase.
};

/// Node-level roofline performance model (Williams et al. [11]) with
/// frequency dependence: compute throughput scales linearly with core
/// frequency; memory bandwidth scales weakly (see
/// RooflineParams::bandwidth_frequency_floor).
///
/// A unit of kernel work is described by the bytes it moves and its
/// computational intensity I (FLOPs/byte), matching Choi et al.'s
/// energy-roofline benchmark [10] that the paper's kernel derives from.
class RooflineModel {
 public:
  RooflineModel() = default;
  explicit RooflineModel(const RooflineParams& params);

  /// Peak node compute throughput in GFLOP/s at `frequency_ghz`.
  [[nodiscard]] double peak_gflops(VectorWidth width,
                                   double frequency_ghz) const;

  /// Node memory bandwidth in GB/s at `frequency_ghz`.
  [[nodiscard]] double memory_bandwidth_gbs(double frequency_ghz) const;

  /// Intensity at which compute and memory times are equal (the roofline
  /// ridge point) at the given frequency, in FLOPs/byte.
  [[nodiscard]] double ridge_intensity(VectorWidth width,
                                       double frequency_ghz) const;

  /// Profiles a phase that moves `gigabytes` of data at computational
  /// intensity `intensity` (FLOPs/byte; zero means no floating point work).
  /// Compute and memory traffic overlap perfectly (classic roofline).
  [[nodiscard]] PhaseProfile profile(double gigabytes, double intensity,
                                     VectorWidth width,
                                     double frequency_ghz) const;

  [[nodiscard]] const RooflineParams& params() const noexcept {
    return params_;
  }

 private:
  RooflineParams params_{};
};

/// Activity-factor model mapping pipeline utilizations to the [0, 1]
/// activity input of SocketPowerModel. Calibrated so that (a) power peaks
/// near the roofline ridge where both pipelines saturate (paper Fig. 4
/// peaks at 4-8 FLOPs/byte) and (b) busy-polling at an MPI barrier draws
/// nearly as much power as streaming work (Fig. 4 is insensitive to the
/// waiting-rank fraction).
struct ActivityModel {
  double base = 0.673;        ///< Clock tree, fetch/decode, L1/L2 traffic.
  double cpu_weight = 0.148;  ///< Added when the FPUs are saturated.
  double mem_weight = 0.179;  ///< Added when DRAM is saturated.
  double poll_activity = 0.85;  ///< Busy-wait at a barrier (spin loop).
  /// Relative FPU power at narrower SIMD widths.
  double scalar_cpu_scale = 0.70;
  double xmm_cpu_scale = 0.85;

  /// Activity for a compute phase with the given utilizations.
  [[nodiscard]] double compute_activity(double cpu_utilization,
                                        double mem_utilization,
                                        VectorWidth width) const;
};

}  // namespace ps::hw
