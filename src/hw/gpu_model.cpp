#include "hw/gpu_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ps::hw {

namespace {
/// GPU limits are programmed in the same 1/8 W units RAPL advertises.
constexpr double kPowerUnitWatts = 0.125;
}  // namespace

GpuModel::GpuModel(const GpuParams& params) : params_(params) {
  PS_REQUIRE(params.power.idle_watts >= 0.0,
             "GPU idle power cannot be negative");
  PS_REQUIRE(params.power.max_dynamic_watts > 0.0,
             "GPU dynamic power must be positive");
  PS_REQUIRE(params.power.min_clock_ghz > 0.0 &&
                 params.power.min_clock_ghz < params.power.max_clock_ghz,
             "GPU clock range must be positive and ordered");
  PS_REQUIRE(params.power.exponent >= 1.0,
             "GPU power exponent must be at least 1");
  PS_REQUIRE(params.limit.min_cap_watts > params.power.idle_watts,
             "GPU settable floor must exceed the idle floor");
  PS_REQUIRE(params.limit.tdp_watts > params.limit.min_cap_watts,
             "GPU TDP must exceed the settable floor");
  PS_REQUIRE(params.roofline.peak_gflops > 0.0 &&
                 params.roofline.bandwidth_gbps > 0.0,
             "GPU roofline peaks must be positive");
  PS_REQUIRE(params.roofline.bandwidth_clock_floor > 0.0 &&
                 params.roofline.bandwidth_clock_floor <= 1.0,
             "bandwidth clock floor must be in (0, 1]");
  cap_watts_ = params_.limit.tdp_watts;
}

double GpuModel::set_power_cap(double watts) {
  PS_REQUIRE(std::isfinite(watts) && watts > 0.0,
             "GPU power cap must be positive and finite");
  const double clamped = std::clamp(watts, params_.limit.min_cap_watts,
                                    params_.limit.tdp_watts);
  cap_watts_ = std::round(clamped / kPowerUnitWatts) * kPowerUnitWatts;
  return cap_watts_;
}

double GpuModel::power(double clock_ghz, double occupancy) const {
  const double ratio = clock_ghz / params_.power.max_clock_ghz;
  return params_.power.idle_watts +
         params_.power.max_dynamic_watts * occupancy *
             std::pow(ratio, params_.power.exponent);
}

double GpuModel::clock_at_cap(double cap_watts, double occupancy) const {
  PS_REQUIRE(occupancy > 0.0 && occupancy <= 1.0,
             "occupancy must be in (0, 1]");
  const double dynamic_budget = cap_watts - params_.power.idle_watts;
  if (dynamic_budget <= 0.0) {
    return params_.power.min_clock_ghz;  // cannot clock below the floor
  }
  const double ratio = std::pow(
      dynamic_budget / (params_.power.max_dynamic_watts * occupancy),
      1.0 / params_.power.exponent);
  return std::clamp(ratio * params_.power.max_clock_ghz,
                    params_.power.min_clock_ghz,
                    params_.power.max_clock_ghz);
}

GpuPhaseResult GpuModel::preview_compute(double gigabytes, double intensity,
                                         double occupancy,
                                         double cap_watts) const {
  PS_REQUIRE(gigabytes > 0.0, "GPU phase needs positive data movement");
  PS_REQUIRE(intensity >= 0.0, "arithmetic intensity cannot be negative");
  PS_REQUIRE(occupancy > 0.0 && occupancy <= 1.0,
             "occupancy must be in (0, 1]");
  GpuPhaseResult result;
  result.occupancy = occupancy;
  result.clock_ghz = clock_at_cap(cap_watts, occupancy);
  const double clock_ratio = result.clock_ghz / params_.power.max_clock_ghz;
  const double gflop = gigabytes * intensity;
  const double compute_gflops =
      params_.roofline.peak_gflops * occupancy * clock_ratio;
  const double compute_seconds =
      gflop > 0.0 ? gflop / compute_gflops : 0.0;
  // Memory bandwidth holds until the clock drops below the floor (shared
  // voltage/frequency domain), then degrades proportionally with it.
  const double bandwidth =
      params_.roofline.bandwidth_gbps *
      std::min(1.0, clock_ratio / params_.roofline.bandwidth_clock_floor);
  const double memory_seconds = gigabytes / bandwidth;
  result.compute_bound = compute_seconds >= memory_seconds;
  result.seconds = std::max(compute_seconds, memory_seconds);
  result.power_watts = power(result.clock_ghz, occupancy);
  result.gflops = result.seconds > 0.0 ? gflop / result.seconds : 0.0;
  result.energy_joules = result.power_watts * result.seconds;
  return result;
}

GpuPhaseResult GpuModel::run_compute(double gigabytes, double intensity,
                                     double occupancy) {
  GpuPhaseResult result =
      preview_compute(gigabytes, intensity, occupancy, cap_watts_);
  energy_joules_ += result.energy_joules;
  last_occupancy_ = occupancy;
  return result;
}

void GpuModel::run_idle(double seconds) {
  PS_REQUIRE(seconds >= 0.0, "idle duration cannot be negative");
  energy_joules_ += params_.power.idle_watts * seconds;
}

}  // namespace ps::hw
