#include "hw/perf_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ps::hw {

std::string_view to_string(VectorWidth width) noexcept {
  switch (width) {
    case VectorWidth::kScalar:
      return "scalar";
    case VectorWidth::kXmm128:
      return "xmm";
    case VectorWidth::kYmm256:
      return "ymm";
  }
  return "?";
}

double flops_per_cycle(VectorWidth width) noexcept {
  switch (width) {
    case VectorWidth::kScalar:
      return 4.0;  // 2 FMA ports x 2 FLOPs per scalar FMA
    case VectorWidth::kXmm128:
      return 8.0;  // x 2 DP lanes
    case VectorWidth::kYmm256:
      return 16.0;  // x 4 DP lanes
  }
  return 0.0;
}

RooflineModel::RooflineModel(const RooflineParams& params) : params_(params) {
  PS_REQUIRE(params.active_cores > 0, "need at least one active core");
  PS_REQUIRE(params.max_frequency_ghz > 0.0, "max frequency must be positive");
  PS_REQUIRE(params.memory_bandwidth_gbs > 0.0,
             "memory bandwidth must be positive");
  PS_REQUIRE(params.bandwidth_frequency_floor >= 0.0 &&
                 params.bandwidth_frequency_floor <= 1.0,
             "bandwidth floor must be in [0,1]");
}

double RooflineModel::peak_gflops(VectorWidth width,
                                  double frequency_ghz) const {
  PS_REQUIRE(frequency_ghz > 0.0, "frequency must be positive");
  return static_cast<double>(params_.active_cores) * flops_per_cycle(width) *
         frequency_ghz;
}

double RooflineModel::memory_bandwidth_gbs(double frequency_ghz) const {
  PS_REQUIRE(frequency_ghz > 0.0, "frequency must be positive");
  const double ratio =
      std::min(frequency_ghz / params_.max_frequency_ghz, 1.0);
  const double scale = params_.bandwidth_frequency_floor +
                       (1.0 - params_.bandwidth_frequency_floor) * ratio;
  return params_.memory_bandwidth_gbs * scale;
}

double RooflineModel::ridge_intensity(VectorWidth width,
                                      double frequency_ghz) const {
  return peak_gflops(width, frequency_ghz) /
         memory_bandwidth_gbs(frequency_ghz);
}

PhaseProfile RooflineModel::profile(double gigabytes, double intensity,
                                    VectorWidth width,
                                    double frequency_ghz) const {
  PS_REQUIRE(gigabytes > 0.0, "phase must move a positive amount of data");
  PS_REQUIRE(intensity >= 0.0, "intensity cannot be negative");
  const double gflop = intensity * gigabytes;
  const double t_mem = gigabytes / memory_bandwidth_gbs(frequency_ghz);
  const double t_cpu =
      gflop > 0.0 ? gflop / peak_gflops(width, frequency_ghz) : 0.0;
  PhaseProfile profile;
  profile.seconds = std::max(t_mem, t_cpu);
  profile.cpu_utilization = t_cpu / profile.seconds;
  profile.mem_utilization = t_mem / profile.seconds;
  profile.gflops = gflop > 0.0 ? gflop / profile.seconds : 0.0;
  return profile;
}

double ActivityModel::compute_activity(double cpu_utilization,
                                       double mem_utilization,
                                       VectorWidth width) const {
  PS_REQUIRE(cpu_utilization >= 0.0 && cpu_utilization <= 1.0,
             "cpu utilization must be in [0,1]");
  PS_REQUIRE(mem_utilization >= 0.0 && mem_utilization <= 1.0,
             "mem utilization must be in [0,1]");
  double cpu_scale = 1.0;
  switch (width) {
    case VectorWidth::kScalar:
      cpu_scale = scalar_cpu_scale;
      break;
    case VectorWidth::kXmm128:
      cpu_scale = xmm_cpu_scale;
      break;
    case VectorWidth::kYmm256:
      cpu_scale = 1.0;
      break;
  }
  const double activity = base + cpu_weight * cpu_scale * cpu_utilization +
                          mem_weight * mem_utilization;
  return std::clamp(activity, 0.0, 1.0);
}

}  // namespace ps::hw
