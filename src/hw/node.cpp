#include "hw/node.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ps::hw {

NodeModel::NodeModel(NodeId id, double eta, const NodeParams& params)
    : NodeModel(id, eta, eta, params) {}

NodeModel::NodeModel(NodeId id, double eta_socket0, double eta_socket1,
                     const NodeParams& params)
    : id_(id),
      eta_((eta_socket0 + eta_socket1) / 2.0),
      etas_({eta_socket0, eta_socket1}),
      params_(params),
      power_model_(params.power),
      roofline_(params.roofline) {
  PS_REQUIRE(eta_socket0 > 0.0 && eta_socket1 > 0.0,
             "package efficiency multipliers must be positive");
  frequency_cap_ghz_ = params_.power.max_frequency_ghz;
  packages_.reserve(QuartzSpec::kSocketsPerNode);
  for (std::size_t s = 0; s < QuartzSpec::kSocketsPerNode; ++s) {
    packages_.emplace_back(params.tdp_per_socket_watts,
                           params.min_rapl_per_socket_watts);
  }
}

double NodeModel::eta_of(std::size_t socket) const {
  PS_REQUIRE(socket < etas_.size(), "socket index out of range");
  return etas_[socket];
}

std::vector<double> NodeModel::split_node_cap(double node_watts) const {
  const double package_total = node_watts - params_.dram_watts;
  const std::size_t count = packages_.size();
  std::vector<double> caps(count,
                           package_total / static_cast<double>(count));
  if (params_.cap_split == CapSplitPolicy::kEfficiencyAware) {
    // Equal package frequencies need (C_i - idle) proportional to eta_i:
    // C_i = idle + eta_i * k with sum(C_i) = package_total.
    double eta_sum = 0.0;
    for (double eta : etas_) {
      eta_sum += eta;
    }
    const double k = (package_total -
                      static_cast<double>(count) * params_.power.idle_watts) /
                     eta_sum;
    for (std::size_t s = 0; s < count; ++s) {
      caps[s] = params_.power.idle_watts + etas_[s] * std::max(k, 0.0);
    }
  }
  return caps;
}

double NodeModel::set_power_cap(double node_watts) {
  PS_REQUIRE(std::isfinite(node_watts) && node_watts > params_.dram_watts,
             "node power cap must exceed the uncappable DRAM power");
  const std::vector<double> split = split_node_cap(node_watts);
  double applied = params_.dram_watts;
  for (std::size_t s = 0; s < packages_.size(); ++s) {
    applied += packages_[s].set_power_limit(split[s]);
  }
  return applied;
}

double NodeModel::power_cap() const {
  double total = params_.dram_watts;
  for (const auto& package : packages_) {
    total += package.power_limit();
  }
  return total;
}

double NodeModel::tdp() const noexcept {
  return params_.tdp_per_socket_watts *
             static_cast<double>(packages_.size()) +
         params_.dram_watts;
}

double NodeModel::min_cap() const noexcept {
  return params_.min_rapl_per_socket_watts *
             static_cast<double>(packages_.size()) +
         params_.dram_watts;
}

double NodeModel::set_frequency_cap(double ghz) {
  PS_REQUIRE(std::isfinite(ghz) && ghz > 0.0,
             "frequency cap must be positive and finite");
  frequency_cap_ghz_ = std::clamp(ghz, params_.power.min_frequency_ghz,
                                  params_.power.max_frequency_ghz);
  return frequency_cap_ghz_;
}

PhaseResult NodeModel::solve_compute(
    double gigabytes, double intensity, VectorWidth width,
    std::span<const double> socket_caps) const {
  return solve_compute(gigabytes, intensity, width, socket_caps,
                       frequency_cap_ghz_);
}

PhaseResult NodeModel::solve_compute(double gigabytes, double intensity,
                                     VectorWidth width,
                                     std::span<const double> socket_caps,
                                     double frequency_cap_ghz) const {
  PS_REQUIRE(socket_caps.size() == packages_.size(),
             "need one cap per package");
  // Fixed point: activity -> per-package frequency -> utilization ->
  // activity. The node runs in lockstep: the slowest package paces both
  // halves of the work (shared memory system, bulk-synchronous threads).
  double activity = 1.0;
  double frequency = params_.power.max_frequency_ghz;
  PhaseProfile profile{};
  const auto effective_frequency = [&](double a) {
    double slowest = frequency_cap_ghz;
    for (std::size_t s = 0; s < packages_.size(); ++s) {
      slowest = std::min(
          slowest,
          power_model_.frequency_at_cap(socket_caps[s], a, etas_[s]));
    }
    return slowest;
  };
  for (int iteration = 0; iteration < 16; ++iteration) {
    frequency = effective_frequency(activity);
    profile = roofline_.profile(gigabytes, intensity, width, frequency);
    const double next_activity = params_.activity.compute_activity(
        profile.cpu_utilization, profile.mem_utilization, width);
    if (std::abs(next_activity - activity) < 1e-9) {
      activity = next_activity;
      break;
    }
    activity = next_activity;
  }
  frequency = effective_frequency(activity);
  profile = roofline_.profile(gigabytes, intensity, width, frequency);

  PhaseResult result;
  result.seconds = profile.seconds;
  result.frequency_ghz = frequency;
  // Every package runs at the lockstep frequency; leakier packages burn
  // more power to hold it.
  result.power_watts = params_.dram_watts;
  for (std::size_t s = 0; s < packages_.size(); ++s) {
    result.power_watts += power_model_.power(frequency, activity, etas_[s]);
  }
  result.gflops = profile.gflops;
  result.energy_joules = result.power_watts * result.seconds;
  result.cpu_utilization = profile.cpu_utilization;
  result.mem_utilization = profile.mem_utilization;
  return result;
}

const PhaseResult& NodeModel::compute_solution(double gigabytes,
                                               double intensity,
                                               VectorWidth width) {
  SolveKey key;
  key.gigabytes = gigabytes;
  key.intensity = intensity;
  key.width = width;
  // The cache key holds two sockets; nodes are dual-socket by
  // construction (QuartzSpec), so this covers every package.
  static_assert(QuartzSpec::kSocketsPerNode == 2);
  for (std::size_t s = 0; s < packages_.size(); ++s) {
    key.socket_caps[s] = packages_[s].power_limit();
  }
  key.frequency_cap_ghz = frequency_cap_ghz_;
  if (!solve_cache_enabled_ || !compute_cache_valid_ ||
      !(key == compute_key_)) {
    compute_cached_ = solve_compute(
        gigabytes, intensity, width,
        std::span<const double>(key.socket_caps, packages_.size()));
    compute_key_ = key;
    compute_cache_valid_ = true;
  }
  return compute_cached_;
}

void NodeModel::accrue_phase(const PhaseResult& phase) {
  accrue_energy(phase.energy_joules, phase.seconds);
}

PhaseResult NodeModel::run_compute(double gigabytes, double intensity,
                                   VectorWidth width) {
  PhaseResult result = compute_solution(gigabytes, intensity, width);
  accrue_energy(result.energy_joules, result.seconds);
  return result;
}

PhaseResult NodeModel::run_poll(double seconds) {
  PS_REQUIRE(seconds >= 0.0, "poll duration cannot be negative");
  // The poll solution depends only on the limits; key and memoize it
  // like compute_solution so barrier-heavy iterations stay cheap.
  SolveKey key;
  for (std::size_t s = 0; s < packages_.size(); ++s) {
    key.socket_caps[s] = packages_[s].power_limit();
  }
  key.frequency_cap_ghz = frequency_cap_ghz_;
  if (!solve_cache_enabled_ || !poll_cache_valid_ || !(key == poll_key_)) {
    poll_cached_ = PhaseResult{};
    poll_cached_.power_watts = poll_power(power_cap());
    double slowest = frequency_cap_ghz_;
    for (std::size_t s = 0; s < packages_.size(); ++s) {
      slowest = std::min(slowest, power_model_.frequency_at_cap(
                                      packages_[s].power_limit(),
                                      params_.activity.poll_activity,
                                      etas_[s]));
    }
    poll_cached_.frequency_ghz = slowest;
    poll_key_ = key;
    poll_cache_valid_ = true;
  }
  PhaseResult result = poll_cached_;
  result.seconds = seconds;
  result.energy_joules = result.power_watts * seconds;
  accrue_energy(result.energy_joules, seconds);
  return result;
}

PhaseResult NodeModel::preview_compute(double gigabytes, double intensity,
                                       VectorWidth width,
                                       double node_cap_watts) const {
  return preview_compute(gigabytes, intensity, width, node_cap_watts,
                         frequency_cap_ghz_);
}

PhaseResult NodeModel::preview_compute(double gigabytes, double intensity,
                                       VectorWidth width,
                                       double node_cap_watts,
                                       double frequency_cap_ghz) const {
  PS_REQUIRE(node_cap_watts > params_.dram_watts,
             "node cap must exceed the uncappable DRAM power");
  PS_REQUIRE(frequency_cap_ghz > 0.0, "frequency cap must be positive");
  const double clamped =
      std::clamp(frequency_cap_ghz, params_.power.min_frequency_ghz,
                 params_.power.max_frequency_ghz);
  std::vector<double> split = split_node_cap(node_cap_watts);
  // Previews honor the same firmware clamping a real write would apply.
  for (double& cap : split) {
    cap = std::clamp(cap, params_.min_rapl_per_socket_watts,
                     1.5 * params_.tdp_per_socket_watts);
  }
  return solve_compute(gigabytes, intensity, width, split, clamped);
}

double NodeModel::poll_power(double node_cap_watts) const {
  PS_REQUIRE(node_cap_watts > params_.dram_watts,
             "node cap must exceed the uncappable DRAM power");
  std::vector<double> split = split_node_cap(node_cap_watts);
  for (double& cap : split) {
    cap = std::clamp(cap, params_.min_rapl_per_socket_watts,
                     1.5 * params_.tdp_per_socket_watts);
  }
  const double activity = params_.activity.poll_activity;
  double slowest = frequency_cap_ghz_;
  for (std::size_t s = 0; s < packages_.size(); ++s) {
    slowest = std::min(
        slowest,
        power_model_.frequency_at_cap(split[s], activity, etas_[s]));
  }
  double power = params_.dram_watts;
  for (std::size_t s = 0; s < packages_.size(); ++s) {
    power += power_model_.power(slowest, activity, etas_[s]);
  }
  return power;
}

void NodeModel::accrue_energy(double node_joules, double seconds) {
  const double dram_joules = params_.dram_watts * seconds;
  dram_energy_joules_ += dram_joules;
  const double package_joules =
      std::max(node_joules - dram_joules, 0.0) /
      static_cast<double>(packages_.size());
  for (auto& package : packages_) {
    package.accumulate_energy(package_joules);
  }
}

double NodeModel::read_energy_joules() {
  double total = dram_energy_joules_;
  for (auto& package : packages_) {
    total += package.read_energy_joules();
  }
  return total;
}

RaplPackageDomain& NodeModel::package(std::size_t socket) {
  PS_REQUIRE(socket < packages_.size(), "socket index out of range");
  return packages_[socket];
}

GpuModel& NodeModel::attach_gpu(const GpuParams& params) {
  return gpus_.emplace_back(params);
}

GpuModel& NodeModel::gpu(std::size_t index) {
  PS_REQUIRE(index < gpus_.size(), "GPU index out of range");
  return gpus_[index];
}

const GpuModel& NodeModel::gpu(std::size_t index) const {
  PS_REQUIRE(index < gpus_.size(), "GPU index out of range");
  return gpus_[index];
}

double NodeModel::set_gpu_power_cap(double watts) {
  PS_REQUIRE(!gpus_.empty(), "node has no GPU devices to cap");
  const double per_device = watts / static_cast<double>(gpus_.size());
  double applied = 0.0;
  for (auto& gpu : gpus_) {
    applied += gpu.set_power_cap(per_device);
  }
  return applied;
}

double NodeModel::gpu_power_cap() const noexcept {
  double total = 0.0;
  for (const auto& gpu : gpus_) {
    total += gpu.power_cap();
  }
  return total;
}

double NodeModel::gpu_min_cap() const noexcept {
  double total = 0.0;
  for (const auto& gpu : gpus_) {
    total += gpu.min_cap();
  }
  return total;
}

double NodeModel::gpu_tdp() const noexcept {
  double total = 0.0;
  for (const auto& gpu : gpus_) {
    total += gpu.tdp();
  }
  return total;
}

double NodeModel::read_gpu_energy_joules() const noexcept {
  double total = 0.0;
  for (const auto& gpu : gpus_) {
    total += gpu.read_energy_joules();
  }
  return total;
}

}  // namespace ps::hw
