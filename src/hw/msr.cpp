#include "hw/msr.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace ps::hw {

namespace {
std::vector<MsrAccessEntry> default_allowlist() {
  // Mirrors the msr-safe allowlist entries needed for RAPL management:
  // the power-unit and power-info registers are read-only; the package
  // power-limit register exposes its limit/enable fields; the energy
  // counter is read-only from software.
  return {
      {msr::kRaplPowerUnit, 0x0},
      {msr::kPkgPowerLimit, 0x00ffffffffffffffULL},
      {msr::kPkgEnergyStatus, 0x0},
      {msr::kPkgPowerInfo, 0x0},
  };
}

std::string hex_address(std::uint32_t address) {
  std::ostringstream out;
  out << "0x" << std::hex << address;
  return out.str();
}
}  // namespace

std::vector<MsrAccessEntry> parse_msr_allowlist(std::string_view text) {
  std::vector<MsrAccessEntry> entries;
  std::size_t line_number = 0;
  for (const std::string& raw_line : util::split(text, '\n')) {
    ++line_number;
    std::string_view line = raw_line;
    const std::size_t comment = line.find('#');
    if (comment != std::string_view::npos) {
      line = line.substr(0, comment);
    }
    line = util::trim(line);
    if (line.empty()) {
      continue;
    }
    std::istringstream fields{std::string(line)};
    std::string address_text;
    std::string mask_text;
    std::string excess;
    fields >> address_text >> mask_text;
    PS_REQUIRE(!address_text.empty() && !mask_text.empty(),
               "allowlist line " + std::to_string(line_number) +
                   " needs 'address writemask'");
    PS_REQUIRE(!(fields >> excess), "allowlist line " +
                                        std::to_string(line_number) +
                                        " has trailing fields");
    MsrAccessEntry entry;
    try {
      entry.address = static_cast<std::uint32_t>(
          std::stoull(address_text, nullptr, 0));
      entry.write_mask = std::stoull(mask_text, nullptr, 0);
    } catch (const std::exception&) {
      throw InvalidArgument("allowlist line " +
                            std::to_string(line_number) +
                            " is not numeric: '" + std::string(line) + "'");
    }
    const bool duplicate = std::any_of(
        entries.begin(), entries.end(), [&](const MsrAccessEntry& seen) {
          return seen.address == entry.address;
        });
    PS_REQUIRE(!duplicate, "allowlist line " + std::to_string(line_number) +
                               " duplicates " + hex_address(entry.address));
    entries.push_back(entry);
  }
  return entries;
}

MsrFile::MsrFile() : MsrFile(default_allowlist()) {}

MsrFile::MsrFile(std::vector<MsrAccessEntry> allowlist)
    : allowlist_(std::move(allowlist)) {}

const MsrAccessEntry* MsrFile::find_entry(
    std::uint32_t address) const noexcept {
  for (const auto& entry : allowlist_) {
    if (entry.address == address) {
      return &entry;
    }
  }
  return nullptr;
}

std::uint64_t MsrFile::read(std::uint32_t address) const {
  const MsrAccessEntry* entry = find_entry(address);
  if (entry == nullptr) {
    throw NotFound("MSR " + hex_address(address) + " is not allowlisted");
  }
  return hw_load(address);
}

void MsrFile::write(std::uint32_t address, std::uint64_t value) {
  const MsrAccessEntry* entry = find_entry(address);
  if (entry == nullptr) {
    throw NotFound("MSR " + hex_address(address) + " is not allowlisted");
  }
  if (entry->write_mask == 0) {
    throw NotFound("MSR " + hex_address(address) + " is read-only");
  }
  const std::uint64_t current = hw_load(address);
  const std::uint64_t merged =
      (current & ~entry->write_mask) | (value & entry->write_mask);
  hw_store(address, merged);
}

void MsrFile::hw_store(std::uint32_t address, std::uint64_t value) {
  registers_[address] = value;
}

std::uint64_t MsrFile::hw_load(std::uint32_t address) const noexcept {
  const auto it = registers_.find(address);
  return it == registers_.end() ? 0 : it->second;
}

bool MsrFile::is_readable(std::uint32_t address) const noexcept {
  return find_entry(address) != nullptr;
}

bool MsrFile::is_writable(std::uint32_t address) const noexcept {
  const MsrAccessEntry* entry = find_entry(address);
  return entry != nullptr && entry->write_mask != 0;
}

}  // namespace ps::hw
