#include "hw/variation.hpp"

#include <algorithm>
#include <span>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ps::hw {

VariationModel::VariationModel(std::vector<VariationComponent> components)
    : components_(std::move(components)) {
  PS_REQUIRE(!components_.empty(), "need at least one variation component");
  for (const auto& component : components_) {
    PS_REQUIRE(component.count > 0, "component count must be positive");
    PS_REQUIRE(component.mean_eta > 0.0, "mean eta must be positive");
    PS_REQUIRE(component.sigma_eta >= 0.0, "sigma eta must be non-negative");
  }
}

VariationModel VariationModel::quartz_default() {
  // Calibrated so frequency_at_cap(70 W, a=1) lands near 1.65 / 1.80 /
  // 1.95 GHz for the three populations (paper Fig. 6), with cluster sizes
  // 522 / 918 / 560.
  return VariationModel({
      {522, 1.304, 0.030},  // low-frequency (leaky) parts
      {918, 1.004, 0.022},  // medium cluster used for the experiments
      {560, 0.791, 0.018},  // high-frequency (efficient) parts
  });
}

std::size_t VariationModel::total_count() const noexcept {
  std::size_t total = 0;
  for (const auto& component : components_) {
    total += component.count;
  }
  return total;
}

std::vector<double> VariationModel::generate(util::Rng& rng) const {
  std::vector<double> etas;
  etas.reserve(total_count());
  for (const auto& component : components_) {
    for (std::size_t i = 0; i < component.count; ++i) {
      const double eta = rng.normal(component.mean_eta, component.sigma_eta);
      etas.push_back(std::max(eta, 0.05));
    }
  }
  rng.shuffle(std::span<double>(etas));
  return etas;
}

}  // namespace ps::hw
