#include "analysis/export.hpp"

#include <ostream>

#include "util/table.hpp"

namespace ps::analysis {

void write_grid_csv(std::ostream& out,
                    const std::vector<MixRunResult>& runs) {
  util::CsvWriter csv(out);
  csv.write_row({"mix", "policy", "budget", "budget_watts",
                 "allocated_watts", "within_budget", "power_fraction",
                 "total_energy_joules", "mean_elapsed_seconds",
                 "total_gflop"});
  for (const MixRunResult& run : runs) {
    csv.write_row({run.mix_name, std::string(core::to_string(run.policy)),
                   std::string(core::to_string(run.level)),
                   util::format_fixed(run.budget_watts, 1),
                   util::format_fixed(run.allocated_watts, 1),
                   run.within_budget ? "1" : "0",
                   util::format_fixed(run.power_fraction_of_budget(), 4),
                   util::format_fixed(run.total_energy_joules(), 1),
                   util::format_fixed(run.mean_elapsed_seconds(), 6),
                   util::format_fixed(run.total_gflop(), 1)});
  }
}

void write_savings_csv(std::ostream& out,
                       const std::vector<SavingsRow>& rows) {
  util::CsvWriter csv(out);
  csv.write_row({"mix", "policy", "budget", "metric", "mean", "ci_lo",
                 "ci_hi"});
  for (const SavingsRow& row : rows) {
    const struct {
      const char* name;
      const util::ConfidenceInterval& ci;
    } metrics[] = {
        {"time_savings", row.savings.time},
        {"energy_savings", row.savings.energy},
        {"edp_savings", row.savings.edp},
        {"flops_per_watt_increase", row.savings.flops_per_watt},
    };
    for (const auto& metric : metrics) {
      csv.write_row({row.mix_name,
                     std::string(core::to_string(row.policy)),
                     std::string(core::to_string(row.level)), metric.name,
                     util::format_fixed(metric.ci.mean, 6),
                     util::format_fixed(metric.ci.lo(), 6),
                     util::format_fixed(metric.ci.hi(), 6)});
    }
  }
}

}  // namespace ps::analysis
