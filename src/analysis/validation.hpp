#pragma once

#include <string>
#include <vector>

#include "analysis/experiment.hpp"

namespace ps::analysis {

/// One of the paper's qualitative claims, checked against a fresh run of
/// the experiment grid.
struct ClaimResult {
  std::string id;           ///< e.g. "marker-d".
  std::string description;  ///< The claim in the paper's words.
  bool passed = false;
  std::string detail;       ///< Measured numbers behind the verdict.
};

/// The full self-check: every annotated marker and headline.
struct ValidationReport {
  std::vector<ClaimResult> claims;

  [[nodiscard]] bool all_passed() const;
  [[nodiscard]] std::size_t passed_count() const;
};

/// Runs the experiment grid at the given scale and programmatically
/// evaluates the paper's claims (Table III structure, Fig. 7 markers (a)
/// and (b), Fig. 8 markers (c) and (d), the savings headlines and
/// takeaways). This is the repository's reproduction self-check: if it
/// passes, the build reproduces the paper's qualitative results.
[[nodiscard]] ValidationReport validate_paper_claims(
    const ExperimentOptions& options);

}  // namespace ps::analysis
