#include "analysis/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>

#include "util/error.hpp"

namespace ps::analysis {

namespace {

/// One worker's slice of the task indices. Owners pop from the front,
/// thieves steal from the back, so a victim and its thief contend only
/// when one task is left.
struct WorkQueue {
  std::mutex mutex;
  std::deque<std::size_t> tasks;

  std::optional<std::size_t> pop_front() {
    const std::lock_guard<std::mutex> lock(mutex);
    if (tasks.empty()) {
      return std::nullopt;
    }
    const std::size_t task = tasks.front();
    tasks.pop_front();
    return task;
  }

  std::optional<std::size_t> steal_back() {
    const std::lock_guard<std::mutex> lock(mutex);
    if (tasks.empty()) {
      return std::nullopt;
    }
    const std::size_t task = tasks.back();
    tasks.pop_back();
    return task;
  }
};

}  // namespace

SweepExecutor::SweepExecutor(std::size_t workers, obs::Observability obs)
    : workers_(workers) {
  if (workers_ == 0) {
    workers_ = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  }
  if (obs.metrics != nullptr) {
    cells_metric_ = &obs.metrics->counter("analysis.sweep.cells");
    steals_metric_ = &obs.metrics->counter("analysis.sweep.steals");
    // Lower bucket edges in seconds; grid cells run tens of milliseconds
    // to a few seconds depending on the mix and iteration count.
    static constexpr double kCellBounds[] = {0.001, 0.005, 0.01,  0.05, 0.1,
                                             0.5,   1.0,   5.0,   10.0, 30.0};
    cell_seconds_ =
        &obs.metrics->histogram("analysis.sweep.cell_seconds", kCellBounds);
  }
}

void SweepExecutor::for_each(
    std::size_t count, const std::function<void(std::size_t)>& task) const {
  PS_REQUIRE(task != nullptr, "sweep task must not be empty");
  if (count == 0) {
    return;
  }
  // Wall-time per cell (steady clock, metrics only) and the cell counter.
  // Counter/histogram writes are lock-free, so workers record directly.
  const auto run_task = [&](std::size_t i) {
    if (cell_seconds_ == nullptr) {
      task(i);
    } else {
      const auto started = std::chrono::steady_clock::now();
      task(i);
      cell_seconds_->observe(
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        started)
              .count());
    }
    if (cells_metric_ != nullptr) {
      cells_metric_->add();
    }
  };
  const std::size_t workers = std::min(workers_, count);
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) {
      run_task(i);
    }
    return;
  }

  // Contiguous block partition: worker w starts on cells [w*count/W, ...)
  // and steals from the tail of its siblings once its own block drains.
  std::vector<WorkQueue> queues(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t begin = w * count / workers;
    const std::size_t end = (w + 1) * count / workers;
    for (std::size_t i = begin; i < end; ++i) {
      queues[w].tasks.push_back(i);
    }
  }

  std::mutex error_mutex;
  std::exception_ptr first_error;
  auto worker_main = [&](std::size_t self) {
    for (;;) {
      std::optional<std::size_t> index = queues[self].pop_front();
      for (std::size_t delta = 1; !index && delta < workers; ++delta) {
        index = queues[(self + delta) % workers].steal_back();
        if (index && steals_metric_ != nullptr) {
          steals_metric_->add();
        }
      }
      if (!index) {
        return;  // every queue is empty — nothing left to steal
      }
      {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (first_error) {
          return;  // a sibling already failed; drain without working
        }
      }
      try {
        run_task(*index);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) {
          first_error = std::current_exception();
        }
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back(worker_main, w);
  }
  for (auto& thread : pool) {
    thread.join();
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

SweepGridResult::SweepGridResult(std::size_t mixes,
                                 std::vector<core::BudgetLevel> levels,
                                 std::vector<core::PolicyKind> policies)
    : levels_(std::move(levels)), policies_(std::move(policies)) {
  PS_REQUIRE(!levels_.empty(), "sweep needs at least one budget level");
  PS_REQUIRE(!policies_.empty(), "sweep needs at least one policy");
  cells_.resize(mixes * levels_.size() * policies_.size());
}

std::size_t SweepGridResult::mix_count() const noexcept {
  return cells_.size() / (levels_.size() * policies_.size());
}

MixRunResult& SweepGridResult::slot(std::size_t mix, std::size_t level_index,
                                    std::size_t policy_index) {
  return cells_[(mix * levels_.size() + level_index) * policies_.size() +
                policy_index];
}

const MixRunResult& SweepGridResult::at(std::size_t mix,
                                        core::BudgetLevel level,
                                        core::PolicyKind policy) const {
  PS_REQUIRE(mix < mix_count(), "mix index out of range");
  const auto level_it = std::find(levels_.begin(), levels_.end(), level);
  const auto policy_it =
      std::find(policies_.begin(), policies_.end(), policy);
  if (level_it == levels_.end() || policy_it == policies_.end()) {
    throw NotFound("cell (" + std::string(core::to_string(level)) + ", " +
                   std::string(core::to_string(policy)) +
                   ") was not part of the sweep");
  }
  const std::size_t level_index =
      static_cast<std::size_t>(level_it - levels_.begin());
  const std::size_t policy_index =
      static_cast<std::size_t>(policy_it - policies_.begin());
  return cells_[(mix * levels_.size() + level_index) * policies_.size() +
                policy_index];
}

SweepGridResult run_grid(const SweepExecutor& executor,
                         std::span<const MixExperiment* const> experiments,
                         std::span<const core::BudgetLevel> levels,
                         std::span<const core::PolicyKind> policies) {
  for (const MixExperiment* experiment : experiments) {
    PS_REQUIRE(experiment != nullptr, "sweep experiment must not be null");
  }
  SweepGridResult grid(
      experiments.size(),
      std::vector<core::BudgetLevel>(levels.begin(), levels.end()),
      std::vector<core::PolicyKind>(policies.begin(), policies.end()));
  const std::size_t per_mix = levels.size() * policies.size();
  executor.for_each(
      experiments.size() * per_mix, [&](std::size_t index) {
        const std::size_t mix = index / per_mix;
        const std::size_t level_index = (index % per_mix) / policies.size();
        const std::size_t policy_index = index % policies.size();
        grid.slot(mix, level_index, policy_index) = experiments[mix]->run(
            levels[level_index], policies[policy_index]);
      });
  return grid;
}

}  // namespace ps::analysis
