#include "analysis/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <optional>
#include <thread>
#include <utility>

#include "util/error.hpp"

namespace ps::analysis {

namespace {

/// One worker's slice of the task indices. Owners pop from the front,
/// thieves steal from the back, so a victim and its thief contend only
/// when one task is left.
struct WorkQueue {
  std::mutex mutex;
  std::deque<std::size_t> tasks;

  std::optional<std::size_t> pop_front() {
    const std::lock_guard<std::mutex> lock(mutex);
    if (tasks.empty()) {
      return std::nullopt;
    }
    const std::size_t task = tasks.front();
    tasks.pop_front();
    return task;
  }

  std::optional<std::size_t> steal_back() {
    const std::lock_guard<std::mutex> lock(mutex);
    if (tasks.empty()) {
      return std::nullopt;
    }
    const std::size_t task = tasks.back();
    tasks.pop_back();
    return task;
  }
};

}  // namespace

/// Persistent worker pool. Threads are spawned once and park on
/// `work_cv` between batches; for_each publishes a batch (queues + task
/// wrapper) under `mutex`, bumps `batch`, and waits on `done_cv` until
/// every worker has drained and parked again.
///
/// Cancellation is a single atomic flag, not a per-task lock: workers
/// check it before each task with a relaxed-cost acquire load, and a
/// throwing worker publishes its exception (first one wins, under
/// error_mutex) and raises the flag. Cancelled workers keep popping and
/// stealing — executing nothing — so the queues always drain to empty
/// and the batch terminates at every worker count, never deadlocking on
/// leftover tasks.
struct SweepExecutor::Pool {
  explicit Pool(std::size_t thread_count) : queues(thread_count) {
    threads.reserve(thread_count);
    for (std::size_t w = 0; w < thread_count; ++w) {
      threads.emplace_back([this, w] { worker_main(w); });
    }
  }

  ~Pool() {
    {
      const std::lock_guard<std::mutex> lock(mutex);
      shutdown = true;
    }
    work_cv.notify_all();
    for (auto& thread : threads) {
      thread.join();
    }
  }

  void worker_main(std::size_t self) {
    std::uint64_t seen = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_cv.wait(lock, [&] { return shutdown || batch != seen; });
        if (shutdown) {
          return;
        }
        seen = batch;
      }
      drain(self);
      {
        const std::lock_guard<std::mutex> lock(mutex);
        if (--working == 0) {
          done_cv.notify_all();
        }
      }
    }
  }

  /// Pops own tasks (front) then steals from siblings (back) until every
  /// queue is empty. After cancellation, tasks are drained but not run.
  void drain(std::size_t self) {
    for (;;) {
      std::optional<std::size_t> index = queues[self].pop_front();
      for (std::size_t delta = 1; !index && delta < queues.size();
           ++delta) {
        index = queues[(self + delta) % queues.size()].steal_back();
        if (index && steals != nullptr) {
          steals->add();
        }
      }
      if (!index) {
        return;  // every queue is empty — nothing left to steal
      }
      if (cancelled.load(std::memory_order_acquire)) {
        continue;  // a sibling failed; keep draining without working
      }
      try {
        run(*index);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) {
            first_error = std::current_exception();
          }
        }
        cancelled.store(true, std::memory_order_release);
      }
    }
  }

  // Batch lifecycle state, guarded by `mutex`.
  std::mutex mutex;
  std::condition_variable work_cv;  ///< Workers park here between batches.
  std::condition_variable done_cv;  ///< for_each parks here during one.
  std::uint64_t batch = 0;
  std::size_t working = 0;  ///< Workers not yet parked for this batch.
  bool shutdown = false;

  /// Per-batch task wrapper (metrics included) and steal counter. Set by
  /// for_each before the batch is published; the referenced task outlives
  /// the batch because for_each blocks until it completes.
  std::function<void(std::size_t)> run;
  obs::Counter* steals = nullptr;

  std::vector<WorkQueue> queues;  ///< One per thread, refilled per batch.
  std::atomic<bool> cancelled{false};
  std::mutex error_mutex;  ///< Guards first_error during a batch.
  std::exception_ptr first_error;

  std::vector<std::thread> threads;
};

SweepExecutor::SweepExecutor(std::size_t workers, obs::Observability obs)
    : workers_(workers) {
  if (workers_ == 0) {
    workers_ = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  }
  if (obs.metrics != nullptr) {
    cells_metric_ = &obs.metrics->counter("analysis.sweep.cells");
    steals_metric_ = &obs.metrics->counter("analysis.sweep.steals");
    // Lower bucket edges in seconds; grid cells run tens of milliseconds
    // to a few seconds depending on the mix and iteration count.
    static constexpr double kCellBounds[] = {0.001, 0.005, 0.01,  0.05, 0.1,
                                             0.5,   1.0,   5.0,   10.0, 30.0};
    cell_seconds_ =
        &obs.metrics->histogram("analysis.sweep.cell_seconds", kCellBounds);
  }
}

SweepExecutor::~SweepExecutor() = default;

bool SweepExecutor::pool_started() const noexcept {
  const std::lock_guard<std::mutex> lock(pool_mutex_);
  return pool_ != nullptr;
}

void SweepExecutor::for_each(
    std::size_t count, const std::function<void(std::size_t)>& task) const {
  PS_REQUIRE(task != nullptr, "sweep task must not be empty");
  if (count == 0) {
    return;
  }
  // Wall-time per cell (steady clock, metrics only) and the cell counter.
  // Counter/histogram writes are lock-free, so workers record directly.
  const auto run_task = [&](std::size_t i) {
    if (cell_seconds_ == nullptr) {
      task(i);
    } else {
      const auto started = std::chrono::steady_clock::now();
      task(i);
      cell_seconds_->observe(
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        started)
              .count());
    }
    if (cells_metric_ != nullptr) {
      cells_metric_->add();
    }
  };
  if (std::min(workers_, count) <= 1) {
    for (std::size_t i = 0; i < count; ++i) {
      run_task(i);
    }
    return;
  }

  // One batch at a time: concurrent for_each callers (and pool creation)
  // serialize here. Note that a task must not call for_each on its own
  // executor — the nested batch would wait on the pool that is running
  // it. No harness does; they chain batches sequentially.
  const std::lock_guard<std::mutex> batch_lock(pool_mutex_);
  if (pool_ == nullptr) {
    pool_ = std::make_unique<Pool>(workers_);
  }
  Pool& pool = *pool_;

  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(pool.mutex);
    // Contiguous block partition: worker w starts on cells
    // [w*count/W, (w+1)*count/W) and steals from the tail of its
    // siblings once its own block drains.
    const std::size_t width = pool.queues.size();
    for (std::size_t w = 0; w < width; ++w) {
      const std::size_t begin = w * count / width;
      const std::size_t end = (w + 1) * count / width;
      pool.queues[w].tasks.clear();
      for (std::size_t i = begin; i < end; ++i) {
        pool.queues[w].tasks.push_back(i);
      }
    }
    pool.run = run_task;
    pool.steals = steals_metric_;
    pool.cancelled.store(false, std::memory_order_relaxed);
    pool.first_error = nullptr;
    pool.working = pool.threads.size();
    ++pool.batch;
    pool.work_cv.notify_all();
    pool.done_cv.wait(lock, [&] { return pool.working == 0; });
    error = std::exchange(pool.first_error, nullptr);
    pool.run = nullptr;  // drop the reference to the caller's task
  }
  if (error) {
    std::rethrow_exception(error);
  }
}

SweepGridResult::SweepGridResult(std::size_t mixes,
                                 std::vector<core::BudgetLevel> levels,
                                 std::vector<core::PolicyKind> policies)
    : levels_(std::move(levels)), policies_(std::move(policies)) {
  PS_REQUIRE(!levels_.empty(), "sweep needs at least one budget level");
  PS_REQUIRE(!policies_.empty(), "sweep needs at least one policy");
  level_index_.fill(kAbsent);
  policy_index_.fill(kAbsent);
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    const auto slot = static_cast<std::size_t>(levels_[i]);
    PS_REQUIRE(slot < kLevelSlots, "unknown budget level in sweep");
    PS_REQUIRE(level_index_[slot] == kAbsent,
               "duplicate budget level in sweep");
    level_index_[slot] = i;
  }
  for (std::size_t i = 0; i < policies_.size(); ++i) {
    const auto slot = static_cast<std::size_t>(policies_[i]);
    PS_REQUIRE(slot < kPolicySlots, "unknown policy kind in sweep");
    PS_REQUIRE(policy_index_[slot] == kAbsent,
               "duplicate policy kind in sweep");
    policy_index_[slot] = i;
  }
  cells_.resize(mixes * levels_.size() * policies_.size());
}

std::size_t SweepGridResult::mix_count() const noexcept {
  return cells_.size() / (levels_.size() * policies_.size());
}

MixRunResult& SweepGridResult::slot(std::size_t mix, std::size_t level_index,
                                    std::size_t policy_index) {
  return cells_[(mix * levels_.size() + level_index) * policies_.size() +
                policy_index];
}

const MixRunResult& SweepGridResult::at(std::size_t mix,
                                        core::BudgetLevel level,
                                        core::PolicyKind policy) const {
  PS_REQUIRE(mix < mix_count(), "mix index out of range");
  const auto level_slot = static_cast<std::size_t>(level);
  const auto policy_slot = static_cast<std::size_t>(policy);
  const std::size_t level_index =
      level_slot < kLevelSlots ? level_index_[level_slot] : kAbsent;
  const std::size_t policy_index =
      policy_slot < kPolicySlots ? policy_index_[policy_slot] : kAbsent;
  if (level_index == kAbsent || policy_index == kAbsent) {
    throw NotFound("cell (" + std::string(core::to_string(level)) + ", " +
                   std::string(core::to_string(policy)) +
                   ") was not part of the sweep");
  }
  return cells_[(mix * levels_.size() + level_index) * policies_.size() +
                policy_index];
}

SweepGridResult run_grid(const SweepExecutor& executor,
                         std::span<const MixExperiment* const> experiments,
                         std::span<const core::BudgetLevel> levels,
                         std::span<const core::PolicyKind> policies) {
  for (const MixExperiment* experiment : experiments) {
    PS_REQUIRE(experiment != nullptr, "sweep experiment must not be null");
  }
  SweepGridResult grid(
      experiments.size(),
      std::vector<core::BudgetLevel>(levels.begin(), levels.end()),
      std::vector<core::PolicyKind>(policies.begin(), policies.end()));
  const std::size_t per_mix = levels.size() * policies.size();
  executor.for_each(
      experiments.size() * per_mix, [&](std::size_t index) {
        const std::size_t mix = index / per_mix;
        const std::size_t level_index = (index % per_mix) / policies.size();
        const std::size_t policy_index = index % policies.size();
        grid.slot(mix, level_index, policy_index) = experiments[mix]->run(
            levels[level_index], policies[policy_index]);
      });
  return grid;
}

}  // namespace ps::analysis
