#include "analysis/heatmap.hpp"

#include <algorithm>
#include <sstream>

#include "core/mixes.hpp"
#include "runtime/characterization.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace ps::analysis {

namespace {
double grid_extreme(const std::vector<std::vector<double>>& grid, bool max) {
  PS_CHECK_STATE(!grid.empty() && !grid.front().empty(), "empty heatmap");
  double extreme = grid.front().front();
  for (const auto& row : grid) {
    for (double value : row) {
      extreme = max ? std::max(extreme, value) : std::min(extreme, value);
    }
  }
  return extreme;
}
}  // namespace

double HeatmapResult::monitor_max() const {
  return grid_extreme(monitor_power, true);
}
double HeatmapResult::monitor_min() const {
  return grid_extreme(monitor_power, false);
}
double HeatmapResult::balancer_max() const {
  return grid_extreme(balancer_power, true);
}
double HeatmapResult::balancer_min() const {
  return grid_extreme(balancer_power, false);
}

std::string HeatmapResult::to_table(bool balancer) const {
  const auto& grid = balancer ? balancer_power : monitor_power;
  util::TextTable table;
  table.add_column("FLOPs/byte", util::Align::kRight, 2);
  for (const auto& label : column_labels) {
    table.add_column(label, util::Align::kRight, 0);
  }
  for (std::size_t row = 0; row < intensities.size(); ++row) {
    table.begin_row();
    table.add_number(intensities[row]);
    for (double value : grid[row]) {
      table.add_cell(util::format_fixed(value, 0));
    }
  }
  return table.to_string();
}

HeatmapResult run_power_heatmap(sim::Cluster& cluster,
                                const std::vector<std::size_t>& node_indices,
                                hw::VectorWidth width,
                                std::size_t iterations) {
  PS_REQUIRE(!node_indices.empty(), "heatmap needs test nodes");
  PS_REQUIRE(iterations > 0, "heatmap needs iterations");

  const std::vector<kernel::WorkloadConfig> grid = core::heatmap_grid(width);
  HeatmapResult result;
  result.width = width;

  // Recover the row/column structure of the grid.
  for (const auto& config : grid) {
    if (result.column_labels.empty() ||
        config.intensity != result.intensities.back()) {
      if (std::find(result.intensities.begin(), result.intensities.end(),
                    config.intensity) == result.intensities.end()) {
        result.intensities.push_back(config.intensity);
      }
    }
  }
  const std::size_t columns = grid.size() / result.intensities.size();
  for (std::size_t c = 0; c < columns; ++c) {
    const auto& config = grid[c];
    std::ostringstream label;
    if (config.waiting_fraction <= 0.0) {
      label << "0%";
    } else {
      label << static_cast<int>(config.waiting_fraction * 100.0) << "% at "
            << static_cast<int>(config.imbalance) << "x";
    }
    result.column_labels.push_back(label.str());
  }

  std::vector<hw::NodeModel*> hosts;
  hosts.reserve(node_indices.size());
  for (std::size_t index : node_indices) {
    hosts.push_back(&cluster.node(index));
  }

  result.monitor_power.assign(result.intensities.size(),
                              std::vector<double>(columns, 0.0));
  result.balancer_power.assign(result.intensities.size(),
                               std::vector<double>(columns, 0.0));
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const std::size_t row = i / columns;
    const std::size_t column = i % columns;
    sim::JobSimulation job("heatmap-" + grid[i].name(), hosts, grid[i]);
    result.monitor_power[row][column] =
        runtime::characterize_monitor(job, iterations)
            .average_node_power_watts;
    sim::JobSimulation job2("heatmap2-" + grid[i].name(), hosts, grid[i]);
    result.balancer_power[row][column] =
        runtime::characterize_balancer(job2, iterations)
            .average_node_power_watts;
  }
  return result;
}

}  // namespace ps::analysis
