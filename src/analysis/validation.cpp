#include "analysis/validation.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/table.hpp"

namespace ps::analysis {

bool ValidationReport::all_passed() const {
  return std::all_of(claims.begin(), claims.end(),
                     [](const ClaimResult& claim) { return claim.passed; });
}

std::size_t ValidationReport::passed_count() const {
  return static_cast<std::size_t>(
      std::count_if(claims.begin(), claims.end(),
                    [](const ClaimResult& claim) { return claim.passed; }));
}

namespace {

std::string percent(double fraction) {
  return util::format_fixed(fraction * 100.0, 2) + "%";
}

}  // namespace

ValidationReport validate_paper_claims(const ExperimentOptions& options) {
  ExperimentDriver driver(options);

  // Run the full grid once; everything below reads from these maps.
  std::map<core::MixKind, core::PowerBudgets> budgets;
  std::map<core::MixKind, std::size_t> hosts;
  std::map<std::tuple<core::MixKind, core::BudgetLevel, core::PolicyKind>,
           MixRunResult>
      runs;
  std::map<std::tuple<core::MixKind, core::BudgetLevel, core::PolicyKind>,
           SavingsSummary>
      savings;
  for (core::MixKind mix : core::all_mix_kinds()) {
    MixExperiment experiment =
        driver.prepare(core::make_mix(mix, options.nodes_per_job));
    budgets[mix] = experiment.budgets();
    hosts[mix] = experiment.total_hosts();
    for (core::BudgetLevel level : core::all_budget_levels()) {
      const MixRunResult baseline =
          experiment.run(level, core::PolicyKind::kStaticCaps);
      for (core::PolicyKind policy : core::all_policy_kinds()) {
        if (policy == core::PolicyKind::kStaticCaps) {
          runs.emplace(std::make_tuple(mix, level, policy), baseline);
          continue;
        }
        MixRunResult run = experiment.run(level, policy);
        savings.emplace(std::make_tuple(mix, level, policy),
                        compute_savings(run, baseline));
        runs.emplace(std::make_tuple(mix, level, policy), std::move(run));
      }
    }
  }

  const auto run_of = [&](core::MixKind mix, core::BudgetLevel level,
                          core::PolicyKind policy) -> const MixRunResult& {
    return runs.at(std::make_tuple(mix, level, policy));
  };
  const auto savings_of =
      [&](core::MixKind mix, core::BudgetLevel level,
          core::PolicyKind policy) -> const SavingsSummary& {
    return savings.at(std::make_tuple(mix, level, policy));
  };

  ValidationReport report;
  const auto claim = [&](std::string id, std::string description,
                         bool passed, std::string detail) {
    report.claims.push_back(ClaimResult{std::move(id),
                                        std::move(description), passed,
                                        std::move(detail)});
  };

  // --- Table III structure ---
  {
    bool ordered = true;
    bool need_used_highest = true;
    const double need_used_min =
        budgets.at(core::MixKind::kNeedUsedPower).min_watts /
        static_cast<double>(hosts.at(core::MixKind::kNeedUsedPower));
    for (core::MixKind mix : core::all_mix_kinds()) {
      const core::PowerBudgets& b = budgets.at(mix);
      ordered = ordered && b.min_watts < b.ideal_watts &&
                b.ideal_watts < b.max_watts;
      if (mix != core::MixKind::kNeedUsedPower &&
          mix != core::MixKind::kLowPower) {
        const double min_node =
            b.min_watts / static_cast<double>(hosts.at(mix));
        need_used_highest =
            need_used_highest && need_used_min > min_node + 10.0;
      }
    }
    claim("table3-order", "min < ideal < max for every mix", ordered, "");
    std::ostringstream detail;
    detail << "NeedUsedPower min/node " << util::format_fixed(need_used_min, 1)
           << " W";
    claim("table3-needused",
          "NeedUsedPower has the highest min budget (all power is needed)",
          need_used_highest, detail.str());
  }

  // --- Fig. 7 marker (a): adaptive policies draw less at max ---
  {
    const double adaptive = run_of(core::MixKind::kWastefulPower,
                                   core::BudgetLevel::kMax,
                                   core::PolicyKind::kMixedAdaptive)
                                .power_fraction_of_budget();
    const double baseline = run_of(core::MixKind::kWastefulPower,
                                   core::BudgetLevel::kMax,
                                   core::PolicyKind::kStaticCaps)
                                .power_fraction_of_budget();
    claim("marker-a",
          "at the max budget, performance awareness enables less power use",
          adaptive < baseline - 0.02,
          percent(adaptive) + " vs " + percent(baseline));
  }

  // --- Fig. 7 marker (b): JobAdaptive under-utilizes at ideal ---
  {
    const double ja = run_of(core::MixKind::kWastefulPower,
                             core::BudgetLevel::kIdeal,
                             core::PolicyKind::kJobAdaptive)
                          .power_fraction_of_budget();
    const double ma = run_of(core::MixKind::kWastefulPower,
                             core::BudgetLevel::kIdeal,
                             core::PolicyKind::kMixedAdaptive)
                          .power_fraction_of_budget();
    claim("marker-b",
          "at the ideal budget, system awareness enables more utilization",
          ja < ma - 0.002, percent(ja) + " vs " + percent(ma));
  }

  // --- Precharacterized violates tight budgets ---
  {
    bool violates = true;
    bool fits_max = true;
    for (core::MixKind mix : core::all_mix_kinds()) {
      violates = violates &&
                 !run_of(mix, core::BudgetLevel::kMin,
                         core::PolicyKind::kPrecharacterized)
                      .within_budget;
      fits_max = fits_max && run_of(mix, core::BudgetLevel::kMax,
                                    core::PolicyKind::kPrecharacterized)
                                 .within_budget;
    }
    claim("precharacterized",
          "Precharacterized exceeds every budget except max", violates &&
          fits_max, "");
  }

  // --- Fig. 8 marker (c) ---
  {
    const double mw = savings_of(core::MixKind::kNeedUsedPower,
                                 core::BudgetLevel::kIdeal,
                                 core::PolicyKind::kMinimizeWaste)
                          .time.mean;
    const double ja = savings_of(core::MixKind::kNeedUsedPower,
                                 core::BudgetLevel::kIdeal,
                                 core::PolicyKind::kJobAdaptive)
                          .time.mean;
    claim("marker-c",
          "MinimizeWaste saves more time than JobAdaptive on "
          "NeedUsedPower/ideal",
          mw > ja, percent(mw) + " vs " + percent(ja));
  }

  // --- Fig. 8 marker (d) ---
  {
    const double ma = savings_of(core::MixKind::kWastefulPower,
                                 core::BudgetLevel::kMax,
                                 core::PolicyKind::kMixedAdaptive)
                          .energy.mean;
    const double ja = savings_of(core::MixKind::kWastefulPower,
                                 core::BudgetLevel::kMax,
                                 core::PolicyKind::kJobAdaptive)
                          .energy.mean;
    claim("marker-d",
          "MixedAdaptive saves more energy than JobAdaptive on "
          "WastefulPower/max",
          ma > ja + 0.005, percent(ma) + " vs " + percent(ja));
  }

  // --- Headlines ---
  {
    double best_time = 0.0;
    double best_energy = 0.0;
    for (const auto& [key, summary] : savings) {
      // Fig. 8 excludes Precharacterized (it cannot respect the budget).
      if (std::get<2>(key) == core::PolicyKind::kPrecharacterized) {
        continue;
      }
      best_time = std::max(best_time, summary.time.mean);
      best_energy = std::max(best_energy, summary.energy.mean);
    }
    claim("headline-time",
          "up to ~7% reduction in system time (measured 4-10%)",
          best_time > 0.04 && best_time < 0.12, percent(best_time));
    claim("headline-energy",
          "up to ~11% savings in compute energy (measured 6-14%)",
          best_energy > 0.06 && best_energy < 0.14, percent(best_energy));
  }

  // --- Takeaway 1: energy savings grow with surplus budget ---
  {
    const double at_min = savings_of(core::MixKind::kWastefulPower,
                                     core::BudgetLevel::kMin,
                                     core::PolicyKind::kMixedAdaptive)
                              .energy.mean;
    const double at_max = savings_of(core::MixKind::kWastefulPower,
                                     core::BudgetLevel::kMax,
                                     core::PolicyKind::kMixedAdaptive)
                              .energy.mean;
    claim("takeaway-1", "energy savings increase with surplus budget",
          at_max > at_min, percent(at_min) + " -> " + percent(at_max));
  }

  // --- Section VI-D: NeedUsedPower offers no energy opportunity ---
  {
    double worst = 0.0;
    for (core::BudgetLevel level : core::all_budget_levels()) {
      worst = std::max(worst,
                       std::abs(savings_of(core::MixKind::kNeedUsedPower,
                                           level,
                                           core::PolicyKind::kMixedAdaptive)
                                    .energy.mean));
    }
    claim("needused-energy",
          "NeedUsedPower shows no (meaningful) energy savings opportunity",
          worst < 0.03, "max |savings| " + percent(worst));
  }

  // --- Single-job mix: JobAdaptive == MixedAdaptive ---
  {
    const double ja = savings_of(core::MixKind::kHighImbalance,
                                 core::BudgetLevel::kIdeal,
                                 core::PolicyKind::kJobAdaptive)
                          .time.mean;
    const double ma = savings_of(core::MixKind::kHighImbalance,
                                 core::BudgetLevel::kIdeal,
                                 core::PolicyKind::kMixedAdaptive)
                          .time.mean;
    claim("single-job",
          "cross-job sharing cannot matter on the single-job mix",
          std::abs(ja - ma) < 0.01, percent(ja) + " vs " + percent(ma));
  }

  return report;
}

}  // namespace ps::analysis
