#include "analysis/roofline_analysis.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ps::analysis {

std::vector<double> fig3_intensities() {
  return {0.007, 0.04, 0.1, 0.25, 0.4, 0.7, 1.0, 2.0,
          4.0,   7.0,  8.0, 10.0, 16.0, 32.0, 40.0};
}

RooflineAnalysis analyze_roofline(const hw::NodeModel& node,
                                  const std::vector<double>& intensities) {
  PS_REQUIRE(!intensities.empty(), "roofline sweep needs intensities");
  const hw::RooflineModel& roofline = node.roofline();
  const double f_max = node.params().power.max_frequency_ghz;

  RooflineAnalysis analysis;
  analysis.memory_bandwidth_gbs = roofline.memory_bandwidth_gbs(f_max);
  analysis.scalar_peak_gflops =
      roofline.peak_gflops(hw::VectorWidth::kScalar, f_max);
  analysis.xmm_peak_gflops =
      roofline.peak_gflops(hw::VectorWidth::kXmm128, f_max);
  analysis.ymm_peak_gflops =
      roofline.peak_gflops(hw::VectorWidth::kYmm256, f_max);
  analysis.ridge_intensity_ymm =
      roofline.ridge_intensity(hw::VectorWidth::kYmm256, f_max);

  const hw::VectorWidth widths[] = {hw::VectorWidth::kScalar,
                                    hw::VectorWidth::kXmm128,
                                    hw::VectorWidth::kYmm256};
  for (hw::VectorWidth width : widths) {
    for (double intensity : intensities) {
      PS_REQUIRE(intensity >= 0.0, "intensity cannot be negative");
      RooflinePoint point;
      point.intensity = intensity;
      point.width = width;
      // Uncapped: the node runs at whatever frequency TDP allows.
      const hw::PhaseResult result =
          node.preview_compute(1.0, std::max(intensity, 1e-9), width,
                               node.tdp());
      point.achieved_gflops = result.gflops;
      const double bw = roofline.memory_bandwidth_gbs(result.frequency_ghz);
      const double peak = roofline.peak_gflops(width, result.frequency_ghz);
      point.envelope_gflops = std::min(intensity * bw, peak);
      analysis.points.push_back(point);
    }
  }
  return analysis;
}

}  // namespace ps::analysis
