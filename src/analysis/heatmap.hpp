#pragma once

#include <string>
#include <vector>

#include "hw/perf_model.hpp"
#include "sim/cluster.hpp"

namespace ps::analysis {

/// Reproduction of the paper's Figs. 4-5 heatmaps: per-node CPU power for
/// each (intensity x imbalance-configuration) cell of the workload grid,
/// measured under the monitor agent (uncapped, Fig. 4) and under the
/// power balancer at a TDP budget (Fig. 5).
struct HeatmapResult {
  hw::VectorWidth width = hw::VectorWidth::kYmm256;
  std::vector<double> intensities;          ///< Row labels.
  std::vector<std::string> column_labels;   ///< e.g. "50% at 3x".
  /// monitor_power[row][column], watts per node.
  std::vector<std::vector<double>> monitor_power;
  std::vector<std::vector<double>> balancer_power;

  [[nodiscard]] double monitor_max() const;
  [[nodiscard]] double monitor_min() const;
  [[nodiscard]] double balancer_max() const;
  [[nodiscard]] double balancer_min() const;
  /// Renders one of the two grids as a fixed-width table.
  [[nodiscard]] std::string to_table(bool balancer) const;
};

/// Runs the grid on `node_indices` of `cluster` (the paper uses 100 test
/// nodes), `iterations` bulk-synchronous iterations per cell.
[[nodiscard]] HeatmapResult run_power_heatmap(
    sim::Cluster& cluster, const std::vector<std::size_t>& node_indices,
    hw::VectorWidth width, std::size_t iterations = 5);

}  // namespace ps::analysis
