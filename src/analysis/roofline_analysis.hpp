#pragma once

#include <vector>

#include "hw/node.hpp"

namespace ps::analysis {

/// One data point of the roofline sweep (a colored dot in the paper's
/// Fig. 3).
struct RooflinePoint {
  double intensity = 0.0;  ///< FLOPs/byte.
  hw::VectorWidth width = hw::VectorWidth::kYmm256;
  double achieved_gflops = 0.0;
  double envelope_gflops = 0.0;  ///< min(I * BW, peak) at this intensity.
  /// Achieved / envelope: 1.0 means the kernel touches the roofline.
  [[nodiscard]] double efficiency() const {
    return envelope_gflops > 0.0 ? achieved_gflops / envelope_gflops : 0.0;
  }
};

/// Fig. 3 reproduction: the platform's roofline ceilings plus the kernel's
/// achieved throughput across an intensity sweep.
struct RooflineAnalysis {
  double memory_bandwidth_gbs = 0.0;
  double scalar_peak_gflops = 0.0;
  double xmm_peak_gflops = 0.0;
  double ymm_peak_gflops = 0.0;
  double ridge_intensity_ymm = 0.0;  ///< Where the ymm roof goes flat.
  std::vector<RooflinePoint> points;
};

/// Sweeps the analytic kernel model on `node` (uncapped) across
/// `intensities` for each of the three vector widths.
[[nodiscard]] RooflineAnalysis analyze_roofline(
    const hw::NodeModel& node, const std::vector<double>& intensities);

/// The paper's Fig. 3 intensity sweep {0.007 ... 40}, log-spaced.
[[nodiscard]] std::vector<double> fig3_intensities();

}  // namespace ps::analysis
