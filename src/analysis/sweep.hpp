#pragma once

#include <array>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "analysis/experiment.hpp"
#include "core/budget.hpp"
#include "core/policy.hpp"
#include "obs/obs.hpp"

namespace ps::analysis {

/// Thread-pool executor for the figure-grid sweeps (Figs. 7-8,
/// Tables II-III and the ext_* harnesses).
///
/// Tasks are indices into a fixed work list, partitioned into per-worker
/// queues; an idle worker steals from the back of its siblings' queues.
/// Because every task writes only its own pre-allocated result slot and
/// MixExperiment cells are pure functions of their coordinates, the
/// schedule cannot influence the results: any worker count produces
/// bit-identical output (the golden sweep test diffs the fig08 CSV of a
/// parallel run against the serial one).
///
/// The worker threads are created on the first parallel for_each and
/// reused for every subsequent call (a harness runs several grids —
/// characterization fan-out, then the sweep itself — and per-call
/// thread spawn/join overhead was measurable). Between batches the
/// workers sleep on a condition variable; the destructor shuts them
/// down. The executor is therefore non-copyable.
class SweepExecutor {
 public:
  /// `workers` = 0 picks std::thread::hardware_concurrency(); 1 runs
  /// every task inline on the caller, in index order (the legacy serial
  /// path — no threads are created). With a metrics registry in `obs`
  /// the executor publishes "analysis.sweep.*": cell and steal counters
  /// plus a per-cell wall-time histogram. Instrumentation never touches
  /// the results — cells stay bit-identical at any worker count.
  explicit SweepExecutor(std::size_t workers = 0, obs::Observability obs = {});
  ~SweepExecutor();

  SweepExecutor(const SweepExecutor&) = delete;
  SweepExecutor& operator=(const SweepExecutor&) = delete;

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return workers_;
  }

  /// Runs task(i) for every i in [0, count). Blocks until all tasks
  /// finish. If any task throws, the batch is cancelled: workers finish
  /// their in-flight task, then drain the remaining queues without
  /// executing them, and the first exception (by completion time) is
  /// rethrown on the caller once every worker has parked. The executor
  /// stays usable after a throw. Thread-safe; concurrent calls simply
  /// serialize on the shared pool.
  void for_each(std::size_t count,
                const std::function<void(std::size_t)>& task) const;

  /// True once the persistent worker pool exists (i.e., some parallel
  /// batch ran). Exposed for the pool-reuse regression tests.
  [[nodiscard]] bool pool_started() const noexcept;

 private:
  struct Pool;  // Persistent worker pool; defined in sweep.cpp.

  std::size_t workers_;
  /// Cached instruments (owned by the registry); null when unobserved.
  obs::Counter* cells_metric_ = nullptr;
  obs::Counter* steals_metric_ = nullptr;
  obs::Histogram* cell_seconds_ = nullptr;
  /// Lazily created on the first parallel batch, then reused. Guarded by
  /// pool_mutex_, which also serializes concurrent for_each callers.
  mutable std::unique_ptr<Pool> pool_;
  mutable std::mutex pool_mutex_;
};

/// The (mix, level, policy) cell results of a full grid sweep, indexed
/// the way the figure harnesses consume them.
///
/// Lookup by (level, policy) goes through small direct-mapped index
/// tables built at construction (the enums are dense), not a linear
/// search — at() sits in the reporting loops of every figure harness.
class SweepGridResult {
 public:
  /// Throws ps::Invalid when `levels` or `policies` contains duplicates
  /// (two cells would share a slot and silently overwrite each other).
  SweepGridResult(std::size_t mixes, std::vector<core::BudgetLevel> levels,
                  std::vector<core::PolicyKind> policies);

  [[nodiscard]] const std::vector<core::BudgetLevel>& levels()
      const noexcept {
    return levels_;
  }
  [[nodiscard]] const std::vector<core::PolicyKind>& policies()
      const noexcept {
    return policies_;
  }
  [[nodiscard]] std::size_t mix_count() const noexcept;
  [[nodiscard]] std::size_t cell_count() const noexcept {
    return cells_.size();
  }

  /// Throws ps::NotFound when the (level, policy) pair was not part of
  /// the sweep, and ps::Invalid when `mix` is out of range.
  [[nodiscard]] const MixRunResult& at(std::size_t mix,
                                       core::BudgetLevel level,
                                       core::PolicyKind policy) const;
  [[nodiscard]] MixRunResult& slot(std::size_t mix, std::size_t level_index,
                                   std::size_t policy_index);

 private:
  /// Sentinel for "this enumerator was not part of the sweep".
  static constexpr std::size_t kAbsent = static_cast<std::size_t>(-1);
  /// Direct-mapped enumerator -> sweep position tables.
  static constexpr std::size_t kLevelSlots =
      static_cast<std::size_t>(core::BudgetLevel::kMax) + 1;
  static constexpr std::size_t kPolicySlots =
      static_cast<std::size_t>(core::PolicyKind::kHeteroAdaptive) + 1;

  std::vector<core::BudgetLevel> levels_;
  std::vector<core::PolicyKind> policies_;
  std::array<std::size_t, kLevelSlots> level_index_{};
  std::array<std::size_t, kPolicySlots> policy_index_{};
  std::vector<MixRunResult> cells_;  ///< mix-major, then level, then policy.
};

/// Fans every (experiment, level, policy) cell out over the executor.
/// Results are bit-identical to calling experiments[m]->run(level,
/// policy) serially, in any order.
[[nodiscard]] SweepGridResult run_grid(
    const SweepExecutor& executor,
    std::span<const MixExperiment* const> experiments,
    std::span<const core::BudgetLevel> levels,
    std::span<const core::PolicyKind> policies);

}  // namespace ps::analysis
