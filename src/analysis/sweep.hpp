#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "analysis/experiment.hpp"
#include "core/budget.hpp"
#include "core/policy.hpp"
#include "obs/obs.hpp"

namespace ps::analysis {

/// Thread-pool executor for the figure-grid sweeps (Figs. 7-8,
/// Tables II-III and the ext_* harnesses).
///
/// Tasks are indices into a fixed work list, partitioned into per-worker
/// queues; an idle worker steals from the back of its siblings' queues.
/// Because every task writes only its own pre-allocated result slot and
/// MixExperiment cells are pure functions of their coordinates, the
/// schedule cannot influence the results: any worker count produces
/// bit-identical output (the golden sweep test diffs the fig08 CSV of a
/// parallel run against the serial one).
class SweepExecutor {
 public:
  /// `workers` = 0 picks std::thread::hardware_concurrency(); 1 runs
  /// every task inline on the caller, in index order (the legacy serial
  /// path — no threads are created). With a metrics registry in `obs`
  /// the executor publishes "analysis.sweep.*": cell and steal counters
  /// plus a per-cell wall-time histogram. Instrumentation never touches
  /// the results — cells stay bit-identical at any worker count.
  explicit SweepExecutor(std::size_t workers = 0, obs::Observability obs = {});

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return workers_;
  }

  /// Runs task(i) for every i in [0, count). Blocks until all tasks
  /// finish. If any task throws, the first exception (by completion
  /// time) is rethrown on the caller after every worker has drained.
  void for_each(std::size_t count,
                const std::function<void(std::size_t)>& task) const;

 private:
  std::size_t workers_;
  /// Cached instruments (owned by the registry); null when unobserved.
  obs::Counter* cells_metric_ = nullptr;
  obs::Counter* steals_metric_ = nullptr;
  obs::Histogram* cell_seconds_ = nullptr;
};

/// The (mix, level, policy) cell results of a full grid sweep, indexed
/// the way the figure harnesses consume them.
class SweepGridResult {
 public:
  SweepGridResult(std::size_t mixes, std::vector<core::BudgetLevel> levels,
                  std::vector<core::PolicyKind> policies);

  [[nodiscard]] const std::vector<core::BudgetLevel>& levels()
      const noexcept {
    return levels_;
  }
  [[nodiscard]] const std::vector<core::PolicyKind>& policies()
      const noexcept {
    return policies_;
  }
  [[nodiscard]] std::size_t mix_count() const noexcept;
  [[nodiscard]] std::size_t cell_count() const noexcept {
    return cells_.size();
  }

  /// Throws ps::NotFound when the (level, policy) pair was not part of
  /// the sweep.
  [[nodiscard]] const MixRunResult& at(std::size_t mix,
                                       core::BudgetLevel level,
                                       core::PolicyKind policy) const;
  [[nodiscard]] MixRunResult& slot(std::size_t mix, std::size_t level_index,
                                   std::size_t policy_index);

 private:
  std::vector<core::BudgetLevel> levels_;
  std::vector<core::PolicyKind> policies_;
  std::vector<MixRunResult> cells_;  ///< mix-major, then level, then policy.
};

/// Fans every (experiment, level, policy) cell out over the executor.
/// Results are bit-identical to calling experiments[m]->run(level,
/// policy) serially, in any order.
[[nodiscard]] SweepGridResult run_grid(
    const SweepExecutor& executor,
    std::span<const MixExperiment* const> experiments,
    std::span<const core::BudgetLevel> levels,
    std::span<const core::PolicyKind> policies);

}  // namespace ps::analysis
