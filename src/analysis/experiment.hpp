#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/budget.hpp"
#include "core/mixes.hpp"
#include "core/policy.hpp"
#include "sim/cluster.hpp"
#include "sim/job_sim.hpp"
#include "util/stats.hpp"

namespace ps::analysis {

/// Knobs of the Figs. 7-8 experiment grid.
struct ExperimentOptions {
  std::size_t nodes_per_job = 100;  ///< The paper's scale; tests use less.
  std::size_t iterations = 100;     ///< Measured iterations per run.
  std::size_t characterization_iterations = 5;
  double noise_time_sigma = 0.004;  ///< Per-iteration OS jitter.
  std::uint64_t seed = 42;
  /// If true, nodes get Quartz-like manufacturing variation and jobs run
  /// on the selected frequency bin, as in the paper. If false, the
  /// cluster is homogeneous (faster; used by unit tests).
  bool hardware_variation = true;
  /// Which k-means frequency bin hosts the jobs: 0 = low, 1 = medium
  /// (the paper's choice), 2 = high. Ignored without hardware_variation.
  std::size_t frequency_bin = 1;
  /// Hardware model constants (the sensitivity bench perturbs these).
  hw::NodeParams node_params{};
  /// Balancer knobs used during characterization.
  runtime::BalancerOptions balancer{};
  /// Worker threads the sweep harnesses fan the (mix, level, policy) grid
  /// out over (the --jobs flag): 0 = hardware_concurrency, 1 = serial.
  /// Purely an execution knob — results are bit-identical at any value.
  std::size_t sweep_workers = 0;
};

/// Per-job outcome of one measured run.
struct JobRunMetrics {
  std::string job_name;
  double elapsed_seconds = 0.0;
  double energy_joules = 0.0;
  double gflop = 0.0;
  double average_node_power_watts = 0.0;
  double allocated_watts = 0.0;  ///< Sum of this job's host caps.
  std::vector<double> iteration_seconds;
  std::vector<double> iteration_energy_joules;
};

/// One cell of the experiment grid: a (mix, budget, policy) run.
struct MixRunResult {
  std::string mix_name;
  core::PolicyKind policy = core::PolicyKind::kStaticCaps;
  core::BudgetLevel level = core::BudgetLevel::kMin;
  double budget_watts = 0.0;
  double allocated_watts = 0.0;
  bool within_budget = true;
  std::vector<JobRunMetrics> jobs;

  /// System power while the mix runs (jobs run concurrently), as a
  /// fraction of the budget — a Fig. 7 bar.
  [[nodiscard]] double power_fraction_of_budget() const;
  [[nodiscard]] double system_power_watts() const;
  [[nodiscard]] double total_energy_joules() const;
  [[nodiscard]] double total_gflop() const;
  /// Mean per-job elapsed time (every job runs the same iteration count).
  [[nodiscard]] double mean_elapsed_seconds() const;
};

/// Savings of a policy versus the StaticCaps baseline (a Fig. 8 bar with
/// its 95% confidence interval). Positive = improvement.
struct SavingsSummary {
  util::ConfidenceInterval time;            ///< Fractional time savings.
  util::ConfidenceInterval energy;          ///< Fractional energy savings.
  util::ConfidenceInterval edp;             ///< Fractional EDP savings.
  util::ConfidenceInterval flops_per_watt;  ///< Fractional FLOPS/W increase.
  /// Sign-flip permutation p-values for "the savings are zero".
  double time_pvalue = 1.0;
  double energy_pvalue = 1.0;
};

/// Which statistics compute_savings derives from the paired samples.
/// The permutation p-values cost ~2000x more RNG work than the
/// confidence intervals, so callers that never report them (the Fig. 8
/// savings tables and CSV carry means and CIs only) should ask for
/// kIntervalsOnly; the skipped p-value fields keep their default 1.0.
enum class SavingsStatistics {
  kFull,           ///< Confidence intervals and permutation p-values.
  kIntervalsOnly,  ///< Confidence intervals; p-values left at 1.0.
};

/// Per-iteration, per-job paired comparison against the baseline run.
[[nodiscard]] SavingsSummary compute_savings(
    const MixRunResult& run, const MixRunResult& baseline,
    SavingsStatistics statistics = SavingsStatistics::kFull);

/// A characterized mix, ready to run under any (budget, policy) pair.
///
/// Construction clones the granted cluster nodes into private copies and
/// pre-characterizes every job on them, so neither construction nor runs
/// touch shared cluster state. After construction the object is
/// immutable: run()/run_with() execute on a fresh per-cell clone of the
/// job simulations with a noise stream seeded deterministically from
/// (seed, mix, level, policy). A cell's result is therefore a pure
/// function of the options and the cell coordinates — independent of run
/// order and safe to compute from concurrent threads (the contract
/// analysis::SweepExecutor relies on).
class MixExperiment {
 public:
  MixExperiment(const sim::Cluster& cluster,
                std::vector<std::size_t> experiment_nodes,
                const core::WorkloadMix& mix, const ExperimentOptions& options);

  [[nodiscard]] const std::string& mix_name() const noexcept {
    return mix_name_;
  }
  [[nodiscard]] const core::PowerBudgets& budgets() const noexcept {
    return budgets_;
  }
  [[nodiscard]] const std::vector<runtime::JobCharacterization>&
  characterizations() const noexcept {
    return characterizations_;
  }
  [[nodiscard]] std::size_t total_hosts() const noexcept;

  /// Allocates with `policy` under the given budget level and runs every
  /// job for options.iterations measured iterations.
  [[nodiscard]] MixRunResult run(core::BudgetLevel level,
                                 core::PolicyKind policy) const;

  /// Same, with an explicit policy object (for ablation variants). The
  /// label also selects the cell's deterministic noise seed, so a variant
  /// sees the same jitter as the stock policy it ablates.
  [[nodiscard]] MixRunResult run_with(core::BudgetLevel level,
                                      const core::Policy& policy,
                                      core::PolicyKind label) const;

 private:
  /// One job of the mix: the privately owned host models plus the
  /// simulation used during characterization (kept for its workload
  /// config and host roster; measured runs clone it per cell).
  struct OwnedJob {
    std::vector<std::unique_ptr<hw::NodeModel>> nodes;
    std::unique_ptr<sim::JobSimulation> sim;
  };

  /// Root of the per-cell noise stream: hash(seed, mix, level, policy)
  /// realized through the util::Rng::fork discipline.
  [[nodiscard]] util::Rng cell_rng(core::BudgetLevel level,
                                   core::PolicyKind label) const;

  /// The PolicyContext handed to every policy at `level`. The contexts
  /// differ across levels only in system_budget_watts (node TDP, the
  /// uncappable floor, and the characterizations are level-invariant),
  /// so all three are derived once at construction instead of being
  /// rebuilt — characterization copies included — for each of the
  /// grid's cells.
  [[nodiscard]] const core::PolicyContext& context_for(
      core::BudgetLevel level) const;

  std::string mix_name_;
  ExperimentOptions options_;
  std::vector<OwnedJob> jobs_;
  std::vector<runtime::JobCharacterization> characterizations_;
  core::PowerBudgets budgets_;
  /// Memoized per-level contexts, indexed by BudgetLevel.
  std::vector<core::PolicyContext> contexts_;
};

/// Owns the cluster and orchestrates the full grid.
class ExperimentDriver {
 public:
  explicit ExperimentDriver(const ExperimentOptions& options = {});

  [[nodiscard]] sim::Cluster& cluster() noexcept { return *cluster_; }
  /// Node indices jobs run on (the medium-frequency k-means cluster when
  /// hardware variation is on).
  [[nodiscard]] const std::vector<std::size_t>& experiment_nodes()
      const noexcept {
    return experiment_nodes_;
  }

  /// Characterizes one mix (reusable across budgets and policies).
  /// Thread-safe: the MixExperiment works on private node clones, so
  /// several mixes can be prepared from one driver concurrently.
  [[nodiscard]] MixExperiment prepare(const core::WorkloadMix& mix) const;

  [[nodiscard]] const ExperimentOptions& options() const noexcept {
    return options_;
  }

 private:
  ExperimentOptions options_;
  std::unique_ptr<sim::Cluster> cluster_;
  std::vector<std::size_t> experiment_nodes_;
};

}  // namespace ps::analysis
