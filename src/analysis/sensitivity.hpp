#pragma once

#include <string>
#include <vector>

#include "analysis/experiment.hpp"

namespace ps::analysis {

/// One perturbed-model case of the calibration-sensitivity study.
struct SensitivityCase {
  std::string parameter;  ///< e.g. "bandwidth_floor".
  double value = 0.0;
  /// Headline cells under the perturbed model (WastefulPower mix).
  double time_savings_ideal = 0.0;    ///< MixedAdaptive at ideal.
  double energy_savings_max = 0.0;    ///< MixedAdaptive at max.
  /// Do the key orderings survive? (marker (d): MixedAdaptive beats
  /// JobAdaptive on energy at max; MixedAdaptive beats StaticCaps on
  /// time at ideal.)
  bool marker_d_holds = false;
  bool time_ordering_holds = false;
};

/// The parameter grid: each calibrated model constant perturbed around
/// its default while the others stay fixed.
struct SensitivityOptions {
  std::size_t nodes_per_job = 8;
  std::size_t iterations = 16;
  std::vector<double> bandwidth_floors = {0.60, 0.70, 0.80};
  std::vector<double> dram_watts = {8.0, 16.0, 24.0};
  std::vector<double> poll_activities = {0.80, 0.85, 0.90};
  std::vector<double> tolerated_slowdowns = {0.02, 0.035, 0.05};
};

/// Runs the study. The reproduction's conclusions should be robust: the
/// orderings hold for every perturbation even though magnitudes move.
[[nodiscard]] std::vector<SensitivityCase> run_sensitivity(
    const SensitivityOptions& options);

}  // namespace ps::analysis
