#include "analysis/sensitivity.hpp"

#include "core/mixes.hpp"

namespace ps::analysis {

namespace {

SensitivityCase run_case(const SensitivityOptions& options,
                         std::string parameter, double value,
                         const ExperimentOptions& experiment_options) {
  ExperimentDriver driver(experiment_options);
  MixExperiment experiment = driver.prepare(core::make_mix(
      core::MixKind::kWastefulPower, experiment_options.nodes_per_job));

  SensitivityCase result;
  result.parameter = std::move(parameter);
  result.value = value;

  const MixRunResult ideal_base =
      experiment.run(core::BudgetLevel::kIdeal,
                     core::PolicyKind::kStaticCaps);
  const SavingsSummary ideal_mixed = compute_savings(
      experiment.run(core::BudgetLevel::kIdeal,
                     core::PolicyKind::kMixedAdaptive),
      ideal_base);
  result.time_savings_ideal = ideal_mixed.time.mean;
  result.time_ordering_holds = ideal_mixed.time.mean > 0.0;

  const MixRunResult max_base = experiment.run(
      core::BudgetLevel::kMax, core::PolicyKind::kStaticCaps);
  const SavingsSummary max_mixed = compute_savings(
      experiment.run(core::BudgetLevel::kMax,
                     core::PolicyKind::kMixedAdaptive),
      max_base);
  const SavingsSummary max_job = compute_savings(
      experiment.run(core::BudgetLevel::kMax,
                     core::PolicyKind::kJobAdaptive),
      max_base);
  result.energy_savings_max = max_mixed.energy.mean;
  result.marker_d_holds = max_mixed.energy.mean > max_job.energy.mean;
  static_cast<void>(options);
  return result;
}

ExperimentOptions base_experiment_options(
    const SensitivityOptions& options) {
  ExperimentOptions experiment;
  experiment.nodes_per_job = options.nodes_per_job;
  experiment.iterations = options.iterations;
  experiment.characterization_iterations = 3;
  experiment.hardware_variation = false;
  experiment.noise_time_sigma = 0.002;
  return experiment;
}

}  // namespace

std::vector<SensitivityCase> run_sensitivity(
    const SensitivityOptions& options) {
  std::vector<SensitivityCase> cases;

  for (double floor : options.bandwidth_floors) {
    ExperimentOptions experiment = base_experiment_options(options);
    experiment.node_params.roofline.bandwidth_frequency_floor = floor;
    cases.push_back(
        run_case(options, "bandwidth_floor", floor, experiment));
  }
  for (double dram : options.dram_watts) {
    ExperimentOptions experiment = base_experiment_options(options);
    experiment.node_params.dram_watts = dram;
    cases.push_back(run_case(options, "dram_watts", dram, experiment));
  }
  for (double poll : options.poll_activities) {
    ExperimentOptions experiment = base_experiment_options(options);
    experiment.node_params.activity.poll_activity = poll;
    cases.push_back(run_case(options, "poll_activity", poll, experiment));
  }
  for (double slowdown : options.tolerated_slowdowns) {
    ExperimentOptions experiment = base_experiment_options(options);
    experiment.balancer.tolerated_slowdown = slowdown;
    cases.push_back(
        run_case(options, "tolerated_slowdown", slowdown, experiment));
  }
  return cases;
}

}  // namespace ps::analysis
