#pragma once

#include <iosfwd>
#include <map>
#include <utility>

#include "analysis/experiment.hpp"

namespace ps::analysis {

/// Writes one experiment-grid run per row:
///
///   mix,policy,budget,budget_watts,allocated_watts,within_budget,
///   power_fraction,total_energy_joules,mean_elapsed_seconds,total_gflop
///
/// The machine-readable counterpart of Fig. 7.
void write_grid_csv(std::ostream& out,
                    const std::vector<MixRunResult>& runs);

/// Writes one savings comparison per row (policy vs baseline per mix and
/// budget), with 95% CI bounds — the machine-readable Fig. 8:
///
///   mix,policy,budget,metric,mean,ci_lo,ci_hi
struct SavingsRow {
  std::string mix_name;
  core::PolicyKind policy = core::PolicyKind::kMixedAdaptive;
  core::BudgetLevel level = core::BudgetLevel::kMin;
  SavingsSummary savings;
};

void write_savings_csv(std::ostream& out,
                       const std::vector<SavingsRow>& rows);

}  // namespace ps::analysis
