#include "analysis/experiment.hpp"

#include <algorithm>
#include <string_view>

#include "core/policies.hpp"
#include "hw/quartz_spec.hpp"
#include "rm/power_manager.hpp"
#include "rm/scheduler.hpp"
#include "runtime/basic_agents.hpp"
#include "runtime/controller.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace ps::analysis {

double MixRunResult::system_power_watts() const {
  // Jobs run concurrently: system power is the sum of per-job average
  // draw (each job's energy over its own elapsed time).
  double total = 0.0;
  for (const auto& job : jobs) {
    if (job.elapsed_seconds > 0.0) {
      total += job.energy_joules / job.elapsed_seconds;
    }
  }
  return total;
}

double MixRunResult::power_fraction_of_budget() const {
  PS_CHECK_STATE(budget_watts > 0.0, "run has no budget");
  return system_power_watts() / budget_watts;
}

double MixRunResult::total_energy_joules() const {
  double total = 0.0;
  for (const auto& job : jobs) {
    total += job.energy_joules;
  }
  return total;
}

double MixRunResult::total_gflop() const {
  double total = 0.0;
  for (const auto& job : jobs) {
    total += job.gflop;
  }
  return total;
}

double MixRunResult::mean_elapsed_seconds() const {
  PS_CHECK_STATE(!jobs.empty(), "run has no jobs");
  double total = 0.0;
  for (const auto& job : jobs) {
    total += job.elapsed_seconds;
  }
  return total / static_cast<double>(jobs.size());
}

SavingsSummary compute_savings(const MixRunResult& run,
                               const MixRunResult& baseline,
                               SavingsStatistics statistics) {
  PS_REQUIRE(run.jobs.size() == baseline.jobs.size(),
             "runs compare different job sets");
  std::vector<double> time_samples;
  std::vector<double> energy_samples;
  std::vector<double> edp_samples;
  std::vector<double> flops_per_watt_samples;
  for (std::size_t j = 0; j < run.jobs.size(); ++j) {
    const auto& policy_job = run.jobs[j];
    const auto& baseline_job = baseline.jobs[j];
    PS_REQUIRE(policy_job.iteration_seconds.size() ==
                   baseline_job.iteration_seconds.size(),
               "runs have different iteration counts");
    for (std::size_t i = 0; i < policy_job.iteration_seconds.size(); ++i) {
      const double t_policy = policy_job.iteration_seconds[i];
      const double t_base = baseline_job.iteration_seconds[i];
      const double e_policy = policy_job.iteration_energy_joules[i];
      const double e_base = baseline_job.iteration_energy_joules[i];
      PS_REQUIRE(t_base > 0.0 && e_base > 0.0,
                 "baseline iteration has no time or energy");
      time_samples.push_back(1.0 - t_policy / t_base);
      energy_samples.push_back(1.0 - e_policy / e_base);
      edp_samples.push_back(1.0 -
                            (e_policy * t_policy) / (e_base * t_base));
      // GFLOP per iteration is fixed by the workload, so FLOPS/W reduces
      // to the inverse energy ratio.
      flops_per_watt_samples.push_back(e_base / e_policy - 1.0);
    }
  }
  SavingsSummary summary;
  summary.time = util::confidence_interval95(time_samples);
  summary.energy = util::confidence_interval95(energy_samples);
  summary.edp = util::confidence_interval95(edp_samples);
  summary.flops_per_watt =
      util::confidence_interval95(flops_per_watt_samples);
  if (statistics == SavingsStatistics::kFull) {
    util::Rng pvalue_rng(0x51f);
    summary.time_pvalue =
        util::permutation_pvalue(time_samples, pvalue_rng);
    summary.energy_pvalue =
        util::permutation_pvalue(energy_samples, pvalue_rng);
  }
  return summary;
}

namespace {

/// FNV-1a, used to fold the mix name into the per-cell seed chain.
std::uint64_t fnv1a64(std::string_view text) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

/// Fork label separating the per-cell noise streams from the
/// construction-time job seeder, which forks Rng(seed) directly.
constexpr std::uint64_t kCellStream = 0x9c3175ULL;

}  // namespace

MixExperiment::MixExperiment(const sim::Cluster& cluster,
                             std::vector<std::size_t> experiment_nodes,
                             const core::WorkloadMix& mix,
                             const ExperimentOptions& options)
    : mix_name_(mix.name), options_(options) {
  PS_REQUIRE(!mix.jobs.empty(), "mix has no jobs");
  PS_REQUIRE(mix.total_nodes() <= experiment_nodes.size(),
             "mix needs more nodes than the experiment pool has");

  // Schedule the jobs onto the pool (FIFO; all fit simultaneously).
  rm::Scheduler scheduler(experiment_nodes);
  for (const auto& request : mix.jobs) {
    scheduler.submit(request);
  }
  const std::vector<rm::NodeGrant> grants = scheduler.start_pending();
  PS_CHECK_STATE(grants.size() == mix.jobs.size(),
                 "scheduler failed to start every job of the mix");

  util::Rng seeder(options.seed);
  for (std::size_t j = 0; j < mix.jobs.size(); ++j) {
    OwnedJob owned;
    std::vector<hw::NodeModel*> hosts;
    hosts.reserve(grants[j].node_indices.size());
    for (std::size_t index : grants[j].node_indices) {
      // Private clone: characterization and measured runs must not touch
      // the shared cluster, so experiments are independent of each other.
      owned.nodes.push_back(
          std::make_unique<hw::NodeModel>(cluster.node(index)));
      hosts.push_back(owned.nodes.back().get());
    }
    sim::NoiseParams noise{options.noise_time_sigma};
    owned.sim = std::make_unique<sim::JobSimulation>(
        mix.jobs[j].name, std::move(hosts), mix.jobs[j].workload, noise,
        seeder.fork(j));
    jobs_.push_back(std::move(owned));
  }

  // Pre-characterize every job on its own hosts (paper Section IV-B).
  characterizations_.reserve(jobs_.size());
  for (auto& job : jobs_) {
    characterizations_.push_back(runtime::characterize_job(
        *job.sim, options.characterization_iterations, options.balancer));
  }
  budgets_ = core::select_budgets(characterizations_);

  // Memoize the per-level policy contexts (see context_for): everything
  // but the budget is level-invariant, so building them here saves a
  // characterization copy per grid cell.
  double node_tdp = hw::QuartzSpec::kTdpPerNodeW;
  for (const auto& job : characterizations_) {
    node_tdp = std::max(node_tdp, job.node_tdp_watts);
  }
  for (const core::BudgetLevel level : core::all_budget_levels()) {
    core::PolicyContext context;
    context.system_budget_watts = budgets_.at(level);
    // Context-wide fallback only; every characterization carries its own
    // per-job TDP, so heterogeneous jobs are clamped against their own
    // hardware rather than whichever job happened to be scheduled last.
    context.node_tdp_watts = node_tdp;
    context.uncappable_watts = options_.node_params.dram_watts;
    context.jobs = characterizations_;
    contexts_.push_back(std::move(context));
  }
}

const core::PolicyContext& MixExperiment::context_for(
    core::BudgetLevel level) const {
  const auto index = static_cast<std::size_t>(level);
  PS_CHECK_STATE(index < contexts_.size(), "unknown budget level");
  return contexts_[index];
}

std::size_t MixExperiment::total_hosts() const noexcept {
  std::size_t total = 0;
  for (const auto& job : jobs_) {
    total += job.sim->host_count();
  }
  return total;
}

util::Rng MixExperiment::cell_rng(core::BudgetLevel level,
                                  core::PolicyKind label) const {
  return util::Rng(options_.seed)
      .fork(kCellStream)
      .fork(fnv1a64(mix_name_))
      .fork(static_cast<std::uint64_t>(level))
      .fork(static_cast<std::uint64_t>(label));
}

MixRunResult MixExperiment::run(core::BudgetLevel level,
                                core::PolicyKind policy) const {
  return run_with(level, *core::make_policy(policy), policy);
}

namespace {

/// Reusable per-cell world: the host clones live contiguously (instead
/// of one heap allocation per node) and the buffers keep their capacity
/// across cells, so a sweep worker pays for the cell arena once and then
/// only copy-constructs into it. One arena per thread: run_with() is
/// const and called concurrently by the sweep pool, and the simulations
/// hold raw pointers into `nodes`, so the storage must be private to the
/// cell being run.
struct CellArena {
  std::vector<hw::NodeModel> nodes;
  std::vector<sim::JobSimulation> sims;

  void reset(std::size_t node_count, std::size_t job_count) {
    nodes.clear();
    sims.clear();
    // Reserving the exact node count up front keeps the NodeModel*
    // rosters handed to the simulations stable while the arena fills.
    nodes.reserve(node_count);
    sims.reserve(job_count);
  }
};

CellArena& local_cell_arena() {
  thread_local CellArena arena;
  return arena;
}

}  // namespace

MixRunResult MixExperiment::run_with(core::BudgetLevel level,
                                     const core::Policy& policy,
                                     core::PolicyKind label) const {
  const double budget = budgets_.at(level);
  const rm::PowerAllocation allocation =
      policy.allocate(context_for(level));

  // Per-cell run context: fresh host clones and simulations, with the
  // noise stream seeded by (seed, mix, level, policy). The cell result is
  // a pure function of its coordinates — run order and concurrency
  // cannot change a single bit of it.
  util::Rng noise_seeder = cell_rng(level, label);
  std::size_t node_count = 0;
  for (const auto& job : jobs_) {
    node_count += job.nodes.size();
  }
  CellArena& arena = local_cell_arena();
  arena.reset(node_count, jobs_.size());
  for (std::size_t j = 0; j < jobs_.size(); ++j) {
    std::vector<hw::NodeModel*> hosts;
    hosts.reserve(jobs_[j].nodes.size());
    for (const auto& node : jobs_[j].nodes) {
      arena.nodes.push_back(*node);
      hosts.push_back(&arena.nodes.back());
    }
    sim::NoiseParams noise{options_.noise_time_sigma};
    arena.sims.emplace_back(jobs_[j].sim->name(), std::move(hosts),
                            jobs_[j].sim->workload(), noise,
                            noise_seeder.fork(j));
  }

  std::vector<sim::JobSimulation*> job_ptrs;
  job_ptrs.reserve(arena.sims.size());
  for (auto& sim : arena.sims) {
    job_ptrs.push_back(&sim);
  }
  const rm::SystemPowerManager manager(budget);
  // System-unaware policies may legitimately exceed the budget; the
  // experiment records the violation instead of rejecting it, as the
  // paper does for Precharacterized.
  manager.apply(job_ptrs, allocation,
                /*enforce_budget=*/false);

  MixRunResult result;
  result.mix_name = mix_name_;
  result.policy = label;
  result.level = level;
  result.budget_watts = budget;
  result.allocated_watts = rm::SystemPowerManager::total_allocated_watts(
      job_ptrs);
  result.within_budget = manager.allocation_fits(job_ptrs);

  runtime::MonitorAgent monitor;
  const runtime::Controller controller(options_.iterations);
  for (auto& sim : arena.sims) {
    const runtime::JobReport report = controller.run(sim, monitor);
    JobRunMetrics metrics;
    metrics.job_name = report.job_name;
    metrics.elapsed_seconds = report.elapsed_seconds;
    metrics.energy_joules = report.total_energy_joules;
    metrics.gflop = report.total_gflop;
    metrics.average_node_power_watts = report.average_node_power_watts();
    metrics.allocated_watts = sim.total_allocated_power();
    metrics.iteration_seconds = report.iteration_seconds;
    metrics.iteration_energy_joules = report.iteration_energy_joules;
    result.jobs.push_back(std::move(metrics));
  }
  return result;
}

ExperimentDriver::ExperimentDriver(const ExperimentOptions& options)
    : options_(options) {
  PS_REQUIRE(options.nodes_per_job > 0, "nodes per job must be positive");
  PS_REQUIRE(options.iterations > 0, "need measured iterations");
  util::Rng rng(options.seed);
  const std::size_t needed = options.nodes_per_job * 9;
  if (options.hardware_variation) {
    // Scale the 2000-node survey population with the experiment so the
    // selected bin always holds the 9 jobs (the paper: 918 of 2000
    // medium nodes, 900 used). The 5% slack absorbs k-means boundary
    // wobble between the bins.
    PS_REQUIRE(options.frequency_bin < 3, "frequency bin must be 0, 1 or 2");
    const hw::VariationModel quartz = hw::VariationModel::quartz_default();
    const double bin_base = static_cast<double>(
        quartz.components()[options.frequency_bin].count);
    const double scale =
        std::max(1.0, static_cast<double>(needed) / (0.95 * bin_base));
    std::vector<hw::VariationComponent> components;
    for (const auto& component : quartz.components()) {
      components.push_back(
          {static_cast<std::size_t>(
               static_cast<double>(component.count) * scale),
           component.mean_eta, component.sigma_eta});
    }
    cluster_ = std::make_unique<sim::Cluster>(
        hw::VariationModel(std::move(components)), rng,
        options.node_params);
    // The paper's Fig. 6 binning: 70 W package caps (plus the DRAM plane
    // at node level), k-means into 3 bins, keep the configured bin
    // (medium, in the paper).
    PS_REQUIRE(options.frequency_bin < 3, "frequency bin must be 0, 1 or 2");
    experiment_nodes_ = cluster_->frequency_cluster_members(
        2.0 * 70.0 + hw::QuartzSpec::kDramPowerPerNodeW, /*k=*/3,
        options.frequency_bin);
    PS_CHECK_STATE(experiment_nodes_.size() >= needed,
                   "selected frequency bin is smaller than the mix");
    experiment_nodes_.resize(needed);
  } else {
    cluster_ = std::make_unique<sim::Cluster>(needed, options.node_params);
    experiment_nodes_.resize(needed);
    for (std::size_t i = 0; i < needed; ++i) {
      experiment_nodes_[i] = i;
    }
  }
}

MixExperiment ExperimentDriver::prepare(const core::WorkloadMix& mix) const {
  return MixExperiment(*cluster_, experiment_nodes_, mix, options_);
}

}  // namespace ps::analysis
