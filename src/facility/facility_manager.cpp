#include "facility/facility_manager.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <numbers>

#include "core/degradation.hpp"
#include "core/invariants.hpp"
#include "core/mixes.hpp"
#include "rm/power_manager.hpp"
#include "runtime/characterization.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace ps::facility {

namespace {
/// The budget the power manager starts from: the configured one, or the
/// cluster's total TDP when the option was left at zero (mirrors the
/// constructor's default for options_.system_budget_watts).
double effective_budget_watts(const sim::Cluster& cluster,
                              const FacilityOptions& options) {
  if (options.system_budget_watts > 0.0) {
    return options.system_budget_watts;
  }
  return cluster.node(0).tdp() * static_cast<double>(cluster.size());
}

/// The scheduler's admission gate, with the facility defaults filled in:
/// a power basis inherits the facility budget and the cluster's node TDP
/// when its own knobs were left at zero.
rm::AdmissionOptions effective_admission(const sim::Cluster& cluster,
                                         const FacilityOptions& options) {
  rm::AdmissionOptions admission = options.admission;
  if (admission.basis != rm::AdmissionBasis::kNodes) {
    if (admission.budget_watts <= 0.0) {
      admission.budget_watts = effective_budget_watts(cluster, options);
    }
    if (admission.node_tdp_watts <= 0.0) {
      admission.node_tdp_watts = cluster.node(0).tdp();
    }
  }
  return admission;
}

/// Shed-watts histogram buckets (watts per reallocation event).
constexpr std::array<double, 8> kShedBounds = {10.0,   50.0,   100.0,
                                               250.0,  500.0,  1000.0,
                                               2500.0, 5000.0};
}  // namespace

std::vector<FacilityJobSpec> generate_job_trace(
    util::Rng& rng, const JobTraceOptions& options) {
  PS_REQUIRE(std::isfinite(options.horizon_hours) &&
                 options.horizon_hours >= 0.0,
             "horizon must be finite and non-negative");
  PS_REQUIRE(std::isfinite(options.arrivals_per_hour) &&
                 options.arrivals_per_hour >= 0.0,
             "arrival rate must be finite and non-negative");
  PS_REQUIRE(options.min_nodes > 0 && options.min_nodes <= options.max_nodes,
             "node range must satisfy 0 < min <= max");
  PS_REQUIRE(std::isfinite(options.min_duration_hours) &&
                 std::isfinite(options.max_duration_hours) &&
                 options.min_duration_hours > 0.0 &&
                 options.min_duration_hours <= options.max_duration_hours,
             "duration range must satisfy 0 < min <= max");
  PS_REQUIRE(options.nominal_iteration_seconds > 0.0,
             "nominal iteration time must be positive");
  PS_REQUIRE(options.latency_critical_fraction >= 0.0 &&
                 options.best_effort_fraction >= 0.0 &&
                 options.latency_critical_fraction +
                         options.best_effort_fraction <=
                     1.0,
             "class fractions must be non-negative and sum to at most 1");
  PS_REQUIRE(options.diurnal_amplitude >= 0.0 &&
                 options.diurnal_amplitude <= 1.0,
             "diurnal amplitude must lie in [0, 1]");
  PS_REQUIRE(options.burst_rate_multiplier >= 0.0,
             "burst rate multiplier cannot be negative");
  PS_REQUIRE(options.burst_count == 0 || options.burst_duration_hours > 0.0,
             "burst duration must be positive");

  // Degenerate but valid: no time or no demand means no jobs — an empty
  // trace, not an error (FacilityManager::run handles it as a quiet run).
  if (options.horizon_hours == 0.0 || options.arrivals_per_hour == 0.0) {
    return {};
  }

  const bool mixed_classes = options.latency_critical_fraction > 0.0 ||
                             options.best_effort_fraction > 0.0;
  const bool time_varying =
      options.diurnal_amplitude > 0.0 ||
      (options.burst_count > 0 && options.burst_rate_multiplier > 0.0);
  // Flash-crowd centers are seeded and drawn up front, so the burst
  // schedule is a deterministic function of (rng seed, options).
  std::vector<double> burst_centers;
  if (time_varying && options.burst_count > 0) {
    burst_centers.reserve(options.burst_count);
    for (std::size_t b = 0; b < options.burst_count; ++b) {
      burst_centers.push_back(rng.uniform() * options.horizon_hours);
    }
    std::sort(burst_centers.begin(), burst_centers.end());
  }
  const double base = options.arrivals_per_hour;
  // Thinning envelope: the instantaneous rate never exceeds the diurnal
  // peak plus one full burst amplitude.
  const double peak_rate =
      base * (1.0 + options.diurnal_amplitude) +
      (burst_centers.empty() ? 0.0 : base * options.burst_rate_multiplier);
  const auto rate_at = [&](double t) {
    // Diurnal day curve: trough at midnight, peak at noon.
    double rate = base * (1.0 + options.diurnal_amplitude *
                                    std::sin(2.0 * std::numbers::pi * t /
                                                 24.0 -
                                             std::numbers::pi / 2.0));
    for (const double center : burst_centers) {
      const double half_width = 0.5 * options.burst_duration_hours;
      const double distance = std::abs(t - center);
      if (distance < half_width) {
        // Triangular flash-crowd pulse.
        rate += base * options.burst_rate_multiplier *
                (1.0 - distance / half_width);
      }
    }
    return rate;
  };

  const std::vector<kernel::WorkloadConfig> pool =
      core::heatmap_grid(hw::VectorWidth::kYmm256);
  std::vector<FacilityJobSpec> trace;
  double now = 0.0;
  std::size_t sequence = 0;
  for (;;) {
    // Exponential inter-arrival times — a homogeneous Poisson process at
    // the base rate, or at the envelope rate thinned down to rate_at(t)
    // when the demand curve varies (Lewis-Shedler thinning). The
    // homogeneous path draws exactly the legacy rng stream.
    double u = rng.uniform();
    while (u <= 0.0) {
      u = rng.uniform();
    }
    now += -std::log(u) / (time_varying ? peak_rate : base);
    if (now >= options.horizon_hours) {
      break;
    }
    if (time_varying && rng.uniform() * peak_rate >= rate_at(now)) {
      continue;  // thinned: a candidate the true rate does not support
    }
    FacilityJobSpec spec;
    spec.arrival_hours = now;
    spec.request.workload = pool[rng.uniform_index(pool.size())];
    spec.request.node_count =
        options.min_nodes +
        rng.uniform_index(options.max_nodes - options.min_nodes + 1);
    spec.request.name = "trace-job-" + std::to_string(sequence++);
    // Log-uniform durations: short jobs are common, long jobs exist.
    const double log_duration =
        rng.uniform(std::log(options.min_duration_hours),
                    std::log(options.max_duration_hours));
    const double duration_hours = std::exp(log_duration);
    spec.iterations = std::max<std::size_t>(
        1, static_cast<std::size_t>(duration_hours * 3600.0 /
                                    options.nominal_iteration_seconds));
    // Users overestimate walltimes; add a 20% pad like real submissions.
    spec.estimated_hours = duration_hours * 1.2;
    spec.ideal_hours = duration_hours;
    if (mixed_classes) {
      const double draw = rng.uniform();
      if (draw < options.latency_critical_fraction) {
        spec.request.sla_class = sim::SlaClass::kLatencyCritical;
      } else if (draw < options.latency_critical_fraction +
                            options.best_effort_fraction) {
        spec.request.sla_class = sim::SlaClass::kBestEffort;
      }
    }
    trace.push_back(std::move(spec));
  }
  return trace;
}

std::size_t FacilityResult::sla_violations() const {
  std::size_t total = 0;
  for (const std::size_t count : sla_violations_by_class) {
    total += count;
  }
  return total;
}

double FacilityResult::mean_power_watts() const {
  PS_CHECK_STATE(!power_watts.empty(), "empty facility trace");
  return util::mean(power_watts);
}

double FacilityResult::peak_power_watts() const {
  PS_CHECK_STATE(!power_watts.empty(), "empty facility trace");
  return *std::max_element(power_watts.begin(), power_watts.end());
}

double FacilityResult::mean_utilization() const {
  PS_CHECK_STATE(!utilization.empty(), "empty facility trace");
  return util::mean(utilization);
}

double FacilityResult::mean_wait_hours() const {
  util::RunningStats waits;
  for (const auto& job : jobs) {
    if (job.started()) {
      waits.add(job.wait_hours());
    }
  }
  return waits.empty() ? 0.0 : waits.mean();
}

FacilityManager::FacilityManager(sim::Cluster& cluster,
                                 const FacilityOptions& options)
    : cluster_(&cluster),
      options_(options),
      scheduler_(cluster.size(), effective_admission(cluster, options)),
      power_manager_(effective_budget_watts(cluster, options)),
      failure_rng_(options.failure_seed) {
  PS_REQUIRE(options.step_hours > 0.0, "step must be positive");
  PS_REQUIRE(options.node_mtbf_hours >= 0.0, "MTBF cannot be negative");
  PS_REQUIRE(options.repair_hours > 0.0, "repair time must be positive");
  PS_REQUIRE(options.checkpoint_interval_hours >= 0.0,
             "checkpoint interval cannot be negative");
  PS_REQUIRE(options.horizon_hours >= options.step_hours,
             "horizon must cover at least one step");
  PS_REQUIRE(options.idle_node_watts >= 0.0,
             "idle power cannot be negative");
  if (options_.system_budget_watts <= 0.0) {
    options_.system_budget_watts =
        cluster.node(0).tdp() * static_cast<double>(cluster.size());
  }
  if (!options_.budget_signal_watts.empty()) {
    for (const double signal : options_.budget_signal_watts) {
      PS_REQUIRE(signal > 0.0, "budget signal must be positive");
    }
    governor_.emplace(options_.system_budget_watts, options_.governor);
  }
}

double FacilityManager::head_shadow_hours(
    std::span<const FacilityJobSpec> trace, double now_hours) const {
  // Earliest time the head-of-queue job could start: free nodes grow as
  // running jobs reach their expected completions.
  const rm::JobRequest* head = scheduler_.queued_head();
  if (head == nullptr) {
    return now_hours;
  }
  std::vector<std::pair<double, std::size_t>> completions;
  completions.reserve(running_.size());
  for (const RunningJob& job : running_) {
    const double remaining_iterations =
        std::max(0.0, static_cast<double>(job.iterations_total) -
                          job.iterations_done);
    const double remaining_hours =
        remaining_iterations * job.iteration_seconds / 3600.0;
    completions.emplace_back(now_hours + remaining_hours,
                             job.simulation->host_count());
  }
  std::sort(completions.begin(), completions.end());
  std::size_t free_nodes = scheduler_.free_node_count();
  for (const auto& [finish_hours, nodes] : completions) {
    if (free_nodes >= head->node_count) {
      break;
    }
    free_nodes += nodes;
    if (free_nodes >= head->node_count) {
      return finish_hours;
    }
  }
  static_cast<void>(trace);
  return free_nodes >= head->node_count
             ? now_hours
             : std::numeric_limits<double>::infinity();
}

void FacilityManager::start_pending_jobs(
    std::span<const FacilityJobSpec> trace, double now_hours,
    FacilityResult& result) {
  std::function<bool(const rm::JobRequest&)> backfill_ok;
  if (options_.backfill) {
    const double shadow = head_shadow_hours(trace, now_hours);
    backfill_ok = [&trace, now_hours, shadow](const rm::JobRequest& job) {
      for (const FacilityJobSpec& spec : trace) {
        if (spec.request.name == job.name) {
          // EASY condition: the backfilled job's estimated completion
          // must not cross the head's reservation.
          return now_hours + spec.estimated_hours <= shadow + 1e-9;
        }
      }
      return false;
    };
  }
  const std::vector<rm::NodeGrant> grants =
      scheduler_.start_pending(backfill_ok);
  for (const auto& grant : grants) {
    // Locate the trace entry by name (the scheduler queue is FIFO over
    // submissions, so this is unique).
    std::size_t index = trace.size();
    for (std::size_t i = 0; i < trace.size(); ++i) {
      if (trace[i].request.name == grant.job_name) {
        index = i;
        break;
      }
    }
    PS_CHECK_STATE(index < trace.size(), "grant without a trace entry");

    RunningJob job;
    job.trace_index = index;
    job.iterations_total = trace[index].iterations;
    // Restarted jobs resume from their last checkpoint.
    const auto saved = checkpoints_.find(index);
    if (saved != checkpoints_.end()) {
      job.iterations_done = saved->second;
      job.checkpointed_iterations = saved->second;
    }
    job.last_checkpoint_hours = now_hours;
    std::vector<hw::NodeModel*> hosts;
    hosts.reserve(grant.node_indices.size());
    for (std::size_t node : grant.node_indices) {
      hosts.push_back(&cluster_->node(node));
    }
    job.simulation = std::make_unique<sim::JobSimulation>(
        grant.job_name, std::move(hosts), trace[index].request.workload);
    job.simulation->set_sla_class(trace[index].request.sla_class);
    job.characterization = runtime::characterize_job(
        *job.simulation, options_.characterization_iterations);
    job.characterization.sla_class = trace[index].request.sla_class;
    job.simulation->reset_totals();
    running_.push_back(std::move(job));
    if (!result.jobs[index].started()) {
      result.jobs[index].start_hours = now_hours;
    }
  }
  if (!grants.empty()) {
    reallocate_power();
  }
}

void FacilityManager::reallocate_power() {
  if (running_.empty()) {
    return;
  }
  core::PolicyContext context;
  context.system_budget_watts = power_manager_.budget_watts();
  context.node_tdp_watts = cluster_->node(0).tdp();
  context.uncappable_watts = cluster_->node(0).params().dram_watts;
  for (const auto& job : running_) {
    context.jobs.push_back(job.characterization);
  }
  const auto policy = core::make_policy(options_.policy);
  // The same class-ordered degradation step the in-memory loop and the
  // daemon run on a policy output: under scarcity best_effort sheds to
  // its floors before standard, latency_critical last. Identity (and
  // zero extra work) for single-class mixes.
  const rm::PowerAllocation raw = policy->allocate(context);
  const rm::PowerAllocation allocation = core::apply_sla_degradation(
      context, raw, power_manager_.budget_watts(), "facility.degrade");
  // Shed watts = what the losing jobs gave up, per reshaping pass. The
  // degradation step re-divides at (near-)constant total, so the total
  // delta would hide it; sum the per-limit reductions instead.
  const auto watts_moved = [](const rm::PowerAllocation& from,
                              const rm::PowerAllocation& to) {
    double moved = 0.0;
    for (std::size_t j = 0; j < from.job_host_caps.size(); ++j) {
      for (std::size_t h = 0; h < from.job_host_caps[j].size(); ++h) {
        moved += std::max(0.0,
                          from.job_host_caps[j][h] - to.job_host_caps[j][h]);
      }
    }
    for (std::size_t j = 0; j < from.job_host_gpu_caps.size(); ++j) {
      for (std::size_t h = 0; h < from.job_host_gpu_caps[j].size(); ++h) {
        moved += std::max(0.0, from.job_host_gpu_caps[j][h] -
                                   to.job_host_gpu_caps[j][h]);
      }
    }
    return moved;
  };
  double shed_watts = watts_moved(raw, allocation);
  std::vector<sim::JobSimulation*> jobs;
  std::vector<sim::SlaClass> classes;
  jobs.reserve(running_.size());
  classes.reserve(running_.size());
  std::size_t hosts = 0;
  for (auto& job : running_) {
    jobs.push_back(job.simulation.get());
    classes.push_back(job.characterization.sla_class);
    hosts += job.simulation->host_count();
  }
  const double tolerance = 0.5 * static_cast<double>(hosts);
  if (governor_.has_value() &&
      allocation.total_watts() > power_manager_.budget_watts() + tolerance) {
    // The policy's output no longer fits a shrunk budget (it may have
    // been computed moments before a brownout revision): clamp it back
    // inside the envelope, floors first — lowest class first.
    const rm::PowerAllocation clamped =
        power_manager_.emergency_clamp(jobs, allocation, classes);
    shed_watts += watts_moved(allocation, clamped);
    ++emergency_clamps_;
  } else {
    power_manager_.apply(jobs, allocation, /*enforce_budget=*/false);
  }
  if (shed_watts > 0.0 && options_.obs.metrics != nullptr) {
    options_.obs.metrics->histogram("facility.shed_watts", kShedBounds)
        .observe(shed_watts);
  }
  shed_watts_total_ += shed_watts;
  if (governor_.has_value()) {
    double floors = 0.0;
    for (const auto& job : running_) {
      const sim::JobSimulation& simulation = *job.simulation;
      for (std::size_t h = 0; h < simulation.host_count(); ++h) {
        floors += simulation.host(h).min_cap();
        core::invariants::check_cap_bounds(
            simulation.host_cap(h), simulation.host(h).min_cap(),
            simulation.host(h).tdp(), 0.5, "facility.cap");
      }
    }
    core::invariants::check_caps_fit_budget(
        rm::SystemPowerManager::total_allocated_watts(jobs),
        std::max(power_manager_.budget_watts(), floors), hosts,
        "facility.reallocate");
  }
  refresh_profiles();
}

double FacilityManager::programmed_watts() const {
  double total = 0.0;
  for (const auto& job : running_) {
    for (std::size_t h = 0; h < job.simulation->host_count(); ++h) {
      total += job.simulation->host_cap(h);
    }
  }
  return total;
}

void FacilityManager::observe_budget_signal(std::size_t step,
                                            FacilityResult& result) {
  if (!governor_.has_value()) {
    return;
  }
  const std::vector<double>& signal = options_.budget_signal_watts;
  const double sample = signal[std::min(step, signal.size() - 1)];
  const std::optional<core::BudgetRevision> revision =
      governor_->observe(sample, step);
  if (!revision.has_value()) {
    return;
  }
  core::invariants::check_epoch_monotone(power_manager_.budget_epoch(),
                                         revision->epoch,
                                         "facility.revision");
  power_manager_.set_budget(revision->budget_watts, revision->epoch);
  ++result.budget_revisions;
  // Reprogram immediately: a shrinking envelope must not wait for the
  // next scheduling event, and a growing one should be spent.
  reallocate_power();
}

void FacilityManager::refresh_profiles() {
  for (auto& job : running_) {
    // One probe iteration under the current caps yields the steady-state
    // per-iteration time and power (the simulation is deterministic).
    const sim::IterationResult probe = job.simulation->run_iteration();
    job.iterations_done += 1.0;
    job.iteration_seconds = probe.iteration_seconds;
    job.power_watts =
        probe.average_node_power_watts *
        static_cast<double>(job.simulation->host_count());
  }
}

bool FacilityManager::process_failures(
    std::span<const FacilityJobSpec> trace, double now_hours,
    FacilityResult& result) {
  static_cast<void>(trace);
  bool changed = false;

  // Finished repairs first: the node rejoins the pool.
  for (auto it = repairs_.begin(); it != repairs_.end();) {
    if (it->first <= now_hours) {
      scheduler_.restore(it->second);
      it = repairs_.erase(it);
      changed = true;
    } else {
      ++it;
    }
  }

  if (options_.node_mtbf_hours <= 0.0) {
    return changed;
  }
  const double per_node_probability =
      std::min(options_.step_hours / options_.node_mtbf_hours, 1.0);
  for (auto it = running_.begin(); it != running_.end();) {
    RunningJob& job = *it;
    const double hosts = static_cast<double>(job.simulation->host_count());
    const double job_probability =
        1.0 - std::pow(1.0 - per_node_probability, hosts);
    if (failure_rng_.uniform() >= job_probability) {
      ++it;
      continue;
    }
    // A node of this job died: the job is lost (no checkpointing) and
    // resubmitted; the node goes into repair.
    const std::string name = job.simulation->name();
    const auto nodes = scheduler_.nodes_of(name);
    const std::size_t failed =
        nodes[failure_rng_.uniform_index(nodes.size())];
    FacilityJobRecord& record = result.jobs[job.trace_index];
    record.restarts += 1;
    ++result.node_failures;
    const rm::JobRequest request = trace[job.trace_index].request;
    // Whatever was checkpointed survives the failure.
    if (options_.checkpoint_interval_hours > 0.0) {
      checkpoints_[job.trace_index] = job.checkpointed_iterations;
    }
    scheduler_.complete(name);
    scheduler_.quarantine(failed);
    repairs_.emplace_back(now_hours + options_.repair_hours, failed);
    scheduler_.submit(request);
    it = running_.erase(it);
    changed = true;
  }
  return changed;
}

FacilityResult FacilityManager::run(
    std::span<const FacilityJobSpec> trace) {
  for (std::size_t i = 0; i + 1 < trace.size(); ++i) {
    PS_REQUIRE(trace[i].arrival_hours <= trace[i + 1].arrival_hours,
               "trace must be sorted by arrival time");
  }
  FacilityResult result;
  result.step_hours = options_.step_hours;
  emergency_clamps_ = 0;
  shed_watts_total_ = 0.0;
  result.jobs.resize(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    result.jobs[i].name = trace[i].request.name;
    result.jobs[i].arrival_hours = trace[i].arrival_hours;
    result.jobs[i].sla_class = trace[i].request.sla_class;
    result.jobs[i].ideal_hours = trace[i].ideal_hours;
    ++result.jobs_by_class[sim::sla_rank(trace[i].request.sla_class)];
  }

  std::size_t next_arrival = 0;
  const auto steps = static_cast<std::size_t>(options_.horizon_hours /
                                              options_.step_hours);
  for (std::size_t step = 0; step < steps; ++step) {
    const double now = static_cast<double>(step) * options_.step_hours;

    // Admit arrivals up to now. The admission gate may refuse a
    // submission outright (best_effort queue limit, or a power gate it
    // can never fit): the job is recorded rejected, never queued.
    while (next_arrival < trace.size() &&
           trace[next_arrival].arrival_hours <= now) {
      if (!scheduler_.try_submit(trace[next_arrival].request)) {
        result.jobs[next_arrival].rejected = true;
        ++result.admission_rejections;
        options_.obs.count("facility.admission_rejections");
      }
      ++next_arrival;
    }
    // The facility's budget signal is sampled once per control period
    // (step); a revision reprograms the running jobs immediately, so the
    // caps exceed a shrunk budget for at most the period that observed
    // the shrink.
    observe_budget_signal(step, result);
    if (process_failures(trace, now, result)) {
      reallocate_power();
    }
    start_pending_jobs(trace, now, result);

    // Advance running jobs by one wall-clock step.
    const double dt_seconds = options_.step_hours * 3600.0;
    double compute_power = 0.0;
    std::size_t busy_nodes = 0;
    bool finished_any = false;
    for (auto& job : running_) {
      compute_power += job.power_watts;
      busy_nodes += job.simulation->host_count();
      job.iterations_done += dt_seconds / job.iteration_seconds;
      if (options_.checkpoint_interval_hours > 0.0 &&
          now - job.last_checkpoint_hours >=
              options_.checkpoint_interval_hours) {
        job.checkpointed_iterations = job.iterations_done;
        job.last_checkpoint_hours = now;
      }
      const double job_energy = job.power_watts * dt_seconds;
      result.jobs[job.trace_index].energy_joules += job_energy;
      result.total_energy_joules += job_energy;
      if (job.iterations_done >=
          static_cast<double>(job.iterations_total)) {
        result.jobs[job.trace_index].finish_hours =
            now + options_.step_hours;
        ++result.completed_jobs;
        scheduler_.complete(job.simulation->name());
        finished_any = true;
      }
    }
    if (finished_any) {
      running_.erase(
          std::remove_if(running_.begin(), running_.end(),
                         [&](const RunningJob& job) {
                           return job.iterations_done >=
                                  static_cast<double>(job.iterations_total);
                         }),
          running_.end());
      start_pending_jobs(trace, now, result);
      reallocate_power();
      // Recompute the sample with the new job set's power.
      compute_power = 0.0;
      busy_nodes = 0;
      for (const auto& job : running_) {
        compute_power += job.power_watts;
        busy_nodes += job.simulation->host_count();
      }
    }

    const double idle_nodes =
        static_cast<double>(cluster_->size() - busy_nodes);
    const double idle_power = idle_nodes * options_.idle_node_watts;
    result.power_watts.push_back(compute_power + idle_power);
    result.total_energy_joules += idle_power * dt_seconds;
    result.utilization.push_back(static_cast<double>(busy_nodes) /
                                 static_cast<double>(cluster_->size()));
    result.budget_watts.push_back(power_manager_.budget_watts());
    // Feed the admission gate the step's measured compute draw: the
    // kMeasuredDraw basis reserves with this EWMA instead of TDP.
    scheduler_.observe_draw(compute_power, busy_nodes);
    if (governor_.has_value()) {
      power_manager_.observe_programmed(programmed_watts(), busy_nodes,
                                        dt_seconds);
    }
  }
  result.emergency_clamps = emergency_clamps_;
  result.final_budget_epoch = power_manager_.budget_epoch();
  result.excursions = power_manager_.excursions();
  result.shed_watts_total = shed_watts_total_;

  // SLA accounting: a job violates its class SLA when its end-to-end
  // slowdown vs the uncapped ideal exceeds the class tolerance, when the
  // horizon ends with it already past that bound, or when admission
  // rejected it outright.
  for (std::size_t i = 0; i < trace.size(); ++i) {
    FacilityJobRecord& record = result.jobs[i];
    const double tolerated = trace[i].request.sla_tolerated_slowdown();
    bool violated = record.rejected;
    if (!violated && record.ideal_hours > 0.0) {
      const double bound = tolerated * record.ideal_hours;
      if (record.finished()) {
        violated = record.finish_hours - record.arrival_hours > bound;
      } else {
        violated = options_.horizon_hours - record.arrival_hours > bound;
      }
    }
    if (violated) {
      record.sla_violated = true;
      ++result.sla_violations_by_class[sim::sla_rank(record.sla_class)];
      if (options_.obs.metrics != nullptr) {
        options_.obs.count(std::string("facility.sla_violations.") +
                           std::string(sim::to_string(record.sla_class)));
      }
    }
  }
  return result;
}

}  // namespace ps::facility
