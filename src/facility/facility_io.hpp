#pragma once

#include <iosfwd>
#include <span>
#include <vector>

#include "facility/facility_manager.hpp"

namespace ps::facility {

/// Writes the facility power/utilization time series as CSV:
///   hours,power_watts,utilization
void write_power_csv(std::ostream& out, const FacilityResult& result);

/// Writes the per-job accounting as CSV. Single-class results use the
/// legacy 7-column form, byte-identical to the pre-SLA writer:
///   job,arrival_hours,start_hours,finish_hours,wait_hours,restarts,
///   energy_joules
/// Results carrying multi-tenant state (any non-standard class or any
/// SLA violation) append two columns:
///   ...,sla_class,sla_violated
/// Unstarted/unfinished events are empty fields.
void write_jobs_csv(std::ostream& out, const FacilityResult& result);
void write_jobs_csv(std::ostream& out,
                    std::span<const FacilityJobRecord> jobs);

/// Reads either jobs-CSV form back into records. Legacy 7-column files
/// parse unchanged (class standard, no violations) and re-emit
/// byte-identical through write_jobs_csv, provided their columns are
/// consistent at the written precision (any file produced by the writer
/// is). Throws ps::InvalidArgument on a malformed header or row.
[[nodiscard]] std::vector<FacilityJobRecord> read_jobs_csv(std::istream& in);

}  // namespace ps::facility
