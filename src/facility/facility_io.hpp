#pragma once

#include <iosfwd>

#include "facility/facility_manager.hpp"

namespace ps::facility {

/// Writes the facility power/utilization time series as CSV:
///   hours,power_watts,utilization
void write_power_csv(std::ostream& out, const FacilityResult& result);

/// Writes the per-job accounting as CSV:
///   job,arrival_hours,start_hours,finish_hours,wait_hours,restarts,
///   energy_joules
/// Unstarted/unfinished events are empty fields.
void write_jobs_csv(std::ostream& out, const FacilityResult& result);

}  // namespace ps::facility
