#include "facility/facility_io.hpp"

#include <ostream>

#include "util/error.hpp"
#include "util/table.hpp"

namespace ps::facility {

void write_power_csv(std::ostream& out, const FacilityResult& result) {
  PS_REQUIRE(result.step_hours > 0.0, "result has no time base");
  util::CsvWriter csv(out);
  csv.write_row({"hours", "power_watts", "utilization"});
  for (std::size_t step = 0; step < result.power_watts.size(); ++step) {
    csv.write_row(
        {util::format_fixed(static_cast<double>(step) * result.step_hours,
                            3),
         util::format_fixed(result.power_watts[step], 1),
         util::format_fixed(result.utilization[step], 4)});
  }
}

void write_jobs_csv(std::ostream& out, const FacilityResult& result) {
  util::CsvWriter csv(out);
  csv.write_row({"job", "arrival_hours", "start_hours", "finish_hours",
                 "wait_hours", "restarts", "energy_joules"});
  for (const FacilityJobRecord& job : result.jobs) {
    csv.write_row(
        {job.name, util::format_fixed(job.arrival_hours, 3),
         job.started() ? util::format_fixed(job.start_hours, 3) : "",
         job.finished() ? util::format_fixed(job.finish_hours, 3) : "",
         job.started() ? util::format_fixed(job.wait_hours(), 3) : "",
         std::to_string(job.restarts),
         util::format_fixed(job.energy_joules, 1)});
  }
}

}  // namespace ps::facility
