#include "facility/facility_io.hpp"

#include <charconv>
#include <cmath>
#include <istream>
#include <ostream>
#include <string>

#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace ps::facility {

namespace {

constexpr std::string_view kLegacyHeader =
    "job,arrival_hours,start_hours,finish_hours,wait_hours,restarts,"
    "energy_joules";
constexpr std::string_view kSlaHeader =
    "job,arrival_hours,start_hours,finish_hours,wait_hours,restarts,"
    "energy_joules,sla_class,sla_violated";

/// A result (or record set) serializes in the extended form only when it
/// actually carries multi-tenant state; every single-class run keeps the
/// legacy bytes.
bool needs_sla_columns(std::span<const FacilityJobRecord> jobs) {
  for (const FacilityJobRecord& job : jobs) {
    if (job.sla_class != sim::SlaClass::kStandard || job.sla_violated) {
      return true;
    }
  }
  return false;
}

double parse_double(std::string_view token, std::string_view what) {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  PS_REQUIRE(ec == std::errc{} && ptr == token.data() + token.size() &&
                 std::isfinite(value),
             "non-numeric " + std::string(what) + " field");
  return value;
}

std::size_t parse_count(std::string_view token, std::string_view what) {
  std::size_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  PS_REQUIRE(ec == std::errc{} && ptr == token.data() + token.size(),
             "non-numeric " + std::string(what) + " field");
  return value;
}

}  // namespace

void write_power_csv(std::ostream& out, const FacilityResult& result) {
  PS_REQUIRE(result.step_hours > 0.0, "result has no time base");
  util::CsvWriter csv(out);
  csv.write_row({"hours", "power_watts", "utilization"});
  for (std::size_t step = 0; step < result.power_watts.size(); ++step) {
    csv.write_row(
        {util::format_fixed(static_cast<double>(step) * result.step_hours,
                            3),
         util::format_fixed(result.power_watts[step], 1),
         util::format_fixed(result.utilization[step], 4)});
  }
}

void write_jobs_csv(std::ostream& out,
                    std::span<const FacilityJobRecord> jobs) {
  const bool sla = needs_sla_columns(jobs);
  util::CsvWriter csv(out);
  std::vector<std::string> header = {
      "job",        "arrival_hours", "start_hours", "finish_hours",
      "wait_hours", "restarts",      "energy_joules"};
  if (sla) {
    header.push_back("sla_class");
    header.push_back("sla_violated");
  }
  csv.write_row(header);
  for (const FacilityJobRecord& job : jobs) {
    std::vector<std::string> row = {
        job.name, util::format_fixed(job.arrival_hours, 3),
        job.started() ? util::format_fixed(job.start_hours, 3) : "",
        job.finished() ? util::format_fixed(job.finish_hours, 3) : "",
        job.started() ? util::format_fixed(job.wait_hours(), 3) : "",
        std::to_string(job.restarts),
        util::format_fixed(job.energy_joules, 1)};
    if (sla) {
      row.emplace_back(sim::to_string(job.sla_class));
      row.emplace_back(job.sla_violated ? "1" : "0");
    }
    csv.write_row(row);
  }
}

void write_jobs_csv(std::ostream& out, const FacilityResult& result) {
  write_jobs_csv(out, result.jobs);
}

std::vector<FacilityJobRecord> read_jobs_csv(std::istream& in) {
  std::string line;
  PS_REQUIRE(static_cast<bool>(std::getline(in, line)),
             "jobs CSV has no header");
  const std::string_view header = util::trim(line);
  const bool sla = header == kSlaHeader;
  PS_REQUIRE(sla || header == kLegacyHeader,
             "unrecognized jobs CSV header");
  const std::size_t columns = sla ? 9u : 7u;
  std::vector<FacilityJobRecord> jobs;
  while (std::getline(in, line)) {
    const std::string_view row = util::trim(line);
    if (row.empty()) {
      continue;
    }
    const std::vector<std::string> fields = util::split(row, ',');
    PS_REQUIRE(fields.size() == columns, "jobs CSV row has wrong arity");
    FacilityJobRecord job;
    job.name = fields[0];
    PS_REQUIRE(!job.name.empty(), "jobs CSV row has an empty job name");
    job.arrival_hours = parse_double(fields[1], "arrival_hours");
    if (!fields[2].empty()) {
      job.start_hours = parse_double(fields[2], "start_hours");
    }
    if (!fields[3].empty()) {
      job.finish_hours = parse_double(fields[3], "finish_hours");
    }
    // fields[4] (wait_hours) is derived from start − arrival; the writer
    // recomputes it, so it is validated for form but not stored.
    if (!fields[4].empty()) {
      static_cast<void>(parse_double(fields[4], "wait_hours"));
    }
    PS_REQUIRE(fields[2].empty() == fields[4].empty(),
               "wait_hours must be present exactly when start_hours is");
    job.restarts = parse_count(fields[5], "restarts");
    job.energy_joules = parse_double(fields[6], "energy_joules");
    if (sla) {
      job.sla_class = sim::parse_sla_class(fields[7]);
      PS_REQUIRE(fields[8] == "0" || fields[8] == "1",
                 "sla_violated must be 0 or 1");
      job.sla_violated = fields[8] == "1";
    }
    jobs.push_back(std::move(job));
  }
  return jobs;
}

}  // namespace ps::facility
