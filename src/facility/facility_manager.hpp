#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/budget_governor.hpp"
#include "core/policy.hpp"
#include "obs/obs.hpp"
#include "rm/job.hpp"
#include "rm/power_manager.hpp"
#include "rm/scheduler.hpp"
#include "sim/cluster.hpp"
#include "sim/job_sim.hpp"
#include "sim/sla.hpp"
#include "util/rng.hpp"

namespace ps::facility {

/// One job submission in a facility workload trace.
struct FacilityJobSpec {
  double arrival_hours = 0.0;
  rm::JobRequest request{};
  std::size_t iterations = 100;  ///< Job length in bulk-sync iterations.
  /// User-supplied walltime estimate (the "requested walltime" of a real
  /// batch system); EASY backfill trusts it, as real schedulers do.
  double estimated_hours = 1.0;
  /// Uncapped (ideal) duration in hours — the denominator of the SLA
  /// slowdown metric. 0 (the legacy default) disables slowdown
  /// accounting for this job; the job's class rides on request.sla_class.
  double ideal_hours = 0.0;
};

/// Parameters of the synthetic facility workload trace (Poisson arrivals
/// over heatmap-grid workloads — the demand side of the paper's Fig. 1).
struct JobTraceOptions {
  double horizon_hours = 24.0 * 7.0;
  double arrivals_per_hour = 3.0;
  std::size_t min_nodes = 20;
  std::size_t max_nodes = 200;
  /// Job lengths are drawn in wall-clock hours (log-uniform) and
  /// converted to iteration counts at the nominal iteration time.
  double min_duration_hours = 0.5;
  double max_duration_hours = 12.0;
  double nominal_iteration_seconds = 0.05;

  /// --- Multi-tenant class mix -------------------------------------------
  /// Fractions of arrivals drawn latency_critical / best_effort (the
  /// remainder is standard). Both zero (the default) draws nothing extra
  /// from the rng, keeping single-class traces byte-identical to the
  /// pre-SLA generator.
  double latency_critical_fraction = 0.0;
  double best_effort_fraction = 0.0;

  /// --- Time-varying demand ----------------------------------------------
  /// Diurnal arrival modulation: rate(t) = base · (1 + A·sin(2πt/24 − π/2))
  /// — trough at midnight, peak at noon. 0 keeps arrivals homogeneous
  /// (and the rng stream identical to the legacy generator).
  double diurnal_amplitude = 0.0;
  /// Flash crowds: `burst_count` bursts at seeded uniform times, each
  /// adding `burst_rate_multiplier × base` arrivals/hour at its center,
  /// falling off linearly over `burst_duration_hours`.
  std::size_t burst_count = 0;
  double burst_rate_multiplier = 0.0;
  double burst_duration_hours = 1.0;
};

/// Synthesizes a facility workload trace. Degenerate-parameter semantics
/// are explicit: a zero arrival rate or zero horizon is a valid request
/// for *no* work and returns an empty trace; negative or non-finite
/// rates/horizons, zero/negative job durations, and malformed class
/// fractions throw ps::InvalidArgument.
[[nodiscard]] std::vector<FacilityJobSpec> generate_job_trace(
    util::Rng& rng, const JobTraceOptions& options);

/// Knobs of the facility simulation.
struct FacilityOptions {
  double step_hours = 0.1;
  double horizon_hours = 24.0 * 7.0;
  /// Budget the RM distributes across *running compute nodes*; defaults
  /// to the cluster's total TDP when zero.
  double system_budget_watts = 0.0;
  core::PolicyKind policy = core::PolicyKind::kStaticCaps;
  std::size_t characterization_iterations = 3;
  /// Draw of an idle (unallocated) node: packages near idle plus DRAM.
  double idle_node_watts = 119.0;
  /// EASY backfill: when the head of the queue does not fit, start later
  /// jobs that fit free nodes and whose walltime estimate ends before
  /// the head's earliest possible start.
  bool backfill = false;
  /// Mean time between failures per node, hours. Zero disables failures.
  /// A failure kills the node's job and quarantines the node for
  /// `repair_hours`; the job resubmits from its last checkpoint (or from
  /// scratch without checkpointing).
  double node_mtbf_hours = 0.0;
  double repair_hours = 4.0;
  std::uint64_t failure_seed = 0xfa11;
  /// Checkpoint interval, hours. Zero disables checkpointing: a failure
  /// loses all progress. With checkpointing, at most the last interval's
  /// progress is lost (checkpoint I/O overhead is folded into the
  /// nominal iteration time).
  double checkpoint_interval_hours = 0.0;
  /// Dynamic budget: a per-step budget signal in watts (typically the
  /// cluster's share of facility headroom, from
  /// core::budget_signal_from_trace over a sim::FacilityTrace). Empty
  /// keeps the budget fixed at system_budget_watts. When set, a
  /// core::BudgetGovernor turns the signal into epoch-numbered
  /// revisions adopted at step boundaries; steps past the end of the
  /// signal hold its last value.
  std::vector<double> budget_signal_watts;
  /// Governor knobs (hysteresis, ramp limits, floor) for the signal.
  core::BudgetGovernorOptions governor{};
  /// Power-admission gate (oversubscription). The default kNodes basis is
  /// the legacy node-count-only scheduler. For the power bases, zero
  /// budget_watts/node_tdp_watts inherit the facility budget and the
  /// cluster's node TDP at construction.
  rm::AdmissionOptions admission{};
  /// Observability seam: per-class SLA-violation counters, the
  /// admission-rejection counter and the shed-watts histogram land here.
  /// Inert by default.
  obs::Observability obs{};
};

/// Per-job accounting of a facility run. Times are in hours; a negative
/// start/finish means the event never happened within the horizon.
struct FacilityJobRecord {
  std::string name;
  double arrival_hours = 0.0;
  double start_hours = -1.0;   ///< First start.
  double finish_hours = -1.0;  ///< Final (successful) finish.
  double energy_joules = 0.0;
  std::size_t restarts = 0;    ///< Times a node failure killed the job.
  sim::SlaClass sla_class = sim::SlaClass::kStandard;
  double ideal_hours = 0.0;    ///< Uncapped duration; 0 = no SLA math.
  bool rejected = false;       ///< Refused at admission (never queued).
  bool sla_violated = false;   ///< Slowdown exceeded the class SLA.

  [[nodiscard]] bool started() const noexcept { return start_hours >= 0.0; }
  [[nodiscard]] bool finished() const noexcept {
    return finish_hours >= 0.0;
  }
  [[nodiscard]] double wait_hours() const {
    return started() ? start_hours - arrival_hours : -1.0;
  }
  /// Observed slowdown vs the uncapped ideal (finished jobs with a known
  /// ideal only; -1 otherwise).
  [[nodiscard]] double slowdown() const {
    return finished() && ideal_hours > 0.0
               ? (finish_hours - arrival_hours) / ideal_hours
               : -1.0;
  }
};

/// Outcome of a facility run.
struct FacilityResult {
  double step_hours = 0.0;
  std::vector<double> power_watts;   ///< Facility draw per time step.
  std::vector<double> utilization;   ///< Allocated-node fraction per step.
  std::vector<FacilityJobRecord> jobs;
  std::size_t completed_jobs = 0;
  std::size_t node_failures = 0;
  double total_energy_joules = 0.0;
  /// Budget in force per time step (constant without a budget signal).
  std::vector<double> budget_watts;
  std::size_t budget_revisions = 0;  ///< Governor revisions adopted.
  std::size_t emergency_clamps = 0;  ///< Reallocations that took the clamp.
  std::uint64_t final_budget_epoch = 0;
  /// Over-budget dwell accounting of the programmed caps (how long and
  /// how far the cluster's committed power exceeded a shrinking budget).
  rm::ExcursionTelemetry excursions;

  /// --- Multi-tenant accounting (all zero for single-class runs) --------
  std::size_t admission_rejections = 0;  ///< try_submit refusals.
  std::array<std::size_t, sim::kSlaClassCount> jobs_by_class{};
  std::array<std::size_t, sim::kSlaClassCount> sla_violations_by_class{};
  /// Watts the class-ordered degradation/clamp passes moved off the raw
  /// policy split, summed over reallocations.
  double shed_watts_total = 0.0;

  [[nodiscard]] std::size_t sla_violations() const;
  [[nodiscard]] double mean_power_watts() const;
  [[nodiscard]] double peak_power_watts() const;
  [[nodiscard]] double mean_utilization() const;
  /// Mean queue wait of the jobs that started.
  [[nodiscard]] double mean_wait_hours() const;
};

/// An event-driven (time-stepped) facility: jobs arrive, the scheduler
/// places them FIFO, the configured power policy divides the system
/// budget among the running jobs, and the simulated nodes produce the
/// facility power trace — the paper's Fig. 1 generated from the actual
/// stack instead of a statistical model.
class FacilityManager {
 public:
  /// `cluster` must outlive the manager.
  FacilityManager(sim::Cluster& cluster, const FacilityOptions& options);

  [[nodiscard]] FacilityResult run(std::span<const FacilityJobSpec> trace);

  [[nodiscard]] const FacilityOptions& options() const noexcept {
    return options_;
  }

 private:
  struct RunningJob {
    std::unique_ptr<sim::JobSimulation> simulation;
    runtime::JobCharacterization characterization;
    std::size_t trace_index = 0;
    double iterations_done = 0.0;
    double checkpointed_iterations = 0.0;  ///< Progress safe on disk.
    double last_checkpoint_hours = 0.0;
    std::size_t iterations_total = 0;
    // Steady-state profile under the current caps (refreshed after every
    // re-allocation).
    double iteration_seconds = 0.0;
    double power_watts = 0.0;
  };

  /// Earliest time the head-of-queue job could start, from the running
  /// jobs' expected completions (the EASY "shadow" reservation).
  [[nodiscard]] double head_shadow_hours(
      std::span<const FacilityJobSpec> trace, double now_hours) const;

  void start_pending_jobs(std::span<const FacilityJobSpec> trace,
                          double now_hours, FacilityResult& result);
  void reallocate_power();
  void refresh_profiles();

  /// Observes the budget signal for `step` and adopts the governor's
  /// revision, if any (reallocating the running jobs under the new
  /// budget). No-op without a budget signal.
  void observe_budget_signal(std::size_t step, FacilityResult& result);
  /// Sum of the caps currently programmed on the running jobs' hosts.
  [[nodiscard]] double programmed_watts() const;

  /// Rolls for node failures, kills and resubmits affected jobs, and
  /// releases nodes whose repairs completed. Returns true if the running
  /// set changed.
  bool process_failures(std::span<const FacilityJobSpec> trace,
                        double now_hours, FacilityResult& result);

  sim::Cluster* cluster_;
  FacilityOptions options_;
  rm::Scheduler scheduler_;
  double shed_watts_total_ = 0.0;
  /// Owns the enforced budget + renegotiation epoch and the excursion
  /// telemetry; revised by the governor, consulted by reallocate_power.
  rm::SystemPowerManager power_manager_;
  /// Present only when options_.budget_signal_watts is non-empty.
  std::optional<core::BudgetGovernor> governor_;
  std::size_t emergency_clamps_ = 0;
  std::vector<RunningJob> running_;
  util::Rng failure_rng_{0xfa11};
  std::vector<std::pair<double, std::size_t>> repairs_;
  /// Checkpointed progress (iterations) by trace index, surviving the
  /// kill/resubmit cycle of a node failure.
  std::map<std::size_t, double> checkpoints_;
};

}  // namespace ps::facility
