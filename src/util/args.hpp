#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace ps::util {

/// Minimal command-line parser for the benches, tools, and examples:
/// long options only (`--name value` or boolean `--flag`), declared up
/// front, with typed accessors and defaults. Unknown options throw
/// rather than being silently ignored.
class ArgParser {
 public:
  ArgParser& add_flag(std::string name, std::string help);
  ArgParser& add_option(std::string name, std::string default_value,
                        std::string help);

  /// Parses argv (skipping argv[0]). Throws ps::InvalidArgument for
  /// unknown options or missing values. Non-option arguments are kept in
  /// order and available via positional().
  void parse(int argc, const char* const* argv);

  [[nodiscard]] bool flag(std::string_view name) const;
  /// True if the declared flag/option appeared explicitly on the command
  /// line (option() falls back to the default otherwise).
  [[nodiscard]] bool provided(std::string_view name) const;
  [[nodiscard]] const std::string& option(std::string_view name) const;
  [[nodiscard]] double option_double(std::string_view name) const;
  [[nodiscard]] std::size_t option_size(std::string_view name) const;
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// One line per declared option, for usage text.
  [[nodiscard]] std::string help() const;

 private:
  struct Spec {
    bool is_flag = false;
    std::string default_value;
    std::string help;
  };
  const Spec& spec_of(std::string_view name) const;

  std::map<std::string, Spec, std::less<>> specs_;
  std::map<std::string, std::string, std::less<>> values_;
  std::vector<std::string> positional_;
};

}  // namespace ps::util
