#include "util/rng.hpp"

#include <bit>
#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace ps::util {

std::uint64_t SplitMix64::next() noexcept {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  SplitMix64 seeder(seed);
  for (auto& word : state_) {
    word = seeder.next();
  }
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = std::rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = std::rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  PS_REQUIRE(lo <= hi, "uniform bounds must satisfy lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  PS_REQUIRE(n > 0, "uniform_index requires n > 0");
  const std::uint64_t threshold = (0 - n) % n;  // 2^64 mod n
  for (;;) {
    const std::uint64_t sample = next();
    if (sample >= threshold) {
      return sample % n;
    }
  }
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) {
    u1 = uniform();
  }
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double sigma) {
  PS_REQUIRE(sigma >= 0.0, "normal sigma must be non-negative");
  return mean + sigma * normal();
}

Rng Rng::fork(std::uint64_t label) noexcept {
  // Mix current state with the label so forks are independent and stable.
  SplitMix64 mixer(state_[0] ^ (label * 0xd1342543de82ef95ULL));
  return Rng(mixer.next() ^ state_[3]);
}

std::vector<double> sample_gaussian_mixture(
    Rng& rng, std::span<const GaussianComponent> components,
    std::size_t count) {
  PS_REQUIRE(!components.empty(), "mixture needs at least one component");
  double total_weight = 0.0;
  for (const auto& component : components) {
    PS_REQUIRE(component.weight > 0.0, "mixture weights must be positive");
    PS_REQUIRE(component.sigma >= 0.0, "mixture sigmas must be non-negative");
    total_weight += component.weight;
  }
  std::vector<double> samples;
  samples.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    double pick = rng.uniform() * total_weight;
    std::size_t chosen = components.size() - 1;
    for (std::size_t c = 0; c < components.size(); ++c) {
      if (pick < components[c].weight) {
        chosen = c;
        break;
      }
      pick -= components[c].weight;
    }
    samples.push_back(
        rng.normal(components[chosen].mean, components[chosen].sigma));
  }
  return samples;
}

}  // namespace ps::util
