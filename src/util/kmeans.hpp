#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ps::util {

/// Result of a 1-D k-means clustering.
struct KMeansResult {
  std::vector<double> centroids;          ///< Sorted ascending.
  std::vector<std::size_t> assignments;   ///< Cluster index per input value.
  std::vector<std::size_t> cluster_sizes; ///< Count per cluster.
  std::size_t iterations = 0;             ///< Lloyd iterations performed.
  double inertia = 0.0;                   ///< Sum of squared distances.
};

/// Lloyd's algorithm specialized for one-dimensional data.
///
/// Initialization is deterministic (evenly spaced quantiles), so results
/// are reproducible — this is what the paper uses to split cluster nodes
/// into low/medium/high frequency bins (Fig. 6). Requires k >= 1 and at
/// least k values.
[[nodiscard]] KMeansResult kmeans_1d(std::span<const double> values,
                                     std::size_t k,
                                     std::size_t max_iterations = 200);

}  // namespace ps::util
