#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace ps {

/// Base exception for all PowerStack errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a function argument violates its documented contract.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when an operation is attempted in a state that does not allow it.
class InvalidState : public Error {
 public:
  explicit InvalidState(const std::string& what) : Error(what) {}
};

/// Thrown when a lookup (host, job, signal, ...) fails.
class NotFound : public Error {
 public:
  explicit NotFound(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_invalid_argument(std::string_view expr,
                                         std::string_view file, int line,
                                         std::string_view msg);
[[noreturn]] void throw_invalid_state(std::string_view expr,
                                      std::string_view file, int line,
                                      std::string_view msg);
}  // namespace detail

}  // namespace ps

/// Contract check for arguments: throws ps::InvalidArgument when violated.
#define PS_REQUIRE(expr, msg)                                               \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::ps::detail::throw_invalid_argument(#expr, __FILE__, __LINE__, msg); \
    }                                                                       \
  } while (false)

/// Contract check for internal state: throws ps::InvalidState when violated.
#define PS_CHECK_STATE(expr, msg)                                        \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::ps::detail::throw_invalid_state(#expr, __FILE__, __LINE__, msg); \
    }                                                                    \
  } while (false)
