#pragma once

#include <iosfwd>
#include <sstream>
#include <string_view>

namespace ps::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide log configuration. Not a behavioral dependency: the library
/// never changes its results based on logging, so tests may silence it.
class Logger {
 public:
  static void set_level(LogLevel level) noexcept;
  [[nodiscard]] static LogLevel level() noexcept;
  /// Redirects output (default: std::clog). Pass nullptr to restore default.
  static void set_stream(std::ostream* stream) noexcept;

  static void write(LogLevel level, std::string_view module,
                    std::string_view message);
};

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream out;
  (out << ... << std::forward<Args>(args));
  return out.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(std::string_view module, Args&&... args) {
  if (Logger::level() <= LogLevel::kDebug) {
    Logger::write(LogLevel::kDebug, module,
                  detail::concat(std::forward<Args>(args)...));
  }
}

template <typename... Args>
void log_info(std::string_view module, Args&&... args) {
  if (Logger::level() <= LogLevel::kInfo) {
    Logger::write(LogLevel::kInfo, module,
                  detail::concat(std::forward<Args>(args)...));
  }
}

template <typename... Args>
void log_warn(std::string_view module, Args&&... args) {
  if (Logger::level() <= LogLevel::kWarn) {
    Logger::write(LogLevel::kWarn, module,
                  detail::concat(std::forward<Args>(args)...));
  }
}

template <typename... Args>
void log_error(std::string_view module, Args&&... args) {
  if (Logger::level() <= LogLevel::kError) {
    Logger::write(LogLevel::kError, module,
                  detail::concat(std::forward<Args>(args)...));
  }
}

}  // namespace ps::util
