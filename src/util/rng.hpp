#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace ps::util {

/// SplitMix64: used to seed larger generators from a single 64-bit seed.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  [[nodiscard]] std::uint64_t next() noexcept;

 private:
  std::uint64_t state_;
};

/// xoshiro256** — fast, high-quality, deterministic PRNG.
///
/// Satisfies UniformRandomBitGenerator so it can be used with <random>
/// distributions, but the helpers below avoid libstdc++-version-dependent
/// distribution implementations so results are reproducible everywhere.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds all 256 bits of state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  [[nodiscard]] std::uint64_t next() noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Uniform double in [lo, hi). Requires lo <= hi.
  [[nodiscard]] double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0. Unbiased (rejection).
  [[nodiscard]] std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal deviate (Box-Muller, deterministic pairing).
  [[nodiscard]] double normal() noexcept;

  /// Normal deviate with the given mean and standard deviation (sigma >= 0).
  [[nodiscard]] double normal(double mean, double sigma);

  /// Fisher-Yates shuffle, deterministic for a given seed.
  template <typename T>
  void shuffle(std::span<T> values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_index(i));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  /// Derives an independent child generator; stable for a given label.
  [[nodiscard]] Rng fork(std::uint64_t label) noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Samples `count` values from a mixture of normal components.
struct GaussianComponent {
  double weight = 1.0;  ///< Relative weight; normalized internally.
  double mean = 0.0;
  double sigma = 1.0;
};

[[nodiscard]] std::vector<double> sample_gaussian_mixture(
    Rng& rng, std::span<const GaussianComponent> components, std::size_t count);

}  // namespace ps::util
