#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ps::util {

/// Splits on a single-character delimiter; keeps empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view text,
                                             char delimiter);

/// Joins pieces with a separator.
[[nodiscard]] std::string join(std::span<const std::string> pieces,
                               std::string_view separator);

/// Strips ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view text) noexcept;

[[nodiscard]] bool starts_with(std::string_view text,
                               std::string_view prefix) noexcept;

/// Case-insensitive ASCII comparison.
[[nodiscard]] bool iequals(std::string_view a, std::string_view b) noexcept;

/// Formats watts with an SI prefix when large ("167.0 kW", "214.0 W").
[[nodiscard]] std::string format_watts(double watts, int precision = 1);

/// Formats seconds as "1.23 s" / "12.3 ms" as appropriate.
[[nodiscard]] std::string format_seconds(double seconds, int precision = 2);

}  // namespace ps::util
