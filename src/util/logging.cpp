#include "util/logging.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace ps::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::atomic<std::ostream*> g_stream{nullptr};
std::mutex g_write_mutex;

std::string_view level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void Logger::set_level(LogLevel level) noexcept { g_level.store(level); }

LogLevel Logger::level() noexcept { return g_level.load(); }

void Logger::set_stream(std::ostream* stream) noexcept {
  g_stream.store(stream);
}

void Logger::write(LogLevel level, std::string_view module,
                   std::string_view message) {
  std::scoped_lock lock(g_write_mutex);
  std::ostream* out = g_stream.load();
  if (out == nullptr) {
    out = &std::clog;
  }
  *out << '[' << level_name(level) << "] " << module << ": " << message
       << '\n';
}

}  // namespace ps::util
