#include "util/strings.hpp"

#include <cctype>
#include <cmath>

#include "util/table.hpp"

namespace ps::util {

std::vector<std::string> split(std::string_view text, char delimiter) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delimiter) {
      fields.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return fields;
}

std::string join(std::span<const std::string> pieces,
                 std::string_view separator) {
  std::string joined;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) {
      joined += separator;
    }
    joined += pieces[i];
  }
  return joined;
}

std::string_view trim(std::string_view text) noexcept {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin])) != 0) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string format_watts(double watts, int precision) {
  const double magnitude = std::abs(watts);
  if (magnitude >= 1e6) {
    return format_fixed(watts / 1e6, precision) + " MW";
  }
  if (magnitude >= 1e3) {
    return format_fixed(watts / 1e3, precision) + " kW";
  }
  return format_fixed(watts, precision) + " W";
}

std::string format_seconds(double seconds, int precision) {
  const double magnitude = std::abs(seconds);
  if (magnitude < 1.0 && magnitude > 0.0) {
    return format_fixed(seconds * 1e3, precision) + " ms";
  }
  return format_fixed(seconds, precision) + " s";
}

}  // namespace ps::util
