#include "util/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace ps::util {

std::string format_fixed(double value, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << value;
  return out.str();
}

void TextTable::add_column(std::string header, Align align, int precision) {
  PS_CHECK_STATE(rows_.empty(), "columns must be declared before rows");
  columns_.push_back(Column{std::move(header), align, precision});
}

void TextTable::begin_row() {
  PS_CHECK_STATE(!columns_.empty(), "declare columns before adding rows");
  if (!rows_.empty()) {
    PS_CHECK_STATE(rows_.back().size() == columns_.size(),
                   "previous row is incomplete");
  }
  rows_.emplace_back();
}

void TextTable::add_cell(std::string value) {
  PS_CHECK_STATE(!rows_.empty(), "begin_row before adding cells");
  PS_CHECK_STATE(rows_.back().size() < columns_.size(),
                 "row has more cells than columns");
  rows_.back().push_back(std::move(value));
}

void TextTable::add_number(double value) {
  PS_CHECK_STATE(!rows_.empty(), "begin_row before adding cells");
  const std::size_t column = rows_.back().size();
  PS_CHECK_STATE(column < columns_.size(), "row has more cells than columns");
  add_cell(format_fixed(value, columns_[column].precision));
}

void TextTable::add_percent(double fraction) {
  PS_CHECK_STATE(!rows_.empty(), "begin_row before adding cells");
  const std::size_t column = rows_.back().size();
  PS_CHECK_STATE(column < columns_.size(), "row has more cells than columns");
  add_cell(format_fixed(fraction * 100.0, columns_[column].precision) + "%");
}

void TextTable::print(std::ostream& out) const {
  PS_CHECK_STATE(rows_.empty() || rows_.back().size() == columns_.size(),
                 "last row is incomplete");
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].header.size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::size_t pad = widths[c] - cells[c].size();
      if (c > 0) {
        out << "  ";
      }
      if (columns_[c].align == Align::kRight) {
        out << std::string(pad, ' ') << cells[c];
      } else {
        out << cells[c] << std::string(pad, ' ');
      }
    }
    out << '\n';
  };
  std::vector<std::string> headers;
  headers.reserve(columns_.size());
  for (const auto& column : columns_) {
    headers.push_back(column.header);
  }
  emit(headers);
  std::size_t rule_width = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule_width += widths[c] + (c > 0 ? 2 : 0);
  }
  out << std::string(rule_width, '-') << '\n';
  for (const auto& row : rows_) {
    emit(row);
  }
}

std::string TextTable::to_string() const {
  std::ostringstream out;
  print(out);
  return out.str();
}

std::string CsvWriter::escape(std::string_view cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n") != std::string_view::npos;
  if (!needs_quotes) {
    return std::string(cell);
  }
  std::string escaped = "\"";
  for (char ch : cell) {
    if (ch == '"') {
      escaped += '"';
    }
    escaped += ch;
  }
  escaped += '"';
  return escaped;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) {
      *out_ << ',';
    }
    *out_ << escape(cells[i]);
  }
  *out_ << '\n';
}

}  // namespace ps::util
