#include "util/error.hpp"

#include <sstream>

namespace ps::detail {

namespace {
std::string format_failure(std::string_view kind, std::string_view expr,
                           std::string_view file, int line,
                           std::string_view msg) {
  std::ostringstream out;
  out << kind << ": " << msg << " [" << expr << "] at " << file << ":" << line;
  return out.str();
}
}  // namespace

void throw_invalid_argument(std::string_view expr, std::string_view file,
                            int line, std::string_view msg) {
  throw InvalidArgument(
      format_failure("invalid argument", expr, file, line, msg));
}

void throw_invalid_state(std::string_view expr, std::string_view file,
                         int line, std::string_view msg) {
  throw InvalidState(format_failure("invalid state", expr, file, line, msg));
}

}  // namespace ps::detail
