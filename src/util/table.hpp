#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace ps::util {

/// Column alignment for TextTable.
enum class Align { kLeft, kRight };

/// Fixed-width ASCII table builder used by the figure/table harnesses.
///
/// Columns are declared once; rows may be added as pre-formatted strings or
/// doubles (formatted with the column's precision).
class TextTable {
 public:
  struct Column {
    std::string header;
    Align align = Align::kRight;
    int precision = 2;  ///< Decimal places used by add_number().
  };

  void add_column(std::string header, Align align = Align::kRight,
                  int precision = 2);

  /// Starts a new row. Cells are appended with add_cell / add_number.
  void begin_row();
  void add_cell(std::string value);
  void add_number(double value);
  /// Formats `value` as a percentage ("12.3%") using the column precision.
  void add_percent(double fraction);

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t column_count() const noexcept {
    return columns_.size();
  }

  /// Renders the table with a header rule. Throws if any row is ragged.
  void print(std::ostream& out) const;
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<Column> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Minimal CSV writer (RFC-4180 quoting for commas/quotes/newlines).
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  void write_row(const std::vector<std::string>& cells);

 private:
  static std::string escape(std::string_view cell);
  std::ostream* out_;
};

/// Formats a double with fixed precision (no locale surprises).
[[nodiscard]] std::string format_fixed(double value, int precision);

}  // namespace ps::util
