#include "util/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ps::util {

void RunningStats::add(double value) noexcept {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double RunningStats::mean() const {
  PS_CHECK_STATE(count_ > 0, "mean of empty accumulator");
  return mean_;
}

double RunningStats::variance() const {
  PS_CHECK_STATE(count_ > 1, "variance needs at least two samples");
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  PS_CHECK_STATE(count_ > 0, "min of empty accumulator");
  return min_;
}

double RunningStats::max() const {
  PS_CHECK_STATE(count_ > 0, "max of empty accumulator");
  return max_;
}

double RunningStats::sum() const noexcept {
  return mean_ * static_cast<double>(count_);
}

double mean(std::span<const double> values) {
  PS_REQUIRE(!values.empty(), "mean of empty range");
  RunningStats stats;
  for (double v : values) {
    stats.add(v);
  }
  return stats.mean();
}

double variance(std::span<const double> values) {
  PS_REQUIRE(values.size() > 1, "variance needs at least two samples");
  RunningStats stats;
  for (double v : values) {
    stats.add(v);
  }
  return stats.variance();
}

double stddev(std::span<const double> values) {
  return std::sqrt(variance(values));
}

double median(std::span<const double> values) {
  return quantile(values, 0.5);
}

double quantile(std::span<const double> values, double q) {
  PS_REQUIRE(!values.empty(), "quantile of empty range");
  PS_REQUIRE(q >= 0.0 && q <= 1.0, "quantile q must be in [0, 1]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double position = q * static_cast<double>(sorted.size() - 1);
  const auto lower = static_cast<std::size_t>(position);
  const double frac = position - static_cast<double>(lower);
  if (lower + 1 >= sorted.size()) {
    return sorted.back();
  }
  return sorted[lower] + frac * (sorted[lower + 1] - sorted[lower]);
}

double t_critical95(std::size_t dof) {
  PS_REQUIRE(dof >= 1, "t critical value needs dof >= 1");
  // Two-sided 95% t table; interpolate between entries, asymptote 1.960.
  struct Entry {
    std::size_t dof;
    double value;
  };
  static constexpr Entry kTable[] = {
      {1, 12.706}, {2, 4.303}, {3, 3.182},  {4, 2.776},  {5, 2.571},
      {6, 2.447},  {7, 2.365}, {8, 2.306},  {9, 2.262},  {10, 2.228},
      {12, 2.179}, {15, 2.131}, {20, 2.086}, {25, 2.060}, {30, 2.042},
      {40, 2.021}, {60, 2.000}, {99, 1.984}, {120, 1.980}};
  if (dof >= 1000) {
    return 1.960;
  }
  const Entry* prev = &kTable[0];
  for (const Entry& entry : kTable) {
    if (entry.dof == dof) {
      return entry.value;
    }
    if (entry.dof > dof) {
      const double span = static_cast<double>(entry.dof - prev->dof);
      const double frac = static_cast<double>(dof - prev->dof) / span;
      return prev->value + frac * (entry.value - prev->value);
    }
    prev = &entry;
  }
  // dof between 120 and 1000: interpolate toward the normal quantile.
  const double frac = static_cast<double>(dof - 120) / (1000.0 - 120.0);
  return 1.980 + frac * (1.960 - 1.980);
}

ConfidenceInterval confidence_interval95(std::span<const double> values) {
  PS_REQUIRE(values.size() > 1, "CI needs at least two samples");
  const double sample_mean = mean(values);
  const double sample_sd = stddev(values);
  const double standard_error =
      sample_sd / std::sqrt(static_cast<double>(values.size()));
  return {sample_mean, t_critical95(values.size() - 1) * standard_error};
}

ConfidenceInterval bootstrap_ci95(std::span<const double> values, Rng& rng,
                                  std::size_t resamples) {
  PS_REQUIRE(!values.empty(), "bootstrap of empty range");
  PS_REQUIRE(resamples > 0, "bootstrap needs at least one resample");
  std::vector<double> means;
  means.reserve(resamples);
  for (std::size_t r = 0; r < resamples; ++r) {
    RunningStats stats;
    for (std::size_t i = 0; i < values.size(); ++i) {
      stats.add(values[rng.uniform_index(values.size())]);
    }
    means.push_back(stats.mean());
  }
  const double lo = quantile(means, 0.025);
  const double hi = quantile(means, 0.975);
  return {(lo + hi) / 2.0, (hi - lo) / 2.0};
}

double permutation_pvalue(std::span<const double> differences, Rng& rng,
                          std::size_t permutations) {
  PS_REQUIRE(!differences.empty(), "permutation test of empty range");
  PS_REQUIRE(permutations > 0, "need at least one permutation");
  const double observed = std::abs(mean(differences));
  if (observed == 0.0) {
    return 1.0;
  }
  std::size_t at_least_as_extreme = 0;
  for (std::size_t p = 0; p < permutations; ++p) {
    double sum = 0.0;
    for (double difference : differences) {
      // Branchless sign flip: XOR-ing the IEEE sign bit is exactly the
      // negation the ternary used to select, but the data-dependent
      // branch (a coin flip, so ~50% mispredicted) is gone.
      const std::uint64_t sign = (rng.next() & 1u) << 63;
      sum += std::bit_cast<double>(std::bit_cast<std::uint64_t>(difference) ^
                                   sign);
    }
    if (std::abs(sum / static_cast<double>(differences.size())) >=
        observed) {
      ++at_least_as_extreme;
    }
  }
  // +1 correction keeps the estimate conservative and never exactly 0.
  return static_cast<double>(at_least_as_extreme + 1) /
         static_cast<double>(permutations + 1);
}

Histogram::Histogram(double lo_edge, double hi_edge, std::size_t bin_count)
    : lo(lo_edge), hi(hi_edge), bins(bin_count, 0) {
  PS_REQUIRE(hi_edge > lo_edge, "histogram needs hi > lo");
  PS_REQUIRE(bin_count > 0, "histogram needs at least one bin");
}

void Histogram::add(double value) noexcept {
  const double width = (hi - lo) / static_cast<double>(bins.size());
  auto index = static_cast<std::ptrdiff_t>((value - lo) / width);
  index = std::clamp<std::ptrdiff_t>(
      index, 0, static_cast<std::ptrdiff_t>(bins.size()) - 1);
  ++bins[static_cast<std::size_t>(index)];
}

std::size_t Histogram::total() const noexcept {
  std::size_t sum = 0;
  for (std::size_t count : bins) {
    sum += count;
  }
  return sum;
}

double Histogram::bin_center(std::size_t index) const {
  PS_REQUIRE(index < bins.size(), "histogram bin index out of range");
  const double width = (hi - lo) / static_cast<double>(bins.size());
  return lo + (static_cast<double>(index) + 0.5) * width;
}

}  // namespace ps::util
