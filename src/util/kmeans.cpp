#include "util/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace ps::util {

KMeansResult kmeans_1d(std::span<const double> values, std::size_t k,
                       std::size_t max_iterations) {
  PS_REQUIRE(k >= 1, "k must be at least 1");
  PS_REQUIRE(values.size() >= k, "need at least k values");
  PS_REQUIRE(max_iterations >= 1, "need at least one iteration");

  KMeansResult result;
  result.centroids.resize(k);
  // Deterministic initialization: evenly spaced quantiles of the data.
  for (std::size_t c = 0; c < k; ++c) {
    const double q =
        (static_cast<double>(c) + 0.5) / static_cast<double>(k);
    result.centroids[c] = quantile(values, q);
  }

  result.assignments.assign(values.size(), 0);
  std::vector<double> sums(k);
  std::vector<std::size_t> counts(k);
  for (std::size_t iteration = 0; iteration < max_iterations; ++iteration) {
    ++result.iterations;
    bool changed = false;
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (std::size_t i = 0; i < values.size(); ++i) {
      std::size_t best = 0;
      double best_distance = std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < k; ++c) {
        const double distance = std::abs(values[i] - result.centroids[c]);
        if (distance < best_distance) {
          best_distance = distance;
          best = c;
        }
      }
      if (result.assignments[i] != best) {
        result.assignments[i] = best;
        changed = true;
      }
      sums[best] += values[i];
      ++counts[best];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] > 0) {
        result.centroids[c] = sums[c] / static_cast<double>(counts[c]);
      }
    }
    if (!changed && iteration > 0) {
      break;
    }
  }

  // Sort clusters by centroid so index 0 is always the lowest.
  std::vector<std::size_t> order(k);
  for (std::size_t c = 0; c < k; ++c) {
    order[c] = c;
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return result.centroids[a] < result.centroids[b];
  });
  std::vector<std::size_t> rank(k);
  std::vector<double> sorted_centroids(k);
  for (std::size_t c = 0; c < k; ++c) {
    rank[order[c]] = c;
    sorted_centroids[c] = result.centroids[order[c]];
  }
  result.centroids = std::move(sorted_centroids);
  result.cluster_sizes.assign(k, 0);
  result.inertia = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    result.assignments[i] = rank[result.assignments[i]];
    ++result.cluster_sizes[result.assignments[i]];
    const double delta = values[i] - result.centroids[result.assignments[i]];
    result.inertia += delta * delta;
  }
  return result;
}

}  // namespace ps::util
