#include "util/args.hpp"

#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace ps::util {

ArgParser& ArgParser::add_flag(std::string name, std::string help) {
  PS_REQUIRE(starts_with(name, "--"), "option names start with --");
  PS_REQUIRE(specs_.find(name) == specs_.end(), "duplicate option");
  specs_.emplace(std::move(name), Spec{true, "", std::move(help)});
  return *this;
}

ArgParser& ArgParser::add_option(std::string name, std::string default_value,
                                 std::string help) {
  PS_REQUIRE(starts_with(name, "--"), "option names start with --");
  PS_REQUIRE(specs_.find(name) == specs_.end(), "duplicate option");
  specs_.emplace(std::move(name),
                 Spec{false, std::move(default_value), std::move(help)});
  return *this;
}

const ArgParser::Spec& ArgParser::spec_of(std::string_view name) const {
  const auto it = specs_.find(name);
  if (it == specs_.end()) {
    throw InvalidArgument("unknown option '" + std::string(name) + "'");
  }
  return it->second;
}

void ArgParser::parse(int argc, const char* const* argv) {
  values_.clear();
  positional_.clear();
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (!starts_with(arg, "--")) {
      positional_.emplace_back(arg);
      continue;
    }
    const Spec& spec = spec_of(arg);
    if (spec.is_flag) {
      values_[std::string(arg)] = "true";
      continue;
    }
    PS_REQUIRE(i + 1 < argc,
               "option '" + std::string(arg) + "' needs a value");
    values_[std::string(arg)] = argv[++i];
  }
}

bool ArgParser::provided(std::string_view name) const {
  static_cast<void>(spec_of(name));  // unknown names still throw
  return values_.find(name) != values_.end();
}

bool ArgParser::flag(std::string_view name) const {
  const Spec& spec = spec_of(name);
  PS_REQUIRE(spec.is_flag, "'" + std::string(name) + "' is not a flag");
  return values_.find(name) != values_.end();
}

const std::string& ArgParser::option(std::string_view name) const {
  const Spec& spec = spec_of(name);
  PS_REQUIRE(!spec.is_flag,
             "'" + std::string(name) + "' is a flag, not an option");
  const auto it = values_.find(name);
  return it != values_.end() ? it->second : spec.default_value;
}

double ArgParser::option_double(std::string_view name) const {
  const std::string& text = option(name);
  try {
    return std::stod(text);
  } catch (const std::exception&) {
    throw InvalidArgument("option '" + std::string(name) +
                          "' is not a number: '" + text + "'");
  }
}

std::size_t ArgParser::option_size(std::string_view name) const {
  const std::string& text = option(name);
  try {
    return std::stoul(text);
  } catch (const std::exception&) {
    throw InvalidArgument("option '" + std::string(name) +
                          "' is not a count: '" + text + "'");
  }
}

std::string ArgParser::help() const {
  std::ostringstream out;
  for (const auto& [name, spec] : specs_) {
    out << "  " << name;
    if (!spec.is_flag) {
      out << " <value=" << spec.default_value << ">";
    }
    out << "  " << spec.help << '\n';
  }
  return out.str();
}

}  // namespace ps::util
