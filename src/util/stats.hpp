#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ps::util {
class Rng;

/// Welford online accumulator for mean / variance; numerically stable.
class RunningStats {
 public:
  void add(double value) noexcept;
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  /// Mean of the observed samples. Requires at least one sample.
  [[nodiscard]] double mean() const;
  /// Unbiased sample variance. Requires at least two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

[[nodiscard]] double mean(std::span<const double> values);
[[nodiscard]] double variance(std::span<const double> values);
[[nodiscard]] double stddev(std::span<const double> values);
[[nodiscard]] double median(std::span<const double> values);

/// Linear-interpolated quantile; q in [0, 1]. Requires non-empty input.
[[nodiscard]] double quantile(std::span<const double> values, double q);

/// Symmetric confidence interval half-width around the mean.
struct ConfidenceInterval {
  double mean = 0.0;
  double half_width = 0.0;  ///< mean +/- half_width covers the interval.
  [[nodiscard]] double lo() const noexcept { return mean - half_width; }
  [[nodiscard]] double hi() const noexcept { return mean + half_width; }
};

/// 95% CI for the mean using Student's t critical values.
/// Requires at least two samples.
[[nodiscard]] ConfidenceInterval confidence_interval95(
    std::span<const double> values);

/// Percentile-bootstrap 95% CI for the mean; deterministic given `rng`.
[[nodiscard]] ConfidenceInterval bootstrap_ci95(std::span<const double> values,
                                                Rng& rng,
                                                std::size_t resamples = 2000);

/// Two-sided sign-flip permutation p-value for "the mean of these paired
/// differences is zero". Each permutation randomly flips the signs of
/// the samples; the p-value is the fraction of permutations whose |mean|
/// reaches the observed |mean|. Deterministic given `rng`. Degenerate
/// all-zero input returns 1.0.
[[nodiscard]] double permutation_pvalue(std::span<const double> differences,
                                        Rng& rng,
                                        std::size_t permutations = 2000);

/// Two-sided t critical value for a 95% interval with `dof` degrees of
/// freedom (table-interpolated; exact enough for reporting CIs).
[[nodiscard]] double t_critical95(std::size_t dof);

/// Fixed-width histogram over [lo, hi); values outside are clamped to the
/// edge bins. Requires hi > lo and at least one bin.
struct Histogram {
  double lo = 0.0;
  double hi = 1.0;
  std::vector<std::size_t> bins;

  Histogram(double lo_edge, double hi_edge, std::size_t bin_count);
  void add(double value) noexcept;
  [[nodiscard]] std::size_t total() const noexcept;
  [[nodiscard]] double bin_center(std::size_t index) const;
};

}  // namespace ps::util
