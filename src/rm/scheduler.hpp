#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "rm/job.hpp"

namespace ps::rm {

/// Nodes granted to a job by the scheduler.
struct NodeGrant {
  std::string job_name;
  std::vector<std::size_t> node_indices;  ///< Indices into the cluster.
};

/// FIFO node scheduler over a fixed pool of node indices.
///
/// Minimal SLURM analogue: jobs are submitted, started in order when
/// enough nodes are free, and release their nodes on completion. No
/// backfill — a blocked head-of-queue job blocks later jobs, which is the
/// conservative behavior the paper's static schedule assumes.
class Scheduler {
 public:
  /// Pool of node indices this scheduler may hand out.
  explicit Scheduler(std::vector<std::size_t> pool);
  /// Convenience: a pool of indices [0, node_count).
  explicit Scheduler(std::size_t node_count);

  /// Enqueues a job. Throws ps::InvalidArgument if the job could never be
  /// satisfied (more nodes than the whole pool) or a job with the same
  /// name is already queued or running.
  void submit(const JobRequest& request);

  /// Starts as many queued jobs (in FIFO order) as currently fit.
  /// Returns the grants made by this call.
  ///
  /// If `backfill_ok` is provided, EASY-style backfilling is enabled:
  /// when the head of the queue does not fit, later queued jobs that do
  /// fit may jump ahead — but only if `backfill_ok(request)` confirms
  /// they will not delay the head job's reservation (the caller owns the
  /// time model; see facility::FacilityManager). Without the callback,
  /// the head blocks everything behind it, as before.
  std::vector<NodeGrant> start_pending(
      const std::function<bool(const JobRequest&)>& backfill_ok = {});

  /// Completes a running job, returning its nodes to the free pool.
  /// Throws ps::NotFound for unknown jobs.
  void complete(const std::string& job_name);

  /// Takes a *free* node out of service (hardware failure / maintenance).
  /// Throws ps::InvalidArgument if the node is not currently free.
  void quarantine(std::size_t node_index);

  /// Returns a quarantined node to the free pool.
  void restore(std::size_t node_index);

  [[nodiscard]] std::size_t quarantined_count() const noexcept {
    return quarantined_.size();
  }

  [[nodiscard]] std::size_t free_node_count() const noexcept;
  [[nodiscard]] std::size_t queued_count() const noexcept;
  /// The request at the head of the queue, or nullptr when empty. The
  /// pointer is invalidated by submit/start_pending/complete.
  [[nodiscard]] const JobRequest* queued_head() const noexcept;
  [[nodiscard]] std::size_t running_count() const noexcept;
  [[nodiscard]] bool is_running(const std::string& job_name) const;
  /// Nodes of a running job. Throws ps::NotFound for unknown jobs.
  [[nodiscard]] std::span<const std::size_t> nodes_of(
      const std::string& job_name) const;

 private:
  std::vector<std::size_t> free_nodes_;  ///< LIFO free list.
  std::vector<std::size_t> quarantined_;
  std::deque<JobRequest> queue_;
  std::unordered_map<std::string, NodeGrant> running_;
};

}  // namespace ps::rm
