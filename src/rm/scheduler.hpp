#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "rm/job.hpp"

namespace ps::rm {

/// Nodes granted to a job by the scheduler.
struct NodeGrant {
  std::string job_name;
  std::vector<std::size_t> node_indices;  ///< Indices into the cluster.
};

/// What a job's admission reserves against the power budget.
enum class AdmissionBasis {
  /// Legacy: nodes only, power is not an admission resource.
  kNodes,
  /// Worst case: every node of a running job reserves its full TDP —
  /// safe and wasteful, the batch-HPC default the paper assumes.
  kWorstCaseTdp,
  /// Measured draw: a node reserves the observed per-node draw (EWMA fed
  /// by observe_draw), falling back to TDP until telemetry arrives. This
  /// is what makes oversubscription pay: admitted worst-case TDP may
  /// exceed the budget as long as measured draw fits ratio × budget.
  kMeasuredDraw,
};

/// Power-admission configuration. The default (kNodes) is byte-identical
/// to the pre-multi-tenant scheduler.
struct AdmissionOptions {
  AdmissionBasis basis = AdmissionBasis::kNodes;
  /// System power budget the gate admits against (required > 0 for the
  /// power bases).
  double budget_watts = 0.0;
  /// Admit while reserved watts stay within ratio × budget. 1.0 is no
  /// oversubscription; >1 bets that admitted jobs will not all draw
  /// their reservation at once (the degradation layer covers the bet).
  double oversubscription_ratio = 1.0;
  /// Per-node worst-case draw (required > 0 for the power bases).
  double node_tdp_watts = 0.0;
  /// Reject (rather than queue) best_effort submissions once this many
  /// best_effort jobs already wait. 0 = unbounded queueing.
  std::size_t best_effort_queue_limit = 0;
};

/// FIFO node scheduler over a fixed pool of node indices.
///
/// Minimal SLURM analogue: jobs are submitted, started in order when
/// enough nodes are free, and release their nodes on completion.
///
/// Multi-tenancy: the queue drains in SLA-class-major order
/// (latency_critical first, best_effort last; FIFO within a class), and
/// with a power-admission basis configured a job must also fit the
/// power gate (reserved watts ≤ oversubscription_ratio × budget) to
/// start — so when power is scarce, best_effort work is what queues.
/// A single-class queue under the default options behaves exactly like
/// the original FIFO scheduler.
class Scheduler {
 public:
  /// Pool of node indices this scheduler may hand out.
  explicit Scheduler(std::vector<std::size_t> pool,
                     const AdmissionOptions& admission = {});
  /// Convenience: a pool of indices [0, node_count).
  explicit Scheduler(std::size_t node_count,
                     const AdmissionOptions& admission = {});

  /// Enqueues a job. Throws ps::InvalidArgument if the job could never be
  /// satisfied (more nodes than the whole pool) or a job with the same
  /// name is already queued or running. Throws on admission-policy
  /// rejections too — use try_submit to observe those as a result.
  void submit(const JobRequest& request);

  /// Like submit, but admission-policy rejections (best_effort queue
  /// limit reached, or a best_effort job that can never fit the power
  /// gate) return false instead of throwing. Structurally invalid
  /// requests still throw.
  [[nodiscard]] bool try_submit(const JobRequest& request);

  /// Starts as many queued jobs (in class-major FIFO order) as currently
  /// fit both the node pool and the power gate. Returns the grants made
  /// by this call.
  ///
  /// If `backfill_ok` is provided, EASY-style backfilling is enabled:
  /// when the head of the queue does not fit, later queued jobs that do
  /// fit may jump ahead — but only if `backfill_ok(request)` confirms
  /// they will not delay the head job's reservation (the caller owns the
  /// time model; see facility::FacilityManager). Without the callback,
  /// the head blocks everything behind it, as before.
  std::vector<NodeGrant> start_pending(
      const std::function<bool(const JobRequest&)>& backfill_ok = {});

  /// Completes a running job, returning its nodes to the free pool (and
  /// its watts to the power gate). Throws ps::NotFound for unknown jobs.
  void complete(const std::string& job_name);

  /// Feeds the power gate the latest measured draw: `total_watts` across
  /// `busy_node_count` running nodes updates the per-node EWMA that
  /// kMeasuredDraw admission reserves with. Ignored while no node runs.
  void observe_draw(double total_watts, std::size_t busy_node_count);

  /// Takes a *free* node out of service (hardware failure / maintenance).
  /// Throws ps::InvalidArgument if the node is not currently free.
  void quarantine(std::size_t node_index);

  /// Returns a quarantined node to the free pool.
  void restore(std::size_t node_index);

  [[nodiscard]] std::size_t quarantined_count() const noexcept {
    return quarantined_.size();
  }

  [[nodiscard]] std::size_t free_node_count() const noexcept;
  [[nodiscard]] std::size_t queued_count() const noexcept;
  /// The request blocking the queue — the first in class-major order —
  /// or nullptr when empty. Invalidated by submit/start_pending/complete.
  [[nodiscard]] const JobRequest* queued_head() const noexcept;
  [[nodiscard]] std::size_t running_count() const noexcept;
  [[nodiscard]] bool is_running(const std::string& job_name) const;
  /// Nodes of a running job. Throws ps::NotFound for unknown jobs.
  [[nodiscard]] std::span<const std::size_t> nodes_of(
      const std::string& job_name) const;

  /// Admission-policy rejections so far (try_submit returning false).
  [[nodiscard]] std::size_t admission_rejections() const noexcept {
    return admission_rejections_;
  }
  /// Watts currently reserved by running jobs against the power gate
  /// (0 under the kNodes basis).
  [[nodiscard]] double reserved_watts() const noexcept {
    return reserved_watts_;
  }
  /// The per-node draw estimate the gate currently reserves with.
  [[nodiscard]] double estimated_node_watts() const noexcept;

 private:
  /// Queue indices in drain order: class-major (latency_critical first),
  /// FIFO within a class. Identity for a single-class queue.
  [[nodiscard]] std::vector<std::size_t> drain_order() const;
  /// True when the power gate admits the request right now.
  [[nodiscard]] bool power_fits(const JobRequest& request) const;
  [[nodiscard]] double reservation_for(const JobRequest& request) const;

  AdmissionOptions admission_;
  std::vector<std::size_t> free_nodes_;  ///< LIFO free list.
  std::vector<std::size_t> quarantined_;
  std::deque<JobRequest> queue_;
  std::unordered_map<std::string, NodeGrant> running_;
  std::unordered_map<std::string, double> reservations_;
  double reserved_watts_ = 0.0;
  double measured_node_watts_ = 0.0;  ///< EWMA; valid once measured_seen_.
  bool measured_seen_ = false;
  std::size_t admission_rejections_ = 0;
};

}  // namespace ps::rm
