#include "rm/power_manager.hpp"

#include "util/error.hpp"

namespace ps::rm {

SystemPowerManager::SystemPowerManager(double system_budget_watts)
    : budget_(system_budget_watts) {
  PS_REQUIRE(system_budget_watts > 0.0, "system budget must be positive");
}

void SystemPowerManager::apply(std::span<sim::JobSimulation* const> jobs,
                               const PowerAllocation& allocation,
                               bool enforce_budget) const {
  PS_REQUIRE(allocation.job_host_caps.size() == jobs.size(),
             "allocation has a different number of jobs");
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    PS_REQUIRE(jobs[j] != nullptr, "job must not be null");
    PS_REQUIRE(allocation.job_host_caps[j].size() == jobs[j]->host_count(),
               "allocation has a different number of hosts for a job");
  }
  if (enforce_budget) {
    // Tolerance covers RAPL power-unit quantization (1/8 W per socket).
    const double tolerance =
        0.5 * static_cast<double>(allocation.host_count());
    PS_REQUIRE(allocation.within_budget(budget_, tolerance),
               "allocation exceeds the system power budget");
  }
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    for (std::size_t h = 0; h < jobs[j]->host_count(); ++h) {
      jobs[j]->set_host_cap(h, allocation.job_host_caps[j][h]);
    }
  }
}

double SystemPowerManager::total_allocated_watts(
    std::span<sim::JobSimulation* const> jobs) {
  double total = 0.0;
  for (const auto* job : jobs) {
    PS_REQUIRE(job != nullptr, "job must not be null");
    total += job->total_allocated_power();
  }
  return total;
}

bool SystemPowerManager::allocation_fits(
    std::span<sim::JobSimulation* const> jobs) const {
  double hosts = 0.0;
  for (const auto* job : jobs) {
    hosts += static_cast<double>(job->host_count());
  }
  return total_allocated_watts(jobs) <= budget_ + 0.5 * hosts;
}

}  // namespace ps::rm
