#include "rm/power_manager.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "util/error.hpp"

namespace ps::rm {

PowerAllocation clamp_allocation_to_budget(
    const PowerAllocation& allocation,
    const std::vector<std::vector<double>>& host_floors,
    double budget_watts,
    const std::vector<std::vector<double>>& gpu_floors) {
  PS_REQUIRE(budget_watts > 0.0, "clamp budget must be positive");
  PS_REQUIRE(host_floors.size() == allocation.job_host_caps.size(),
             "floor shape has a different number of jobs");
  PS_REQUIRE(gpu_floors.size() == allocation.job_host_gpu_caps.size(),
             "GPU floor shape has a different number of jobs");
  double total_caps = 0.0;
  double total_floors = 0.0;
  for (std::size_t j = 0; j < allocation.job_host_caps.size(); ++j) {
    PS_REQUIRE(host_floors[j].size() == allocation.job_host_caps[j].size(),
               "floor shape has a different number of hosts for a job");
    for (std::size_t h = 0; h < allocation.job_host_caps[j].size(); ++h) {
      PS_REQUIRE(host_floors[j][h] >= 0.0, "host floor cannot be negative");
      total_caps += allocation.job_host_caps[j][h];
      total_floors += host_floors[j][h];
    }
  }
  for (std::size_t j = 0; j < allocation.job_host_gpu_caps.size(); ++j) {
    PS_REQUIRE(gpu_floors[j].size() == allocation.job_host_gpu_caps[j].size(),
               "GPU floor shape has a different number of hosts for a job");
    for (std::size_t h = 0; h < allocation.job_host_gpu_caps[j].size(); ++h) {
      PS_REQUIRE(gpu_floors[j][h] >= 0.0, "GPU floor cannot be negative");
      total_caps += allocation.job_host_gpu_caps[j][h];
      total_floors += gpu_floors[j][h];
    }
  }
  double scale = 1.0;
  if (total_caps > budget_watts) {
    scale = total_caps > total_floors
                ? (budget_watts - total_floors) / (total_caps - total_floors)
                : 0.0;
    scale = std::clamp(scale, 0.0, 1.0);
  }
  PowerAllocation clamped;
  clamped.job_host_caps.resize(allocation.job_host_caps.size());
  for (std::size_t j = 0; j < allocation.job_host_caps.size(); ++j) {
    clamped.job_host_caps[j].reserve(allocation.job_host_caps[j].size());
    for (std::size_t h = 0; h < allocation.job_host_caps[j].size(); ++h) {
      const double floor = host_floors[j][h];
      const double cap = allocation.job_host_caps[j][h];
      clamped.job_host_caps[j].push_back(
          floor + scale * std::max(0.0, cap - floor));
    }
  }
  clamped.job_host_gpu_caps.resize(allocation.job_host_gpu_caps.size());
  for (std::size_t j = 0; j < allocation.job_host_gpu_caps.size(); ++j) {
    clamped.job_host_gpu_caps[j].reserve(
        allocation.job_host_gpu_caps[j].size());
    for (std::size_t h = 0; h < allocation.job_host_gpu_caps[j].size(); ++h) {
      const double floor = gpu_floors[j][h];
      const double cap = allocation.job_host_gpu_caps[j][h];
      clamped.job_host_gpu_caps[j].push_back(
          floor + scale * std::max(0.0, cap - floor));
    }
  }
  return clamped;
}

PowerAllocation clamp_allocation_to_budget(
    const PowerAllocation& allocation,
    const std::vector<std::vector<double>>& host_floors,
    double budget_watts,
    const std::vector<std::vector<double>>& gpu_floors,
    std::span<const sim::SlaClass> job_classes) {
  const bool uniform =
      job_classes.empty() ||
      std::all_of(job_classes.begin(), job_classes.end(),
                  [&](sim::SlaClass c) { return c == job_classes.front(); });
  if (uniform) {
    // One class is one proportional family — exactly the classless clamp.
    return clamp_allocation_to_budget(allocation, host_floors, budget_watts,
                                      gpu_floors);
  }
  PS_REQUIRE(job_classes.size() == allocation.job_host_caps.size(),
             "class list has a different number of jobs");
  PS_REQUIRE(budget_watts > 0.0, "clamp budget must be positive");
  PS_REQUIRE(host_floors.size() == allocation.job_host_caps.size(),
             "floor shape has a different number of jobs");
  PS_REQUIRE(gpu_floors.size() == allocation.job_host_gpu_caps.size(),
             "GPU floor shape has a different number of jobs");

  // Per-class totals of caps and floors across both power domains.
  std::array<double, sim::kSlaClassCount> class_caps{};
  std::array<double, sim::kSlaClassCount> class_floors{};
  double total_caps = 0.0;
  for (std::size_t j = 0; j < allocation.job_host_caps.size(); ++j) {
    PS_REQUIRE(host_floors[j].size() == allocation.job_host_caps[j].size(),
               "floor shape has a different number of hosts for a job");
    const std::size_t rank = sim::sla_rank(job_classes[j]);
    for (std::size_t h = 0; h < allocation.job_host_caps[j].size(); ++h) {
      PS_REQUIRE(host_floors[j][h] >= 0.0, "host floor cannot be negative");
      class_caps[rank] += allocation.job_host_caps[j][h];
      class_floors[rank] += host_floors[j][h];
      total_caps += allocation.job_host_caps[j][h];
    }
    if (j < allocation.job_host_gpu_caps.size() &&
        !allocation.job_host_gpu_caps[j].empty()) {
      PS_REQUIRE(
          gpu_floors[j].size() == allocation.job_host_gpu_caps[j].size(),
          "GPU floor shape has a different number of hosts for a job");
      for (std::size_t h = 0; h < allocation.job_host_gpu_caps[j].size();
           ++h) {
        PS_REQUIRE(gpu_floors[j][h] >= 0.0, "GPU floor cannot be negative");
        class_caps[rank] += allocation.job_host_gpu_caps[j][h];
        class_floors[rank] += gpu_floors[j][h];
        total_caps += allocation.job_host_gpu_caps[j][h];
      }
    }
  }

  // Take the required reduction from the lowest class first: a class is
  // pinned to its floors while the reduction still exceeds its excess,
  // the class where the reduction runs out is scaled proportionally, and
  // every class above it keeps its caps untouched.
  std::array<double, sim::kSlaClassCount> class_scale;
  class_scale.fill(1.0);
  double reduction = std::max(0.0, total_caps - budget_watts);
  for (std::size_t rank = 0; rank < sim::kSlaClassCount && reduction > 0.0;
       ++rank) {
    const double excess = class_caps[rank] - class_floors[rank];
    if (excess <= 0.0) {
      continue;
    }
    const double take = std::min(reduction, excess);
    class_scale[rank] = 1.0 - take / excess;
    reduction -= take;
  }

  PowerAllocation clamped;
  clamped.job_host_caps.resize(allocation.job_host_caps.size());
  clamped.job_host_gpu_caps.resize(allocation.job_host_gpu_caps.size());
  for (std::size_t j = 0; j < allocation.job_host_caps.size(); ++j) {
    const double scale = class_scale[sim::sla_rank(job_classes[j])];
    clamped.job_host_caps[j].reserve(allocation.job_host_caps[j].size());
    for (std::size_t h = 0; h < allocation.job_host_caps[j].size(); ++h) {
      const double floor = host_floors[j][h];
      const double cap = allocation.job_host_caps[j][h];
      clamped.job_host_caps[j].push_back(
          floor + scale * std::max(0.0, cap - floor));
    }
    if (j < allocation.job_host_gpu_caps.size()) {
      clamped.job_host_gpu_caps[j].reserve(
          allocation.job_host_gpu_caps[j].size());
      for (std::size_t h = 0; h < allocation.job_host_gpu_caps[j].size();
           ++h) {
        const double floor = gpu_floors[j][h];
        const double cap = allocation.job_host_gpu_caps[j][h];
        clamped.job_host_gpu_caps[j].push_back(
            floor + scale * std::max(0.0, cap - floor));
      }
    }
  }
  return clamped;
}

SystemPowerManager::SystemPowerManager(double system_budget_watts)
    : budget_(system_budget_watts) {
  PS_REQUIRE(system_budget_watts > 0.0, "system budget must be positive");
}

void SystemPowerManager::set_observer(const obs::Observability& obs) {
  if (obs.metrics == nullptr) {
    return;
  }
  applies_metric_ = &obs.metrics->counter("rm.applies");
  clamps_metric_ = &obs.metrics->counter("rm.emergency_clamps");
  budget_adopted_metric_ = &obs.metrics->counter("rm.budget_adopted");
  budget_stale_metric_ = &obs.metrics->counter("rm.budget_stale");
  excursions_metric_ = &obs.metrics->counter("rm.excursions_closed");
  budget_gauge_ = &obs.metrics->gauge("rm.budget_watts");
  time_to_safe_gauge_ = &obs.metrics->gauge("rm.last_time_to_safe_seconds");
  budget_gauge_->set(budget_);
}

bool SystemPowerManager::set_budget(double budget_watts, std::uint64_t epoch) {
  PS_REQUIRE(budget_watts > 0.0, "system budget must be positive");
  if (epoch <= budget_epoch_) {
    if (budget_stale_metric_ != nullptr) {
      budget_stale_metric_->add();
    }
    return false;  // stale revision: a newer budget already applied
  }
  budget_ = budget_watts;
  budget_epoch_ = epoch;
  if (budget_adopted_metric_ != nullptr) {
    budget_adopted_metric_->add();
    budget_gauge_->set(budget_);
  }
  return true;
}

void SystemPowerManager::apply(std::span<sim::JobSimulation* const> jobs,
                               const PowerAllocation& allocation,
                               bool enforce_budget) const {
  PS_REQUIRE(allocation.job_host_caps.size() == jobs.size(),
             "allocation has a different number of jobs");
  PS_REQUIRE(allocation.job_host_gpu_caps.empty() ||
                 allocation.job_host_gpu_caps.size() == jobs.size(),
             "GPU allocation has a different number of jobs");
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    PS_REQUIRE(jobs[j] != nullptr, "job must not be null");
    PS_REQUIRE(allocation.job_host_caps[j].size() == jobs[j]->host_count(),
               "allocation has a different number of hosts for a job");
    const auto& gpu_caps = allocation.job_gpu_caps(j);
    PS_REQUIRE(gpu_caps.empty() || gpu_caps.size() == jobs[j]->host_count(),
               "GPU allocation has a different number of hosts for a job");
  }
  if (enforce_budget) {
    // Tolerance covers RAPL power-unit quantization (1/8 W per socket).
    const double tolerance =
        0.5 * static_cast<double>(allocation.host_count());
    PS_REQUIRE(allocation.within_budget(budget_, tolerance),
               "allocation exceeds the system power budget");
  }
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const auto& gpu_caps = allocation.job_gpu_caps(j);
    for (std::size_t h = 0; h < jobs[j]->host_count(); ++h) {
      jobs[j]->set_host_cap(h, allocation.job_host_caps[j][h]);
      if (!gpu_caps.empty() && jobs[j]->host(h).gpu_count() > 0) {
        jobs[j]->set_host_gpu_cap(h, gpu_caps[h]);
      }
    }
  }
  if (applies_metric_ != nullptr) {
    applies_metric_->add();
  }
}

PowerAllocation SystemPowerManager::emergency_clamp(
    std::span<sim::JobSimulation* const> jobs,
    const PowerAllocation& allocation,
    std::span<const sim::SlaClass> job_classes) const {
  PS_REQUIRE(allocation.job_host_caps.size() == jobs.size(),
             "allocation has a different number of jobs");
  std::vector<std::vector<double>> floors(jobs.size());
  std::vector<std::vector<double>> gpu_floors(
      allocation.job_host_gpu_caps.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    PS_REQUIRE(jobs[j] != nullptr, "job must not be null");
    floors[j].reserve(jobs[j]->host_count());
    for (std::size_t h = 0; h < jobs[j]->host_count(); ++h) {
      floors[j].push_back(jobs[j]->host(h).min_cap());
    }
    // The GPU domain floor-preserves independently: each device set's
    // settable minimum, not the CPU floor, bounds its squeeze.
    if (j < gpu_floors.size() && !allocation.job_host_gpu_caps[j].empty()) {
      gpu_floors[j].reserve(jobs[j]->host_count());
      for (std::size_t h = 0; h < jobs[j]->host_count(); ++h) {
        gpu_floors[j].push_back(jobs[j]->host_gpu_min_cap(h));
      }
    }
  }
  const PowerAllocation clamped = clamp_allocation_to_budget(
      allocation, floors, budget_, gpu_floors, job_classes);
  apply(jobs, clamped, /*enforce_budget=*/false);
  if (clamps_metric_ != nullptr) {
    clamps_metric_->add();
  }
  return clamped;
}

void SystemPowerManager::observe_programmed(double programmed_watts,
                                            std::size_t host_count,
                                            double elapsed_seconds) {
  PS_REQUIRE(elapsed_seconds >= 0.0, "elapsed time cannot be negative");
  const double tolerance = 0.5 * static_cast<double>(host_count);
  const double over = programmed_watts - budget_;
  if (over > tolerance) {
    excursions_.in_excursion = true;
    excursions_.current_excursion_seconds += elapsed_seconds;
    excursions_.over_budget_watt_seconds += over * elapsed_seconds;
    excursions_.worst_over_watts = std::max(excursions_.worst_over_watts, over);
  } else if (excursions_.in_excursion) {
    ++excursions_.excursions;
    excursions_.last_time_to_safe_seconds =
        excursions_.current_excursion_seconds;
    excursions_.max_time_to_safe_seconds =
        std::max(excursions_.max_time_to_safe_seconds,
                 excursions_.current_excursion_seconds);
    excursions_.current_excursion_seconds = 0.0;
    excursions_.in_excursion = false;
    if (excursions_metric_ != nullptr) {
      excursions_metric_->add();
      time_to_safe_gauge_->set(excursions_.last_time_to_safe_seconds);
    }
  }
}

double SystemPowerManager::total_allocated_watts(
    std::span<sim::JobSimulation* const> jobs) {
  double total = 0.0;
  for (const auto* job : jobs) {
    PS_REQUIRE(job != nullptr, "job must not be null");
    total += job->total_allocated_power();
  }
  return total;
}

bool SystemPowerManager::allocation_fits(
    std::span<sim::JobSimulation* const> jobs) const {
  double hosts = 0.0;
  for (const auto* job : jobs) {
    hosts += static_cast<double>(job->host_count());
  }
  return total_allocated_watts(jobs) <= budget_ + 0.5 * hosts;
}

}  // namespace ps::rm
