#include "rm/allocation.hpp"

#include "util/error.hpp"

namespace ps::rm {

namespace {
const std::vector<double> kNoGpuCaps;
}  // namespace

bool PowerAllocation::has_gpu_caps() const {
  for (const auto& job : job_host_gpu_caps) {
    if (!job.empty()) {
      return true;
    }
  }
  return false;
}

const std::vector<double>& PowerAllocation::job_gpu_caps(
    std::size_t job) const {
  PS_REQUIRE(job < job_host_caps.size(), "job index out of range");
  if (job >= job_host_gpu_caps.size()) {
    return kNoGpuCaps;
  }
  return job_host_gpu_caps[job];
}

double PowerAllocation::total_watts() const {
  double total = 0.0;
  for (const auto& job : job_host_caps) {
    for (double cap : job) {
      total += cap;
    }
  }
  for (const auto& job : job_host_gpu_caps) {
    for (double cap : job) {
      total += cap;
    }
  }
  return total;
}

double PowerAllocation::job_total_watts(std::size_t job) const {
  PS_REQUIRE(job < job_host_caps.size(), "job index out of range");
  double total = 0.0;
  for (double cap : job_host_caps[job]) {
    total += cap;
  }
  for (double cap : job_gpu_caps(job)) {
    total += cap;
  }
  return total;
}

std::size_t PowerAllocation::host_count() const {
  std::size_t count = 0;
  for (const auto& job : job_host_caps) {
    count += job.size();
  }
  for (const auto& job : job_host_gpu_caps) {
    count += job.size();
  }
  return count;
}

bool PowerAllocation::within_budget(double budget_watts,
                                    double tolerance_watts) const {
  return total_watts() <= budget_watts + tolerance_watts;
}

}  // namespace ps::rm
