#pragma once

#include <span>
#include <vector>

#include "rm/allocation.hpp"
#include "sim/sla.hpp"

namespace ps::rm {

/// Per-job demand summary the class-ordered degradation pass works from.
/// Shapes mirror PowerAllocation: one entry per host (CPU domain), plus
/// optional GPU-domain entries on heterogeneous jobs. `host_needed` is
/// the performance-preserving cap the balancer derived for the job's
/// current phase — the watts below which the job's SLA starts eroding.
struct ClassDemand {
  sim::SlaClass sla_class = sim::SlaClass::kStandard;
  std::vector<double> host_floors;
  std::vector<double> host_needed;
  std::vector<double> gpu_floors;  ///< Empty on CPU-only jobs.
  std::vector<double> gpu_needed;  ///< Empty on CPU-only jobs.
};

/// Priority-ordered graceful degradation of a policy allocation under
/// scarcity. The pass never raises the allocation total and never
/// programs below a hardware floor; within that envelope it re-divides
/// the watts so that service classes degrade strictly in order:
///
///   1. every limit keeps its hardware floor (non-negotiable);
///   2. remaining watts satisfy performance-preserving needs in class
///      order, latency_critical first — a class whose needs cannot all be
///      met is scaled proportionally and every class below it stays at
///      its floors;
///   3. watts still left (abundance) restore each limit's surplus above
///      need, again highest class first.
///
/// When every limit's allocation already covers its need and the budget
/// covers the allocation, the pass returns the input unchanged — under
/// abundance degradation is the identity, so converged single-tenant
/// behavior is untouched. When all jobs share one class the pass is a
/// no-op by construction (one class = one proportional family), and
/// callers skip it entirely for single-class mixes.
///
/// The result satisfies the no-class-inversion invariant by
/// construction: a job starved below its need only ever coexists with
/// lower-class jobs sitting at their floors.
[[nodiscard]] PowerAllocation shed_allocation_by_class(
    const PowerAllocation& allocation, std::span<const ClassDemand> demands,
    double budget_watts);

}  // namespace ps::rm
