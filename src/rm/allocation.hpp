#pragma once

#include <cstddef>
#include <vector>

namespace ps::rm {

/// Per-host, per-domain power caps for a set of jobs, as produced by a
/// power policy. job_host_caps[j][h] is the CPU/node cap (watts) of host h
/// of job j. job_host_gpu_caps carries the second (GPU) power domain:
/// empty for a single-domain allocation; otherwise one vector per job,
/// where an empty inner vector means that job has no GPU domain and a
/// non-empty one holds one GPU cap per host.
struct PowerAllocation {
  std::vector<std::vector<double>> job_host_caps;
  std::vector<std::vector<double>> job_host_gpu_caps;

  /// True when any job carries GPU-domain caps.
  [[nodiscard]] bool has_gpu_caps() const;
  /// GPU caps of one job ({} when the allocation or job is CPU-only).
  [[nodiscard]] const std::vector<double>& job_gpu_caps(std::size_t job) const;

  /// Sums across both domains (a job's draw against the one node budget).
  [[nodiscard]] double total_watts() const;
  [[nodiscard]] double job_total_watts(std::size_t job) const;
  /// Number of capped domain entries (GPU-domain entries count too: the
  /// budget tolerance scales with the number of quantized limits).
  [[nodiscard]] std::size_t host_count() const;

  /// True if total allocated power is within `budget_watts` plus a small
  /// tolerance for RAPL quantization.
  [[nodiscard]] bool within_budget(double budget_watts,
                                   double tolerance_watts = 1.0) const;
};

}  // namespace ps::rm
