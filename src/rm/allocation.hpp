#pragma once

#include <cstddef>
#include <vector>

namespace ps::rm {

/// Per-host power caps for a set of jobs, as produced by a power policy.
/// job_host_caps[j][h] is the node cap (watts) of host h of job j.
struct PowerAllocation {
  std::vector<std::vector<double>> job_host_caps;

  [[nodiscard]] double total_watts() const;
  [[nodiscard]] double job_total_watts(std::size_t job) const;
  [[nodiscard]] std::size_t host_count() const;

  /// True if total allocated power is within `budget_watts` plus a small
  /// tolerance for RAPL quantization.
  [[nodiscard]] bool within_budget(double budget_watts,
                                   double tolerance_watts = 1.0) const;
};

}  // namespace ps::rm
