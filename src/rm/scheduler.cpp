#include "rm/scheduler.hpp"

#include <algorithm>
#include <iterator>
#include <numeric>

#include "util/error.hpp"

namespace ps::rm {

namespace {

/// Smoothing for the measured per-node draw: heavy enough to follow a
/// phase change within a few observations, light enough that one noisy
/// sample cannot swing admission.
constexpr double kDrawEwmaAlpha = 0.3;

}  // namespace

Scheduler::Scheduler(std::vector<std::size_t> pool,
                     const AdmissionOptions& admission)
    : admission_(admission), free_nodes_(std::move(pool)) {
  PS_REQUIRE(!free_nodes_.empty(), "scheduler needs a non-empty node pool");
  std::vector<std::size_t> sorted = free_nodes_;
  std::sort(sorted.begin(), sorted.end());
  PS_REQUIRE(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
             "node pool contains duplicate indices");
  if (admission_.basis != AdmissionBasis::kNodes) {
    PS_REQUIRE(admission_.budget_watts > 0.0,
               "power admission needs a positive budget");
    PS_REQUIRE(admission_.node_tdp_watts > 0.0,
               "power admission needs a positive node TDP");
    PS_REQUIRE(admission_.oversubscription_ratio >= 1.0,
               "oversubscription ratio cannot be below 1");
  }
  // Keep the free list sorted descending so pop_back hands out the lowest
  // indices first (deterministic, test-friendly placement).
  std::sort(free_nodes_.begin(), free_nodes_.end(), std::greater<>());
}

Scheduler::Scheduler(std::size_t node_count, const AdmissionOptions& admission)
    : Scheduler(
          [&] {
            std::vector<std::size_t> pool(node_count);
            std::iota(pool.begin(), pool.end(), std::size_t{0});
            return pool;
          }(),
          admission) {}

void Scheduler::submit(const JobRequest& request) {
  PS_REQUIRE(try_submit(request),
             "the admission gate rejected the job; use try_submit to "
             "observe rejections as a result");
}

bool Scheduler::try_submit(const JobRequest& request) {
  request.validate();
  // Quarantined nodes count toward the configured pool: repairs are
  // temporary, so a wide job waits for them instead of being rejected.
  const std::size_t pool_size =
      free_nodes_.size() + quarantined_.size() + [&] {
        std::size_t used = 0;
        for (const auto& [name, grant] : running_) {
          used += grant.node_indices.size();
        }
        return used;
      }();
  PS_REQUIRE(request.node_count <= pool_size,
             "job requests more nodes than the pool holds");
  PS_REQUIRE(running_.find(request.name) == running_.end(),
             "a job with this name is already running");
  for (const auto& queued : queue_) {
    PS_REQUIRE(queued.name != request.name,
               "a job with this name is already queued");
  }
  // Admission policy: best_effort is the class the gate turns away —
  // higher classes always queue (they paid for the wait).
  if (request.sla_class == sim::SlaClass::kBestEffort) {
    if (admission_.best_effort_queue_limit > 0) {
      std::size_t queued_best_effort = 0;
      for (const auto& queued : queue_) {
        if (queued.sla_class == sim::SlaClass::kBestEffort) {
          ++queued_best_effort;
        }
      }
      if (queued_best_effort >= admission_.best_effort_queue_limit) {
        ++admission_rejections_;
        return false;
      }
    }
    if (admission_.basis != AdmissionBasis::kNodes &&
        reservation_for(request) > admission_.oversubscription_ratio *
                                       admission_.budget_watts) {
      // This job alone can never fit the gate: turning it away now beats
      // letting it starve in the queue forever.
      ++admission_rejections_;
      return false;
    }
  }
  queue_.push_back(request);
  return true;
}

std::vector<std::size_t> Scheduler::drain_order() const {
  std::vector<std::size_t> order(queue_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return sim::sla_rank(queue_[a].sla_class) >
                            sim::sla_rank(queue_[b].sla_class);
                   });
  return order;
}

double Scheduler::estimated_node_watts() const noexcept {
  if (admission_.basis == AdmissionBasis::kMeasuredDraw && measured_seen_) {
    return measured_node_watts_;
  }
  return admission_.node_tdp_watts;
}

double Scheduler::reservation_for(const JobRequest& request) const {
  return static_cast<double>(request.node_count) * estimated_node_watts();
}

bool Scheduler::power_fits(const JobRequest& request) const {
  if (admission_.basis == AdmissionBasis::kNodes) {
    return true;
  }
  return reserved_watts_ + reservation_for(request) <=
         admission_.oversubscription_ratio * admission_.budget_watts + 1e-9;
}

void Scheduler::observe_draw(double total_watts,
                             std::size_t busy_node_count) {
  PS_REQUIRE(total_watts >= 0.0, "observed draw cannot be negative");
  if (busy_node_count == 0) {
    return;
  }
  const double per_node =
      total_watts / static_cast<double>(busy_node_count);
  if (measured_seen_) {
    measured_node_watts_ = kDrawEwmaAlpha * per_node +
                           (1.0 - kDrawEwmaAlpha) * measured_node_watts_;
  } else {
    measured_node_watts_ = per_node;
    measured_seen_ = true;
  }
}

std::vector<NodeGrant> Scheduler::start_pending(
    const std::function<bool(const JobRequest&)>& backfill_ok) {
  std::vector<NodeGrant> grants;
  const auto start_job = [&](const JobRequest& request) {
    NodeGrant grant;
    grant.job_name = request.name;
    grant.node_indices.reserve(request.node_count);
    for (std::size_t i = 0; i < request.node_count; ++i) {
      grant.node_indices.push_back(free_nodes_.back());
      free_nodes_.pop_back();
    }
    if (admission_.basis != AdmissionBasis::kNodes) {
      const double reservation = reservation_for(request);
      reservations_.emplace(request.name, reservation);
      reserved_watts_ += reservation;
    }
    grants.push_back(grant);
    running_.emplace(request.name, std::move(grant));
  };
  const auto fits = [&](const JobRequest& request) {
    return request.node_count <= free_nodes_.size() && power_fits(request);
  };

  // FIFO phase: drain the head of the class-major order while it fits.
  while (!queue_.empty()) {
    const std::size_t head = drain_order().front();
    if (!fits(queue_[head])) {
      break;
    }
    const JobRequest request = queue_[head];
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(head));
    start_job(request);
  }

  // Backfill phase (EASY): the head does not fit; later jobs that fit
  // and provably do not delay the head may start now.
  if (backfill_ok && !queue_.empty()) {
    const std::vector<std::size_t> order = drain_order();
    std::vector<std::string> started;
    for (std::size_t k = 1; k < order.size(); ++k) {
      const JobRequest& request = queue_[order[k]];
      if (fits(request) && backfill_ok(request)) {
        started.push_back(request.name);
        start_job(request);
      }
    }
    for (const std::string& name : started) {
      const auto it = std::find_if(
          queue_.begin(), queue_.end(),
          [&](const JobRequest& queued) { return queued.name == name; });
      queue_.erase(it);
    }
  }
  return grants;
}

void Scheduler::complete(const std::string& job_name) {
  const auto it = running_.find(job_name);
  if (it == running_.end()) {
    throw NotFound("job '" + job_name + "' is not running");
  }
  for (std::size_t node : it->second.node_indices) {
    free_nodes_.push_back(node);
  }
  std::sort(free_nodes_.begin(), free_nodes_.end(), std::greater<>());
  const auto reservation = reservations_.find(job_name);
  if (reservation != reservations_.end()) {
    reserved_watts_ -= reservation->second;
    reservations_.erase(reservation);
  }
  running_.erase(it);
}

void Scheduler::quarantine(std::size_t node_index) {
  const auto it =
      std::find(free_nodes_.begin(), free_nodes_.end(), node_index);
  PS_REQUIRE(it != free_nodes_.end(),
             "only free nodes can be quarantined");
  free_nodes_.erase(it);
  quarantined_.push_back(node_index);
}

void Scheduler::restore(std::size_t node_index) {
  const auto it =
      std::find(quarantined_.begin(), quarantined_.end(), node_index);
  PS_REQUIRE(it != quarantined_.end(), "node is not quarantined");
  quarantined_.erase(it);
  free_nodes_.push_back(node_index);
  std::sort(free_nodes_.begin(), free_nodes_.end(), std::greater<>());
}

std::size_t Scheduler::free_node_count() const noexcept {
  return free_nodes_.size();
}

std::size_t Scheduler::queued_count() const noexcept { return queue_.size(); }

const JobRequest* Scheduler::queued_head() const noexcept {
  return queue_.empty() ? nullptr : &queue_[drain_order().front()];
}

std::size_t Scheduler::running_count() const noexcept {
  return running_.size();
}

bool Scheduler::is_running(const std::string& job_name) const {
  return running_.find(job_name) != running_.end();
}

std::span<const std::size_t> Scheduler::nodes_of(
    const std::string& job_name) const {
  const auto it = running_.find(job_name);
  if (it == running_.end()) {
    throw NotFound("job '" + job_name + "' is not running");
  }
  return it->second.node_indices;
}

}  // namespace ps::rm
