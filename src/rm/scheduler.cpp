#include "rm/scheduler.hpp"

#include <algorithm>
#include <iterator>
#include <numeric>

#include "util/error.hpp"

namespace ps::rm {

Scheduler::Scheduler(std::vector<std::size_t> pool)
    : free_nodes_(std::move(pool)) {
  PS_REQUIRE(!free_nodes_.empty(), "scheduler needs a non-empty node pool");
  std::vector<std::size_t> sorted = free_nodes_;
  std::sort(sorted.begin(), sorted.end());
  PS_REQUIRE(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
             "node pool contains duplicate indices");
  // Keep the free list sorted descending so pop_back hands out the lowest
  // indices first (deterministic, test-friendly placement).
  std::sort(free_nodes_.begin(), free_nodes_.end(), std::greater<>());
}

Scheduler::Scheduler(std::size_t node_count)
    : Scheduler([&] {
        std::vector<std::size_t> pool(node_count);
        std::iota(pool.begin(), pool.end(), std::size_t{0});
        return pool;
      }()) {}

void Scheduler::submit(const JobRequest& request) {
  request.validate();
  // Quarantined nodes count toward the configured pool: repairs are
  // temporary, so a wide job waits for them instead of being rejected.
  const std::size_t pool_size =
      free_nodes_.size() + quarantined_.size() + [&] {
        std::size_t used = 0;
        for (const auto& [name, grant] : running_) {
          used += grant.node_indices.size();
        }
        return used;
      }();
  PS_REQUIRE(request.node_count <= pool_size,
             "job requests more nodes than the pool holds");
  PS_REQUIRE(running_.find(request.name) == running_.end(),
             "a job with this name is already running");
  for (const auto& queued : queue_) {
    PS_REQUIRE(queued.name != request.name,
               "a job with this name is already queued");
  }
  queue_.push_back(request);
}

std::vector<NodeGrant> Scheduler::start_pending(
    const std::function<bool(const JobRequest&)>& backfill_ok) {
  std::vector<NodeGrant> grants;
  const auto start_job = [&](const JobRequest& request) {
    NodeGrant grant;
    grant.job_name = request.name;
    grant.node_indices.reserve(request.node_count);
    for (std::size_t i = 0; i < request.node_count; ++i) {
      grant.node_indices.push_back(free_nodes_.back());
      free_nodes_.pop_back();
    }
    grants.push_back(grant);
    running_.emplace(request.name, std::move(grant));
  };

  // FIFO phase: drain the head of the queue while it fits.
  while (!queue_.empty() &&
         queue_.front().node_count <= free_nodes_.size()) {
    const JobRequest request = queue_.front();
    queue_.pop_front();
    start_job(request);
  }

  // Backfill phase (EASY): the head does not fit; later jobs that fit
  // and provably do not delay the head may start now.
  if (backfill_ok && !queue_.empty()) {
    for (auto it = std::next(queue_.begin()); it != queue_.end();) {
      if (it->node_count <= free_nodes_.size() && backfill_ok(*it)) {
        const JobRequest request = *it;
        it = queue_.erase(it);
        start_job(request);
      } else {
        ++it;
      }
    }
  }
  return grants;
}

void Scheduler::complete(const std::string& job_name) {
  const auto it = running_.find(job_name);
  if (it == running_.end()) {
    throw NotFound("job '" + job_name + "' is not running");
  }
  for (std::size_t node : it->second.node_indices) {
    free_nodes_.push_back(node);
  }
  std::sort(free_nodes_.begin(), free_nodes_.end(), std::greater<>());
  running_.erase(it);
}

void Scheduler::quarantine(std::size_t node_index) {
  const auto it =
      std::find(free_nodes_.begin(), free_nodes_.end(), node_index);
  PS_REQUIRE(it != free_nodes_.end(),
             "only free nodes can be quarantined");
  free_nodes_.erase(it);
  quarantined_.push_back(node_index);
}

void Scheduler::restore(std::size_t node_index) {
  const auto it =
      std::find(quarantined_.begin(), quarantined_.end(), node_index);
  PS_REQUIRE(it != quarantined_.end(), "node is not quarantined");
  quarantined_.erase(it);
  free_nodes_.push_back(node_index);
  std::sort(free_nodes_.begin(), free_nodes_.end(), std::greater<>());
}

std::size_t Scheduler::free_node_count() const noexcept {
  return free_nodes_.size();
}

std::size_t Scheduler::queued_count() const noexcept { return queue_.size(); }

const JobRequest* Scheduler::queued_head() const noexcept {
  return queue_.empty() ? nullptr : &queue_.front();
}

std::size_t Scheduler::running_count() const noexcept {
  return running_.size();
}

bool Scheduler::is_running(const std::string& job_name) const {
  return running_.find(job_name) != running_.end();
}

std::span<const std::size_t> Scheduler::nodes_of(
    const std::string& job_name) const {
  const auto it = running_.find(job_name);
  if (it == running_.end()) {
    throw NotFound("job '" + job_name + "' is not running");
  }
  return it->second.node_indices;
}

}  // namespace ps::rm
