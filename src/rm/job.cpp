#include "rm/job.hpp"

#include "util/error.hpp"

namespace ps::rm {

void JobRequest::validate() const {
  PS_REQUIRE(!name.empty(), "job needs a name");
  PS_REQUIRE(node_count > 0, "job needs at least one node");
  PS_REQUIRE(tolerated_slowdown >= 0.0,
             "tolerated slowdown cannot be negative");
  workload.validate();
}

}  // namespace ps::rm
