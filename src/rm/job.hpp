#pragma once

#include <cstddef>
#include <string>

#include "kernel/workload.hpp"
#include "sim/sla.hpp"

namespace ps::rm {

/// A job submission: which workload to run and on how many nodes.
struct JobRequest {
  std::string name;
  kernel::WorkloadConfig workload{};
  std::size_t node_count = 0;

  /// Multi-tenant service class: admission control queues (or rejects)
  /// best_effort work first and degradation sheds it first. The default
  /// keeps single-tenant submissions exactly as before.
  sim::SlaClass sla_class = sim::SlaClass::kStandard;
  /// Per-job tolerated-slowdown override; 0 means the class default
  /// (sim::tolerated_slowdown).
  double tolerated_slowdown = 0.0;

  [[nodiscard]] double sla_tolerated_slowdown() const noexcept {
    return tolerated_slowdown > 0.0 ? tolerated_slowdown
                                    : sim::tolerated_slowdown(sla_class);
  }

  void validate() const;
};

}  // namespace ps::rm
