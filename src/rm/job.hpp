#pragma once

#include <cstddef>
#include <string>

#include "kernel/workload.hpp"

namespace ps::rm {

/// A job submission: which workload to run and on how many nodes.
struct JobRequest {
  std::string name;
  kernel::WorkloadConfig workload{};
  std::size_t node_count = 0;

  void validate() const;
};

}  // namespace ps::rm
