#pragma once

#include <span>

#include "rm/allocation.hpp"
#include "sim/job_sim.hpp"

namespace ps::rm {

/// The resource manager's power-enforcement arm: owns the system-wide
/// power budget and programs per-host RAPL caps from a policy's
/// PowerAllocation (SLURM power-management analogue, Section III).
class SystemPowerManager {
 public:
  explicit SystemPowerManager(double system_budget_watts);

  [[nodiscard]] double budget_watts() const noexcept { return budget_; }

  /// Applies the allocation's caps to the jobs' hosts. Shapes must match
  /// (one cap vector per job, one cap per host). If `enforce_budget` is
  /// true, throws ps::InvalidArgument when the allocation exceeds the
  /// budget (beyond RAPL quantization tolerance) — a site would reject
  /// such a policy output; system-unaware policies are applied with
  /// enforcement off, as the paper does for Precharacterized.
  void apply(std::span<sim::JobSimulation* const> jobs,
             const PowerAllocation& allocation,
             bool enforce_budget = true) const;

  /// Sum of currently programmed caps across the jobs' hosts.
  [[nodiscard]] static double total_allocated_watts(
      std::span<sim::JobSimulation* const> jobs);

  /// True if programmed caps fit the budget (+ quantization tolerance).
  [[nodiscard]] bool allocation_fits(
      std::span<sim::JobSimulation* const> jobs) const;

 private:
  double budget_;
};

}  // namespace ps::rm
