#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "obs/obs.hpp"
#include "rm/allocation.hpp"
#include "sim/job_sim.hpp"
#include "sim/sla.hpp"

namespace ps::rm {

/// Running account of budget excursions: intervals where programmed power
/// exceeded the (possibly just-revised) system budget beyond the RAPL
/// quantization tolerance. `last_time_to_safe_seconds` is the length of
/// the most recently closed excursion — the paper-level robustness metric:
/// how long after a budget drop the cluster kept drawing above it.
struct ExcursionTelemetry {
  std::size_t excursions = 0;              ///< Closed excursion episodes.
  double over_budget_watt_seconds = 0.0;   ///< ∫ max(0, programmed − budget) dt.
  double worst_over_watts = 0.0;           ///< Peak instantaneous overshoot.
  double last_time_to_safe_seconds = 0.0;  ///< Duration of the latest episode.
  double max_time_to_safe_seconds = 0.0;   ///< Longest episode seen.
  bool in_excursion = false;               ///< Currently above budget.
  double current_excursion_seconds = 0.0;  ///< Age of the open episode.
};

/// Proportional scale-down of an allocation onto `budget_watts`,
/// preserving the policy's shape: every cap moves toward its host floor
/// by the same fraction, c' = f + s·(c − f) with
/// s = (B − Σf) / (Σc − Σf) clamped to [0, 1]. If even the floors exceed
/// the budget, every host lands exactly on its floor — the stack never
/// programs below a settable minimum. Shapes of `allocation` and
/// `host_floors` must match. On a multi-domain allocation the single
/// scale spans both domains (sums include the GPU caps) and each GPU cap
/// is floor-preserved against its own `gpu_floors` entry — a brownout
/// squeezes CPU and GPU proportionally, never through a domain's floor.
/// `gpu_floors` must match the shape of `job_host_gpu_caps` (empty when
/// the allocation is CPU-only).
[[nodiscard]] PowerAllocation clamp_allocation_to_budget(
    const PowerAllocation& allocation,
    const std::vector<std::vector<double>>& host_floors,
    double budget_watts,
    const std::vector<std::vector<double>>& gpu_floors = {});

/// Priority-ordered variant: the reduction onto `budget_watts` is taken
/// from the lowest SLA class first — every best_effort job is squeezed
/// to its floors before a standard job loses a watt, and
/// latency_critical sheds last. Within one class the squeeze is the same
/// proportional floor-preserving scale as the classless clamp. With
/// `job_classes` empty or uniform this is exactly the classless clamp
/// (bit-identical), so single-tenant callers can pass through freely.
/// `job_classes`, when non-empty, must have one entry per job.
[[nodiscard]] PowerAllocation clamp_allocation_to_budget(
    const PowerAllocation& allocation,
    const std::vector<std::vector<double>>& host_floors,
    double budget_watts,
    const std::vector<std::vector<double>>& gpu_floors,
    std::span<const sim::SlaClass> job_classes);

/// The resource manager's power-enforcement arm: owns the system-wide
/// power budget and programs per-host RAPL caps from a policy's
/// PowerAllocation (SLURM power-management analogue, Section III).
/// The budget is mutable: renegotiated revisions arrive via set_budget
/// with a strictly-monotone epoch, so a stale revision (replayed message,
/// resurrected snapshot) can never roll the budget back.
class SystemPowerManager {
 public:
  explicit SystemPowerManager(double system_budget_watts);

  [[nodiscard]] double budget_watts() const noexcept { return budget_; }
  [[nodiscard]] std::uint64_t budget_epoch() const noexcept {
    return budget_epoch_;
  }

  /// Adopts a renegotiated budget. Returns false (and changes nothing)
  /// when `epoch` does not advance past the current budget epoch — the
  /// caller saw a stale revision. Throws on a non-positive budget.
  bool set_budget(double budget_watts, std::uint64_t epoch);

  /// Applies the allocation's caps to the jobs' hosts. Shapes must match
  /// (one cap vector per job, one cap per host). If `enforce_budget` is
  /// true, throws ps::InvalidArgument when the allocation exceeds the
  /// budget (beyond RAPL quantization tolerance) — a site would reject
  /// such a policy output; system-unaware policies are applied with
  /// enforcement off, as the paper does for Precharacterized.
  void apply(std::span<sim::JobSimulation* const> jobs,
             const PowerAllocation& allocation,
             bool enforce_budget = true) const;

  /// Emergency-clamp path for a revision the current caps no longer fit:
  /// scales `allocation` onto the current budget (floors = each host's
  /// settable minimum) and programs the result. Returns the clamped
  /// allocation actually applied. With a non-empty `job_classes` (one
  /// per job) the squeeze is priority-ordered: best_effort sheds to its
  /// floors before standard, latency_critical last.
  PowerAllocation emergency_clamp(
      std::span<sim::JobSimulation* const> jobs,
      const PowerAllocation& allocation,
      std::span<const sim::SlaClass> job_classes = {}) const;

  /// Accounts `elapsed_seconds` of running with `programmed_watts`
  /// total caps against the current budget, opening/extending an
  /// excursion when above budget + tolerance and closing it when back
  /// under. Call with elapsed 0 after reprogramming to close an episode
  /// at the reprogram instant.
  void observe_programmed(double programmed_watts, std::size_t host_count,
                          double elapsed_seconds);

  [[nodiscard]] const ExcursionTelemetry& excursions() const noexcept {
    return excursions_;
  }

  /// Sum of currently programmed caps across the jobs' hosts.
  [[nodiscard]] static double total_allocated_watts(
      std::span<sim::JobSimulation* const> jobs);

  /// True if programmed caps fit the budget (+ quantization tolerance).
  [[nodiscard]] bool allocation_fits(
      std::span<sim::JobSimulation* const> jobs) const;

  /// Attaches the observability seam: registers the manager's metric
  /// instruments ("rm.applies", "rm.emergency_clamps", budget
  /// adopt/stale counters, the "rm.budget_watts" gauge and the
  /// "rm.excursions" account) on the given registry. Inert when the
  /// seam carries no registry.
  void set_observer(const obs::Observability& obs);

 private:
  double budget_;
  std::uint64_t budget_epoch_ = 0;
  ExcursionTelemetry excursions_;
  /// Cached instruments (stable addresses owned by the registry); null
  /// when unobserved so the hot paths stay branch-plus-nothing.
  obs::Counter* applies_metric_ = nullptr;
  obs::Counter* clamps_metric_ = nullptr;
  obs::Counter* budget_adopted_metric_ = nullptr;
  obs::Counter* budget_stale_metric_ = nullptr;
  obs::Counter* excursions_metric_ = nullptr;
  obs::Gauge* budget_gauge_ = nullptr;
  obs::Gauge* time_to_safe_gauge_ = nullptr;
};

}  // namespace ps::rm
