#include "rm/degradation.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ps::rm {

namespace {

/// One programmable limit (a host's CPU cap or a host's GPU cap) with
/// its degradation inputs, flattened so both domains shed through the
/// same waterfall.
struct Limit {
  double* result = nullptr;  ///< Points into the output allocation.
  double original = 0.0;
  double floor = 0.0;
  double needed = 0.0;  ///< Clamped to >= floor.
  std::size_t rank = 0;  ///< sla_rank of the owning job.
};

}  // namespace

PowerAllocation shed_allocation_by_class(const PowerAllocation& allocation,
                                         std::span<const ClassDemand> demands,
                                         double budget_watts) {
  PS_REQUIRE(budget_watts > 0.0, "degradation budget must be positive");
  PS_REQUIRE(demands.size() == allocation.job_host_caps.size(),
             "demand shape has a different number of jobs");

  PowerAllocation result = allocation;
  std::vector<Limit> limits;
  double total_alloc = 0.0;
  double total_floors = 0.0;
  for (std::size_t j = 0; j < allocation.job_host_caps.size(); ++j) {
    const ClassDemand& demand = demands[j];
    const std::size_t hosts = allocation.job_host_caps[j].size();
    PS_REQUIRE(demand.host_floors.size() == hosts &&
                   demand.host_needed.size() == hosts,
               "demand shape has a different number of hosts for a job");
    const bool has_gpu = j < allocation.job_host_gpu_caps.size() &&
                         !allocation.job_host_gpu_caps[j].empty();
    PS_REQUIRE(!has_gpu || (demand.gpu_floors.size() == hosts &&
                            demand.gpu_needed.size() == hosts),
               "GPU demand shape has a different number of hosts for a job");
    for (std::size_t h = 0; h < hosts; ++h) {
      Limit limit;
      limit.result = &result.job_host_caps[j][h];
      limit.original = allocation.job_host_caps[j][h];
      limit.floor = demand.host_floors[h];
      limit.needed = std::max(demand.host_needed[h], limit.floor);
      limit.rank = sim::sla_rank(demand.sla_class);
      total_alloc += limit.original;
      total_floors += limit.floor;
      limits.push_back(limit);
      if (has_gpu) {
        Limit gpu;
        gpu.result = &result.job_host_gpu_caps[j][h];
        gpu.original = allocation.job_host_gpu_caps[j][h];
        gpu.floor = demand.gpu_floors[h];
        gpu.needed = std::max(demand.gpu_needed[h], gpu.floor);
        gpu.rank = limit.rank;
        total_alloc += gpu.original;
        total_floors += gpu.floor;
        limits.push_back(gpu);
      }
    }
  }

  // The pass only ever shrinks the total: under scarcity it re-divides
  // min(budget, Σcaps), never inventing watts the policy did not grant.
  const double target = std::min(budget_watts, total_alloc);
  for (Limit& limit : limits) {
    *limit.result = limit.floor;
  }
  double remaining = target - total_floors;
  if (remaining <= 0.0) {
    return result;  // Even the floors exceed the budget: all-floors.
  }

  // Phase 1 — performance-preserving needs, highest class first. A class
  // whose needs exceed what is left is scaled proportionally; everything
  // below it stays at floors (the no-inversion guarantee).
  for (std::size_t rank = sim::kSlaClassCount; rank-- > 0;) {
    double class_need = 0.0;
    for (const Limit& limit : limits) {
      if (limit.rank == rank) {
        class_need += limit.needed - limit.floor;
      }
    }
    if (class_need <= 0.0) {
      continue;
    }
    const double grant = std::min(remaining, class_need);
    const double scale = grant / class_need;
    for (Limit& limit : limits) {
      if (limit.rank == rank) {
        *limit.result += scale * (limit.needed - limit.floor);
      }
    }
    remaining -= grant;
    if (remaining <= 0.0) {
      return result;
    }
  }

  // Phase 2 — abundance: restore each limit's surplus above its need
  // (the policy's discretionary watts), again highest class first.
  for (std::size_t rank = sim::kSlaClassCount; rank-- > 0;) {
    double class_surplus = 0.0;
    for (const Limit& limit : limits) {
      if (limit.rank == rank) {
        class_surplus += std::max(0.0, limit.original - limit.needed);
      }
    }
    if (class_surplus <= 0.0) {
      continue;
    }
    const double grant = std::min(remaining, class_surplus);
    const double scale = grant / class_surplus;
    for (Limit& limit : limits) {
      if (limit.rank == rank) {
        *limit.result += scale * std::max(0.0, limit.original - limit.needed);
      }
    }
    remaining -= grant;
    if (remaining <= 0.0) {
      return result;
    }
  }
  return result;
}

}  // namespace ps::rm
