#include "sim/job_sim.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ps::sim {

double JobTotals::average_power_watts(std::size_t hosts) const {
  if (elapsed_seconds <= 0.0 || hosts == 0) {
    return 0.0;
  }
  return energy_joules / elapsed_seconds / static_cast<double>(hosts);
}

double JobTotals::gflops_per_watt(std::size_t hosts) const {
  if (energy_joules <= 0.0 || hosts == 0) {
    return 0.0;
  }
  // GFLOP / joule == GFLOP/s per watt.
  return gflop / energy_joules;
}

double JobTotals::energy_delay_product() const {
  return energy_joules * elapsed_seconds;
}

JobSimulation::JobSimulation(std::string name,
                             std::vector<hw::NodeModel*> hosts,
                             const kernel::WorkloadConfig& config,
                             const NoiseParams& noise, util::Rng noise_rng)
    : name_(std::move(name)),
      hosts_(std::move(hosts)),
      config_(config),
      noise_(noise),
      noise_rng_(noise_rng) {
  config_.validate();
  PS_REQUIRE(!hosts_.empty(), "job needs at least one host");
  for (const auto* host : hosts_) {
    PS_REQUIRE(host != nullptr, "job host must not be null");
  }
  PS_REQUIRE(noise.time_sigma >= 0.0, "noise sigma cannot be negative");
  failed_.assign(hosts_.size(), false);
  slowdown_.assign(hosts_.size(), 1.0);
  waiting_hosts_ = std::min(
      static_cast<std::size_t>(std::lround(
          config_.waiting_fraction * static_cast<double>(hosts_.size()))),
      hosts_.size() - 1);
}

void JobSimulation::set_workload(const kernel::WorkloadConfig& config) {
  config.validate();
  config_ = config;
  waiting_hosts_ = std::min(
      static_cast<std::size_t>(std::lround(
          config_.waiting_fraction * static_cast<double>(hosts_.size()))),
      hosts_.size() - 1);
}

hw::NodeModel& JobSimulation::host(std::size_t index) {
  PS_REQUIRE(index < hosts_.size(), "host index out of range");
  return *hosts_[index];
}

const hw::NodeModel& JobSimulation::host(std::size_t index) const {
  PS_REQUIRE(index < hosts_.size(), "host index out of range");
  return *hosts_[index];
}

bool JobSimulation::is_waiting_host(std::size_t index) const {
  PS_REQUIRE(index < hosts_.size(), "host index out of range");
  return index < waiting_hosts_;
}

double JobSimulation::host_gigabytes(std::size_t index) const {
  return is_waiting_host(index)
             ? config_.gigabytes_per_iteration
             : config_.gigabytes_per_iteration * config_.imbalance;
}

void JobSimulation::set_host_cap(std::size_t index, double watts) {
  host(index).set_power_cap(watts);
}

double JobSimulation::host_cap(std::size_t index) const {
  return host(index).power_cap();
}

double JobSimulation::total_allocated_power() const {
  double total = 0.0;
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    total += hosts_[i]->power_cap();
    if (host_has_gpu_phase(i)) {
      total += hosts_[i]->gpu_power_cap();
    }
  }
  return total;
}

bool JobSimulation::host_has_gpu_phase(std::size_t index) const {
  return config_.gpu_gigabytes_per_iteration > 0.0 &&
         host(index).gpu_count() > 0;
}

bool JobSimulation::has_gpu_domain() const {
  if (config_.gpu_gigabytes_per_iteration <= 0.0) {
    return false;  // no offloaded phase — device inventory is irrelevant
  }
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    if (host_has_gpu_phase(i)) {
      return true;
    }
  }
  return false;
}

void JobSimulation::set_host_gpu_cap(std::size_t index, double watts) {
  PS_REQUIRE(host(index).gpu_count() > 0, "host has no GPU devices");
  host(index).set_gpu_power_cap(watts);
}

double JobSimulation::host_gpu_cap(std::size_t index) const {
  return host(index).gpu_power_cap();
}

double JobSimulation::host_gpu_min_cap(std::size_t index) const {
  return host(index).gpu_min_cap();
}

double JobSimulation::host_gpu_tdp(std::size_t index) const {
  return host(index).gpu_tdp();
}

double JobSimulation::preview_gpu_seconds(std::size_t index,
                                          double gpu_cap_watts) const {
  const hw::NodeModel& node = host(index);
  PS_REQUIRE(node.gpu_count() > 0, "host has no GPU devices");
  const double devices = static_cast<double>(node.gpu_count());
  const double share = config_.gpu_gigabytes_per_iteration / devices;
  const double per_device_cap = gpu_cap_watts / devices;
  double seconds = 0.0;
  for (std::size_t g = 0; g < node.gpu_count(); ++g) {
    const hw::GpuPhaseResult phase = node.gpu(g).preview_compute(
        share, config_.gpu_intensity, config_.gpu_occupancy, per_device_cap);
    seconds = std::max(seconds, phase.seconds);
  }
  return seconds;
}

void JobSimulation::set_host_failed(std::size_t index, bool failed) {
  PS_REQUIRE(index < hosts_.size(), "host index out of range");
  if (failed && !failed_[index]) {
    PS_REQUIRE(active_host_count() > 1,
               "cannot fail a job's last live host");
  }
  failed_[index] = failed;
}

bool JobSimulation::host_failed(std::size_t index) const {
  PS_REQUIRE(index < hosts_.size(), "host index out of range");
  return failed_[index];
}

std::size_t JobSimulation::active_host_count() const noexcept {
  std::size_t active = 0;
  for (const bool dead : failed_) {
    active += dead ? 0 : 1;
  }
  return active;
}

void JobSimulation::set_host_slowdown(std::size_t index, double factor) {
  PS_REQUIRE(index < hosts_.size(), "host index out of range");
  PS_REQUIRE(factor >= 1.0, "slowdown factor must be at least 1");
  slowdown_[index] = factor;
}

double JobSimulation::host_slowdown(std::size_t index) const {
  PS_REQUIRE(index < hosts_.size(), "host index out of range");
  return slowdown_[index];
}

IterationResult JobSimulation::run_iteration() {
  // The SoA pass covers the common case (CPU-only job); GPU phases keep
  // the scalar loop, whose concurrent-offload bookkeeping is inherently
  // per-host. Both paths produce bit-identical results.
  if (!scalar_iteration_ && !has_gpu_domain()) {
    return run_iteration_soa();
  }
  return run_iteration_scalar();
}

IterationResult JobSimulation::run_iteration_soa() {
  const std::size_t count = hosts_.size();
  IterationResult result;
  result.hosts.resize(count);
  soa_seconds_.assign(count, 0.0);
  soa_power_.assign(count, 0.0);
  soa_gflop_.assign(count, 0.0);
  soa_frequency_.assign(count, 0.0);
  soa_busy_.assign(count, 0.0);

  // Pass 1 — solve: one memoized lookup per host fills the columns; the
  // fixed-point solver only re-runs for hosts whose limits changed since
  // the previous iteration.
  for (std::size_t i = 0; i < count; ++i) {
    auto& host_result = result.hosts[i];
    host_result.node = hosts_[i]->id();
    host_result.waiting_host = is_waiting_host(i);
    if (failed_[i]) {
      continue;  // a dead host: no work, no energy
    }
    const hw::PhaseResult& phase = hosts_[i]->compute_solution(
        host_gigabytes(i), config_.intensity, config_.vector_width);
    hosts_[i]->accrue_phase(phase);
    soa_seconds_[i] = phase.seconds;
    soa_power_[i] = phase.power_watts;
    soa_gflop_[i] = phase.gflops * phase.seconds;
    soa_frequency_[i] = phase.frequency_ghz;
  }

  // Pass 2 — busy times: slowdown then jitter over the seconds column.
  // One RNG draw per live host, ascending — the draw order is part of
  // the determinism contract shared with the scalar path.
  for (std::size_t i = 0; i < count; ++i) {
    if (failed_[i]) {
      continue;
    }
    double busy = soa_seconds_[i] * slowdown_[i];
    if (noise_.time_sigma > 0.0) {
      const double jitter =
          std::max(1.0 + noise_rng_.normal(0.0, noise_.time_sigma), 0.5);
      busy *= jitter;
    }
    soa_busy_[i] = busy;
  }

  // Pass 3 — critical path: strict-max reduction in host order (a dead
  // host's zero can never win; at least one host is alive).
  for (std::size_t i = 0; i < count; ++i) {
    if (soa_busy_[i] > result.iteration_seconds) {
      result.iteration_seconds = soa_busy_[i];
      result.critical_host_index = i;
    }
  }

  // Pass 4 — energy, barrier poll, and totals over the columns.
  for (std::size_t i = 0; i < count; ++i) {
    if (failed_[i]) {
      continue;
    }
    auto& host_result = result.hosts[i];
    const double busy = soa_busy_[i];
    host_result.busy_seconds = busy;
    host_result.energy_joules = soa_power_[i] * busy;
    host_result.gflop = soa_gflop_[i];
    host_result.frequency_ghz = soa_frequency_[i];
    host_result.poll_seconds = result.iteration_seconds - busy;
    if (host_result.poll_seconds > 0.0) {
      const hw::PhaseResult poll =
          hosts_[i]->run_poll(host_result.poll_seconds);
      host_result.energy_joules += poll.energy_joules;
    }
    host_result.average_power_watts =
        result.iteration_seconds > 0.0
            ? host_result.energy_joules / result.iteration_seconds
            : 0.0;
    result.total_energy_joules += host_result.energy_joules;
    result.total_gflop += host_result.gflop;
  }
  if (result.iteration_seconds > 0.0) {
    result.average_node_power_watts =
        result.total_energy_joules / result.iteration_seconds /
        static_cast<double>(hosts_.size());
  }

  totals_.iterations += 1;
  totals_.elapsed_seconds += result.iteration_seconds;
  totals_.energy_joules += result.total_energy_joules;
  totals_.gflop += result.total_gflop;
  return result;
}

IterationResult JobSimulation::run_iteration_scalar() {
  IterationResult result;
  result.hosts.resize(hosts_.size());

  // Phase 1: every host runs its share of the compute phase.
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    if (failed_[i]) {
      // A dead host: no work, no energy, no say in the critical path.
      result.hosts[i].node = hosts_[i]->id();
      result.hosts[i].waiting_host = is_waiting_host(i);
      continue;
    }
    hw::PhaseResult phase = hosts_[i]->run_compute(
        host_gigabytes(i), config_.intensity, config_.vector_width);
    double busy = phase.seconds * slowdown_[i];
    if (noise_.time_sigma > 0.0) {
      // Log-ish multiplicative jitter, clamped so time stays positive.
      const double jitter =
          std::max(1.0 + noise_rng_.normal(0.0, noise_.time_sigma), 0.5);
      busy *= jitter;
    }
    auto& host_result = result.hosts[i];
    host_result.node = hosts_[i]->id();
    host_result.waiting_host = is_waiting_host(i);
    host_result.busy_seconds = busy;
    host_result.energy_joules = phase.power_watts * busy;
    host_result.gflop = phase.gflops * phase.seconds;
    host_result.frequency_ghz = phase.frequency_ghz;
    if (host_has_gpu_phase(i)) {
      // The offloaded phase runs concurrently with the CPU phase. GPU work
      // is uniform across hosts (no imbalance) and split across devices.
      hw::NodeModel& node = *hosts_[i];
      const double devices = static_cast<double>(node.gpu_count());
      const double share = config_.gpu_gigabytes_per_iteration / devices;
      double gpu_busy = 0.0;
      double gpu_clock = 0.0;
      for (std::size_t g = 0; g < node.gpu_count(); ++g) {
        const hw::GpuPhaseResult gpu_phase = node.gpu(g).run_compute(
            share, config_.gpu_intensity, config_.gpu_occupancy);
        gpu_busy = std::max(gpu_busy, gpu_phase.seconds);
        gpu_clock = gpu_clock == 0.0 ? gpu_phase.clock_ghz
                                     : std::min(gpu_clock,
                                                gpu_phase.clock_ghz);
        host_result.gpu_energy_joules += gpu_phase.energy_joules;
        host_result.gpu_gflop += gpu_phase.gflops * gpu_phase.seconds;
      }
      host_result.gpu_busy_seconds = gpu_busy;
      host_result.gpu_clock_ghz = gpu_clock;
      if (gpu_busy > busy) {
        // The CPU waits on the offload: it busy-polls until the device
        // side of the iteration completes.
        const hw::PhaseResult wait = hosts_[i]->run_poll(gpu_busy - busy);
        host_result.energy_joules += wait.energy_joules;
        busy = gpu_busy;
        host_result.busy_seconds = busy;
      }
      host_result.energy_joules += host_result.gpu_energy_joules;
      host_result.gflop += host_result.gpu_gflop;
    }
    if (busy > result.iteration_seconds) {
      result.iteration_seconds = busy;
      result.critical_host_index = i;
    }
  }

  // Phase 2: hosts that finished early busy-poll at the barrier.
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    auto& host_result = result.hosts[i];
    if (failed_[i]) {
      continue;  // a dead host does not poll (and draws nothing)
    }
    host_result.poll_seconds =
        result.iteration_seconds - host_result.busy_seconds;
    if (host_result.poll_seconds > 0.0) {
      const hw::PhaseResult poll =
          hosts_[i]->run_poll(host_result.poll_seconds);
      host_result.energy_joules += poll.energy_joules;
    }
    if (host_has_gpu_phase(i)) {
      // Devices sit at their leakage floor from kernel completion until
      // the barrier releases (the CPU tail plus any barrier poll).
      const double gpu_idle =
          result.iteration_seconds - host_result.gpu_busy_seconds;
      if (gpu_idle > 0.0) {
        hw::NodeModel& node = *hosts_[i];
        double idle_joules = 0.0;
        for (std::size_t g = 0; g < node.gpu_count(); ++g) {
          node.gpu(g).run_idle(gpu_idle);
          idle_joules += node.gpu(g).idle_watts() * gpu_idle;
        }
        host_result.gpu_energy_joules += idle_joules;
        host_result.energy_joules += idle_joules;
      }
      host_result.gpu_average_power_watts =
          result.iteration_seconds > 0.0
              ? host_result.gpu_energy_joules / result.iteration_seconds
              : 0.0;
    }
    host_result.average_power_watts =
        result.iteration_seconds > 0.0
            ? host_result.energy_joules / result.iteration_seconds
            : 0.0;
    result.total_energy_joules += host_result.energy_joules;
    result.total_gflop += host_result.gflop;
  }
  if (result.iteration_seconds > 0.0) {
    result.average_node_power_watts =
        result.total_energy_joules / result.iteration_seconds /
        static_cast<double>(hosts_.size());
  }

  totals_.iterations += 1;
  totals_.elapsed_seconds += result.iteration_seconds;
  totals_.energy_joules += result.total_energy_joules;
  totals_.gflop += result.total_gflop;
  return result;
}

}  // namespace ps::sim
