#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "hw/node.hpp"
#include "hw/variation.hpp"

namespace ps::util {
class Rng;
}

namespace ps::sim {

/// A set of simulated nodes built from a hardware-variation model.
///
/// Owns the NodeModels; jobs reference subsets of them. This substitutes
/// for the physical Quartz cluster (Section V-A).
class Cluster {
 public:
  /// Builds `node_params`-configured nodes whose efficiency multipliers
  /// come from `variation`, shuffled deterministically by `rng`.
  Cluster(const hw::VariationModel& variation, util::Rng& rng,
          const hw::NodeParams& node_params = {});

  /// Builds a homogeneous cluster (eta = 1) of `count` nodes.
  Cluster(std::size_t count, const hw::NodeParams& node_params = {});

  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] hw::NodeModel& node(std::size_t index);
  [[nodiscard]] const hw::NodeModel& node(std::size_t index) const;

  /// Achieved frequency of every node under `node_cap_watts` while running
  /// a fully compute-bound phase — the measurement behind the paper's
  /// Fig. 6 node binning.
  [[nodiscard]] std::vector<double> achieved_frequencies(
      double node_cap_watts) const;

  /// Indices of the nodes in k-means cluster `which` (0 = lowest
  /// frequency) when binning achieved_frequencies(node_cap_watts) into
  /// `k` clusters. The paper uses the medium cluster (which = 1, k = 3).
  [[nodiscard]] std::vector<std::size_t> frequency_cluster_members(
      double node_cap_watts, std::size_t k, std::size_t which) const;

  /// Resets all node power caps to TDP.
  void uncap_all();

 private:
  std::vector<std::unique_ptr<hw::NodeModel>> nodes_;
};

}  // namespace ps::sim
