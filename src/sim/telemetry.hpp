#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "util/stats.hpp"

namespace ps::sim {

/// A multi-column time series with optional ring-buffer semantics:
/// unbounded by default, or keep only the most recent `capacity` rows
/// (long-running telemetry with bounded memory, as a daemon would).
class TraceRecorder {
 public:
  /// `capacity` of zero means unbounded.
  explicit TraceRecorder(std::vector<std::string> columns,
                         std::size_t capacity = 0);

  [[nodiscard]] const std::vector<std::string>& columns() const noexcept {
    return columns_;
  }
  [[nodiscard]] std::size_t column_count() const noexcept {
    return columns_.size();
  }
  /// Rows currently held (after any ring-buffer eviction).
  [[nodiscard]] std::size_t size() const noexcept { return rows_; }
  /// Rows ever appended.
  [[nodiscard]] std::size_t total_appended() const noexcept {
    return appended_;
  }

  /// Appends one sample. `values` must have one entry per column, and
  /// the timestamp and every value must be finite — a non-finite sample
  /// throws ps::InvalidArgument before any state changes, so it can
  /// never poison column_stats() or the CSV export.
  void append(double timestamp, std::span<const double> values);

  /// Timestamp / value of a held row, oldest first.
  [[nodiscard]] double timestamp(std::size_t row) const;
  [[nodiscard]] double value(std::size_t row, std::size_t column) const;

  /// Statistics over a column's held rows.
  [[nodiscard]] util::RunningStats column_stats(std::size_t column) const;

  /// CSV dump: "timestamp,<col>,<col>,..." header plus held rows.
  void write_csv(std::ostream& out) const;

  void clear() noexcept;

 private:
  [[nodiscard]] std::size_t physical_row(std::size_t row) const;

  std::vector<std::string> columns_;
  std::size_t capacity_;
  std::vector<double> timestamps_;
  std::vector<double> values_;  ///< Row-major, ring-indexed.
  std::size_t rows_ = 0;
  std::size_t head_ = 0;  ///< Physical index of the oldest row.
  std::size_t appended_ = 0;
};

}  // namespace ps::sim
