#include "sim/sla.hpp"

#include <string>

#include "util/error.hpp"

namespace ps::sim {

std::array<SlaClass, kSlaClassCount> all_sla_classes() noexcept {
  return {SlaClass::kBestEffort, SlaClass::kStandard,
          SlaClass::kLatencyCritical};
}

std::string_view to_string(SlaClass sla_class) noexcept {
  switch (sla_class) {
    case SlaClass::kBestEffort:
      return "best_effort";
    case SlaClass::kStandard:
      return "standard";
    case SlaClass::kLatencyCritical:
      return "latency_critical";
  }
  return "unknown";
}

SlaClass parse_sla_class(std::string_view name) {
  for (SlaClass sla_class : all_sla_classes()) {
    if (name == to_string(sla_class)) {
      return sla_class;
    }
  }
  throw InvalidArgument("unknown SLA class '" + std::string(name) + "'");
}

double tolerated_slowdown(SlaClass sla_class) noexcept {
  // End-to-end (wait + contention) slowdown bounds. Latency-critical
  // work buys a tight bound, best-effort trades its bound for price:
  // it is the class admission queues and degradation sheds first.
  switch (sla_class) {
    case SlaClass::kBestEffort:
      return 12.0;
    case SlaClass::kStandard:
      return 4.0;
    case SlaClass::kLatencyCritical:
      return 2.0;
  }
  return 4.0;
}

}  // namespace ps::sim
