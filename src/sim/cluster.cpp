#include "sim/cluster.hpp"

#include "util/error.hpp"
#include "util/kmeans.hpp"
#include "util/rng.hpp"

namespace ps::sim {

Cluster::Cluster(const hw::VariationModel& variation, util::Rng& rng,
                 const hw::NodeParams& node_params) {
  const std::vector<double> etas = variation.generate(rng);
  nodes_.reserve(etas.size());
  for (std::size_t i = 0; i < etas.size(); ++i) {
    nodes_.push_back(std::make_unique<hw::NodeModel>(
        static_cast<hw::NodeId>(i), etas[i], node_params));
  }
}

Cluster::Cluster(std::size_t count, const hw::NodeParams& node_params) {
  PS_REQUIRE(count > 0, "cluster needs at least one node");
  nodes_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    nodes_.push_back(std::make_unique<hw::NodeModel>(
        static_cast<hw::NodeId>(i), 1.0, node_params));
  }
}

hw::NodeModel& Cluster::node(std::size_t index) {
  PS_REQUIRE(index < nodes_.size(), "node index out of range");
  return *nodes_[index];
}

const hw::NodeModel& Cluster::node(std::size_t index) const {
  PS_REQUIRE(index < nodes_.size(), "node index out of range");
  return *nodes_[index];
}

std::vector<double> Cluster::achieved_frequencies(
    double node_cap_watts) const {
  std::vector<double> frequencies;
  frequencies.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    // Most power-hungry configuration: just above the roofline ridge,
    // where both pipelines saturate (activity ~1) — the paper's Fig. 6
    // measurement workload.
    const hw::PhaseResult result = node->preview_compute(
        1.0, 10.0, hw::VectorWidth::kYmm256, node_cap_watts);
    frequencies.push_back(result.frequency_ghz);
  }
  return frequencies;
}

std::vector<std::size_t> Cluster::frequency_cluster_members(
    double node_cap_watts, std::size_t k, std::size_t which) const {
  PS_REQUIRE(which < k, "cluster selector out of range");
  const std::vector<double> frequencies =
      achieved_frequencies(node_cap_watts);
  const util::KMeansResult bins = util::kmeans_1d(frequencies, k);
  std::vector<std::size_t> members;
  for (std::size_t i = 0; i < bins.assignments.size(); ++i) {
    if (bins.assignments[i] == which) {
      members.push_back(i);
    }
  }
  return members;
}

void Cluster::uncap_all() {
  for (auto& node : nodes_) {
    node->set_power_cap(node->tdp());
  }
}

}  // namespace ps::sim
