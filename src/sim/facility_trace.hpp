#pragma once

#include <cstddef>
#include <vector>

namespace ps::util {
class Rng;
}

namespace ps::sim {

/// Parameters of the synthetic facility power trace (substitutes for the
/// Quartz metering data behind the paper's Fig. 1).
struct FacilityTraceParams {
  double peak_rating_mw = 1.35;  ///< Dashed line in Fig. 1.
  double mean_power_mw = 0.83;   ///< Long-run average draw (~830 kW).
  std::size_t days = 280;        ///< Nov '17 through Aug '18.
  std::size_t samples_per_day = 24;
  double diurnal_amplitude_mw = 0.08;  ///< Day/night demand swing.
  double weekend_dip_mw = 0.10;        ///< Lower weekend load.
  /// Ornstein-Uhlenbeck job-mix churn: reversion rate per day and noise.
  double churn_reversion_per_day = 0.35;
  double churn_sigma_mw = 0.16;
  double floor_mw = 0.25;  ///< System services / idle nodes never go below.

  /// Seeded flash-crowd events: `burst_count` triangular demand pulses of
  /// `burst_amplitude_mw` peak height and `burst_duration_days` width,
  /// their start times drawn uniformly over the trace. The default of
  /// zero bursts draws nothing from the rng, so legacy traces stay
  /// byte-identical sample for sample.
  std::size_t burst_count = 0;
  double burst_amplitude_mw = 0.0;
  double burst_duration_days = 0.05;
};

/// A generated facility power trace with its 1-day moving average.
struct FacilityTrace {
  FacilityTraceParams params;
  std::vector<double> instantaneous_mw;
  std::vector<double> moving_average_mw;  ///< 1-day trailing window.

  [[nodiscard]] double peak_mw() const;
  [[nodiscard]] double mean_mw() const;
  /// Fraction of samples above `threshold_mw` (e.g. near the rating).
  [[nodiscard]] double fraction_above(double threshold_mw) const;
};

/// Deterministically generates the trace from `rng`. The trace never
/// exceeds the peak rating (the facility breakers would have tripped) and
/// averages close to params.mean_power_mw, demonstrating the
/// under-utilization of procured power the paper motivates with.
[[nodiscard]] FacilityTrace generate_facility_trace(
    const FacilityTraceParams& params, util::Rng& rng);

}  // namespace ps::sim
