#include "sim/telemetry.hpp"

#include <cmath>
#include <ostream>

#include "util/error.hpp"
#include "util/table.hpp"

namespace ps::sim {

TraceRecorder::TraceRecorder(std::vector<std::string> columns,
                             std::size_t capacity)
    : columns_(std::move(columns)), capacity_(capacity) {
  PS_REQUIRE(!columns_.empty(), "trace needs at least one column");
  for (const auto& column : columns_) {
    PS_REQUIRE(!column.empty(), "column names cannot be empty");
  }
}

std::size_t TraceRecorder::physical_row(std::size_t row) const {
  PS_REQUIRE(row < rows_, "trace row out of range");
  if (capacity_ == 0) {
    return row;
  }
  return (head_ + row) % capacity_;
}

void TraceRecorder::append(double timestamp,
                           std::span<const double> values) {
  PS_REQUIRE(values.size() == columns_.size(),
             "need exactly one value per column");
  // Reject degenerate samples before touching any state: one NaN row
  // would otherwise silently poison every column_stats() aggregate and
  // the CSV export.
  PS_REQUIRE(std::isfinite(timestamp), "telemetry timestamps must be finite");
  for (const double value : values) {
    PS_REQUIRE(std::isfinite(value), "telemetry values must be finite");
  }
  if (capacity_ == 0) {
    timestamps_.push_back(timestamp);
    values_.insert(values_.end(), values.begin(), values.end());
    ++rows_;
  } else {
    if (timestamps_.size() < capacity_) {
      timestamps_.push_back(timestamp);
      values_.insert(values_.end(), values.begin(), values.end());
      ++rows_;
    } else {
      // Overwrite the oldest row.
      timestamps_[head_] = timestamp;
      for (std::size_t c = 0; c < columns_.size(); ++c) {
        values_[head_ * columns_.size() + c] = values[c];
      }
      head_ = (head_ + 1) % capacity_;
    }
  }
  ++appended_;
}

double TraceRecorder::timestamp(std::size_t row) const {
  return timestamps_[physical_row(row)];
}

double TraceRecorder::value(std::size_t row, std::size_t column) const {
  PS_REQUIRE(column < columns_.size(), "trace column out of range");
  return values_[physical_row(row) * columns_.size() + column];
}

util::RunningStats TraceRecorder::column_stats(std::size_t column) const {
  PS_REQUIRE(column < columns_.size(), "trace column out of range");
  util::RunningStats stats;
  for (std::size_t row = 0; row < rows_; ++row) {
    stats.add(value(row, column));
  }
  return stats;
}

void TraceRecorder::write_csv(std::ostream& out) const {
  util::CsvWriter csv(out);
  std::vector<std::string> header;
  header.reserve(columns_.size() + 1);
  header.emplace_back("timestamp");
  header.insert(header.end(), columns_.begin(), columns_.end());
  csv.write_row(header);
  for (std::size_t row = 0; row < rows_; ++row) {
    std::vector<std::string> cells;
    cells.reserve(columns_.size() + 1);
    cells.push_back(util::format_fixed(timestamp(row), 6));
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      cells.push_back(util::format_fixed(value(row, c), 6));
    }
    csv.write_row(cells);
  }
}

void TraceRecorder::clear() noexcept {
  timestamps_.clear();
  values_.clear();
  rows_ = 0;
  head_ = 0;
}

}  // namespace ps::sim
