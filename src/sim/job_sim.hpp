#pragma once

#include <string>
#include <vector>

#include "hw/node.hpp"
#include "kernel/workload.hpp"
#include "sim/sla.hpp"
#include "util/rng.hpp"

namespace ps::sim {

/// Per-host outcome of one bulk-synchronous iteration.
struct HostIterationResult {
  hw::NodeId node = 0;
  bool waiting_host = false;
  double busy_seconds = 0.0;
  double poll_seconds = 0.0;
  double energy_joules = 0.0;
  double gflop = 0.0;
  double frequency_ghz = 0.0;
  /// Mean node power over the whole iteration (busy + poll). Includes the
  /// GPU share on heterogeneous hosts.
  double average_power_watts = 0.0;

  /// GPU-domain telemetry; all zero on hosts without a GPU phase.
  double gpu_busy_seconds = 0.0;
  double gpu_energy_joules = 0.0;  ///< Included in energy_joules.
  double gpu_gflop = 0.0;          ///< Included in gflop.
  double gpu_clock_ghz = 0.0;      ///< Slowest device clock in the phase.
  /// Mean GPU power over the whole iteration (kernels + idle tail).
  double gpu_average_power_watts = 0.0;
};

/// Outcome of one bulk-synchronous iteration of a job.
struct IterationResult {
  double iteration_seconds = 0.0;  ///< Critical path (max host busy time).
  double total_energy_joules = 0.0;
  double total_gflop = 0.0;
  double average_node_power_watts = 0.0;
  std::size_t critical_host_index = 0;
  std::vector<HostIterationResult> hosts;
};

/// Accumulated telemetry over a job's lifetime.
struct JobTotals {
  std::size_t iterations = 0;
  double elapsed_seconds = 0.0;
  double energy_joules = 0.0;
  double gflop = 0.0;

  [[nodiscard]] double average_power_watts(std::size_t hosts) const;
  [[nodiscard]] double gflops_per_watt(std::size_t hosts) const;
  [[nodiscard]] double energy_delay_product() const;
};

/// Optional per-iteration measurement noise (OS jitter, NUMA placement,
/// ...). Applied multiplicatively to host busy times; keeps the simulated
/// 95% confidence intervals (paper Fig. 8 error bars) from collapsing to
/// zero width.
struct NoiseParams {
  double time_sigma = 0.0;  ///< Relative sigma of busy-time jitter.
};

/// Bulk-synchronous execution of one workload on a fixed set of hosts.
///
/// Mirrors the paper's Fig. 2: every host runs the common work; hosts on
/// the critical path run `imbalance` times as much; the rest busy-poll at
/// the barrier until the slowest host finishes. Host power caps may be
/// changed between iterations (by runtime agents or RM policies).
class JobSimulation {
 public:
  /// `hosts` are borrowed from a Cluster and must outlive the simulation.
  /// The first round(waiting_fraction * size) hosts are the waiting hosts.
  JobSimulation(std::string name, std::vector<hw::NodeModel*> hosts,
                const kernel::WorkloadConfig& config,
                const NoiseParams& noise = {},
                util::Rng noise_rng = util::Rng(0x7075f));

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const kernel::WorkloadConfig& workload() const noexcept {
    return config_;
  }
  [[nodiscard]] std::size_t host_count() const noexcept {
    return hosts_.size();
  }
  [[nodiscard]] hw::NodeModel& host(std::size_t index);
  [[nodiscard]] const hw::NodeModel& host(std::size_t index) const;
  [[nodiscard]] bool is_waiting_host(std::size_t index) const;
  [[nodiscard]] std::size_t waiting_host_count() const noexcept {
    return waiting_hosts_;
  }
  /// Data moved per iteration by this host (common work, or imbalance x).
  [[nodiscard]] double host_gigabytes(std::size_t index) const;

  /// Switches the job to a new phase of execution (paper future work:
  /// applications with multiple phases of differing design
  /// characteristics). Waiting-host roles are re-derived; telemetry
  /// totals continue to accumulate.
  void set_workload(const kernel::WorkloadConfig& config);

  void set_host_cap(std::size_t index, double watts);
  [[nodiscard]] double host_cap(std::size_t index) const;
  /// Sum of all host caps — the job's currently allocated power. Includes
  /// the GPU-domain caps of hosts that run a GPU phase.
  [[nodiscard]] double total_allocated_power() const;

  /// True when the workload offloads a GPU phase and this host has GPUs.
  [[nodiscard]] bool host_has_gpu_phase(std::size_t index) const;
  /// True when any host runs a GPU phase (the job spans two domains).
  [[nodiscard]] bool has_gpu_domain() const;
  /// GPU-domain cap of one host (split evenly across its devices).
  void set_host_gpu_cap(std::size_t index, double watts);
  [[nodiscard]] double host_gpu_cap(std::size_t index) const;
  [[nodiscard]] double host_gpu_min_cap(std::size_t index) const;
  [[nodiscard]] double host_gpu_tdp(std::size_t index) const;
  /// Pure query: the host's GPU-phase duration under a node-level GPU cap.
  [[nodiscard]] double preview_gpu_seconds(std::size_t index,
                                           double gpu_cap_watts) const;

  /// Marks a host dead (or revives it): a failed host runs no work,
  /// draws no power, and never sets the critical path. At least one host
  /// must stay alive.
  void set_host_failed(std::size_t index, bool failed);
  [[nodiscard]] bool host_failed(std::size_t index) const;
  [[nodiscard]] std::size_t active_host_count() const noexcept;

  /// Multiplies the host's busy time by `factor` (>= 1) — a straggler.
  /// 1.0 restores full speed.
  void set_host_slowdown(std::size_t index, double factor);
  [[nodiscard]] double host_slowdown(std::size_t index) const;

  /// Runs one bulk-synchronous iteration, accruing telemetry and RAPL
  /// energy on every host.
  ///
  /// CPU-only jobs take a structure-of-arrays pass: one memoized solve
  /// lookup per host refreshes per-host columns (seconds, power, GFLOP,
  /// frequency), then busy-time jitter, the critical-path reduction, and
  /// the energy/poll accounting each sweep the columns in host order.
  /// Jobs with a GPU phase (and callers that opt out via
  /// set_scalar_iteration) run the original per-host scalar loop. Both
  /// paths are bit-identical by construction and regression-tested.
  IterationResult run_iteration();

  /// Forces the scalar (pre-SoA) iteration path. Purely a debugging and
  /// equivalence-testing knob — results do not change.
  void set_scalar_iteration(bool scalar) noexcept {
    scalar_iteration_ = scalar;
  }
  [[nodiscard]] bool scalar_iteration() const noexcept {
    return scalar_iteration_;
  }

  [[nodiscard]] const JobTotals& totals() const noexcept { return totals_; }
  void reset_totals() noexcept { totals_ = {}; }

  /// Multi-tenant service class (default kStandard — single-tenant runs
  /// never set it, keeping every legacy code path and wire byte
  /// untouched). Degradation under power scarcity sheds lower classes
  /// toward their floors first.
  [[nodiscard]] SlaClass sla_class() const noexcept { return sla_class_; }
  void set_sla_class(SlaClass sla_class) noexcept { sla_class_ = sla_class; }

 private:
  /// The original per-host loop (also handles GPU phases).
  IterationResult run_iteration_scalar();
  /// The structure-of-arrays pass over the soa_* columns (CPU-only).
  IterationResult run_iteration_soa();

  std::string name_;
  std::vector<hw::NodeModel*> hosts_;
  kernel::WorkloadConfig config_;
  std::size_t waiting_hosts_ = 0;
  NoiseParams noise_;
  util::Rng noise_rng_;
  JobTotals totals_;
  std::vector<bool> failed_;
  std::vector<double> slowdown_;
  bool scalar_iteration_ = false;
  SlaClass sla_class_ = SlaClass::kStandard;

  /// Structure-of-arrays columns, one entry per host, refreshed every
  /// iteration from the memoized node solves (kept as members so the
  /// buffers are allocated once per simulation, not per iteration).
  std::vector<double> soa_seconds_;
  std::vector<double> soa_power_;
  std::vector<double> soa_gflop_;
  std::vector<double> soa_frequency_;
  std::vector<double> soa_busy_;
};

}  // namespace ps::sim
