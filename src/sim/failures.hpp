#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ps::sim {

/// What goes wrong on a host mid-run.
enum class FailureKind {
  kNodeFailure,        ///< The host dies: zero work, zero power, forever.
  kStragglerOnset,     ///< The host slows down by `severity`.
  kStragglerRecovery,  ///< The straggler returns to full speed.
};

/// One scheduled failure, applied at the start of `epoch` (before that
/// epoch's iterations run).
struct FailureEvent {
  std::size_t epoch = 0;
  FailureKind kind = FailureKind::kNodeFailure;
  std::size_t job = 0;   ///< Job index in the coordinated mix.
  std::size_t host = 0;  ///< Host index within the job.
  double severity = 1.0;  ///< Straggler slowdown factor (> 1).

  [[nodiscard]] bool operator==(const FailureEvent&) const = default;
};

/// Knobs for the seeded failure-plan generator.
struct FailurePlanParams {
  std::uint64_t seed = 1;
  std::size_t node_failures = 1;
  std::size_t stragglers = 1;
  double straggler_min_slowdown = 1.5;
  double straggler_max_slowdown = 3.0;
  std::size_t straggler_duration_epochs = 2;
  /// Earliest epoch any event may land on (leave epoch 0 clean so the
  /// mix converges once before the first failure).
  std::size_t first_epoch = 1;
};

/// Generates a deterministic failure plan for a mix of jobs (one entry
/// per job in `hosts_per_job`) over `epochs` coordination epochs:
///   - node failures never hit the same (job, host) twice and always
///     leave every job at least one live host;
///   - each straggler emits a kStragglerOnset and, when the run is long
///     enough, a matching kStragglerRecovery after its duration;
///   - events are sorted by epoch (ties in generation order).
/// The same params always produce the same plan.
[[nodiscard]] std::vector<FailureEvent> generate_failure_plan(
    const FailurePlanParams& params,
    std::span<const std::size_t> hosts_per_job, std::size_t epochs);

}  // namespace ps::sim
