#pragma once

#include <array>
#include <cstddef>
#include <string_view>

namespace ps::sim {

/// Multi-tenant service classes, ordered by shed priority: under power
/// scarcity the stack squeezes `kBestEffort` toward its floors first and
/// `kLatencyCritical` last. The numeric value is the priority rank
/// (higher rank = shed later), so comparisons read naturally:
/// `a < b` means a is shed before b.
enum class SlaClass {
  kBestEffort = 0,
  kStandard = 1,
  kLatencyCritical = 2,
};

inline constexpr std::size_t kSlaClassCount = 3;

/// All classes in shed order (best_effort first).
[[nodiscard]] std::array<SlaClass, kSlaClassCount> all_sla_classes() noexcept;

/// Stable wire/CSV name: "best_effort" / "standard" / "latency_critical".
[[nodiscard]] std::string_view to_string(SlaClass sla_class) noexcept;

/// Inverse of to_string. Throws ps::InvalidArgument on unknown names.
[[nodiscard]] SlaClass parse_sla_class(std::string_view name);

/// The class's tolerated end-to-end slowdown SLA: a job violates its SLA
/// when (finish − arrival) exceeds `tolerated_slowdown(class)` times its
/// ideal (uncontended, uncapped) duration. Queue wait counts against the
/// SLA — that is what makes admission control part of the SLA story.
[[nodiscard]] double tolerated_slowdown(SlaClass sla_class) noexcept;

/// Priority rank for shed ordering (0 sheds first).
[[nodiscard]] constexpr std::size_t sla_rank(SlaClass sla_class) noexcept {
  return static_cast<std::size_t>(sla_class);
}

}  // namespace ps::sim
