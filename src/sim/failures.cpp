#include "sim/failures.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ps::sim {

std::vector<FailureEvent> generate_failure_plan(
    const FailurePlanParams& params,
    std::span<const std::size_t> hosts_per_job, std::size_t epochs) {
  PS_REQUIRE(!hosts_per_job.empty(), "failure plan needs at least one job");
  for (const std::size_t hosts : hosts_per_job) {
    PS_REQUIRE(hosts > 0, "every job needs at least one host");
  }
  PS_REQUIRE(epochs > params.first_epoch,
             "failure plan needs epochs after first_epoch");
  PS_REQUIRE(params.straggler_min_slowdown > 1.0 &&
                 params.straggler_max_slowdown >=
                     params.straggler_min_slowdown,
             "straggler slowdown range is invalid");

  util::Rng rng(params.seed);
  std::vector<FailureEvent> events;
  // Hosts already killed, and how many live hosts each job retains.
  std::set<std::pair<std::size_t, std::size_t>> dead;
  std::vector<std::size_t> alive(hosts_per_job.begin(), hosts_per_job.end());

  const auto pick_epoch = [&] {
    return params.first_epoch +
           static_cast<std::size_t>(
               rng.uniform_index(epochs - params.first_epoch));
  };

  for (std::size_t f = 0; f < params.node_failures; ++f) {
    // Candidate hosts: alive, and not a job's last survivor.
    std::vector<std::pair<std::size_t, std::size_t>> candidates;
    for (std::size_t j = 0; j < hosts_per_job.size(); ++j) {
      if (alive[j] <= 1) {
        continue;
      }
      for (std::size_t h = 0; h < hosts_per_job[j]; ++h) {
        if (dead.count({j, h}) == 0) {
          candidates.emplace_back(j, h);
        }
      }
    }
    if (candidates.empty()) {
      break;  // every further kill would orphan a job
    }
    const auto [job, host] =
        candidates[static_cast<std::size_t>(
            rng.uniform_index(candidates.size()))];
    dead.insert({job, host});
    --alive[job];
    FailureEvent event;
    event.epoch = pick_epoch();
    event.kind = FailureKind::kNodeFailure;
    event.job = job;
    event.host = host;
    events.push_back(event);
  }

  for (std::size_t s = 0; s < params.stragglers; ++s) {
    // A straggler may hit any host that is not scheduled to die; a dead
    // host cannot also run slow.
    std::vector<std::pair<std::size_t, std::size_t>> candidates;
    for (std::size_t j = 0; j < hosts_per_job.size(); ++j) {
      for (std::size_t h = 0; h < hosts_per_job[j]; ++h) {
        if (dead.count({j, h}) == 0) {
          candidates.emplace_back(j, h);
        }
      }
    }
    if (candidates.empty()) {
      break;
    }
    const auto [job, host] =
        candidates[static_cast<std::size_t>(
            rng.uniform_index(candidates.size()))];
    FailureEvent onset;
    onset.epoch = pick_epoch();
    onset.kind = FailureKind::kStragglerOnset;
    onset.job = job;
    onset.host = host;
    onset.severity = rng.uniform(params.straggler_min_slowdown,
                                 params.straggler_max_slowdown);
    events.push_back(onset);
    const std::size_t recovery_epoch =
        onset.epoch + params.straggler_duration_epochs;
    if (recovery_epoch < epochs) {
      FailureEvent recovery;
      recovery.epoch = recovery_epoch;
      recovery.kind = FailureKind::kStragglerRecovery;
      recovery.job = job;
      recovery.host = host;
      events.push_back(recovery);
    }
  }

  std::stable_sort(events.begin(), events.end(),
                   [](const FailureEvent& a, const FailureEvent& b) {
                     return a.epoch < b.epoch;
                   });
  return events;
}

}  // namespace ps::sim
