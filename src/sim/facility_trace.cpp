#include "sim/facility_trace.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace ps::sim {

double FacilityTrace::peak_mw() const {
  PS_CHECK_STATE(!instantaneous_mw.empty(), "empty trace");
  return *std::max_element(instantaneous_mw.begin(), instantaneous_mw.end());
}

double FacilityTrace::mean_mw() const {
  PS_CHECK_STATE(!instantaneous_mw.empty(), "empty trace");
  return util::mean(instantaneous_mw);
}

double FacilityTrace::fraction_above(double threshold_mw) const {
  PS_CHECK_STATE(!instantaneous_mw.empty(), "empty trace");
  std::size_t above = 0;
  for (double sample : instantaneous_mw) {
    if (sample > threshold_mw) {
      ++above;
    }
  }
  return static_cast<double>(above) /
         static_cast<double>(instantaneous_mw.size());
}

FacilityTrace generate_facility_trace(const FacilityTraceParams& params,
                                      util::Rng& rng) {
  PS_REQUIRE(params.days > 0, "trace needs at least one day");
  PS_REQUIRE(params.samples_per_day > 0, "need samples per day");
  PS_REQUIRE(params.peak_rating_mw > params.mean_power_mw,
             "rating must exceed mean power");
  PS_REQUIRE(params.floor_mw < params.mean_power_mw,
             "floor must be below mean power");

  if (params.burst_count > 0) {
    PS_REQUIRE(params.burst_amplitude_mw >= 0.0,
               "burst amplitude cannot be negative");
    PS_REQUIRE(params.burst_duration_days > 0.0,
               "burst duration must be positive");
  }

  FacilityTrace trace;
  trace.params = params;
  const std::size_t samples = params.days * params.samples_per_day;
  trace.instantaneous_mw.reserve(samples);

  // Flash-crowd pulse centers, drawn up front so the burst count alone
  // determines how much of the rng stream the feature consumes (zero
  // bursts leaves the legacy stream untouched).
  std::vector<double> burst_centers;
  burst_centers.reserve(params.burst_count);
  for (std::size_t b = 0; b < params.burst_count; ++b) {
    burst_centers.push_back(rng.uniform() *
                            static_cast<double>(params.days));
  }
  std::sort(burst_centers.begin(), burst_centers.end());

  const double dt_days = 1.0 / static_cast<double>(params.samples_per_day);
  double churn = 0.0;  // OU deviation from the mean, in MW
  for (std::size_t s = 0; s < samples; ++s) {
    const double day = static_cast<double>(s) * dt_days;
    // OU update: d(churn) = -theta * churn * dt + sigma * sqrt(dt) * dW.
    churn += -params.churn_reversion_per_day * churn * dt_days +
             params.churn_sigma_mw * std::sqrt(dt_days) * rng.normal();
    const double hour_angle =
        2.0 * std::numbers::pi * (day - std::floor(day));
    const double diurnal =
        params.diurnal_amplitude_mw * std::sin(hour_angle - 0.5);
    const int weekday = static_cast<int>(std::floor(day)) % 7;
    const double weekend = (weekday >= 5) ? -params.weekend_dip_mw : 0.0;
    double power = params.mean_power_mw + churn + diurnal + weekend;
    // Triangular flash-crowd pulses: ramp to the peak at the center and
    // back down over burst_duration_days, clamped (like everything else)
    // at the facility rating — breakers bound a crowd, not the model.
    for (double center : burst_centers) {
      const double distance = std::abs(day - center);
      const double half_width = 0.5 * params.burst_duration_days;
      if (distance < half_width) {
        power += params.burst_amplitude_mw * (1.0 - distance / half_width);
      }
    }
    power = std::clamp(power, params.floor_mw, params.peak_rating_mw);
    trace.instantaneous_mw.push_back(power);
  }

  // Trailing 1-day moving average (the solid black line in Fig. 1).
  trace.moving_average_mw.reserve(samples);
  double window_sum = 0.0;
  for (std::size_t s = 0; s < samples; ++s) {
    window_sum += trace.instantaneous_mw[s];
    if (s >= params.samples_per_day) {
      window_sum -= trace.instantaneous_mw[s - params.samples_per_day];
    }
    const std::size_t window =
        std::min(s + 1, params.samples_per_day);
    trace.moving_average_mw.push_back(window_sum /
                                      static_cast<double>(window));
  }
  return trace;
}

}  // namespace ps::sim
