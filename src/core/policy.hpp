#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "rm/allocation.hpp"
#include "runtime/characterization.hpp"

namespace ps::core {

/// Everything a policy may consult when allocating power (paper
/// Section III): the site's budget, the node hardware limits, and the
/// per-job characterization data supplied by the job runtime.
struct PolicyContext {
  double system_budget_watts = 0.0;
  /// Context-wide node TDP fallback. Jobs whose characterization carries
  /// its own node_tdp_watts (> 0) use that instead — hosts of different
  /// jobs need not share a TDP (see job_tdp_watts()).
  double node_tdp_watts = 256.0;
  /// Node power that exists below the settable package floor (the DRAM
  /// plane). Surplus-distribution weights measure "distance from the
  /// minimum settable power limit" against the package floor, i.e.
  /// (allocated - (min_settable - uncappable)).
  double uncappable_watts = 16.0;
  std::vector<runtime::JobCharacterization> jobs;

  [[nodiscard]] std::size_t total_hosts() const;
  /// Uniform per-host share of the system budget.
  [[nodiscard]] double uniform_share_watts() const;
  /// Highest settable node cap for job `j`: its characterized per-job TDP
  /// when known, else the context-wide node_tdp_watts — raised, if
  /// necessary, to the job's min settable cap so the fallback can never
  /// invert the [min, TDP] clamp range of a job whose floor exceeds the
  /// context-wide default (e.g. a GPU-heavy node set).
  [[nodiscard]] double job_tdp_watts(std::size_t j) const;
  /// True when any job carries GPU-domain characterization.
  [[nodiscard]] bool has_gpu_domain() const;
  void validate() const;
};

/// A system-level power management policy: turns characterization data and
/// a system budget into per-host power caps.
class Policy {
 public:
  virtual ~Policy() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// True if the policy respects / exploits the system-wide power budget.
  [[nodiscard]] virtual bool is_system_aware() const noexcept = 0;

  /// True if the policy uses performance-aware (balancer) characterization.
  [[nodiscard]] virtual bool is_application_aware() const noexcept = 0;

  [[nodiscard]] virtual rm::PowerAllocation allocate(
      const PolicyContext& context) const = 0;
};

/// The five policies evaluated in the paper, in its presentation order,
/// plus the heterogeneous extension (not part of the paper's figure
/// grids — all_policy_kinds() deliberately excludes it).
enum class PolicyKind {
  kPrecharacterized,
  kStaticCaps,
  kMinimizeWaste,
  kJobAdaptive,
  kMixedAdaptive,
  kHeteroAdaptive,
};

[[nodiscard]] std::string_view to_string(PolicyKind kind) noexcept;
[[nodiscard]] std::unique_ptr<Policy> make_policy(PolicyKind kind);
/// The paper's five policies (figure grids); excludes kHeteroAdaptive.
[[nodiscard]] std::vector<PolicyKind> all_policy_kinds();

}  // namespace ps::core
