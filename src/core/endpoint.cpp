#include "core/endpoint.hpp"

#include <charconv>
#include <cmath>
#include <sstream>

#include "runtime/power_balancer_agent.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace ps::core {

namespace {

std::string format_value(double value, WireFidelity fidelity) {
  if (fidelity == WireFidelity::kDisplay) {
    return util::format_fixed(value, 3);
  }
  char buffer[32];
  const auto [ptr, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  PS_REQUIRE(ec == std::errc{}, "unencodable watt value");
  return std::string(buffer, ptr);
}

void serialize_vector(std::ostringstream& out, std::string_view key,
                      const std::vector<double>& values,
                      WireFidelity fidelity) {
  out << key;
  for (double value : values) {
    out << ' ' << format_value(value, fidelity);
  }
  out << '\n';
}

/// Strict full-token watt parse: rejects trailing garbage, non-finite
/// values (NaN/inf), and negative watts.
double parse_watts(std::string_view token, std::string_view what) {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  PS_REQUIRE(ec == std::errc{} && ptr == token.data() + token.size(),
             "non-numeric " + std::string(what) + " field");
  PS_REQUIRE(std::isfinite(value),
             std::string(what) + " must be finite");
  PS_REQUIRE(value >= 0.0, std::string(what) + " must be non-negative");
  return value;
}

std::uint64_t parse_keyed_uint(std::string_view line, std::string_view key) {
  PS_REQUIRE(util::starts_with(line, key) && line.size() > key.size() + 1 &&
                 line[key.size()] == ' ',
             "expected '" + std::string(key) + "' line");
  const std::string_view token = line.substr(key.size() + 1);
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  PS_REQUIRE(ec == std::errc{} && ptr == token.data() + token.size(),
             "non-numeric " + std::string(key) + " field");
  return value;
}

std::uint64_t parse_sequence(std::string_view line) {
  return parse_keyed_uint(line, "sequence");
}

std::string parse_job_name(std::string_view line) {
  PS_REQUIRE(util::starts_with(line, "job "), "expected 'job' line");
  const std::string_view name = util::trim(line.substr(4));
  PS_REQUIRE(!name.empty(), "empty job name");
  return std::string(name);
}

std::vector<double> parse_vector(std::string_view line,
                                 std::string_view key) {
  PS_REQUIRE(util::starts_with(line, key),
             "expected '" + std::string(key) + "' line");
  std::vector<double> values;
  for (const std::string& token :
       util::split(line.substr(key.size()), ' ')) {
    if (token.empty()) {
      continue;
    }
    values.push_back(parse_watts(token, key));
  }
  return values;
}

std::vector<std::string> non_empty_lines(std::string_view text) {
  std::vector<std::string> lines;
  for (const std::string& line : util::split(text, '\n')) {
    if (!util::trim(line).empty()) {
      lines.push_back(line);
    }
  }
  return lines;
}

std::string parse_rack_name(std::string_view line) {
  PS_REQUIRE(util::starts_with(line, "rack "), "expected 'rack' line");
  const std::string_view name = util::trim(line.substr(5));
  PS_REQUIRE(!name.empty(), "empty rack name");
  PS_REQUIRE(name.find(' ') == std::string_view::npos,
             "rack name must be a single token");
  return std::string(name);
}

/// Re-joins `count` lines starting at `next` into one embedded message
/// body, guarding against blocks that claim more lines than the frame
/// holds (the torn-frame case).
std::string take_block(const std::vector<std::string>& lines,
                       std::size_t next, std::uint64_t count,
                       std::string_view what) {
  PS_REQUIRE(count > 0, std::string(what) + " block must not be empty");
  PS_REQUIRE(count <= lines.size() - next,
             std::string(what) + " block overruns the frame");
  std::string block;
  for (std::uint64_t i = 0; i < count; ++i) {
    block += lines[next + i];
    block += '\n';
  }
  return block;
}

}  // namespace

std::string serialize(const SampleMessage& message, WireFidelity fidelity) {
  std::ostringstream out;
  out << (message.has_gpu_domain() ? "powerstack-sample v3\n"
                                   : "powerstack-sample v1\n");
  out << "sequence " << message.sequence << '\n';
  out << "job " << message.job_name << '\n';
  out << "min_cap "
      << format_value(message.min_settable_cap_watts, fidelity) << '\n';
  serialize_vector(out, "observed", message.host_observed_watts, fidelity);
  serialize_vector(out, "needed", message.host_needed_watts, fidelity);
  if (message.has_gpu_domain()) {
    out << "gpu_min_cap "
        << format_value(message.gpu_min_cap_watts, fidelity) << '\n';
    out << "gpu_tdp " << format_value(message.gpu_tdp_watts, fidelity)
        << '\n';
    serialize_vector(out, "gpu_observed", message.host_gpu_observed_watts,
                     fidelity);
    serialize_vector(out, "gpu_needed", message.host_gpu_needed_watts,
                     fidelity);
  }
  if (message.sla_class != sim::SlaClass::kStandard) {
    out << "sla_class " << sim::to_string(message.sla_class) << '\n';
  }
  return out.str();
}

std::string serialize(const PolicyMessage& message, WireFidelity fidelity) {
  std::ostringstream out;
  out << (message.has_gpu_domain() ? "powerstack-policy v3\n"
                                   : "powerstack-policy v1\n");
  out << "sequence " << message.sequence << '\n';
  out << "job " << message.job_name << '\n';
  serialize_vector(out, "caps", message.host_caps_watts, fidelity);
  if (message.has_gpu_domain()) {
    serialize_vector(out, "gpu_caps", message.host_gpu_caps_watts, fidelity);
  }
  if (message.budget_epoch != 0) {
    out << "budget_epoch " << message.budget_epoch << '\n';
  }
  if (message.fence_epoch != 0) {
    out << "fence " << message.fence_epoch << '\n';
  }
  return out.str();
}

std::string serialize(const BudgetMessage& message, WireFidelity fidelity) {
  std::ostringstream out;
  out << "powerstack-budget v1\n";
  out << "epoch " << message.epoch << '\n';
  out << "budget " << format_value(message.budget_watts, fidelity) << '\n';
  out << "emergency " << (message.emergency ? 1 : 0) << '\n';
  return out.str();
}

std::string serialize(const RackSampleMessage& message,
                      WireFidelity fidelity) {
  std::ostringstream out;
  out << "powerstack-rack-sample v1\n";
  out << "rack " << message.rack << '\n';
  out << "round " << message.round << '\n';
  out << "jobs " << message.samples.size() << '\n';
  for (const SampleMessage& sample : message.samples) {
    const std::string body = serialize(sample, fidelity);
    out << "sample " << non_empty_lines(body).size() << '\n' << body;
  }
  return out.str();
}

std::string serialize(const RackPolicyMessage& message,
                      WireFidelity fidelity) {
  std::ostringstream out;
  out << "powerstack-rack-policy v1\n";
  out << "rack " << message.rack << '\n';
  out << "round " << message.round << '\n';
  out << "rack_budget " << format_value(message.rack_budget_watts, fidelity)
      << '\n';
  out << "jobs " << message.policies.size() << '\n';
  for (const PolicyMessage& policy : message.policies) {
    const std::string body = serialize(policy, fidelity);
    out << "policy " << non_empty_lines(body).size() << '\n' << body;
  }
  return out.str();
}

SampleMessage parse_sample_message(std::string_view text) {
  const std::vector<std::string> lines = non_empty_lines(text);
  PS_REQUIRE(!lines.empty(), "empty sample message");
  const bool v3 = lines[0] == "powerstack-sample v3";
  PS_REQUIRE(v3 || lines[0] == "powerstack-sample v1",
             "not a v1 or v3 sample message");
  // The strict line count and fixed key order reject truncated or
  // duplicated domain sections outright. One optional trailing
  // `sla_class` line (absent = standard) follows the domain sections.
  const std::size_t base = v3 ? 10u : 6u;
  PS_REQUIRE(lines.size() == base || lines.size() == base + 1,
             v3 ? "v3 sample message needs 10 or 11 lines"
                : "sample message needs 6 or 7 lines");
  SampleMessage message;
  message.sequence = parse_sequence(lines[1]);
  message.job_name = parse_job_name(lines[2]);
  PS_REQUIRE(util::starts_with(lines[3], "min_cap "),
             "expected 'min_cap' line");
  message.min_settable_cap_watts =
      parse_watts(util::trim(lines[3].substr(8)), "min_cap");
  message.host_observed_watts = parse_vector(lines[4], "observed");
  message.host_needed_watts = parse_vector(lines[5], "needed");
  PS_REQUIRE(message.host_observed_watts.size() ==
                 message.host_needed_watts.size(),
             "sample vectors disagree on host count");
  PS_REQUIRE(!message.host_observed_watts.empty(),
             "sample message has no hosts");
  if (v3) {
    PS_REQUIRE(util::starts_with(lines[6], "gpu_min_cap "),
               "expected 'gpu_min_cap' line");
    message.gpu_min_cap_watts =
        parse_watts(util::trim(lines[6].substr(12)), "gpu_min_cap");
    PS_REQUIRE(util::starts_with(lines[7], "gpu_tdp "),
               "expected 'gpu_tdp' line");
    message.gpu_tdp_watts =
        parse_watts(util::trim(lines[7].substr(8)), "gpu_tdp");
    PS_REQUIRE(message.gpu_min_cap_watts > 0.0 &&
                   message.gpu_min_cap_watts <= message.gpu_tdp_watts,
               "GPU cap range must satisfy 0 < min <= TDP");
    message.host_gpu_observed_watts =
        parse_vector(lines[8], "gpu_observed");
    message.host_gpu_needed_watts = parse_vector(lines[9], "gpu_needed");
    PS_REQUIRE(message.host_gpu_observed_watts.size() ==
                       message.host_observed_watts.size() &&
                   message.host_gpu_needed_watts.size() ==
                       message.host_observed_watts.size(),
               "GPU sample vectors disagree on host count");
  }
  // Optional trailing line, only in its explicit (non-standard) form —
  // the standard case is the line's absence (the pre-SLA wire).
  if (lines.size() == base + 1) {
    PS_REQUIRE(util::starts_with(lines[base], "sla_class "),
               "expected 'sla_class' line");
    message.sla_class =
        sim::parse_sla_class(util::trim(lines[base].substr(10)));
    PS_REQUIRE(message.sla_class != sim::SlaClass::kStandard,
               "explicit sla_class must be non-standard");
  }
  return message;
}

PolicyMessage parse_policy_message(std::string_view text) {
  const std::vector<std::string> lines = non_empty_lines(text);
  PS_REQUIRE(!lines.empty(), "empty policy message");
  const bool v3 = lines[0] == "powerstack-policy v3";
  PS_REQUIRE(v3 || lines[0] == "powerstack-policy v1",
             "not a v1 or v3 policy message");
  const std::size_t base = v3 ? 5 : 4;
  PS_REQUIRE(lines.size() >= base && lines.size() <= base + 2,
             v3 ? "v3 policy message needs 5 to 7 lines"
                : "policy message needs 4 to 6 lines");
  PolicyMessage message;
  message.sequence = parse_sequence(lines[1]);
  message.job_name = parse_job_name(lines[2]);
  message.host_caps_watts = parse_vector(lines[3], "caps");
  PS_REQUIRE(!message.host_caps_watts.empty(),
             "policy message has no hosts");
  if (v3) {
    message.host_gpu_caps_watts = parse_vector(lines[4], "gpu_caps");
    PS_REQUIRE(message.host_gpu_caps_watts.size() ==
                   message.host_caps_watts.size(),
               "GPU caps disagree on host count");
  }
  // Optional trailing lines, fixed order, each at most once, and only in
  // its explicit (non-zero) form — the zero case is the line's absence.
  std::size_t next = base;
  if (next < lines.size() && util::starts_with(lines[next], "budget_epoch ")) {
    message.budget_epoch = parse_keyed_uint(lines[next], "budget_epoch");
    PS_REQUIRE(message.budget_epoch != 0,
               "explicit budget_epoch must be non-zero");
    ++next;
  }
  if (next < lines.size() && util::starts_with(lines[next], "fence ")) {
    message.fence_epoch = parse_keyed_uint(lines[next], "fence");
    PS_REQUIRE(message.fence_epoch != 0,
               "explicit fence must be non-zero");
    ++next;
  }
  PS_REQUIRE(next == lines.size(),
             "unexpected trailing line in policy message");
  return message;
}

BudgetMessage parse_budget_message(std::string_view text) {
  const std::vector<std::string> lines = non_empty_lines(text);
  PS_REQUIRE(lines.size() == 4, "budget message needs 4 lines");
  PS_REQUIRE(lines[0] == "powerstack-budget v1",
             "not a v1 budget message");
  BudgetMessage message;
  message.epoch = parse_keyed_uint(lines[1], "epoch");
  PS_REQUIRE(message.epoch != 0, "budget epoch must be non-zero");
  PS_REQUIRE(util::starts_with(lines[2], "budget "),
             "expected 'budget' line");
  message.budget_watts =
      parse_watts(util::trim(lines[2].substr(7)), "budget");
  PS_REQUIRE(message.budget_watts > 0.0, "budget must be positive");
  const std::uint64_t emergency = parse_keyed_uint(lines[3], "emergency");
  PS_REQUIRE(emergency <= 1, "emergency must be 0 or 1");
  message.emergency = emergency == 1;
  return message;
}

RackSampleMessage parse_rack_sample_message(std::string_view text) {
  const std::vector<std::string> lines = non_empty_lines(text);
  PS_REQUIRE(lines.size() >= 4, "truncated rack sample message");
  PS_REQUIRE(lines[0] == "powerstack-rack-sample v1",
             "not a v1 rack sample message");
  RackSampleMessage message;
  message.rack = parse_rack_name(lines[1]);
  message.round = parse_keyed_uint(lines[2], "round");
  const std::uint64_t jobs = parse_keyed_uint(lines[3], "jobs");
  PS_REQUIRE(jobs > 0, "rack sample message has no jobs");
  std::size_t next = 4;
  std::uint64_t max_sequence = 0;
  message.samples.reserve(jobs);
  for (std::uint64_t j = 0; j < jobs; ++j) {
    PS_REQUIRE(next < lines.size(),
               "rack sample message truncated before its block prefix");
    const std::uint64_t count = parse_keyed_uint(lines[next], "sample");
    ++next;
    SampleMessage sample =
        parse_sample_message(take_block(lines, next, count, "sample"));
    next += count;
    PS_REQUIRE(message.samples.empty() ||
                   message.samples.back().job_name < sample.job_name,
               "rack samples must be unique and name-ordered");
    max_sequence = std::max(max_sequence, sample.sequence);
    message.samples.push_back(std::move(sample));
  }
  PS_REQUIRE(next == lines.size(),
             "unexpected trailing line in rack sample message");
  PS_REQUIRE(message.round == max_sequence,
             "rack round must equal the max embedded sequence");
  return message;
}

RackPolicyMessage parse_rack_policy_message(std::string_view text) {
  const std::vector<std::string> lines = non_empty_lines(text);
  PS_REQUIRE(lines.size() >= 5, "truncated rack policy message");
  PS_REQUIRE(lines[0] == "powerstack-rack-policy v1",
             "not a v1 rack policy message");
  RackPolicyMessage message;
  message.rack = parse_rack_name(lines[1]);
  message.round = parse_keyed_uint(lines[2], "round");
  PS_REQUIRE(util::starts_with(lines[3], "rack_budget "),
             "expected 'rack_budget' line");
  message.rack_budget_watts =
      parse_watts(util::trim(lines[3].substr(12)), "rack_budget");
  PS_REQUIRE(message.rack_budget_watts > 0.0,
             "rack budget must be positive");
  const std::uint64_t jobs = parse_keyed_uint(lines[4], "jobs");
  PS_REQUIRE(jobs > 0, "rack policy message has no jobs");
  std::size_t next = 5;
  std::uint64_t max_sequence = 0;
  double caps_sum = 0.0;
  std::size_t cap_count = 0;
  message.policies.reserve(jobs);
  for (std::uint64_t j = 0; j < jobs; ++j) {
    PS_REQUIRE(next < lines.size(),
               "rack policy message truncated before its block prefix");
    const std::uint64_t count = parse_keyed_uint(lines[next], "policy");
    ++next;
    PolicyMessage policy =
        parse_policy_message(take_block(lines, next, count, "policy"));
    next += count;
    PS_REQUIRE(message.policies.empty() ||
                   message.policies.back().job_name < policy.job_name,
               "rack policies must be unique and name-ordered");
    max_sequence = std::max(max_sequence, policy.sequence);
    for (double cap : policy.host_caps_watts) {
      caps_sum += cap;
      ++cap_count;
    }
    for (double cap : policy.host_gpu_caps_watts) {
      caps_sum += cap;
      ++cap_count;
    }
    message.policies.push_back(std::move(policy));
  }
  PS_REQUIRE(next == lines.size(),
             "unexpected trailing line in rack policy message");
  PS_REQUIRE(message.round == max_sequence,
             "rack round must equal the max embedded sequence");
  // The rack budget is the sum of the embedded caps; allow display-
  // fidelity rounding (each value rounds by at most half a milliwatt).
  const double tolerance = 5e-4 * static_cast<double>(cap_count + 1) +
                           1e-9 * caps_sum;
  PS_REQUIRE(std::abs(caps_sum - message.rack_budget_watts) <= tolerance,
             "rack budget disagrees with the embedded caps");
  return message;
}

WireMessageKind wire_message_kind(std::string_view text) {
  const std::size_t newline = text.find('\n');
  const std::string_view header =
      util::trim(newline == std::string_view::npos ? text
                                                   : text.substr(0, newline));
  if (header == "powerstack-sample v1" || header == "powerstack-sample v3") {
    return WireMessageKind::kSample;
  }
  if (header == "powerstack-policy v1" || header == "powerstack-policy v3") {
    return WireMessageKind::kPolicy;
  }
  if (header == "powerstack-budget v1") {
    return WireMessageKind::kBudget;
  }
  if (header == "powerstack-rack-sample v1") {
    return WireMessageKind::kRackSample;
  }
  if (header == "powerstack-rack-policy v1") {
    return WireMessageKind::kRackPolicy;
  }
  return WireMessageKind::kUnknown;
}

bool SampleLatch::offer(SampleMessage message) {
  if (latest_ && message.sequence <= latest_->sequence) {
    return false;  // stale, out-of-order, or duplicate: no state change
  }
  latest_ = std::move(message);
  fresh_ = true;
  return true;
}

const SampleMessage& SampleLatch::consume() {
  PS_CHECK_STATE(latest_.has_value(), "no sample to consume");
  fresh_ = false;
  return *latest_;
}

void Endpoint::post_sample(const SampleMessage& message) {
  samples_.push_back(serialize(message));
}

std::optional<SampleMessage> Endpoint::receive_sample() {
  if (samples_.empty()) {
    return std::nullopt;
  }
  const std::string wire = std::move(samples_.front());
  samples_.pop_front();
  return parse_sample_message(wire);
}

void Endpoint::post_policy(const PolicyMessage& message) {
  policies_.push_back(serialize(message));
}

std::optional<PolicyMessage> Endpoint::receive_policy() {
  if (policies_.empty()) {
    return std::nullopt;
  }
  const std::string wire = std::move(policies_.front());
  policies_.pop_front();
  return parse_policy_message(wire);
}

SampleMessage make_sample(sim::JobSimulation& job, std::uint64_t sequence) {
  SampleMessage message;
  message.sequence = sequence;
  message.job_name = job.name();
  message.min_settable_cap_watts = job.host(0).min_cap();
  // Observed: the model's steady draw under current caps (one probe
  // iteration's per-host average); needed: the balancer search.
  const sim::IterationResult probe = job.run_iteration();
  message.host_observed_watts.reserve(job.host_count());
  for (const auto& host : probe.hosts) {
    message.host_observed_watts.push_back(host.average_power_watts);
  }
  double tdp_budget = 0.0;
  for (std::size_t h = 0; h < job.host_count(); ++h) {
    tdp_budget += job.host(h).tdp();
  }
  message.host_needed_watts = runtime::balance_power(job, tdp_budget);
  message.sla_class = job.sla_class();
  if (job.has_gpu_domain()) {
    // Second domain: observed GPU draw from the probe; needed GPU power
    // from the cap-to-time inversion against the tolerated critical path.
    const runtime::BalancerOptions options;
    const double target = runtime::uncapped_iteration_seconds(job) *
                          (1.0 + options.tolerated_slowdown);
    message.host_gpu_observed_watts.reserve(job.host_count());
    message.host_gpu_needed_watts.reserve(job.host_count());
    for (std::size_t h = 0; h < job.host_count(); ++h) {
      if (!job.host_has_gpu_phase(h)) {
        message.host_gpu_observed_watts.push_back(0.0);
        message.host_gpu_needed_watts.push_back(0.0);
        continue;
      }
      message.host_gpu_observed_watts.push_back(
          probe.hosts[h].gpu_average_power_watts);
      message.host_gpu_needed_watts.push_back(
          runtime::min_gpu_cap_for_time(job, h, target, options));
      if (message.gpu_min_cap_watts == 0.0) {
        message.gpu_min_cap_watts = job.host_gpu_min_cap(h);
        message.gpu_tdp_watts = job.host_gpu_tdp(h);
      }
    }
  }
  return message;
}

PolicyContext context_from_samples(
    double system_budget_watts, double node_tdp_watts,
    double uncappable_watts, const std::vector<SampleMessage>& samples) {
  PolicyContext context;
  context.system_budget_watts = system_budget_watts;
  context.node_tdp_watts = node_tdp_watts;
  context.uncappable_watts = uncappable_watts;
  for (const SampleMessage& sample : samples) {
    runtime::JobCharacterization job;
    job.host_count = sample.host_observed_watts.size();
    job.min_settable_cap_watts = sample.min_settable_cap_watts;
    job.monitor.workload_name = sample.job_name;
    job.monitor.host_average_power_watts = sample.host_observed_watts;
    job.balancer.host_needed_power_watts = sample.host_needed_watts;
    double monitor_max = sample.host_observed_watts.front();
    double monitor_min = monitor_max;
    for (double w : sample.host_observed_watts) {
      monitor_max = std::max(monitor_max, w);
      monitor_min = std::min(monitor_min, w);
    }
    job.monitor.max_host_power_watts = monitor_max;
    job.monitor.min_host_power_watts = monitor_min;
    double needed_max = sample.host_needed_watts.front();
    double needed_min = needed_max;
    for (double w : sample.host_needed_watts) {
      needed_max = std::max(needed_max, w);
      needed_min = std::min(needed_min, w);
    }
    job.balancer.max_host_needed_watts = needed_max;
    job.balancer.min_host_needed_watts = needed_min;
    job.sla_class = sample.sla_class;
    if (sample.has_gpu_domain()) {
      job.host_gpu_observed_watts = sample.host_gpu_observed_watts;
      job.host_gpu_needed_watts = sample.host_gpu_needed_watts;
      job.gpu_min_cap_watts = sample.gpu_min_cap_watts;
      job.gpu_tdp_watts = sample.gpu_tdp_watts;
    }
    context.jobs.push_back(std::move(job));
  }
  return context;
}

std::vector<PolicyMessage> make_policy_messages(
    const rm::PowerAllocation& allocation,
    const std::vector<SampleMessage>& samples, std::uint64_t sequence,
    std::uint64_t budget_epoch) {
  PS_REQUIRE(allocation.job_host_caps.size() == samples.size(),
             "allocation does not match the sample set");
  std::vector<PolicyMessage> messages;
  messages.reserve(samples.size());
  for (std::size_t j = 0; j < samples.size(); ++j) {
    PolicyMessage message;
    message.sequence = sequence;
    message.job_name = samples[j].job_name;
    message.host_caps_watts = allocation.job_host_caps[j];
    message.host_gpu_caps_watts = allocation.job_gpu_caps(j);
    message.budget_epoch = budget_epoch;
    messages.push_back(std::move(message));
  }
  return messages;
}

void apply_policy_message(sim::JobSimulation& job,
                          const PolicyMessage& message) {
  PS_REQUIRE(message.job_name == job.name(),
             "policy message addressed to a different job");
  PS_REQUIRE(message.host_caps_watts.size() == job.host_count(),
             "policy message host count mismatch");
  PS_REQUIRE(message.host_gpu_caps_watts.empty() ||
                 message.host_gpu_caps_watts.size() == job.host_count(),
             "policy message GPU host count mismatch");
  for (std::size_t h = 0; h < job.host_count(); ++h) {
    job.set_host_cap(h, message.host_caps_watts[h]);
    if (!message.host_gpu_caps_watts.empty() &&
        job.host(h).gpu_count() > 0) {
      job.set_host_gpu_cap(h, message.host_gpu_caps_watts[h]);
    }
  }
}

}  // namespace ps::core
