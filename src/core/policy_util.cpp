#include "core/policy_util.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ps::core::detail {

HostArrays HostArrays::from_context(const PolicyContext& context) {
  context.validate();
  HostArrays arrays;
  arrays.offsets.push_back(0);
  for (std::size_t j = 0; j < context.jobs.size(); ++j) {
    const auto& job = context.jobs[j];
    const double tdp = context.job_tdp_watts(j);
    for (std::size_t h = 0; h < job.host_count; ++h) {
      arrays.assigned.push_back(0.0);
      arrays.monitor.push_back(job.monitor.host_average_power_watts[h]);
      arrays.needed.push_back(std::clamp(
          job.balancer.host_needed_power_watts[h],
          job.min_settable_cap_watts, tdp));
      arrays.min_cap.push_back(job.min_settable_cap_watts);
      arrays.weight_ref.push_back(job.min_settable_cap_watts -
                                  context.uncappable_watts);
      arrays.tdp.push_back(tdp);
    }
    arrays.offsets.push_back(arrays.assigned.size());
  }
  return arrays;
}

rm::PowerAllocation HostArrays::to_allocation() const {
  rm::PowerAllocation allocation;
  allocation.job_host_caps.reserve(job_count());
  for (std::size_t j = 0; j + 1 < offsets.size(); ++j) {
    allocation.job_host_caps.emplace_back(assigned.begin() + offsets[j],
                                          assigned.begin() + offsets[j + 1]);
  }
  return allocation;
}

double weighted_headroom_fill(HostArrays& arrays,
                              std::span<const std::size_t> hosts,
                              std::span<const double> upper, double amount,
                              int rounds) {
  PS_REQUIRE(upper.size() == arrays.host_count(),
             "upper bounds must cover every host");
  PS_REQUIRE(amount >= 0.0, "cannot distribute a negative amount");
  PS_REQUIRE(rounds >= 1, "need at least one distribution round");

  for (int round = 0; round < rounds && amount > 1e-9; ++round) {
    double weight_total = 0.0;
    for (std::size_t host : hosts) {
      if (arrays.assigned[host] < upper[host] - 1e-12) {
        weight_total += std::max(
            arrays.assigned[host] - arrays.weight_ref[host], 0.0);
      }
    }
    if (weight_total <= 0.0) {
      break;  // No host has any weight (all saturated or at the floor).
    }
    double placed = 0.0;
    for (std::size_t host : hosts) {
      if (arrays.assigned[host] >= upper[host] - 1e-12) {
        continue;
      }
      const double weight =
          std::max(arrays.assigned[host] - arrays.weight_ref[host], 0.0);
      const double offer = amount * weight / weight_total;
      const double take =
          std::min(offer, upper[host] - arrays.assigned[host]);
      arrays.assigned[host] += take;
      placed += take;
    }
    amount -= placed;
    if (placed <= 1e-12) {
      break;
    }
  }
  return std::max(amount, 0.0);
}

void mixed_adaptive_steps(HostArrays& arrays, double budget_watts,
                          bool redistribute_deallocated,
                          bool distribute_surplus) {
  // Step 1: uniform distribution of the budget among all entries.
  const double share =
      budget_watts / static_cast<double>(arrays.host_count());
  for (std::size_t h = 0; h < arrays.host_count(); ++h) {
    arrays.assigned[h] = std::clamp(share, arrays.min_cap[h], arrays.tdp[h]);
  }

  // Entries below the uniform share were clamped *up* to their floor;
  // those watts must come back out of the entries still above their own
  // floor or a near-floor budget overshoots. With one uniform floor the
  // share is either above it (no clamp) or below it for everyone (budget
  // below the floor sum, unservable either way), so this reclaim only
  // engages when floors differ across entries — the heterogeneous case.
  double total = 0.0;
  double headroom = 0.0;
  for (std::size_t h = 0; h < arrays.host_count(); ++h) {
    total += arrays.assigned[h];
    headroom += arrays.assigned[h] - arrays.min_cap[h];
  }
  const double overshoot = total - budget_watts;
  if (overshoot > 1e-9 && headroom > 0.0) {
    const double scale = std::min(overshoot / headroom, 1.0);
    for (std::size_t h = 0; h < arrays.host_count(); ++h) {
      arrays.assigned[h] -=
          scale * (arrays.assigned[h] - arrays.min_cap[h]);
    }
  }

  // Step 2: decrease each entry to its needed power (power-balancer
  // pre-characterization); the decreased total becomes the pool.
  double pool = 0.0;
  for (std::size_t h = 0; h < arrays.host_count(); ++h) {
    if (arrays.needed[h] < arrays.assigned[h]) {
      pool += arrays.assigned[h] - arrays.needed[h];
      arrays.assigned[h] = arrays.needed[h];
    }
  }

  // Step 3: uniformly distribute the pool among entries still below their
  // needed power, repeating until the pool empties or everyone is met.
  if (redistribute_deallocated) {
    pool = uniform_fill_to_target(arrays, arrays.needed, pool);
  }

  // Step 4: surplus goes to all entries, weighted by the distance from
  // the minimum settable limit to the allocated power.
  if (distribute_surplus && pool > 0.0) {
    std::vector<std::size_t> hosts(arrays.host_count());
    for (std::size_t h = 0; h < arrays.host_count(); ++h) {
      hosts[h] = h;
    }
    static_cast<void>(
        weighted_headroom_fill(arrays, hosts, arrays.tdp, pool));
  }
}

double uniform_fill_to_target(HostArrays& arrays,
                              std::span<const double> target, double amount) {
  PS_REQUIRE(target.size() == arrays.host_count(),
             "targets must cover every host");
  PS_REQUIRE(amount >= 0.0, "cannot distribute a negative amount");

  for (int round = 0; round < 64 && amount > 1e-9; ++round) {
    std::size_t hungry = 0;
    for (std::size_t host = 0; host < arrays.host_count(); ++host) {
      if (arrays.assigned[host] < target[host] - 1e-12) {
        ++hungry;
      }
    }
    if (hungry == 0) {
      break;
    }
    const double share = amount / static_cast<double>(hungry);
    double placed = 0.0;
    for (std::size_t host = 0; host < arrays.host_count(); ++host) {
      if (arrays.assigned[host] >= target[host] - 1e-12) {
        continue;
      }
      const double take =
          std::min(share, target[host] - arrays.assigned[host]);
      arrays.assigned[host] += take;
      placed += take;
    }
    amount -= placed;
    if (placed <= 1e-12) {
      break;
    }
  }
  return std::max(amount, 0.0);
}

}  // namespace ps::core::detail
