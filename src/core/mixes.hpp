#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "rm/job.hpp"

namespace ps::core {

/// The six workload mixes of the paper's Table II / Section V-B.
enum class MixKind {
  kNeedUsedPower,   ///< Best case for MinimizeWaste.
  kHighImbalance,   ///< Best case for JobAdaptive (one 900-node job).
  kWastefulPower,   ///< Best case for MixedAdaptive.
  kLowPower,        ///< Nine lowest-power configurations.
  kHighPower,       ///< Nine highest-power configurations.
  kRandomLarge,     ///< Nine jobs from a seeded random shuffle.
};

[[nodiscard]] std::string_view to_string(MixKind kind) noexcept;
[[nodiscard]] std::vector<MixKind> all_mix_kinds();

/// A named set of concurrently running jobs.
struct WorkloadMix {
  std::string name;
  std::vector<rm::JobRequest> jobs;

  [[nodiscard]] std::size_t total_nodes() const;
};

/// Builds one of the paper's mixes. `nodes_per_job` scales the experiment
/// (the paper uses 100; HighImbalance uses one job spanning 9x that).
/// `seed` only affects kRandomLarge. The exact Table II check-marks are
/// not fully recoverable from the paper's text, so configurations are
/// reconstructed to match each mix's stated intent (see DESIGN.md).
[[nodiscard]] WorkloadMix make_mix(MixKind kind,
                                   std::size_t nodes_per_job = 100,
                                   std::uint64_t seed = 0x5eed);

/// All six mixes at the paper's scale factor.
[[nodiscard]] std::vector<WorkloadMix> all_paper_mixes(
    std::size_t nodes_per_job = 100, std::uint64_t seed = 0x5eed);

/// The configuration grid of the paper's Figs. 4-5 heatmaps: intensities
/// {0.25 ... 32} x {no waiting, 25/50/75% waiting at 2x/3x imbalance},
/// with the given vector width.
[[nodiscard]] std::vector<kernel::WorkloadConfig> heatmap_grid(
    hw::VectorWidth width);

}  // namespace ps::core
