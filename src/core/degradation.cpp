#include "core/degradation.hpp"

#include <algorithm>
#include <vector>

#include "core/invariants.hpp"
#include "rm/degradation.hpp"
#include "util/error.hpp"

namespace ps::core {

bool has_multiple_sla_classes(const PolicyContext& context) {
  for (const runtime::JobCharacterization& job : context.jobs) {
    if (job.sla_class != context.jobs.front().sla_class) {
      return true;
    }
  }
  return false;
}

rm::PowerAllocation apply_sla_degradation(
    const PolicyContext& context, const rm::PowerAllocation& allocation,
    double budget_watts, std::string_view where) {
  PS_REQUIRE(allocation.job_host_caps.size() == context.jobs.size(),
             "allocation has a different number of jobs than the context");
  if (!has_multiple_sla_classes(context)) {
    return allocation;
  }

  std::vector<rm::ClassDemand> demands;
  demands.reserve(context.jobs.size());
  for (std::size_t j = 0; j < context.jobs.size(); ++j) {
    const runtime::JobCharacterization& job = context.jobs[j];
    rm::ClassDemand demand;
    demand.sla_class = job.sla_class;
    demand.host_floors.assign(job.host_count, job.min_settable_cap_watts);
    demand.host_needed = job.balancer.host_needed_power_watts;
    demand.host_needed.resize(job.host_count, job.min_settable_cap_watts);
    const bool has_gpu = j < allocation.job_host_gpu_caps.size() &&
                         !allocation.job_host_gpu_caps[j].empty();
    if (has_gpu) {
      demand.gpu_needed = job.host_gpu_needed_watts;
      demand.gpu_needed.resize(job.host_count, 0.0);
      demand.gpu_floors.assign(job.host_count, 0.0);
      for (std::size_t h = 0; h < job.host_count; ++h) {
        // Only hosts that actually run a GPU phase carry the GPU floor.
        if (demand.gpu_needed[h] > 0.0) {
          demand.gpu_floors[h] = job.gpu_min_cap_watts;
        }
      }
    }
    demands.push_back(std::move(demand));
  }

  rm::PowerAllocation degraded =
      rm::shed_allocation_by_class(allocation, demands, budget_watts);

  // Class invariants over the degraded output: conservation (the pass
  // re-divides watts, never mints them) and no inversion (a starved
  // higher class never coexists with a lower class above its floors).
  std::vector<invariants::ClassAllocationView> views;
  views.reserve(context.jobs.size());
  double total = 0.0;
  for (std::size_t j = 0; j < context.jobs.size(); ++j) {
    invariants::ClassAllocationView view;
    view.rank = sim::sla_rank(context.jobs[j].sla_class);
    std::size_t limits = degraded.job_host_caps[j].size();
    for (std::size_t h = 0; h < degraded.job_host_caps[j].size(); ++h) {
      view.allocated_watts += degraded.job_host_caps[j][h];
      view.floor_watts += demands[j].host_floors[h];
      view.guaranteed_watts +=
          std::max(demands[j].host_needed[h], demands[j].host_floors[h]);
    }
    if (j < degraded.job_host_gpu_caps.size()) {
      for (std::size_t h = 0; h < degraded.job_host_gpu_caps[j].size(); ++h) {
        view.allocated_watts += degraded.job_host_gpu_caps[j][h];
        view.floor_watts += demands[j].gpu_floors[h];
        view.guaranteed_watts +=
            std::max(demands[j].gpu_needed[h], demands[j].gpu_floors[h]);
        if (demands[j].gpu_floors[h] > 0.0) {
          ++limits;
        }
      }
    }
    view.tolerance_watts = 0.5 * static_cast<double>(limits);
    total += view.allocated_watts;
    views.push_back(view);
  }
  invariants::check_class_budget_conserved(views, total, budget_watts, where);
  invariants::check_no_class_inversion(views, where);
  return degraded;
}

}  // namespace ps::core
