#include "core/policy.hpp"

#include "core/policies.hpp"
#include "util/error.hpp"

namespace ps::core {

std::size_t PolicyContext::total_hosts() const {
  std::size_t total = 0;
  for (const auto& job : jobs) {
    total += job.host_count;
  }
  return total;
}

double PolicyContext::uniform_share_watts() const {
  const std::size_t hosts = total_hosts();
  PS_CHECK_STATE(hosts > 0, "context has no hosts");
  return system_budget_watts / static_cast<double>(hosts);
}

double PolicyContext::job_tdp_watts(std::size_t j) const {
  PS_REQUIRE(j < jobs.size(), "job index out of range");
  const double per_job = jobs[j].node_tdp_watts;
  if (per_job > 0.0) {
    return per_job;
  }
  // The context-wide fallback is a guess; never let it fall below the
  // job's own settable floor, which would invert every [min, TDP] clamp
  // downstream (emergency clamps would then *raise* caps of floored
  // hosts).
  return std::max(node_tdp_watts, jobs[j].min_settable_cap_watts);
}

bool PolicyContext::has_gpu_domain() const {
  for (const auto& job : jobs) {
    if (job.has_gpu_domain()) {
      return true;
    }
  }
  return false;
}

void PolicyContext::validate() const {
  PS_REQUIRE(system_budget_watts > 0.0, "system budget must be positive");
  PS_REQUIRE(node_tdp_watts > 0.0, "node TDP must be positive");
  PS_REQUIRE(!jobs.empty(), "context needs at least one job");
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const auto& job = jobs[j];
    PS_REQUIRE(job.host_count > 0, "job needs at least one host");
    PS_REQUIRE(job.monitor.host_average_power_watts.size() == job.host_count,
               "monitor characterization host count mismatch");
    PS_REQUIRE(job.balancer.host_needed_power_watts.size() == job.host_count,
               "balancer characterization host count mismatch");
    PS_REQUIRE(job.node_tdp_watts >= 0.0,
               "per-job node TDP cannot be negative");
    // Validate against the *raw* effective TDP: job_tdp_watts() saturates
    // its fallback at the settable floor (so unvalidated emergency paths
    // never see an inverted clamp range), which would mask exactly the
    // inconsistency this check exists to reject.
    const double raw_tdp =
        job.node_tdp_watts > 0.0 ? job.node_tdp_watts : node_tdp_watts;
    PS_REQUIRE(job.min_settable_cap_watts > 0.0 &&
                   job.min_settable_cap_watts <= raw_tdp,
               "min settable cap must be in (0, TDP]");
    PS_REQUIRE(job.host_gpu_needed_watts.size() ==
                   job.host_gpu_observed_watts.size(),
               "GPU characterization vectors disagree in host count");
    if (job.has_gpu_domain()) {
      PS_REQUIRE(job.host_gpu_needed_watts.size() == job.host_count,
                 "GPU characterization host count mismatch");
      PS_REQUIRE(job.gpu_min_cap_watts > 0.0 &&
                     job.gpu_min_cap_watts <= job.gpu_tdp_watts,
                 "GPU min settable cap must be in (0, GPU TDP]");
    }
  }
}

std::string_view to_string(PolicyKind kind) noexcept {
  switch (kind) {
    case PolicyKind::kPrecharacterized:
      return "Precharacterized";
    case PolicyKind::kStaticCaps:
      return "StaticCaps";
    case PolicyKind::kMinimizeWaste:
      return "MinimizeWaste";
    case PolicyKind::kJobAdaptive:
      return "JobAdaptive";
    case PolicyKind::kMixedAdaptive:
      return "MixedAdaptive";
    case PolicyKind::kHeteroAdaptive:
      return "HeteroAdaptive";
  }
  return "?";
}

std::unique_ptr<Policy> make_policy(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kPrecharacterized:
      return std::make_unique<PrecharacterizedPolicy>();
    case PolicyKind::kStaticCaps:
      return std::make_unique<StaticCapsPolicy>();
    case PolicyKind::kMinimizeWaste:
      return std::make_unique<MinimizeWastePolicy>();
    case PolicyKind::kJobAdaptive:
      return std::make_unique<JobAdaptivePolicy>();
    case PolicyKind::kMixedAdaptive:
      return std::make_unique<MixedAdaptivePolicy>();
    case PolicyKind::kHeteroAdaptive:
      return std::make_unique<HeteroAdaptivePolicy>();
  }
  throw InvalidArgument("unknown policy kind");
}

std::vector<PolicyKind> all_policy_kinds() {
  return {PolicyKind::kPrecharacterized, PolicyKind::kStaticCaps,
          PolicyKind::kMinimizeWaste, PolicyKind::kJobAdaptive,
          PolicyKind::kMixedAdaptive};
}

}  // namespace ps::core
