#include "core/policy.hpp"

#include "core/policies.hpp"
#include "util/error.hpp"

namespace ps::core {

std::size_t PolicyContext::total_hosts() const {
  std::size_t total = 0;
  for (const auto& job : jobs) {
    total += job.host_count;
  }
  return total;
}

double PolicyContext::uniform_share_watts() const {
  const std::size_t hosts = total_hosts();
  PS_CHECK_STATE(hosts > 0, "context has no hosts");
  return system_budget_watts / static_cast<double>(hosts);
}

double PolicyContext::job_tdp_watts(std::size_t j) const {
  PS_REQUIRE(j < jobs.size(), "job index out of range");
  const double per_job = jobs[j].node_tdp_watts;
  return per_job > 0.0 ? per_job : node_tdp_watts;
}

void PolicyContext::validate() const {
  PS_REQUIRE(system_budget_watts > 0.0, "system budget must be positive");
  PS_REQUIRE(node_tdp_watts > 0.0, "node TDP must be positive");
  PS_REQUIRE(!jobs.empty(), "context needs at least one job");
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const auto& job = jobs[j];
    PS_REQUIRE(job.host_count > 0, "job needs at least one host");
    PS_REQUIRE(job.monitor.host_average_power_watts.size() == job.host_count,
               "monitor characterization host count mismatch");
    PS_REQUIRE(job.balancer.host_needed_power_watts.size() == job.host_count,
               "balancer characterization host count mismatch");
    PS_REQUIRE(job.node_tdp_watts >= 0.0,
               "per-job node TDP cannot be negative");
    PS_REQUIRE(job.min_settable_cap_watts > 0.0 &&
                   job.min_settable_cap_watts <= job_tdp_watts(j),
               "min settable cap must be in (0, TDP]");
  }
}

std::string_view to_string(PolicyKind kind) noexcept {
  switch (kind) {
    case PolicyKind::kPrecharacterized:
      return "Precharacterized";
    case PolicyKind::kStaticCaps:
      return "StaticCaps";
    case PolicyKind::kMinimizeWaste:
      return "MinimizeWaste";
    case PolicyKind::kJobAdaptive:
      return "JobAdaptive";
    case PolicyKind::kMixedAdaptive:
      return "MixedAdaptive";
  }
  return "?";
}

std::unique_ptr<Policy> make_policy(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kPrecharacterized:
      return std::make_unique<PrecharacterizedPolicy>();
    case PolicyKind::kStaticCaps:
      return std::make_unique<StaticCapsPolicy>();
    case PolicyKind::kMinimizeWaste:
      return std::make_unique<MinimizeWastePolicy>();
    case PolicyKind::kJobAdaptive:
      return std::make_unique<JobAdaptivePolicy>();
    case PolicyKind::kMixedAdaptive:
      return std::make_unique<MixedAdaptivePolicy>();
  }
  throw InvalidArgument("unknown policy kind");
}

std::vector<PolicyKind> all_policy_kinds() {
  return {PolicyKind::kPrecharacterized, PolicyKind::kStaticCaps,
          PolicyKind::kMinimizeWaste, PolicyKind::kJobAdaptive,
          PolicyKind::kMixedAdaptive};
}

}  // namespace ps::core
