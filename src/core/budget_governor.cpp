#include "core/budget_governor.hpp"

#include <algorithm>
#include <cmath>

#include "sim/facility_trace.hpp"
#include "util/error.hpp"

namespace ps::core {

BudgetGovernor::BudgetGovernor(double initial_budget_watts,
                               const BudgetGovernorOptions& options)
    : options_(options), budget_(initial_budget_watts) {
  PS_REQUIRE(initial_budget_watts > 0.0,
             "initial budget must be positive");
  PS_REQUIRE(options.hysteresis_watts >= 0.0,
             "hysteresis cannot be negative");
  PS_REQUIRE(options.max_raise_watts >= 0.0,
             "raise ramp limit cannot be negative");
  PS_REQUIRE(options.max_lower_watts >= 0.0,
             "lower ramp limit cannot be negative");
  PS_REQUIRE(options.floor_watts > 0.0, "floor must be positive");
  PS_REQUIRE(options.floor_watts <= initial_budget_watts,
             "floor exceeds the initial budget");
  PS_REQUIRE(options.emergency_drop_fraction > 0.0 &&
                 options.emergency_drop_fraction <= 1.0,
             "emergency drop fraction must be in (0, 1]");
}

std::optional<BudgetRevision> BudgetGovernor::observe(
    double signal_watts, std::size_t at_epoch) {
  PS_REQUIRE(std::isfinite(signal_watts) && signal_watts >= 0.0,
             "budget signal must be finite and non-negative");
  const double target = std::max(signal_watts, options_.floor_watts);
  const double move = target - budget_;
  if (std::abs(move) <= options_.hysteresis_watts) {
    return std::nullopt;  // metering noise, not a renegotiation
  }
  double next = target;
  if (move > 0.0 && options_.max_raise_watts > 0.0) {
    next = std::min(target, budget_ + options_.max_raise_watts);
  } else if (move < 0.0 && options_.max_lower_watts > 0.0) {
    next = std::max(target, budget_ - options_.max_lower_watts);
  }
  BudgetRevision revision;
  revision.epoch = ++epoch_;
  revision.budget_watts = next;
  revision.at_epoch = at_epoch;
  revision.emergency =
      budget_ - next > options_.emergency_drop_fraction * budget_;
  budget_ = next;
  return revision;
}

std::vector<double> budget_signal_from_trace(const sim::FacilityTrace& trace,
                                             double cluster_share,
                                             std::size_t samples,
                                             double floor_watts) {
  PS_REQUIRE(!trace.instantaneous_mw.empty(), "empty facility trace");
  PS_REQUIRE(cluster_share > 0.0 && cluster_share <= 1.0,
             "cluster share must be in (0, 1]");
  PS_REQUIRE(samples > 0, "need at least one signal sample");
  PS_REQUIRE(floor_watts > 0.0, "signal floor must be positive");
  std::vector<double> signal;
  signal.reserve(samples);
  const std::size_t n = trace.instantaneous_mw.size();
  for (std::size_t s = 0; s < samples; ++s) {
    const std::size_t index = samples == 1 ? 0 : s * (n - 1) / (samples - 1);
    const double headroom_mw =
        trace.params.peak_rating_mw - trace.instantaneous_mw[index];
    signal.push_back(std::max(floor_watts,
                              cluster_share * headroom_mw * 1e6));
  }
  return signal;
}

std::vector<BudgetRevision> make_budget_schedule(
    double initial_budget_watts, std::span<const double> signal_watts,
    const BudgetGovernorOptions& options) {
  BudgetGovernor governor(initial_budget_watts, options);
  std::vector<BudgetRevision> schedule;
  for (std::size_t s = 0; s < signal_watts.size(); ++s) {
    if (auto revision = governor.observe(signal_watts[s], s)) {
      schedule.push_back(*revision);
    }
  }
  return schedule;
}

}  // namespace ps::core
