#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/policy.hpp"

namespace ps::core::detail {

/// Flat per-host working arrays with job boundaries, shared by the policy
/// implementations.
struct HostArrays {
  std::vector<double> assigned;      ///< Current cap per host.
  std::vector<double> monitor;       ///< Observed uncapped power per host.
  std::vector<double> needed;        ///< Balancer needed power per host.
  std::vector<double> min_cap;       ///< Min settable node cap per host.
  std::vector<double> weight_ref;    ///< Package floor used for weights.
  std::vector<double> tdp;           ///< Max cap per host.
  std::vector<std::size_t> offsets;  ///< Job j owns [offsets[j], offsets[j+1]).

  [[nodiscard]] static HostArrays from_context(const PolicyContext& context);
  [[nodiscard]] rm::PowerAllocation to_allocation() const;
  [[nodiscard]] std::size_t host_count() const noexcept {
    return assigned.size();
  }
  [[nodiscard]] std::size_t job_count() const noexcept {
    return offsets.size() - 1;
  }
};

/// Distributes `amount` watts among `hosts` (indices into the arrays)
/// proportionally to max(assigned - weight_ref, 0) — the paper's "distance
/// from the host's minimum settable power limit to the host's allocated
/// power" — never raising a host above its `upper` bound.
///
/// `rounds` controls saturation handling: the paper's policies make a
/// single weighted pass (watts a saturated host cannot take are simply
/// not allocated), so the default is 1; pass more rounds to re-spread.
/// Returns the watts that were not placed.
[[nodiscard]] double weighted_headroom_fill(HostArrays& arrays,
                                            std::span<const std::size_t> hosts,
                                            std::span<const double> upper,
                                            double amount, int rounds = 1);

/// Distributes `amount` watts uniformly among hosts still below their
/// `target`, clamping each at its target, repeating until the pool runs
/// out or everyone reaches target (paper MixedAdaptive step 3). Returns
/// the watts left over.
[[nodiscard]] double uniform_fill_to_target(HostArrays& arrays,
                                            std::span<const double> target,
                                            double amount);

/// The MixedAdaptive four-step fill over already-built arrays: (1) uniform
/// share of `budget_watts` per entry, (2) trim to needed, (3) uniform
/// refill toward needed, (4) weighted surplus. Shared by MixedAdaptive
/// (entries = hosts) and HeteroAdaptive (entries = host power domains).
void mixed_adaptive_steps(HostArrays& arrays, double budget_watts,
                          bool redistribute_deallocated,
                          bool distribute_surplus);

}  // namespace ps::core::detail
