#pragma once

#include <string_view>

#include "core/policy.hpp"
#include "rm/allocation.hpp"

namespace ps::core {

/// True when the context's jobs span more than one SLA class — the only
/// case where class-ordered degradation can differ from the policy
/// output. Single-class mixes (every legacy caller) skip degradation
/// entirely, keeping their allocations bit-identical.
[[nodiscard]] bool has_multiple_sla_classes(const PolicyContext& context);

/// The shared multi-tenant degradation step the in-memory loop, the
/// daemon, and the facility manager all run on a policy output before
/// programming it: re-divides the allocation by SLA class
/// (rm::shed_allocation_by_class) so that under scarcity best_effort
/// sheds toward its floors before standard and latency_critical is
/// touched last, then asserts the class invariants (per-class budget
/// conservation, no class inversion) under `where`.
///
/// Returns the allocation unchanged when the context is single-class.
/// Because every consumer calls this one function with the same context
/// and policy output, the daemon stays watt-for-watt equal to the
/// in-memory loop under multi-tenant mixes too.
[[nodiscard]] rm::PowerAllocation apply_sla_degradation(
    const PolicyContext& context, const rm::PowerAllocation& allocation,
    double budget_watts, std::string_view where);

}  // namespace ps::core
