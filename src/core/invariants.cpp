#include "core/invariants.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <string>

#include "util/error.hpp"

namespace ps::core::invariants {
namespace {

std::atomic<Mode> g_mode{[] {
  const char* env = std::getenv("PS_INVARIANTS");
  if (env != nullptr && std::string_view(env) == "fatal") {
    return Mode::kFatal;
  }
  return Mode::kCount;
}()};

std::atomic<std::uint64_t> g_checks{0};
std::atomic<std::uint64_t> g_violations{0};

std::mutex g_last_mutex;
std::string g_last_violation;  // guarded by g_last_mutex

void record_violation(std::string_view what) {
  g_violations.fetch_add(1, std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(g_last_mutex);
    g_last_violation.assign(what);
  }
  if (g_mode.load(std::memory_order_relaxed) == Mode::kFatal) {
    throw InvalidState(std::string("invariant violated: ") + std::string(what));
  }
}

}  // namespace

Mode mode() noexcept { return g_mode.load(std::memory_order_relaxed); }

void set_mode(Mode mode) noexcept {
  g_mode.store(mode, std::memory_order_relaxed);
}

Stats stats() noexcept {
  Stats out;
  out.checks = g_checks.load(std::memory_order_relaxed);
  out.violations = g_violations.load(std::memory_order_relaxed);
  return out;
}

std::string last_violation() {
  const std::lock_guard<std::mutex> lock(g_last_mutex);
  return g_last_violation;
}

void reset() noexcept {
  g_checks.store(0, std::memory_order_relaxed);
  g_violations.store(0, std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(g_last_mutex);
  g_last_violation.clear();
}

void check(bool ok, std::string_view what) {
  g_checks.fetch_add(1, std::memory_order_relaxed);
  if (!ok) {
    record_violation(what);
  }
}

void check_caps_fit_budget(double total_caps_watts, double budget_watts,
                           std::size_t host_count, std::string_view where) {
  const double tolerance = 0.5 * static_cast<double>(host_count);
  const bool ok = total_caps_watts <= budget_watts + tolerance;
  if (ok) {
    check(true, {});
    return;
  }
  std::ostringstream message;
  message << where << ": programmed " << total_caps_watts
          << " W exceeds budget " << budget_watts << " W + tolerance "
          << tolerance << " W";
  check(false, message.str());
}

void check_cap_bounds(double cap_watts, double floor_watts, double tdp_watts,
                      double tolerance_watts, std::string_view where) {
  const bool ok = cap_watts >= floor_watts - tolerance_watts &&
                  cap_watts <= tdp_watts + tolerance_watts;
  if (ok) {
    check(true, {});
    return;
  }
  std::ostringstream message;
  message << where << ": cap " << cap_watts << " W outside [" << floor_watts
          << ", " << tdp_watts << "] W (tolerance " << tolerance_watts << ")";
  check(false, message.str());
}

void check_epoch_monotone(std::uint64_t previous_epoch,
                          std::uint64_t next_epoch, std::string_view where) {
  if (next_epoch > previous_epoch) {
    check(true, {});
    return;
  }
  std::ostringstream message;
  message << where << ": budget epoch " << next_epoch
          << " does not advance past " << previous_epoch;
  check(false, message.str());
}

void check_watts_conserved(double before_watts, double freed_watts,
                           double after_watts, double tolerance_watts,
                           std::string_view where) {
  const double drift = before_watts - (freed_watts + after_watts);
  if (drift <= tolerance_watts && drift >= -tolerance_watts) {
    check(true, {});
    return;
  }
  std::ostringstream message;
  message << where << ": reclaim lost " << drift << " W (" << before_watts
          << " before, " << freed_watts << " freed, " << after_watts
          << " after)";
  check(false, message.str());
}

void check_class_budget_conserved(std::span<const ClassAllocationView> jobs,
                                  double total_caps_watts,
                                  double budget_watts,
                                  std::string_view where) {
  double class_sum = 0.0;
  double floors = 0.0;
  double tolerance = 0.0;
  for (const ClassAllocationView& job : jobs) {
    class_sum += job.allocated_watts;
    floors += job.floor_watts;
    tolerance += job.tolerance_watts;
  }
  const double drift = class_sum - total_caps_watts;
  const bool conserved = drift <= tolerance && drift >= -tolerance;
  const bool fits =
      total_caps_watts <= std::max(budget_watts, floors) + tolerance;
  if (conserved && fits) {
    check(true, {});
    return;
  }
  std::ostringstream message;
  message << where << ": per-class sums " << class_sum
          << " W vs programmed total " << total_caps_watts << " W, budget "
          << budget_watts << " W, floors " << floors << " W (tolerance "
          << tolerance << ")";
  check(false, message.str());
}

void check_no_class_inversion(std::span<const ClassAllocationView> jobs,
                              std::string_view where) {
  for (const ClassAllocationView& starved : jobs) {
    if (starved.allocated_watts >=
        starved.guaranteed_watts - starved.tolerance_watts) {
      continue;  // This job's guarantee is met; it inverts nothing.
    }
    for (const ClassAllocationView& holder : jobs) {
      if (holder.rank >= starved.rank) {
        continue;
      }
      if (holder.allocated_watts >
          holder.floor_watts + holder.tolerance_watts) {
        std::ostringstream message;
        message << where << ": class inversion — a rank-" << starved.rank
                << " job holds " << starved.allocated_watts
                << " W (guaranteed " << starved.guaranteed_watts
                << " W) while a rank-" << holder.rank << " job holds "
                << holder.allocated_watts << " W above its floor "
                << holder.floor_watts << " W";
        check(false, message.str());
        return;
      }
    }
  }
  check(true, {});
}

}  // namespace ps::core::invariants
