#include "core/coordination.hpp"

#include <algorithm>
#include <cmath>

#include "rm/power_manager.hpp"
#include "util/error.hpp"

namespace ps::core {

double CoordinationResult::gflops_per_watt() const {
  if (energy_joules <= 0.0) {
    return 0.0;
  }
  return total_gflop / energy_joules;
}

CoordinationLoop::CoordinationLoop(double system_budget_watts,
                                   const CoordinationOptions& options)
    : budget_(system_budget_watts), options_(options) {
  PS_REQUIRE(system_budget_watts > 0.0, "system budget must be positive");
  PS_REQUIRE(options.epoch_iterations > 0,
             "epochs need at least one iteration");
  PS_REQUIRE(options.convergence_watts > 0.0,
             "convergence threshold must be positive");
}

PolicyContext CoordinationLoop::build_context(
    std::span<sim::JobSimulation* const> jobs) {
  PolicyContext context;
  context.system_budget_watts = budget_;
  context.node_tdp_watts = jobs.front()->host(0).tdp();
  context.uncappable_watts =
      jobs.front()->host(0).params().dram_watts;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    sim::JobSimulation& job = *jobs[j];
    runtime::JobCharacterization data;
    data.host_count = job.host_count();
    data.min_settable_cap_watts = job.host(0).min_cap();
    // Live "needed" estimate: the balancer search under an unconstrained
    // budget re-derives each host's minimum performance-preserving cap
    // for the job's *current* phase.
    double tdp_budget = 0.0;
    for (std::size_t h = 0; h < job.host_count(); ++h) {
      tdp_budget += job.host(h).tdp();
    }
    data.balancer.host_needed_power_watts =
        runtime::balance_power(job, tdp_budget, options_.balancer);
    data.balancer.min_host_needed_watts =
        *std::min_element(data.balancer.host_needed_power_watts.begin(),
                          data.balancer.host_needed_power_watts.end());
    data.balancer.max_host_needed_watts =
        *std::max_element(data.balancer.host_needed_power_watts.begin(),
                          data.balancer.host_needed_power_watts.end());
    // Live "monitor" estimate: the running demand maximum observed so
    // far (a host capped below its demand still reveals demand up to its
    // cap; the estimate grows as caps rise).
    data.monitor.host_average_power_watts = live_[j].demand_watts;
    data.monitor.max_host_power_watts =
        *std::max_element(live_[j].demand_watts.begin(),
                          live_[j].demand_watts.end());
    data.monitor.min_host_power_watts =
        *std::min_element(live_[j].demand_watts.begin(),
                          live_[j].demand_watts.end());
    context.jobs.push_back(std::move(data));
  }
  return context;
}

CoordinationResult CoordinationLoop::run(
    std::span<sim::JobSimulation* const> jobs,
    std::size_t total_iterations) {
  PS_REQUIRE(!jobs.empty(), "coordination needs at least one job");
  PS_REQUIRE(total_iterations > 0, "need at least one iteration");
  for (const auto* job : jobs) {
    PS_REQUIRE(job != nullptr, "job must not be null");
  }

  // Initial state: uniform distribution of the budget (StaticCaps-like),
  // demand estimates seeded at the settable floor.
  std::size_t total_hosts = 0;
  for (const auto* job : jobs) {
    total_hosts += job->host_count();
  }
  const double share = budget_ / static_cast<double>(total_hosts);
  live_.assign(jobs.size(), {});
  std::vector<std::vector<double>> previous_caps(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    live_[j].demand_watts.assign(jobs[j]->host_count(),
                                 jobs[j]->host(0).min_cap());
    previous_caps[j].resize(jobs[j]->host_count());
    for (std::size_t h = 0; h < jobs[j]->host_count(); ++h) {
      jobs[j]->set_host_cap(h, share);
      previous_caps[j][h] = jobs[j]->host_cap(h);
    }
  }

  const auto policy = make_policy(options_.policy);
  const rm::SystemPowerManager manager(budget_);

  CoordinationResult result;
  std::size_t done = 0;
  std::size_t epoch_index = 0;
  while (done < total_iterations) {
    const std::size_t this_epoch =
        std::min(options_.epoch_iterations, total_iterations - done);

    EpochRecord record;
    record.epoch = epoch_index;
    double epoch_max_elapsed = 0.0;
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      double job_elapsed = 0.0;
      for (std::size_t i = 0; i < this_epoch; ++i) {
        const sim::IterationResult iteration = jobs[j]->run_iteration();
        job_elapsed += iteration.iteration_seconds;
        record.energy_joules += iteration.total_energy_joules;
        result.total_gflop += iteration.total_gflop;
        for (std::size_t h = 0; h < jobs[j]->host_count(); ++h) {
          live_[j].demand_watts[h] =
              std::max(live_[j].demand_watts[h],
                       iteration.hosts[h].average_power_watts);
        }
      }
      epoch_max_elapsed = std::max(epoch_max_elapsed, job_elapsed);
    }
    record.elapsed_seconds = epoch_max_elapsed;
    record.system_power_watts =
        epoch_max_elapsed > 0.0 ? record.energy_joules / epoch_max_elapsed
                                : 0.0;
    done += this_epoch;

    // RM step: re-allocate from the live telemetry.
    const PolicyContext context = build_context(jobs);
    const rm::PowerAllocation allocation = policy->allocate(context);
    manager.apply(jobs, allocation, policy->is_system_aware());

    record.allocated_watts =
        rm::SystemPowerManager::total_allocated_watts(jobs);
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      for (std::size_t h = 0; h < jobs[j]->host_count(); ++h) {
        const double cap = jobs[j]->host_cap(h);
        record.max_cap_change_watts =
            std::max(record.max_cap_change_watts,
                     std::abs(cap - previous_caps[j][h]));
        previous_caps[j][h] = cap;
      }
    }
    if (!result.converged && epoch_index > 0 &&
        record.max_cap_change_watts < options_.convergence_watts) {
      result.converged = true;
      result.convergence_epoch = epoch_index;
    } else if (record.max_cap_change_watts >= options_.convergence_watts) {
      result.converged = false;  // a phase change can de-converge the loop
    }

    result.elapsed_seconds += record.elapsed_seconds;
    result.energy_joules += record.energy_joules;
    result.epochs.push_back(record);
    ++epoch_index;
  }
  return result;
}

}  // namespace ps::core
