#include "core/coordination.hpp"

#include <algorithm>
#include <cmath>

#include "core/degradation.hpp"
#include "core/invariants.hpp"
#include "obs/replay.hpp"
#include "rm/power_manager.hpp"
#include "util/error.hpp"

namespace ps::core {

namespace {

std::string_view failure_kind_name(sim::FailureKind kind) {
  switch (kind) {
    case sim::FailureKind::kNodeFailure:
      return "node_failure";
    case sim::FailureKind::kStragglerOnset:
      return "straggler_onset";
    case sim::FailureKind::kStragglerRecovery:
      return "straggler_recovery";
  }
  return "unknown";
}

/// One "caps" event per job: the caps the RM step just programmed, at
/// exact numeric fidelity (the replay oracle's input).
void emit_caps_events(const obs::Observability& obs, std::uint64_t tick,
                      std::span<sim::JobSimulation* const> jobs) {
  if (!obs.tracing()) {
    return;
  }
  for (const auto* job : jobs) {
    obs::TraceEvent event;
    event.tick = tick;
    event.category = std::string(obs::cat::kCoord);
    event.name = "caps";
    event.args.reserve(job->host_count() + 1);
    event.args.push_back({"job", job->name()});
    for (std::size_t h = 0; h < job->host_count(); ++h) {
      event.args.push_back({obs::cap_key(h), job->host_cap(h)});
    }
    if (job->has_gpu_domain()) {
      // GPU-domain caps ride the same event under g-keys; CPU-only jobs
      // emit none, so pre-hetero golden traces are byte-identical.
      for (std::size_t h = 0; h < job->host_count(); ++h) {
        event.args.push_back({obs::gpu_cap_key(h), job->host_gpu_cap(h)});
      }
    }
    obs.trace->emit(std::move(event));
  }
}

}  // namespace

double CoordinationResult::gflops_per_watt() const {
  if (energy_joules <= 0.0) {
    return 0.0;
  }
  return total_gflop / energy_joules;
}

double FailureTelemetry::mean_epochs_to_reclaim() const {
  double total = 0.0;
  std::size_t count = 0;
  for (const ReclaimRecord& record : reclaims) {
    if (record.reclaimed) {
      total += static_cast<double>(record.reclaim_epoch -
                                   record.event_epoch);
      ++count;
    }
  }
  return count == 0 ? 0.0 : total / static_cast<double>(count);
}

CoordinationLoop::CoordinationLoop(double system_budget_watts,
                                   const CoordinationOptions& options)
    : budget_(system_budget_watts), options_(options) {
  PS_REQUIRE(system_budget_watts > 0.0, "system budget must be positive");
  PS_REQUIRE(options.epoch_iterations > 0,
             "epochs need at least one iteration");
  PS_REQUIRE(options.convergence_watts > 0.0,
             "convergence threshold must be positive");
}

PolicyContext CoordinationLoop::build_context(
    std::span<sim::JobSimulation* const> jobs) {
  PolicyContext context;
  context.system_budget_watts = budget_;
  context.node_tdp_watts = jobs.front()->host(0).tdp();
  context.uncappable_watts =
      jobs.front()->host(0).params().dram_watts;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    sim::JobSimulation& job = *jobs[j];
    runtime::JobCharacterization data;
    data.host_count = job.host_count();
    data.sla_class = job.sla_class();
    data.min_settable_cap_watts = job.host(0).min_cap();
    // Live "needed" estimate: the balancer search under an unconstrained
    // budget re-derives each host's minimum performance-preserving cap
    // for the job's *current* phase.
    double tdp_budget = 0.0;
    for (std::size_t h = 0; h < job.host_count(); ++h) {
      tdp_budget += job.host(h).tdp();
    }
    data.balancer.host_needed_power_watts =
        runtime::balance_power(job, tdp_budget, options_.balancer);
    // A dead host needs (and demands) nothing above the settable floor:
    // the policy squeezes it there and the difference returns to the
    // pool for the survivors.
    for (std::size_t h = 0; h < job.host_count(); ++h) {
      if (job.host_failed(h)) {
        data.balancer.host_needed_power_watts[h] = job.host(h).min_cap();
        live_[j].demand_watts[h] = job.host(h).min_cap();
      }
    }
    // Live "monitor" estimate: the running demand maximum observed so
    // far (a host capped below its demand still reveals demand up to its
    // cap; the estimate grows as caps rise).
    data.monitor.host_average_power_watts = live_[j].demand_watts;
    data.monitor.max_host_power_watts =
        *std::max_element(live_[j].demand_watts.begin(),
                          live_[j].demand_watts.end());
    data.monitor.min_host_power_watts =
        *std::min_element(live_[j].demand_watts.begin(),
                          live_[j].demand_watts.end());
    if (job.has_gpu_domain()) {
      // GPU-domain telemetry: live demand from the GPU ratchet, needed
      // power re-derived per domain against one whole-node time target.
      // Both searches must honor the *iteration* critical path (the max
      // of the concurrent CPU and GPU phases): a CPU phase far off the
      // critical path needs only the cap that keeps it there, and the
      // freed watts are exactly what shifts to the bottleneck domain.
      const double target =
          runtime::uncapped_iteration_seconds(job) *
          (1.0 + options_.balancer.tolerated_slowdown);
      data.host_gpu_needed_watts.assign(job.host_count(), 0.0);
      data.host_gpu_observed_watts = live_[j].gpu_demand_watts;
      for (std::size_t h = 0; h < job.host_count(); ++h) {
        if (!job.host_failed(h)) {
          data.balancer.host_needed_power_watts[h] =
              runtime::min_cap_for_time(job, h, target, options_.balancer);
        }
        if (!job.host_has_gpu_phase(h)) {
          continue;
        }
        if (data.gpu_min_cap_watts == 0.0) {
          data.gpu_min_cap_watts = job.host_gpu_min_cap(h);
          data.gpu_tdp_watts = job.host_gpu_tdp(h);
        }
        if (job.host_failed(h)) {
          data.host_gpu_needed_watts[h] = job.host_gpu_min_cap(h);
          live_[j].gpu_demand_watts[h] = job.host_gpu_min_cap(h);
          data.host_gpu_observed_watts[h] = job.host_gpu_min_cap(h);
        } else {
          data.host_gpu_needed_watts[h] = runtime::min_gpu_cap_for_time(
              job, h, target, options_.balancer);
        }
      }
    }
    data.balancer.min_host_needed_watts =
        *std::min_element(data.balancer.host_needed_power_watts.begin(),
                          data.balancer.host_needed_power_watts.end());
    data.balancer.max_host_needed_watts =
        *std::max_element(data.balancer.host_needed_power_watts.begin(),
                          data.balancer.host_needed_power_watts.end());
    context.jobs.push_back(std::move(data));
  }
  return context;
}

CoordinationResult CoordinationLoop::run(
    std::span<sim::JobSimulation* const> jobs,
    std::size_t total_iterations) {
  return run_with_failures(jobs, total_iterations, {}, nullptr);
}

CoordinationResult CoordinationLoop::run_with_failures(
    std::span<sim::JobSimulation* const> jobs,
    std::size_t total_iterations,
    std::span<const sim::FailureEvent> events,
    FailureTelemetry* telemetry) {
  return run_dynamic(jobs, total_iterations, events, {}, telemetry, nullptr);
}

CoordinationResult CoordinationLoop::run_dynamic(
    std::span<sim::JobSimulation* const> jobs,
    std::size_t total_iterations,
    std::span<const sim::FailureEvent> events,
    std::span<const BudgetRevision> revisions,
    FailureTelemetry* telemetry,
    BudgetTelemetry* budget_telemetry) {
  PS_REQUIRE(!jobs.empty(), "coordination needs at least one job");
  PS_REQUIRE(total_iterations > 0, "need at least one iteration");
  for (const auto* job : jobs) {
    PS_REQUIRE(job != nullptr, "job must not be null");
  }
  for (const sim::FailureEvent& event : events) {
    PS_REQUIRE(event.job < jobs.size(), "failure event job out of range");
    PS_REQUIRE(event.host < jobs[event.job]->host_count(),
               "failure event host out of range");
  }
  for (std::size_t r = 1; r < revisions.size(); ++r) {
    PS_REQUIRE(revisions[r - 1].at_epoch <= revisions[r].at_epoch,
               "budget revisions must be sorted by at_epoch");
  }

  // Initial state: uniform distribution of the budget (StaticCaps-like),
  // demand estimates seeded at the settable floor. Heterogeneous hosts
  // split their share CPU:GPU by TDP ratio until the first RM step; the
  // invariant tolerances count every programmable limit (one per host
  // plus one per GPU-phase host), since each limit quantizes separately.
  std::size_t total_hosts = 0;
  std::size_t total_limits = 0;
  for (const auto* job : jobs) {
    total_hosts += job->host_count();
    total_limits += job->host_count();
    for (std::size_t h = 0; h < job->host_count(); ++h) {
      if (job->host_has_gpu_phase(h)) {
        ++total_limits;
      }
    }
  }
  const double share = budget_ / static_cast<double>(total_hosts);
  live_.assign(jobs.size(), {});
  std::vector<std::vector<double>> previous_caps(jobs.size());
  std::vector<std::vector<double>> previous_gpu_caps(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    live_[j].demand_watts.assign(jobs[j]->host_count(),
                                 jobs[j]->host(0).min_cap());
    previous_caps[j].resize(jobs[j]->host_count());
    previous_gpu_caps[j].assign(jobs[j]->host_count(), 0.0);
    if (jobs[j]->has_gpu_domain()) {
      live_[j].gpu_demand_watts.assign(jobs[j]->host_count(), 0.0);
    }
    for (std::size_t h = 0; h < jobs[j]->host_count(); ++h) {
      if (jobs[j]->host_has_gpu_phase(h)) {
        const double cpu_tdp = jobs[j]->host(h).tdp();
        const double gpu_tdp = jobs[j]->host_gpu_tdp(h);
        const double cpu_fraction = cpu_tdp / (cpu_tdp + gpu_tdp);
        jobs[j]->set_host_cap(h, share * cpu_fraction);
        jobs[j]->set_host_gpu_cap(h, share * (1.0 - cpu_fraction));
        live_[j].gpu_demand_watts[h] = jobs[j]->host_gpu_min_cap(h);
        previous_gpu_caps[j][h] = jobs[j]->host_gpu_cap(h);
      } else {
        jobs[j]->set_host_cap(h, share);
      }
      previous_caps[j][h] = jobs[j]->host_cap(h);
    }
  }

  const auto policy = make_policy(options_.policy);
  rm::SystemPowerManager manager(budget_);
  const obs::Observability& obs = options_.obs;
  manager.set_observer(obs);

  CoordinationResult result;
  std::vector<ReclaimRecord> pending_reclaims;
  std::size_t next_event = 0;
  std::size_t next_revision = 0;
  std::size_t done = 0;
  std::size_t epoch_index = 0;
  while (done < total_iterations) {
    const std::size_t this_epoch =
        std::min(options_.epoch_iterations, total_iterations - done);

    // Adopt this epoch's budget revisions before its iterations run. The
    // caps programmed at the last RM step keep running until this
    // epoch's own RM step — the bounded excursion window.
    while (next_revision < revisions.size() &&
           revisions[next_revision].at_epoch <= epoch_index) {
      const BudgetRevision& revision = revisions[next_revision];
      invariants::check_epoch_monotone(manager.budget_epoch(), revision.epoch,
                                       "coordination.revision");
      const bool applied =
          manager.set_budget(revision.budget_watts, revision.epoch);
      if (applied) {
        budget_ = revision.budget_watts;
        if (budget_telemetry != nullptr) {
          ++budget_telemetry->revisions_applied;
        }
      } else if (budget_telemetry != nullptr) {
        ++budget_telemetry->revisions_stale;
      }
      obs.emit(epoch_index, obs::cat::kCoord, "revision",
               {{"revision_epoch", revision.epoch},
                {"budget_watts", revision.budget_watts},
                {"applied", applied}});
      ++next_revision;
    }

    // Apply this epoch's scheduled failures before its iterations run.
    while (next_event < events.size() &&
           events[next_event].epoch <= epoch_index) {
      const sim::FailureEvent& event = events[next_event];
      sim::JobSimulation& job = *jobs[event.job];
      switch (event.kind) {
        case sim::FailureKind::kNodeFailure: {
          ReclaimRecord reclaim;
          reclaim.event_epoch = epoch_index;
          reclaim.job = event.job;
          reclaim.host = event.host;
          reclaim.watts_reclaimed =
              job.host_cap(event.host) - job.host(event.host).min_cap();
          if (job.host_has_gpu_phase(event.host)) {
            // Both domains of a dead host return to the pool.
            reclaim.watts_reclaimed += job.host_gpu_cap(event.host) -
                                       job.host_gpu_min_cap(event.host);
          }
          pending_reclaims.push_back(reclaim);
          job.set_host_failed(event.host, true);
          // The demand ratchet must fall with the host: a dead host's
          // running-max history would otherwise keep attracting watts.
          live_[event.job].demand_watts[event.host] =
              job.host(event.host).min_cap();
          if (job.host_has_gpu_phase(event.host)) {
            live_[event.job].gpu_demand_watts[event.host] =
                job.host_gpu_min_cap(event.host);
          }
          break;
        }
        case sim::FailureKind::kStragglerOnset:
          job.set_host_slowdown(event.host, event.severity);
          break;
        case sim::FailureKind::kStragglerRecovery:
          job.set_host_slowdown(event.host, 1.0);
          break;
      }
      if (telemetry != nullptr) {
        ++telemetry->events_applied;
      }
      obs.emit(epoch_index, obs::cat::kCoord, "failure",
               {{"kind", std::string(failure_kind_name(event.kind))},
                {"job", static_cast<std::uint64_t>(event.job)},
                {"host", static_cast<std::uint64_t>(event.host)}});
      ++next_event;
    }

    EpochRecord record;
    record.epoch = epoch_index;
    double epoch_max_elapsed = 0.0;
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      double job_elapsed = 0.0;
      for (std::size_t i = 0; i < this_epoch; ++i) {
        const sim::IterationResult iteration = jobs[j]->run_iteration();
        job_elapsed += iteration.iteration_seconds;
        record.energy_joules += iteration.total_energy_joules;
        result.total_gflop += iteration.total_gflop;
        for (std::size_t h = 0; h < jobs[j]->host_count(); ++h) {
          live_[j].demand_watts[h] =
              std::max(live_[j].demand_watts[h],
                       iteration.hosts[h].average_power_watts);
          if (jobs[j]->host_has_gpu_phase(h)) {
            live_[j].gpu_demand_watts[h] =
                std::max(live_[j].gpu_demand_watts[h],
                         iteration.hosts[h].gpu_average_power_watts);
          }
        }
      }
      epoch_max_elapsed = std::max(epoch_max_elapsed, job_elapsed);
    }
    record.elapsed_seconds = epoch_max_elapsed;
    record.system_power_watts =
        epoch_max_elapsed > 0.0 ? record.energy_joules / epoch_max_elapsed
                                : 0.0;
    done += this_epoch;
    record.budget_watts = budget_;
    record.budget_epoch = manager.budget_epoch();

    // Account the control period the epoch's caps just ran for: after a
    // budget drop this is the (single) excursion interval, closed below
    // once the RM step has reprogrammed under the revised budget.
    const double tolerance = 0.5 * static_cast<double>(total_limits);
    const double programmed =
        rm::SystemPowerManager::total_allocated_watts(jobs);
    manager.observe_programmed(programmed, total_limits,
                               record.elapsed_seconds);
    if (programmed > budget_ + tolerance && budget_telemetry != nullptr) {
      budget_telemetry->excursion_epochs.push_back(epoch_index);
    }

    // RM step: re-allocate from the live telemetry. Multi-tenant mixes
    // pass the policy output through the shared class-ordered degradation
    // step (identity for single-class mixes and under abundance), so
    // scarcity is absorbed by best_effort floors first.
    const PolicyContext context = build_context(jobs);
    const rm::PowerAllocation allocation = apply_sla_degradation(
        context, policy->allocate(context), budget_, "coordination.degrade");
    const bool over_budget =
        policy->is_system_aware() &&
        !allocation.within_budget(
            budget_, 0.5 * static_cast<double>(allocation.host_count()));
    if (over_budget) {
      // A policy output the site would reject: keep every job on its
      // last caps rather than programming an over-budget allocation —
      // unless a revision left the last caps over budget too, in which
      // case the emergency clamp scales the output onto the budget.
      if (telemetry != nullptr) {
        telemetry->budget_violation_epochs.push_back(epoch_index);
      }
      if (programmed > budget_ + tolerance) {
        std::vector<sim::SlaClass> classes;
        classes.reserve(jobs.size());
        for (const auto* job : jobs) {
          classes.push_back(job->sla_class());
        }
        manager.emergency_clamp(jobs, allocation, classes);
        record.emergency_clamped = true;
        if (budget_telemetry != nullptr) {
          ++budget_telemetry->emergency_clamps;
        }
      }
    } else {
      manager.apply(jobs, allocation, policy->is_system_aware());
    }
    // Close the excursion (if any) at the reprogram instant and assert
    // the loop's invariants over the freshly programmed caps.
    manager.observe_programmed(
        rm::SystemPowerManager::total_allocated_watts(jobs), total_limits,
        0.0);
    if (policy->is_system_aware()) {
      double floors_watts = 0.0;
      for (const auto* job : jobs) {
        for (std::size_t h = 0; h < job->host_count(); ++h) {
          floors_watts += job->host(h).min_cap();
          if (job->host_has_gpu_phase(h)) {
            floors_watts += job->host_gpu_min_cap(h);
          }
        }
      }
      invariants::check_caps_fit_budget(
          rm::SystemPowerManager::total_allocated_watts(jobs),
          std::max(budget_, floors_watts), total_limits,
          "coordination.rm_step");
    }
    for (const auto* job : jobs) {
      for (std::size_t h = 0; h < job->host_count(); ++h) {
        invariants::check_cap_bounds(job->host_cap(h), job->host(h).min_cap(),
                                     job->host(h).tdp(), 0.5,
                                     "coordination.cap");
        if (job->host_has_gpu_phase(h)) {
          invariants::check_cap_bounds(
              job->host_gpu_cap(h), job->host_gpu_min_cap(h),
              job->host_gpu_tdp(h), 0.5, "coordination.gpu_cap");
        }
      }
    }

    // A failure is reclaimed once the dead host sits at the floor: every
    // watt above the settable minimum is back in the pool. Policies park
    // idle hosts within a fraction of a watt of the floor (slack terms
    // keep caps off exact bounds), so reclaim within half a watt.
    for (ReclaimRecord& reclaim : pending_reclaims) {
      if (reclaim.reclaimed) {
        continue;
      }
      const sim::JobSimulation& job = *jobs[reclaim.job];
      double cap = job.host_cap(reclaim.host);
      double floor_cap = job.host(reclaim.host).min_cap();
      if (job.host_has_gpu_phase(reclaim.host)) {
        // A heterogeneous host is reclaimed only once BOTH its domains
        // sit at their floors.
        cap += job.host_gpu_cap(reclaim.host);
        floor_cap += job.host_gpu_min_cap(reclaim.host);
      }
      if (cap <= floor_cap + 0.5) {
        reclaim.reclaimed = true;
        reclaim.reclaim_epoch = epoch_index;
        // Conservation: the watts the dead host gave up plus what it
        // still holds must equal its pre-failure cap.
        invariants::check_watts_conserved(reclaim.watts_reclaimed + floor_cap,
                                          reclaim.watts_reclaimed, cap, 0.5,
                                          "coordination.reclaim");
        obs.emit(epoch_index, obs::cat::kCoord, "reclaim",
                 {{"job", static_cast<std::uint64_t>(reclaim.job)},
                  {"host", static_cast<std::uint64_t>(reclaim.host)},
                  {"watts_reclaimed", reclaim.watts_reclaimed}});
      }
    }

    record.allocated_watts =
        rm::SystemPowerManager::total_allocated_watts(jobs);
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      for (std::size_t h = 0; h < jobs[j]->host_count(); ++h) {
        const double cap = jobs[j]->host_cap(h);
        record.max_cap_change_watts =
            std::max(record.max_cap_change_watts,
                     std::abs(cap - previous_caps[j][h]));
        previous_caps[j][h] = cap;
        if (jobs[j]->host_has_gpu_phase(h)) {
          // Convergence tracks GPU-domain moves too: a loop still
          // shifting watts CPU<->GPU has not settled.
          const double gpu_cap = jobs[j]->host_gpu_cap(h);
          record.max_cap_change_watts =
              std::max(record.max_cap_change_watts,
                       std::abs(gpu_cap - previous_gpu_caps[j][h]));
          previous_gpu_caps[j][h] = gpu_cap;
        }
      }
    }
    if (!result.converged && epoch_index > 0 &&
        record.max_cap_change_watts < options_.convergence_watts) {
      result.converged = true;
      result.convergence_epoch = epoch_index;
    } else if (record.max_cap_change_watts >= options_.convergence_watts) {
      result.converged = false;  // a phase change can de-converge the loop
    }

    emit_caps_events(obs, epoch_index, jobs);
    obs.emit(epoch_index, obs::cat::kCoord, "epoch",
             {{"epoch", static_cast<std::uint64_t>(record.epoch)},
              {"budget_watts", record.budget_watts},
              {"budget_epoch", record.budget_epoch},
              {"allocated_watts", record.allocated_watts},
              {"emergency", record.emergency_clamped}});

    result.elapsed_seconds += record.elapsed_seconds;
    result.energy_joules += record.energy_joules;
    result.epochs.push_back(record);
    ++epoch_index;
  }
  if (telemetry != nullptr) {
    telemetry->reclaims = std::move(pending_reclaims);
  }
  if (budget_telemetry != nullptr) {
    budget_telemetry->excursions = manager.excursions();
    budget_telemetry->final_budget_watts = manager.budget_watts();
    budget_telemetry->final_budget_epoch = manager.budget_epoch();
  }
  return result;
}

}  // namespace ps::core
