#include "core/policies.hpp"

#include <algorithm>
#include <numeric>

#include "core/policy_util.hpp"
#include "util/error.hpp"

namespace ps::core {

using detail::HostArrays;

rm::PowerAllocation PrecharacterizedPolicy::allocate(
    const PolicyContext& context) const {
  HostArrays arrays = HostArrays::from_context(context);
  for (std::size_t j = 0; j < arrays.job_count(); ++j) {
    const double job_cap =
        std::clamp(context.jobs[j].monitor.max_host_power_watts,
                   context.jobs[j].min_settable_cap_watts,
                   context.job_tdp_watts(j));
    for (std::size_t h = arrays.offsets[j]; h < arrays.offsets[j + 1]; ++h) {
      arrays.assigned[h] = job_cap;
    }
  }
  return arrays.to_allocation();
}

rm::PowerAllocation StaticCapsPolicy::allocate(
    const PolicyContext& context) const {
  HostArrays arrays = HostArrays::from_context(context);
  const double share = context.uniform_share_watts();
  for (std::size_t j = 0; j < arrays.job_count(); ++j) {
    // Uniform share, clipped at the job's hungriest observed node; the
    // hardware clamps anything below the settable floor up to the floor.
    const double job_cap =
        std::min(share, context.jobs[j].monitor.max_host_power_watts);
    const double cap = std::clamp(job_cap,
                                  context.jobs[j].min_settable_cap_watts,
                                  context.job_tdp_watts(j));
    for (std::size_t h = arrays.offsets[j]; h < arrays.offsets[j + 1]; ++h) {
      arrays.assigned[h] = cap;
    }
  }
  return arrays.to_allocation();
}

rm::PowerAllocation MinimizeWastePolicy::allocate(
    const PolicyContext& context) const {
  HostArrays arrays = HostArrays::from_context(context);

  // Emulates SLURM's real-time reallocation with the observed
  // (performance-agnostic) demand from the monitor characterization:
  // power flows from jobs observed to draw less toward jobs observed to
  // draw more, until every host is capped at the same fraction of its
  // demand. Observed power includes busy-poll waste, which this policy
  // cannot distinguish from useful demand.
  double demand_total = 0.0;
  std::vector<double> demand(arrays.host_count());
  for (std::size_t h = 0; h < arrays.host_count(); ++h) {
    demand[h] =
        std::clamp(arrays.monitor[h], arrays.min_cap[h], arrays.tdp[h]);
    demand_total += demand[h];
  }

  if (demand_total <= context.system_budget_watts) {
    // Surplus: every host gets exactly its observed demand; the leftover
    // budget is deliberately left unused (that is the "minimized waste" —
    // it shows up as under-utilization in Fig. 7 at the max budget).
    for (std::size_t h = 0; h < arrays.host_count(); ++h) {
      arrays.assigned[h] = demand[h];
    }
    return arrays.to_allocation();
  }

  // Shortage: scale demand uniformly, re-scaling as hosts hit the
  // settable floor.
  double budget = context.system_budget_watts;
  std::vector<bool> floored(arrays.host_count(), false);
  for (int round = 0; round < 64; ++round) {
    double unfloored_demand = 0.0;
    for (std::size_t h = 0; h < arrays.host_count(); ++h) {
      if (!floored[h]) {
        unfloored_demand += demand[h];
      }
    }
    if (unfloored_demand <= 0.0) {
      break;
    }
    const double scale = budget / unfloored_demand;
    bool new_floor = false;
    for (std::size_t h = 0; h < arrays.host_count(); ++h) {
      if (floored[h]) {
        continue;
      }
      const double scaled = demand[h] * scale;
      if (scaled <= arrays.min_cap[h]) {
        arrays.assigned[h] = arrays.min_cap[h];
        floored[h] = true;
        budget -= arrays.min_cap[h];
        new_floor = true;
      } else {
        arrays.assigned[h] = scaled;
      }
    }
    if (!new_floor) {
      break;
    }
  }
  return arrays.to_allocation();
}

rm::PowerAllocation JobAdaptivePolicy::allocate(
    const PolicyContext& context) const {
  HostArrays arrays = HostArrays::from_context(context);
  const double share = context.uniform_share_watts();

  for (std::size_t j = 0; j < arrays.job_count(); ++j) {
    const std::size_t begin = arrays.offsets[j];
    const std::size_t end = arrays.offsets[j + 1];
    const double host_count = static_cast<double>(end - begin);
    // Fixed per-job budget: a uniform share of the system budget, but
    // never below what the hardware floor forces us to allocate.
    double job_budget = share * host_count;

    // Performance-aware distribution within the job.
    double needed_total = 0.0;
    for (std::size_t h = begin; h < end; ++h) {
      arrays.assigned[h] = arrays.needed[h];
      needed_total += arrays.needed[h];
    }

    if (needed_total > job_budget) {
      // Violation: reduce all hosts of the job by the percentage that
      // corrects it (paper Section III-B). Hosts pinned at the settable
      // floor cannot give back their share, so the scale is re-derived
      // until the job fits its budget (or everyone is floored).
      double remaining = job_budget;
      std::vector<bool> floored(end - begin, false);
      for (int round = 0; round < 64; ++round) {
        double unfloored_needed = 0.0;
        for (std::size_t h = begin; h < end; ++h) {
          if (!floored[h - begin]) {
            unfloored_needed += arrays.needed[h];
          }
        }
        if (unfloored_needed <= 0.0) {
          break;
        }
        const double scale = remaining / unfloored_needed;
        bool new_floor = false;
        for (std::size_t h = begin; h < end; ++h) {
          if (floored[h - begin]) {
            continue;
          }
          const double scaled = arrays.needed[h] * scale;
          if (scaled <= arrays.min_cap[h]) {
            arrays.assigned[h] = arrays.min_cap[h];
            floored[h - begin] = true;
            remaining -= arrays.min_cap[h];
            new_floor = true;
          } else {
            arrays.assigned[h] = scaled;
          }
        }
        if (!new_floor) {
          break;
        }
      }
    } else {
      // Remainder stays inside the job: pushed to the hosts that need the
      // most power, weighted by headroom above the settable floor.
      std::vector<std::size_t> hosts(end - begin);
      std::iota(hosts.begin(), hosts.end(), begin);
      static_cast<void>(detail::weighted_headroom_fill(
          arrays, hosts, arrays.tdp, job_budget - needed_total));
    }
  }
  return arrays.to_allocation();
}

rm::PowerAllocation MixedAdaptivePolicy::allocate(
    const PolicyContext& context) const {
  HostArrays arrays = HostArrays::from_context(context);
  detail::mixed_adaptive_steps(arrays, context.system_budget_watts,
                               options_.redistribute_deallocated,
                               options_.distribute_surplus);
  return arrays.to_allocation();
}

rm::PowerAllocation HeteroAdaptivePolicy::allocate(
    const PolicyContext& context) const {
  if (!context.has_gpu_domain()) {
    // Single-domain contexts reduce exactly to the paper's policy.
    return MixedAdaptivePolicy(options_).allocate(context);
  }
  context.validate();

  // Virtual entry layout: job j contributes one segment of CPU-domain
  // entries and, when it spans two domains, a second segment of
  // GPU-domain entries. All entries share one budget, so the four-step
  // fill shifts watts CPU↔GPU toward whichever domain's needed power
  // (bottleneck slack) demands them.
  HostArrays arrays;
  arrays.offsets.push_back(0);
  std::vector<std::size_t> gpu_segment(context.jobs.size());  // 0 = none
  for (std::size_t j = 0; j < context.jobs.size(); ++j) {
    const auto& job = context.jobs[j];
    const double tdp = context.job_tdp_watts(j);
    for (std::size_t h = 0; h < job.host_count; ++h) {
      double observed = job.monitor.host_average_power_watts[h];
      if (job.has_gpu_domain()) {
        // The monitor sees whole-node draw; keep the CPU side here.
        observed =
            std::max(observed - job.host_gpu_observed_watts[h], 0.0);
      }
      arrays.assigned.push_back(0.0);
      arrays.monitor.push_back(observed);
      arrays.needed.push_back(std::clamp(
          job.balancer.host_needed_power_watts[h],
          job.min_settable_cap_watts, tdp));
      arrays.min_cap.push_back(job.min_settable_cap_watts);
      arrays.weight_ref.push_back(job.min_settable_cap_watts -
                                  context.uncappable_watts);
      arrays.tdp.push_back(tdp);
    }
    arrays.offsets.push_back(arrays.assigned.size());
    if (job.has_gpu_domain()) {
      for (std::size_t h = 0; h < job.host_count; ++h) {
        arrays.assigned.push_back(0.0);
        arrays.monitor.push_back(job.host_gpu_observed_watts[h]);
        arrays.needed.push_back(std::clamp(job.host_gpu_needed_watts[h],
                                           job.gpu_min_cap_watts,
                                           job.gpu_tdp_watts));
        arrays.min_cap.push_back(job.gpu_min_cap_watts);
        // The GPU analogue of the package floor: its idle/leakage power
        // sits below the settable minimum the same way the DRAM plane
        // sits below the package floor.
        arrays.weight_ref.push_back(job.gpu_min_cap_watts -
                                    context.uncappable_watts);
        arrays.tdp.push_back(job.gpu_tdp_watts);
      }
      gpu_segment[j] = arrays.assigned.size();
      arrays.offsets.push_back(arrays.assigned.size());
    }
  }

  detail::mixed_adaptive_steps(arrays, context.system_budget_watts,
                               options_.redistribute_deallocated,
                               options_.distribute_surplus);

  // De-interleave the virtual segments back into per-domain caps.
  rm::PowerAllocation allocation;
  allocation.job_host_caps.resize(context.jobs.size());
  allocation.job_host_gpu_caps.resize(context.jobs.size());
  std::size_t segment = 0;
  for (std::size_t j = 0; j < context.jobs.size(); ++j) {
    const std::size_t begin = arrays.offsets[segment];
    const std::size_t end = arrays.offsets[segment + 1];
    allocation.job_host_caps[j].assign(arrays.assigned.begin() + begin,
                                       arrays.assigned.begin() + end);
    ++segment;
    if (gpu_segment[j] != 0) {
      const std::size_t gpu_begin = arrays.offsets[segment];
      allocation.job_host_gpu_caps[j].assign(
          arrays.assigned.begin() + gpu_begin,
          arrays.assigned.begin() + gpu_segment[j]);
      ++segment;
    }
  }
  return allocation;
}

}  // namespace ps::core
