#include "core/policies.hpp"

#include <algorithm>
#include <numeric>

#include "core/policy_util.hpp"
#include "util/error.hpp"

namespace ps::core {

using detail::HostArrays;

namespace {

/// All host indices, used when a fill step spans the whole system.
std::vector<std::size_t> all_hosts(const HostArrays& arrays) {
  std::vector<std::size_t> hosts(arrays.host_count());
  std::iota(hosts.begin(), hosts.end(), std::size_t{0});
  return hosts;
}

}  // namespace

rm::PowerAllocation PrecharacterizedPolicy::allocate(
    const PolicyContext& context) const {
  HostArrays arrays = HostArrays::from_context(context);
  for (std::size_t j = 0; j < arrays.job_count(); ++j) {
    const double job_cap =
        std::clamp(context.jobs[j].monitor.max_host_power_watts,
                   context.jobs[j].min_settable_cap_watts,
                   context.job_tdp_watts(j));
    for (std::size_t h = arrays.offsets[j]; h < arrays.offsets[j + 1]; ++h) {
      arrays.assigned[h] = job_cap;
    }
  }
  return arrays.to_allocation();
}

rm::PowerAllocation StaticCapsPolicy::allocate(
    const PolicyContext& context) const {
  HostArrays arrays = HostArrays::from_context(context);
  const double share = context.uniform_share_watts();
  for (std::size_t j = 0; j < arrays.job_count(); ++j) {
    // Uniform share, clipped at the job's hungriest observed node; the
    // hardware clamps anything below the settable floor up to the floor.
    const double job_cap =
        std::min(share, context.jobs[j].monitor.max_host_power_watts);
    const double cap = std::clamp(job_cap,
                                  context.jobs[j].min_settable_cap_watts,
                                  context.job_tdp_watts(j));
    for (std::size_t h = arrays.offsets[j]; h < arrays.offsets[j + 1]; ++h) {
      arrays.assigned[h] = cap;
    }
  }
  return arrays.to_allocation();
}

rm::PowerAllocation MinimizeWastePolicy::allocate(
    const PolicyContext& context) const {
  HostArrays arrays = HostArrays::from_context(context);

  // Emulates SLURM's real-time reallocation with the observed
  // (performance-agnostic) demand from the monitor characterization:
  // power flows from jobs observed to draw less toward jobs observed to
  // draw more, until every host is capped at the same fraction of its
  // demand. Observed power includes busy-poll waste, which this policy
  // cannot distinguish from useful demand.
  double demand_total = 0.0;
  std::vector<double> demand(arrays.host_count());
  for (std::size_t h = 0; h < arrays.host_count(); ++h) {
    demand[h] =
        std::clamp(arrays.monitor[h], arrays.min_cap[h], arrays.tdp[h]);
    demand_total += demand[h];
  }

  if (demand_total <= context.system_budget_watts) {
    // Surplus: every host gets exactly its observed demand; the leftover
    // budget is deliberately left unused (that is the "minimized waste" —
    // it shows up as under-utilization in Fig. 7 at the max budget).
    for (std::size_t h = 0; h < arrays.host_count(); ++h) {
      arrays.assigned[h] = demand[h];
    }
    return arrays.to_allocation();
  }

  // Shortage: scale demand uniformly, re-scaling as hosts hit the
  // settable floor.
  double budget = context.system_budget_watts;
  std::vector<bool> floored(arrays.host_count(), false);
  for (int round = 0; round < 64; ++round) {
    double unfloored_demand = 0.0;
    for (std::size_t h = 0; h < arrays.host_count(); ++h) {
      if (!floored[h]) {
        unfloored_demand += demand[h];
      }
    }
    if (unfloored_demand <= 0.0) {
      break;
    }
    const double scale = budget / unfloored_demand;
    bool new_floor = false;
    for (std::size_t h = 0; h < arrays.host_count(); ++h) {
      if (floored[h]) {
        continue;
      }
      const double scaled = demand[h] * scale;
      if (scaled <= arrays.min_cap[h]) {
        arrays.assigned[h] = arrays.min_cap[h];
        floored[h] = true;
        budget -= arrays.min_cap[h];
        new_floor = true;
      } else {
        arrays.assigned[h] = scaled;
      }
    }
    if (!new_floor) {
      break;
    }
  }
  return arrays.to_allocation();
}

rm::PowerAllocation JobAdaptivePolicy::allocate(
    const PolicyContext& context) const {
  HostArrays arrays = HostArrays::from_context(context);
  const double share = context.uniform_share_watts();

  for (std::size_t j = 0; j < arrays.job_count(); ++j) {
    const std::size_t begin = arrays.offsets[j];
    const std::size_t end = arrays.offsets[j + 1];
    const double host_count = static_cast<double>(end - begin);
    // Fixed per-job budget: a uniform share of the system budget, but
    // never below what the hardware floor forces us to allocate.
    double job_budget = share * host_count;

    // Performance-aware distribution within the job.
    double needed_total = 0.0;
    for (std::size_t h = begin; h < end; ++h) {
      arrays.assigned[h] = arrays.needed[h];
      needed_total += arrays.needed[h];
    }

    if (needed_total > job_budget) {
      // Violation: reduce all hosts of the job by the percentage that
      // corrects it (paper Section III-B). Hosts pinned at the settable
      // floor cannot give back their share, so the scale is re-derived
      // until the job fits its budget (or everyone is floored).
      double remaining = job_budget;
      std::vector<bool> floored(end - begin, false);
      for (int round = 0; round < 64; ++round) {
        double unfloored_needed = 0.0;
        for (std::size_t h = begin; h < end; ++h) {
          if (!floored[h - begin]) {
            unfloored_needed += arrays.needed[h];
          }
        }
        if (unfloored_needed <= 0.0) {
          break;
        }
        const double scale = remaining / unfloored_needed;
        bool new_floor = false;
        for (std::size_t h = begin; h < end; ++h) {
          if (floored[h - begin]) {
            continue;
          }
          const double scaled = arrays.needed[h] * scale;
          if (scaled <= arrays.min_cap[h]) {
            arrays.assigned[h] = arrays.min_cap[h];
            floored[h - begin] = true;
            remaining -= arrays.min_cap[h];
            new_floor = true;
          } else {
            arrays.assigned[h] = scaled;
          }
        }
        if (!new_floor) {
          break;
        }
      }
    } else {
      // Remainder stays inside the job: pushed to the hosts that need the
      // most power, weighted by headroom above the settable floor.
      std::vector<std::size_t> hosts(end - begin);
      std::iota(hosts.begin(), hosts.end(), begin);
      static_cast<void>(detail::weighted_headroom_fill(
          arrays, hosts, arrays.tdp, job_budget - needed_total));
    }
  }
  return arrays.to_allocation();
}

rm::PowerAllocation MixedAdaptivePolicy::allocate(
    const PolicyContext& context) const {
  HostArrays arrays = HostArrays::from_context(context);
  const double share = context.uniform_share_watts();

  // Step 1: uniform distribution of the system limit among all hosts
  // across all jobs.
  for (std::size_t h = 0; h < arrays.host_count(); ++h) {
    arrays.assigned[h] = std::clamp(share, arrays.min_cap[h], arrays.tdp[h]);
  }

  // Step 2: decrease each host to its needed power (power-balancer
  // pre-characterization); the decreased total becomes the pool.
  double pool = 0.0;
  for (std::size_t h = 0; h < arrays.host_count(); ++h) {
    if (arrays.needed[h] < arrays.assigned[h]) {
      pool += arrays.assigned[h] - arrays.needed[h];
      arrays.assigned[h] = arrays.needed[h];
    }
  }

  // Step 3: uniformly distribute the pool among hosts still below their
  // needed power, repeating until the pool empties or everyone is met.
  if (options_.redistribute_deallocated) {
    pool = detail::uniform_fill_to_target(arrays, arrays.needed, pool);
  }

  // Step 4: surplus goes to all hosts, weighted by the distance from the
  // minimum settable limit to the allocated power.
  if (options_.distribute_surplus && pool > 0.0) {
    const std::vector<std::size_t> hosts = all_hosts(arrays);
    pool = detail::weighted_headroom_fill(arrays, hosts, arrays.tdp, pool);
  }
  return arrays.to_allocation();
}

}  // namespace ps::core
