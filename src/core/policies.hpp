#pragma once

#include "core/policy.hpp"

namespace ps::core {

/// Section III-B: each job is capped at the average power of its most
/// power-hungry node from the monitor characterization. Ignores the system
/// budget entirely — the paper shows it violates all but the max budget.
class PrecharacterizedPolicy final : public Policy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "Precharacterized";
  }
  [[nodiscard]] bool is_system_aware() const noexcept override {
    return false;
  }
  [[nodiscard]] bool is_application_aware() const noexcept override {
    return false;
  }
  [[nodiscard]] rm::PowerAllocation allocate(
      const PolicyContext& context) const override;
};

/// Section III-B: the system budget is uniformly distributed to all nodes;
/// each job's cap is additionally clipped at the max of its monitor-run
/// average node powers. The experiments' baseline.
class StaticCapsPolicy final : public Policy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "StaticCaps";
  }
  [[nodiscard]] bool is_system_aware() const noexcept override {
    return true;
  }
  [[nodiscard]] bool is_application_aware() const noexcept override {
    return false;
  }
  [[nodiscard]] rm::PowerAllocation allocate(
      const PolicyContext& context) const override;
};

/// Section III-B: statically emulates SLURM's dynamic power management.
/// Starts uniform, reclaims budget from hosts observed (performance-
/// agnostically) to use less than their share, and redistributes the
/// surplus to power-bound hosts weighted by their distance from the
/// minimum settable limit. System-aware, application-agnostic.
class MinimizeWastePolicy final : public Policy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "MinimizeWaste";
  }
  [[nodiscard]] bool is_system_aware() const noexcept override {
    return true;
  }
  [[nodiscard]] bool is_application_aware() const noexcept override {
    return false;
  }
  [[nodiscard]] rm::PowerAllocation allocate(
      const PolicyContext& context) const override;
};

/// Section III-B: every job receives a fixed uniform share of the system
/// budget (no cross-job sharing); within each job, power follows the
/// performance-aware balancer characterization, scaled down on violation
/// and with the in-job remainder pushed to the hosts with the most
/// headroom. Application-aware, not full-system-aware.
class JobAdaptivePolicy final : public Policy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "JobAdaptive";
  }
  [[nodiscard]] bool is_system_aware() const noexcept override {
    return false;
  }
  [[nodiscard]] bool is_application_aware() const noexcept override {
    return true;
  }
  [[nodiscard]] rm::PowerAllocation allocate(
      const PolicyContext& context) const override;
};

/// Options for MixedAdaptivePolicy ablations (DESIGN.md Section 5). The
/// paper's policy enables both steps.
struct MixedAdaptiveOptions {
  bool redistribute_deallocated = true;  ///< Paper step 3.
  bool distribute_surplus = true;        ///< Paper step 4.
};

/// Section III-A: the paper's proposed policy. Four steps: (1) uniform
/// distribution over all hosts of all jobs; (2) trim every host to its
/// balancer-characterized needed power, pooling the deallocated watts;
/// (3) uniformly re-fill under-provisioned hosts up to their needed power
/// until the pool empties; (4) distribute any remaining surplus across all
/// hosts weighted by distance from the minimum settable limit.
/// System-aware and application-aware.
class MixedAdaptivePolicy final : public Policy {
 public:
  MixedAdaptivePolicy() = default;
  explicit MixedAdaptivePolicy(const MixedAdaptiveOptions& options)
      : options_(options) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "MixedAdaptive";
  }
  [[nodiscard]] bool is_system_aware() const noexcept override {
    return true;
  }
  [[nodiscard]] bool is_application_aware() const noexcept override {
    return true;
  }
  [[nodiscard]] rm::PowerAllocation allocate(
      const PolicyContext& context) const override;

  [[nodiscard]] const MixedAdaptiveOptions& options() const noexcept {
    return options_;
  }

 private:
  MixedAdaptiveOptions options_{};
};

/// Heterogeneous extension of MixedAdaptive (EcoShift-style CPU↔GPU
/// shifting): each GPU-equipped host contributes a second, independently
/// capped entry to the same four-step fill, so watts flow between the CPU
/// and GPU domains of the one node budget toward whichever domain's
/// balancer-characterized "needed" power (its bottleneck slack) demands
/// them. On a CPU-only context the virtual arrays degenerate to
/// MixedAdaptive's and the allocation is identical.
class HeteroAdaptivePolicy final : public Policy {
 public:
  HeteroAdaptivePolicy() = default;
  explicit HeteroAdaptivePolicy(const MixedAdaptiveOptions& options)
      : options_(options) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "HeteroAdaptive";
  }
  [[nodiscard]] bool is_system_aware() const noexcept override {
    return true;
  }
  [[nodiscard]] bool is_application_aware() const noexcept override {
    return true;
  }
  [[nodiscard]] rm::PowerAllocation allocate(
      const PolicyContext& context) const override;

 private:
  MixedAdaptiveOptions options_{};
};

}  // namespace ps::core
