#pragma once

#include <string_view>
#include <vector>

#include "runtime/characterization.hpp"

namespace ps::core {

/// The three degrees of over-provisioning evaluated per mix (Table III).
enum class BudgetLevel { kMin, kIdeal, kMax };

[[nodiscard]] std::string_view to_string(BudgetLevel level) noexcept;
[[nodiscard]] std::vector<BudgetLevel> all_budget_levels();

/// System-wide power budgets for one workload mix (paper Table III).
struct PowerBudgets {
  double min_watts = 0.0;    ///< Aggressive over-provisioning.
  double ideal_watts = 0.0;  ///< Exactly the performance-aware demand.
  double max_watts = 0.0;    ///< Conservative over-provisioning.

  [[nodiscard]] double at(BudgetLevel level) const;
};

/// Derives the budgets from characterization data (paper Section V-C):
///  - min:   every node gets the smallest per-node power any workload in
///           the mix needs (balancer characterization);
///  - ideal: the sum over all hosts of their needed power;
///  - max:   every node gets the largest per-node power any workload in
///           the mix consumes uncapped (monitor characterization).
[[nodiscard]] PowerBudgets select_budgets(
    const std::vector<runtime::JobCharacterization>& jobs);

}  // namespace ps::core
