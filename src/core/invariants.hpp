#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace ps::core::invariants {

/// How a tripped invariant is reported. `kFatal` throws ps::InvalidState
/// at the check site (what CI runs); `kCount` records it and continues
/// (what a production site runs — power management must degrade, not
/// crash the resource manager). The initial mode comes from the
/// PS_INVARIANTS environment variable ("fatal" / "count"), default count.
enum class Mode { kCount, kFatal };

[[nodiscard]] Mode mode() noexcept;
void set_mode(Mode mode) noexcept;

struct Stats {
  std::uint64_t checks = 0;
  std::uint64_t violations = 0;
};

[[nodiscard]] Stats stats() noexcept;
/// The message of the most recent violation ("" when none tripped).
[[nodiscard]] std::string last_violation();
void reset() noexcept;

/// The primitive every named check funnels through: counts the check,
/// and on failure either throws (kFatal) or records and returns.
void check(bool ok, std::string_view what);

/// Σ programmed caps must fit the system budget plus the RAPL
/// quantization tolerance (0.5 W per host).
void check_caps_fit_budget(double total_caps_watts, double budget_watts,
                           std::size_t host_count, std::string_view where);

/// floor <= cap <= job TDP, each side with `tolerance_watts` slack.
void check_cap_bounds(double cap_watts, double floor_watts,
                      double tdp_watts, double tolerance_watts,
                      std::string_view where);

/// Renegotiation epochs are strictly monotone.
void check_epoch_monotone(std::uint64_t previous_epoch,
                          std::uint64_t next_epoch, std::string_view where);

/// Watt conservation on reclaim: the watts a departing job frees plus
/// the watts still programmed must equal the pre-reclaim total.
void check_watts_conserved(double before_watts, double freed_watts,
                           double after_watts, double tolerance_watts,
                           std::string_view where);

/// One job's allocation seen through the multi-tenant degradation lens.
/// `rank` is sim::sla_rank of the job's class (0 sheds first);
/// `guaranteed_watts` is the job's performance-preserving demand
/// (needed caps, never below its floors).
struct ClassAllocationView {
  std::size_t rank = 0;
  double allocated_watts = 0.0;
  double floor_watts = 0.0;
  double guaranteed_watts = 0.0;
  double tolerance_watts = 0.0;  ///< RAPL quantization slack for the job.
};

/// Per-class budget conservation: the class sums must add up to the
/// programmed total (degradation re-divides watts, never mints them) and
/// the total must fit max(budget, floors) plus the RAPL tolerance.
void check_class_budget_conserved(std::span<const ClassAllocationView> jobs,
                                  double total_caps_watts,
                                  double budget_watts,
                                  std::string_view where);

/// No class inversion: a job starved below its guaranteed watts may only
/// coexist with *lower*-class jobs that sit at their floors — a lower
/// class must never hold discretionary watts a higher class needs.
void check_no_class_inversion(std::span<const ClassAllocationView> jobs,
                              std::string_view where);

}  // namespace ps::core::invariants
