#include "core/mixes.hpp"

#include <span>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ps::core {

namespace {

using hw::VectorWidth;
using kernel::WorkloadConfig;

WorkloadConfig balanced(double intensity,
                        VectorWidth width = VectorWidth::kYmm256) {
  WorkloadConfig config;
  config.intensity = intensity;
  config.vector_width = width;
  return config;
}

WorkloadConfig imbalanced(double intensity, double waiting_percent,
                          double imbalance,
                          VectorWidth width = VectorWidth::kYmm256) {
  WorkloadConfig config;
  config.intensity = intensity;
  config.vector_width = width;
  config.waiting_fraction = waiting_percent / 100.0;
  config.imbalance = imbalance;
  return config;
}

std::vector<rm::JobRequest> to_jobs(std::span<const WorkloadConfig> configs,
                                    std::size_t nodes_per_job) {
  std::vector<rm::JobRequest> jobs;
  jobs.reserve(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    rm::JobRequest job;
    job.name = "job" + std::to_string(i) + "-" + configs[i].name();
    job.workload = configs[i];
    job.node_count = nodes_per_job;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

}  // namespace

std::string_view to_string(MixKind kind) noexcept {
  switch (kind) {
    case MixKind::kNeedUsedPower:
      return "NeedUsedPower";
    case MixKind::kHighImbalance:
      return "HighImbalance";
    case MixKind::kWastefulPower:
      return "WastefulPower";
    case MixKind::kLowPower:
      return "LowPower";
    case MixKind::kHighPower:
      return "HighPower";
    case MixKind::kRandomLarge:
      return "RandomLarge";
  }
  return "?";
}

std::vector<MixKind> all_mix_kinds() {
  return {MixKind::kNeedUsedPower, MixKind::kHighImbalance,
          MixKind::kWastefulPower, MixKind::kLowPower, MixKind::kHighPower,
          MixKind::kRandomLarge};
}

std::size_t WorkloadMix::total_nodes() const {
  std::size_t total = 0;
  for (const auto& job : jobs) {
    total += job.node_count;
  }
  return total;
}

std::vector<kernel::WorkloadConfig> heatmap_grid(hw::VectorWidth width) {
  const double intensities[] = {0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0};
  struct ImbalanceColumn {
    double waiting_percent;
    double imbalance;
  };
  const ImbalanceColumn columns[] = {{0, 1},  {25, 2}, {25, 3}, {50, 2},
                                     {50, 3}, {75, 2}, {75, 3}};
  std::vector<WorkloadConfig> grid;
  grid.reserve(std::size(intensities) * std::size(columns));
  for (double intensity : intensities) {
    for (const auto& column : columns) {
      grid.push_back(imbalanced(intensity, column.waiting_percent,
                                column.imbalance, width));
    }
  }
  return grid;
}

WorkloadMix make_mix(MixKind kind, std::size_t nodes_per_job,
                     std::uint64_t seed) {
  PS_REQUIRE(nodes_per_job > 0, "nodes per job must be positive");
  WorkloadMix mix;
  mix.name = std::string(to_string(kind));
  switch (kind) {
    case MixKind::kNeedUsedPower: {
      // Balanced jobs spanning low average power (memory-bound) up to one
      // high-compute-intensity job; all consumed power is needed.
      const WorkloadConfig configs[] = {
          balanced(0.0),  balanced(0.25), balanced(0.5),
          balanced(1.0),  balanced(2.0),  balanced(0.25),
          balanced(0.5),  balanced(16.0), balanced(32.0),
      };
      mix.jobs = to_jobs(configs, nodes_per_job);
      break;
    }
    case MixKind::kHighImbalance: {
      // A single, highly imbalanced job across all nodes.
      const WorkloadConfig configs[] = {
          imbalanced(16.0, 25, 3),
      };
      mix.jobs = to_jobs(configs, nodes_per_job * 9);
      break;
    }
    case MixKind::kWastefulPower: {
      // Jobs whose unconstrained power (polling at barriers) far exceeds
      // the power they need when balanced, plus compute-bound jobs that
      // can absorb the reclaimed surplus.
      const WorkloadConfig configs[] = {
          imbalanced(8.0, 75, 3),  imbalanced(16.0, 75, 3),
          imbalanced(8.0, 50, 2),  imbalanced(4.0, 50, 3),
          imbalanced(16.0, 50, 2), balanced(32.0),
          balanced(8.0),           imbalanced(2.0, 75, 2),
          balanced(4.0),
      };
      mix.jobs = to_jobs(configs, nodes_per_job);
      break;
    }
    case MixKind::kLowPower: {
      // The nine lowest *uncapped* power configurations: memory-bound
      // intensities and narrow vector widths. Uncapped power is largely
      // insensitive to imbalance (Fig. 4), so imbalanced variants belong
      // here too — which is why the paper's Table III shows a near-floor
      // min budget (138 kW) even for this mix.
      const WorkloadConfig configs[] = {
          balanced(0.0, VectorWidth::kScalar),
          balanced(0.0, VectorWidth::kXmm128),
          imbalanced(0.25, 50, 2, VectorWidth::kScalar),
          imbalanced(0.25, 25, 2, VectorWidth::kXmm128),
          balanced(0.5, VectorWidth::kScalar),
          imbalanced(0.5, 50, 3, VectorWidth::kXmm128),
          balanced(1.0, VectorWidth::kScalar),
          imbalanced(0.25, 25, 3, VectorWidth::kYmm256),
          balanced(0.5, VectorWidth::kYmm256),
      };
      mix.jobs = to_jobs(configs, nodes_per_job);
      break;
    }
    case MixKind::kHighPower: {
      // The nine highest *uncapped* power configurations: near the
      // roofline ridge where both pipelines saturate, across the
      // imbalance columns (Fig. 4's power peak is insensitive to
      // imbalance, so the hungriest configs include imbalanced ones —
      // consistent with Table III's near-floor min budget of 140 kW).
      const WorkloadConfig configs[] = {
          balanced(8.0),           imbalanced(8.0, 25, 2),
          imbalanced(8.0, 25, 3),  imbalanced(8.0, 50, 2),
          imbalanced(8.0, 50, 3),  imbalanced(8.0, 75, 2),
          imbalanced(8.0, 75, 3),  balanced(16.0),
          balanced(4.0),
      };
      mix.jobs = to_jobs(configs, nodes_per_job);
      break;
    }
    case MixKind::kRandomLarge: {
      // Nine jobs from a seeded shuffle of the heatmap grid (plus the xmm
      // variants the paper's Table II includes).
      std::vector<WorkloadConfig> pool = heatmap_grid(VectorWidth::kYmm256);
      const std::vector<WorkloadConfig> xmm_pool =
          heatmap_grid(VectorWidth::kXmm128);
      pool.insert(pool.end(), xmm_pool.begin(), xmm_pool.end());
      util::Rng rng(seed);
      rng.shuffle(std::span<WorkloadConfig>(pool));
      pool.resize(9);
      mix.jobs = to_jobs(pool, nodes_per_job);
      break;
    }
  }
  PS_CHECK_STATE(!mix.jobs.empty(), "mix construction produced no jobs");
  return mix;
}

std::vector<WorkloadMix> all_paper_mixes(std::size_t nodes_per_job,
                                         std::uint64_t seed) {
  std::vector<WorkloadMix> mixes;
  for (MixKind kind : all_mix_kinds()) {
    mixes.push_back(make_mix(kind, nodes_per_job, seed));
  }
  return mixes;
}

}  // namespace ps::core
