#include "core/budget.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ps::core {

std::string_view to_string(BudgetLevel level) noexcept {
  switch (level) {
    case BudgetLevel::kMin:
      return "min";
    case BudgetLevel::kIdeal:
      return "ideal";
    case BudgetLevel::kMax:
      return "max";
  }
  return "?";
}

std::vector<BudgetLevel> all_budget_levels() {
  return {BudgetLevel::kMin, BudgetLevel::kIdeal, BudgetLevel::kMax};
}

double PowerBudgets::at(BudgetLevel level) const {
  switch (level) {
    case BudgetLevel::kMin:
      return min_watts;
    case BudgetLevel::kIdeal:
      return ideal_watts;
    case BudgetLevel::kMax:
      return max_watts;
  }
  throw InvalidArgument("unknown budget level");
}

PowerBudgets select_budgets(
    const std::vector<runtime::JobCharacterization>& jobs) {
  PS_REQUIRE(!jobs.empty(), "budget selection needs at least one job");
  std::size_t total_hosts = 0;
  double min_needed_node = jobs.front().balancer.min_host_needed_watts;
  double max_monitor_node = jobs.front().monitor.max_host_power_watts;
  double ideal_total = 0.0;
  for (const auto& job : jobs) {
    PS_REQUIRE(job.host_count > 0, "job needs at least one host");
    total_hosts += job.host_count;
    min_needed_node =
        std::min(min_needed_node, job.balancer.min_host_needed_watts);
    max_monitor_node =
        std::max(max_monitor_node, job.monitor.max_host_power_watts);
    ideal_total += job.total_needed_power();
  }
  PowerBudgets budgets;
  // The 2.5% margin keeps the min level just inside "the power capping
  // region within which policies produce different power allocations"
  // (paper Section V-C): measured per-node minima sit slightly above the
  // balancer's programmed floor (cap quantization, DRAM fluctuation,
  // run-to-run variance). With the margin, the derived budgets land on
  // the paper's Table III values (e.g. NeedUsedPower 167 kW, HighPower
  // 140 kW at 900 nodes).
  constexpr double kMinBudgetMargin = 1.025;
  budgets.min_watts =
      min_needed_node * kMinBudgetMargin * static_cast<double>(total_hosts);
  budgets.ideal_watts = ideal_total;
  budgets.max_watts = max_monitor_node * static_cast<double>(total_hosts);
  return budgets;
}

}  // namespace ps::core
