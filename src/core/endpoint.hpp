#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/policy.hpp"
#include "rm/allocation.hpp"
#include "sim/job_sim.hpp"

namespace ps::core {

/// Runtime -> RM telemetry message: everything the policies need to know
/// about one running job. The paper's conclusion notes that "there is not
/// currently an existing protocol or central mechanism for coordinating
/// power management decisions" — this header defines one, and the tests
/// prove it carries enough information to reproduce the coordinated
/// allocation exactly.
struct SampleMessage {
  std::uint64_t sequence = 0;
  std::string job_name;
  double min_settable_cap_watts = 0.0;
  std::vector<double> host_observed_watts;  ///< Demand estimate per host.
  std::vector<double> host_needed_watts;    ///< Balancer-needed per host.

  /// GPU-domain telemetry (wire v3). Empty vectors = a single-domain job
  /// (the message serializes as v1, byte-identical to pre-hetero peers).
  std::vector<double> host_gpu_observed_watts;
  std::vector<double> host_gpu_needed_watts;
  double gpu_min_cap_watts = 0.0;  ///< Per-host GPU-domain settable floor.
  double gpu_tdp_watts = 0.0;      ///< Per-host GPU-domain TDP.

  /// Multi-tenant service class. kStandard (the default) serializes as
  /// the line's absence, keeping single-tenant traffic byte-identical to
  /// the pre-SLA wire — the same discipline as budget_epoch.
  sim::SlaClass sla_class = sim::SlaClass::kStandard;

  [[nodiscard]] bool has_gpu_domain() const noexcept {
    return !host_gpu_needed_watts.empty();
  }
  [[nodiscard]] bool operator==(const SampleMessage&) const = default;
};

/// RM -> runtime control message: the caps one job must program.
/// `budget_epoch` tags the caps with the budget renegotiation epoch they
/// were computed under (0 = the construction-time budget, the v1 wire
/// form). A client that has heard a newer epoch rejects older-tagged
/// caps as stale — they would overspend a budget that has since shrunk.
struct PolicyMessage {
  std::uint64_t sequence = 0;
  std::string job_name;
  std::vector<double> host_caps_watts;
  /// GPU-domain caps (wire v3). Empty = single-domain (v1 bytes on the
  /// wire); otherwise one GPU cap per host.
  std::vector<double> host_gpu_caps_watts;
  std::uint64_t budget_epoch = 0;
  /// Fencing epoch of the daemon incarnation that computed the caps
  /// (0 = a daemon that has never failed over — the line is absent on
  /// the wire, keeping single-daemon traffic byte-identical). A promoted
  /// standby runs at its predecessor's fence + 1; clients ratchet the
  /// highest fence ever heard and reject lower-fenced caps as the output
  /// of a fenced zombie primary — the same discipline as budget_epoch,
  /// but spanning daemon incarnations instead of budget renegotiations.
  std::uint64_t fence_epoch = 0;

  [[nodiscard]] bool has_gpu_domain() const noexcept {
    return !host_gpu_caps_watts.empty();
  }
  [[nodiscard]] bool operator==(const PolicyMessage&) const = default;
};

/// RM -> runtime budget-revision push: the daemon announces a
/// renegotiated system budget to every live client. Clients use it to
/// advance their session budget epoch (and so to reject caps computed
/// under superseded budgets); `emergency` marks a brownout-scale drop.
struct BudgetMessage {
  std::uint64_t epoch = 0;        ///< Renegotiation epoch (monotone).
  double budget_watts = 0.0;      ///< The revised system budget.
  bool emergency = false;

  [[nodiscard]] bool operator==(const BudgetMessage&) const = default;
};

/// Aggregator -> root telemetry: one rack's whole round in a single
/// frame. The per-rack AggregatorDaemon terminates its clients' sessions
/// and batches every local job's newest sample upward, so the root sees
/// one frame per rack per round instead of one per job — the RPC-batching
/// shape that lets a two-level tree reach 10k+ clients.
struct RackSampleMessage {
  std::string rack;                    ///< Rack name (single token).
  std::uint64_t round = 0;             ///< max sample sequence in the batch.
  std::vector<SampleMessage> samples;  ///< Name-ordered, names unique.

  [[nodiscard]] bool operator==(const RackSampleMessage&) const = default;
};

/// Root -> aggregator control: the renegotiated rack budget plus every
/// rack job's caps, batched into one frame per rack per round. The rack
/// budget is the sum of the embedded policies' caps — the root
/// renegotiates it each epoch simply by re-running the global allocation,
/// so sharding changes the fan-out topology but not a single watt.
/// Epoch semantics ride inside the embedded PolicyMessages (budget_epoch
/// and fence lines), exactly as on the flat wire.
struct RackPolicyMessage {
  std::string rack;
  std::uint64_t round = 0;             ///< max policy sequence in the batch.
  double rack_budget_watts = 0.0;      ///< Sum of embedded policy caps.
  std::vector<PolicyMessage> policies; ///< Name-ordered, names unique.

  [[nodiscard]] bool operator==(const RackPolicyMessage&) const = default;
};

/// Numeric fidelity of the serialized form — a writer-side knob; the v1
/// grammar never fixed the decimal count, so both render as valid v1.
/// `kDisplay` renders watts at milliwatt precision (the human-readable
/// archival format). `kExact` renders every double as its shortest
/// round-tripping decimal, so a value survives the wire bit-for-bit —
/// what the live daemon transport uses, and the reason a distributed
/// allocation can equal the in-memory one watt-for-watt.
enum class WireFidelity { kDisplay, kExact };

/// Line-based wire format (versioned, human-readable):
///
///   powerstack-sample v1
///   sequence 7
///   job lulesh-512
///   min_cap 152.000
///   observed 214.125 220.000 ...
///   needed 152.000 195.750 ...
///
/// Multi-domain (heterogeneous) jobs use the v3 form, which appends the
/// GPU domain after the v1 lines in a fixed order (v2 is skipped so the
/// protocol family shares the snapshot format's version numbering):
///
///   powerstack-sample v3
///   ...the six v1 lines...
///   gpu_min_cap 100.000
///   gpu_tdp 300.000
///   gpu_observed 245.000 ...
///   gpu_needed 187.500 ...
///
/// Single-domain messages serialize as v1, byte-identical to the
/// pre-hetero wire — the same discipline as the budget_epoch tag.
///
/// A non-standard SLA class appends one optional trailing line after the
/// domain sections (`sla_class best_effort` / `sla_class
/// latency_critical`); kStandard is the line's absence, so single-tenant
/// traffic stays byte-identical to the pre-SLA wire.
///
/// Parsers throw ps::InvalidArgument on malformed input: truncated
/// messages, non-numeric fields, negative or non-finite watts, duplicate
/// or out-of-order domain lines, and mismatched vector lengths.
[[nodiscard]] std::string serialize(const SampleMessage& message,
                                    WireFidelity fidelity =
                                        WireFidelity::kDisplay);
/// PolicyMessage serializes as the 4-line v1 form when budget_epoch is 0
/// and gains a fifth `budget_epoch` line otherwise; the parser accepts
/// both, so pre-dynamic-budget peers interoperate unchanged. With GPU
/// caps present it becomes v3: a `gpu_caps` line follows `caps`. The
/// optional trailing lines keep a fixed order — `budget_epoch` then
/// `fence` — and each is present exactly when its field is non-zero, so
/// a message from a never-failed-over daemon under a never-revised
/// budget is byte-identical to the original v1 wire.
[[nodiscard]] std::string serialize(const PolicyMessage& message,
                                    WireFidelity fidelity =
                                        WireFidelity::kDisplay);
[[nodiscard]] std::string serialize(const BudgetMessage& message,
                                    WireFidelity fidelity =
                                        WireFidelity::kDisplay);
/// Rack-aggregate wire form (v1): a header block followed by one
/// length-prefixed embedded message per job, in job-name order:
///
///   powerstack-rack-sample v1
///   rack r04
///   round 7
///   jobs 2
///   sample 6
///   ...the 6 non-empty lines of an embedded powerstack-sample...
///   sample 6
///   ...
///
/// Each `sample N` / `policy N` prefix states how many non-empty lines
/// the embedded message occupies, so the parser can delimit blocks
/// without re-deriving version-specific line counts — the embedded
/// blocks are handed to the ordinary sample/policy parsers and inherit
/// all of their strictness. The rack-policy form inserts a
/// `rack_budget <watts>` line between `round` and `jobs`. Parsers throw
/// ps::InvalidArgument on torn frames (block counts that overrun the
/// payload), job counts that disagree with the block count, duplicate or
/// out-of-name-order jobs, and a `round` that is not the max embedded
/// sequence.
[[nodiscard]] std::string serialize(const RackSampleMessage& message,
                                    WireFidelity fidelity =
                                        WireFidelity::kDisplay);
[[nodiscard]] std::string serialize(const RackPolicyMessage& message,
                                    WireFidelity fidelity =
                                        WireFidelity::kDisplay);
[[nodiscard]] SampleMessage parse_sample_message(std::string_view text);
[[nodiscard]] PolicyMessage parse_policy_message(std::string_view text);
[[nodiscard]] BudgetMessage parse_budget_message(std::string_view text);
[[nodiscard]] RackSampleMessage parse_rack_sample_message(
    std::string_view text);
[[nodiscard]] RackPolicyMessage parse_rack_policy_message(
    std::string_view text);

/// What kind of wire message a frame holds, judged by its header line
/// only (so a receiver can dispatch before committing to a full parse).
enum class WireMessageKind {
  kSample,
  kPolicy,
  kBudget,
  kRackSample,
  kRackPolicy,
  kUnknown
};
[[nodiscard]] WireMessageKind wire_message_kind(std::string_view text);

/// Keeps the newest sample from one producer, enforcing the sequence
/// contract the resource-manager daemon relies on: stale or out-of-order
/// sequence numbers are ignored, the newest sequence wins, and offering a
/// duplicate sequence is idempotent. A sample is "fresh" until consumed,
/// which is how an allocation barrier knows every job has reported since
/// the last epoch.
class SampleLatch {
 public:
  /// Accepts `message` iff it is the first sample seen or its sequence is
  /// strictly newer than the held one. Returns whether it was accepted.
  bool offer(SampleMessage message);

  [[nodiscard]] const std::optional<SampleMessage>& latest() const noexcept {
    return latest_;
  }
  /// True if the held sample has not been consumed yet.
  [[nodiscard]] bool has_fresh() const noexcept { return fresh_; }
  /// Marks the held sample consumed and returns it. Throws
  /// ps::InvalidState when no sample was ever offered.
  const SampleMessage& consume();

 private:
  std::optional<SampleMessage> latest_;
  bool fresh_ = false;
};

/// A bidirectional in-memory endpoint (the GEOPM "endpoint" analogue:
/// in reality a shared-memory region between the RM daemon and the job
/// runtime). Samples flow runtime -> RM; policies flow RM -> runtime.
/// Messages cross the endpoint in serialized form, so anything that
/// round-trips here round-trips any byte transport.
class Endpoint {
 public:
  void post_sample(const SampleMessage& message);
  [[nodiscard]] std::optional<SampleMessage> receive_sample();
  void post_policy(const PolicyMessage& message);
  [[nodiscard]] std::optional<PolicyMessage> receive_policy();

  [[nodiscard]] std::size_t pending_samples() const noexcept {
    return samples_.size();
  }
  [[nodiscard]] std::size_t pending_policies() const noexcept {
    return policies_.size();
  }

 private:
  std::deque<std::string> samples_;
  std::deque<std::string> policies_;
};

/// Runtime side: measures one job into a SampleMessage (observed power
/// from its last iteration; needed power from the balancer search).
[[nodiscard]] SampleMessage make_sample(sim::JobSimulation& job,
                                        std::uint64_t sequence);

/// RM side: reconstructs a PolicyContext from received samples.
[[nodiscard]] PolicyContext context_from_samples(
    double system_budget_watts, double node_tdp_watts,
    double uncappable_watts, const std::vector<SampleMessage>& samples);

/// RM side: splits an allocation into one PolicyMessage per job, each
/// tagged with the budget renegotiation epoch it was computed under.
[[nodiscard]] std::vector<PolicyMessage> make_policy_messages(
    const rm::PowerAllocation& allocation,
    const std::vector<SampleMessage>& samples, std::uint64_t sequence,
    std::uint64_t budget_epoch = 0);

/// Runtime side: programs the caps a PolicyMessage carries. Throws
/// ps::InvalidArgument if the message does not match the job.
void apply_policy_message(sim::JobSimulation& job,
                          const PolicyMessage& message);

}  // namespace ps::core
