#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/budget_governor.hpp"
#include "core/policy.hpp"
#include "obs/obs.hpp"
#include "rm/power_manager.hpp"
#include "runtime/power_balancer_agent.hpp"
#include "sim/failures.hpp"
#include "sim/job_sim.hpp"

namespace ps::core {

/// Knobs of the execution-time coordination protocol.
struct CoordinationOptions {
  /// Iterations between RM re-allocations.
  std::size_t epoch_iterations = 5;
  /// The policy the RM re-runs each epoch.
  PolicyKind policy = PolicyKind::kMixedAdaptive;
  /// Cap movement (watts, max over hosts) below which the loop is
  /// considered converged.
  double convergence_watts = 1.0;
  runtime::BalancerOptions balancer{};
  /// Observability seam. With a trace sink attached the loop emits the
  /// "coord" event stream (revision/failure/caps/epoch/reclaim events on
  /// the epoch logical clock — deterministic for a seeded run); with a
  /// metrics registry, the RM instruments register under "rm.*". Inert
  /// by default.
  obs::Observability obs{};
};

/// One epoch's record in the coordination telemetry.
struct EpochRecord {
  std::size_t epoch = 0;
  double allocated_watts = 0.0;
  double system_power_watts = 0.0;   ///< Mean draw during the epoch.
  double elapsed_seconds = 0.0;      ///< Max job elapsed time this epoch.
  double energy_joules = 0.0;
  double max_cap_change_watts = 0.0; ///< Largest per-host cap move.
  double budget_watts = 0.0;         ///< Budget in force during the epoch.
  std::uint64_t budget_epoch = 0;    ///< Renegotiation epoch in force.
  bool emergency_clamped = false;    ///< RM step took the clamp path.
};

/// One node failure's reclamation trace: when the failure was applied,
/// and when the policy had squeezed the dead host down to the settable
/// floor (everything above the floor is back in the pool).
struct ReclaimRecord {
  std::size_t event_epoch = 0;
  std::size_t job = 0;
  std::size_t host = 0;
  bool reclaimed = false;
  std::size_t reclaim_epoch = 0;
  double watts_reclaimed = 0.0;  ///< Pre-failure cap minus the floor cap.
};

/// Telemetry for a failure-aware run.
struct FailureTelemetry {
  std::vector<ReclaimRecord> reclaims;
  /// Epochs where the policy output exceeded the budget and was skipped
  /// (last caps were kept instead). Empty on a healthy run.
  std::vector<std::size_t> budget_violation_epochs;
  std::size_t events_applied = 0;

  /// Mean epochs from node failure to full reclamation (only over
  /// failures that did reclaim).
  [[nodiscard]] double mean_epochs_to_reclaim() const;
};

/// Telemetry for a dynamic-budget run.
struct BudgetTelemetry {
  std::size_t revisions_applied = 0;
  std::size_t revisions_stale = 0;    ///< Rejected: epoch did not advance.
  std::size_t emergency_clamps = 0;   ///< RM steps that took the clamp path.
  /// Loop epochs whose programmed caps exceeded the (just-revised)
  /// budget — each is one control period of bounded excursion.
  std::vector<std::size_t> excursion_epochs;
  rm::ExcursionTelemetry excursions;  ///< Integral / time-to-safe account.
  double final_budget_watts = 0.0;
  std::uint64_t final_budget_epoch = 0;
};

/// Outcome of a coordinated run.
struct CoordinationResult {
  std::vector<EpochRecord> epochs;
  double elapsed_seconds = 0.0;  ///< Sum over epochs of the epoch max.
  double energy_joules = 0.0;
  double total_gflop = 0.0;
  bool converged = false;
  std::size_t convergence_epoch = 0;  ///< First epoch below the threshold.

  [[nodiscard]] double gflops_per_watt() const;
};

/// The paper's proposed-but-unbuilt protocol (Section VIII): instead of
/// pre-characterizing workloads offline, the resource manager and the job
/// runtime exchange information *during execution*. Every epoch:
///
///   1. each job's runtime reports live telemetry: the observed per-host
///      power (a running demand estimate) and the per-host needed power
///      (re-derived by the balancer's search under the job's current
///      conditions);
///   2. the RM re-runs the configured policy on that live data and
///      reprograms the caps, subject to the system budget.
///
/// Starting from a uniform distribution, the loop converges to the same
/// steady state the pre-characterized policy computes — and unlike the
/// static emulation, it re-converges when jobs change phase.
class CoordinationLoop {
 public:
  CoordinationLoop(double system_budget_watts,
                   const CoordinationOptions& options = {});

  /// Runs `total_iterations` bulk-synchronous iterations on every job
  /// (jobs proceed in lockstep epochs). Jobs must outlive the call.
  CoordinationResult run(std::span<sim::JobSimulation* const> jobs,
                         std::size_t total_iterations);

  /// Like run(), but applies `events` at the start of their epochs: node
  /// failures zero the dead host's telemetry (the policy then squeezes
  /// it to the floor, redistributing the freed watts to the survivors),
  /// stragglers stretch a host's busy time until recovery. Telemetry —
  /// time-to-reclaim per failure, budget-violation epochs — lands in
  /// `telemetry` when non-null. Events must be sorted by epoch.
  CoordinationResult run_with_failures(
      std::span<sim::JobSimulation* const> jobs,
      std::size_t total_iterations,
      std::span<const sim::FailureEvent> events,
      FailureTelemetry* telemetry = nullptr);

  /// The full protocol: failures AND budget revisions replay together.
  /// Each revision is adopted at the start of its `at_epoch` (stale
  /// epochs rejected); the caps programmed at the previous RM step keep
  /// running for that one epoch — the bounded excursion — and the RM
  /// step at the epoch's end re-allocates under the revised budget,
  /// falling back to the emergency clamp when the policy output and the
  /// last caps both exceed it. Invariants (Σcaps ≤ budget + tolerance,
  /// cap bounds, epoch monotonicity, watt conservation on reclaim) are
  /// checked every epoch via core::invariants. `revisions` must be
  /// sorted by `at_epoch`. After the run, budget_watts() reflects the
  /// last adopted revision.
  CoordinationResult run_dynamic(
      std::span<sim::JobSimulation* const> jobs,
      std::size_t total_iterations,
      std::span<const sim::FailureEvent> events,
      std::span<const BudgetRevision> revisions,
      FailureTelemetry* failure_telemetry = nullptr,
      BudgetTelemetry* budget_telemetry = nullptr);

  [[nodiscard]] double budget_watts() const noexcept { return budget_; }
  [[nodiscard]] const CoordinationOptions& options() const noexcept {
    return options_;
  }

 private:
  /// Live stand-in for the offline characterization of one job.
  struct LiveCharacterization {
    std::vector<double> demand_watts;  ///< Running max of observed power.
    /// Running max of observed GPU-domain power; empty for CPU-only jobs.
    std::vector<double> gpu_demand_watts;
  };

  [[nodiscard]] PolicyContext build_context(
      std::span<sim::JobSimulation* const> jobs);

  double budget_;
  CoordinationOptions options_;
  std::vector<LiveCharacterization> live_;
};

}  // namespace ps::core
