#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace ps::sim {
struct FacilityTrace;
}

namespace ps::core {

/// One renegotiated system budget, as pushed down the RM -> runtime
/// hierarchy. `epoch` is the renegotiation epoch: strictly monotone, so
/// every layer can reject caps computed under a superseded budget, and a
/// restarted daemon can prove its snapshot is not older than what the
/// clients already heard.
struct BudgetRevision {
  std::uint64_t epoch = 0;      ///< Renegotiation epoch (strictly monotone).
  double budget_watts = 0.0;    ///< The revised system budget.
  /// Coordination epoch (loop epoch / daemon sample sequence) at which
  /// the revision takes effect, for pre-computed schedules.
  std::size_t at_epoch = 0;
  /// Set when the drop was large enough to demand an immediate clamp
  /// rather than waiting for the next allocation round.
  bool emergency = false;

  [[nodiscard]] bool operator==(const BudgetRevision&) const = default;
};

/// Knobs of the budget governor (Fig. 1's moving envelope turned into a
/// control signal the stack can actually follow).
struct BudgetGovernorOptions {
  /// Signal moves smaller than this never produce a revision — metering
  /// noise must not churn every runtime's caps.
  double hysteresis_watts = 8.0;
  /// Ramp-rate limit for budget *increases* per observation; watts freed
  /// by the facility come back gradually so the policies re-converge
  /// instead of slamming every host to TDP. 0 disables the limit.
  double max_raise_watts = 0.0;
  /// Ramp-rate limit for budget *decreases* per observation. 0 (the
  /// default) disables it: shrinking envelopes are a safety matter and
  /// apply at once.
  double max_lower_watts = 0.0;
  /// The governor never revises below this (the cluster's own floor:
  /// idle draw plus per-host settable minimums).
  double floor_watts = 1.0;
  /// A single drop larger than this fraction of the current budget marks
  /// the revision `emergency` (brownout / tripped feeder, not drift).
  double emergency_drop_fraction = 0.15;
};

/// Turns a time-varying facility budget signal into epoch-numbered
/// BudgetRevisions with hysteresis and ramp-rate limiting. The governor
/// is the single producer of renegotiation epochs: every revision it
/// emits carries the next strictly-increasing epoch number.
class BudgetGovernor {
 public:
  explicit BudgetGovernor(double initial_budget_watts,
                          const BudgetGovernorOptions& options = {});

  /// Observes one sample of the budget signal. Returns the revision to
  /// apply at coordination epoch `at_epoch`, or nullopt when hysteresis
  /// swallowed the move. Ramp-limited moves keep stepping toward the
  /// signal on subsequent observations even if the signal holds still.
  [[nodiscard]] std::optional<BudgetRevision> observe(double signal_watts,
                                                      std::size_t at_epoch);

  [[nodiscard]] double budget_watts() const noexcept { return budget_; }
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] const BudgetGovernorOptions& options() const noexcept {
    return options_;
  }

 private:
  BudgetGovernorOptions options_;
  double budget_;
  std::uint64_t epoch_ = 0;
};

/// Samples a cluster budget signal out of a facility trace: the cluster
/// may spend `cluster_share` of the facility's headroom (rating minus the
/// rest of the facility's draw, which the trace stands in for), never
/// below `floor_watts`. Resamples the trace evenly onto `samples` points.
[[nodiscard]] std::vector<double> budget_signal_from_trace(
    const sim::FacilityTrace& trace, double cluster_share,
    std::size_t samples, double floor_watts);

/// Runs a whole signal through a governor: one observation per sample,
/// revision i effective at coordination epoch i. The result is sorted by
/// at_epoch with strictly increasing epochs — directly consumable by
/// CoordinationLoop::run_dynamic and DaemonOptions::budget_revisions.
[[nodiscard]] std::vector<BudgetRevision> make_budget_schedule(
    double initial_budget_watts, std::span<const double> signal_watts,
    const BudgetGovernorOptions& options = {});

}  // namespace ps::core
