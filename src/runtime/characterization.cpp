#include "runtime/characterization.hpp"

#include <algorithm>

#include "runtime/basic_agents.hpp"
#include "runtime/controller.hpp"
#include "util/error.hpp"

namespace ps::runtime {

double JobCharacterization::total_needed_power() const {
  double total = 0.0;
  for (double watts : balancer.host_needed_power_watts) {
    total += watts;
  }
  return total;
}

double JobCharacterization::total_monitor_power() const {
  double total = 0.0;
  for (double watts : monitor.host_average_power_watts) {
    total += watts;
  }
  return total;
}

namespace {
void uncap_job(sim::JobSimulation& job) {
  for (std::size_t i = 0; i < job.host_count(); ++i) {
    job.set_host_cap(i, job.host(i).tdp());
  }
}
}  // namespace

MonitorCharacterization characterize_monitor(sim::JobSimulation& job,
                                             std::size_t iterations) {
  uncap_job(job);
  MonitorAgent agent;
  const Controller controller(iterations);
  const JobReport report = controller.run(job, agent);

  MonitorCharacterization result;
  result.workload_name = job.workload().name();
  result.host_average_power_watts.reserve(report.hosts.size());
  for (const auto& host : report.hosts) {
    result.host_average_power_watts.push_back(host.average_power_watts);
  }
  result.average_node_power_watts = report.average_node_power_watts();
  result.max_host_power_watts = report.max_host_average_power_watts();
  result.min_host_power_watts = report.min_host_average_power_watts();
  result.iteration_seconds =
      report.elapsed_seconds / static_cast<double>(report.iterations);
  return result;
}

BalancerCharacterization characterize_balancer(sim::JobSimulation& job,
                                               std::size_t iterations,
                                               double budget_watts,
                                               const BalancerOptions& options) {
  if (budget_watts <= 0.0) {
    budget_watts = 0.0;
    for (std::size_t i = 0; i < job.host_count(); ++i) {
      budget_watts += job.host(i).tdp();
    }
  }
  PowerBalancerAgent agent(budget_watts, options);
  // Two warmup iterations: one for the agent to observe, one under the
  // rebalanced caps before measurement starts.
  const Controller controller(iterations, /*warmup_iterations=*/2);
  const JobReport report = controller.run(job, agent);
  PS_CHECK_STATE(agent.balanced(), "balancer failed to reach steady state");

  BalancerCharacterization result;
  result.workload_name = job.workload().name();
  result.host_needed_power_watts = agent.steady_caps();
  result.host_average_power_watts.reserve(report.hosts.size());
  for (const auto& host : report.hosts) {
    result.host_average_power_watts.push_back(host.average_power_watts);
  }
  result.average_node_power_watts = report.average_node_power_watts();
  result.max_host_needed_watts =
      *std::max_element(result.host_needed_power_watts.begin(),
                        result.host_needed_power_watts.end());
  result.min_host_needed_watts =
      *std::min_element(result.host_needed_power_watts.begin(),
                        result.host_needed_power_watts.end());
  result.iteration_seconds =
      report.elapsed_seconds / static_cast<double>(report.iterations);
  return result;
}

JobCharacterization characterize_job(sim::JobSimulation& job,
                                     std::size_t iterations,
                                     const BalancerOptions& options) {
  JobCharacterization result;
  result.monitor = characterize_monitor(job, iterations);
  result.balancer = characterize_balancer(job, iterations, 0.0, options);
  uncap_job(job);
  result.host_count = job.host_count();
  double min_cap = job.host(0).min_cap();
  // The per-job ceiling is the cap every host of the job can accept, so
  // heterogeneous hosts clamp at the weakest one.
  double tdp = job.host(0).tdp();
  for (std::size_t i = 1; i < job.host_count(); ++i) {
    min_cap = std::min(min_cap, job.host(i).min_cap());
    tdp = std::min(tdp, job.host(i).tdp());
  }
  result.min_settable_cap_watts = min_cap;
  result.node_tdp_watts = tdp;
  return result;
}

void CharacterizationStore::put(const std::string& job_name,
                                JobCharacterization data) {
  store_[job_name] = std::move(data);
}

bool CharacterizationStore::contains(const std::string& job_name) const {
  return store_.find(job_name) != store_.end();
}

const JobCharacterization& CharacterizationStore::get(
    const std::string& job_name) const {
  const auto it = store_.find(job_name);
  if (it == store_.end()) {
    throw NotFound("no characterization for job '" + job_name + "'");
  }
  return it->second;
}

}  // namespace ps::runtime
