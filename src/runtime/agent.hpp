#pragma once

#include <string_view>

#include "sim/job_sim.hpp"

namespace ps::runtime {

/// A job-runtime plugin in the GEOPM sense: it observes a running job and
/// may retune host power caps between bulk-synchronous iterations.
///
/// The Controller drives the loop:
///   setup() -> { adjust() -> iteration -> observe() } x N
class Agent {
 public:
  virtual ~Agent() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Called once before the first iteration.
  virtual void setup(sim::JobSimulation& job) { static_cast<void>(job); }

  /// Called before every iteration; may change host power caps.
  virtual void adjust(sim::JobSimulation& job) { static_cast<void>(job); }

  /// Called after every iteration with its outcome.
  virtual void observe(sim::JobSimulation& job,
                       const sim::IterationResult& result) {
    static_cast<void>(job);
    static_cast<void>(result);
  }
};

}  // namespace ps::runtime
