#pragma once

#include <vector>

#include "runtime/agent.hpp"

namespace ps::runtime {

/// Tuning of the measurement-driven power shifter.
struct FeedbackOptions {
  /// Proportional gain: fraction of a host's measured slack converted to
  /// a cap reduction each iteration.
  double gain = 0.5;
  /// Largest per-iteration cap move, watts (rate limiting, as PShifter
  /// and SLURM's reallocation use to avoid oscillation).
  double max_step_watts = 10.0;
  /// Slack below this fraction of the iteration counts as "critical".
  double slack_deadband = 0.02;
};

/// A measurement-only power shifter in the spirit of PShifter (Gholkar et
/// al., HPDC'18) and POW (Ellsworth et al., HPDC'15), cited as related
/// work by the paper: no model, no search — each iteration it observes
/// per-host barrier slack, trims the caps of hosts with slack
/// (proportional control with a step limit), and gives the reclaimed
/// watts to the hosts on the critical path.
///
/// Converges to the same steady state as the model-driven
/// PowerBalancerAgent, but over tens of iterations instead of one — the
/// ext_feedback_control bench quantifies the gap. Useful as the
/// deployable fallback when no accurate platform model exists.
class FeedbackPowerAgent final : public Agent {
 public:
  explicit FeedbackPowerAgent(double job_budget_watts,
                              const FeedbackOptions& options = {});

  [[nodiscard]] std::string_view name() const noexcept override {
    return "feedback_shifter";
  }

  void setup(sim::JobSimulation& job) override;
  void adjust(sim::JobSimulation& job) override;
  void observe(sim::JobSimulation& job,
               const sim::IterationResult& result) override;

  /// Largest cap move applied on the last adjust (watts); approaches
  /// zero as the controller settles.
  [[nodiscard]] double last_step_watts() const noexcept {
    return last_step_watts_;
  }
  [[nodiscard]] double job_budget() const noexcept { return budget_watts_; }

 private:
  double budget_watts_;
  FeedbackOptions options_;
  bool has_observation_ = false;
  double last_step_watts_ = 0.0;
  std::vector<double> wait_fraction_;
};

}  // namespace ps::runtime
