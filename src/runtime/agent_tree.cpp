#include "runtime/agent_tree.hpp"

#include <algorithm>

#include "runtime/power_balancer_agent.hpp"
#include "util/error.hpp"

namespace ps::runtime {

std::size_t TreeTopology::build(std::size_t parent, std::size_t first_leaf,
                                std::size_t leaf_count, std::size_t depth) {
  const std::size_t index = nodes_.size();
  TreeNode node;
  node.parent = parent;
  node.first_leaf = first_leaf;
  node.leaf_count = leaf_count;
  node.depth = depth;
  nodes_.push_back(node);
  if (leaf_count > 1) {
    // Split the leaf range into at most fan_out nearly equal pieces.
    const std::size_t pieces = std::min(fan_out_, leaf_count);
    const std::size_t base = leaf_count / pieces;
    const std::size_t extra = leaf_count % pieces;
    std::size_t offset = first_leaf;
    for (std::size_t p = 0; p < pieces; ++p) {
      const std::size_t child_count = base + (p < extra ? 1 : 0);
      const std::size_t child =
          build(index, offset, child_count, depth + 1);
      nodes_[index].children.push_back(child);
      offset += child_count;
    }
  }
  return index;
}

TreeTopology TreeTopology::balanced(std::size_t leaves,
                                    std::size_t fan_out) {
  PS_REQUIRE(leaves > 0, "tree needs at least one leaf");
  PS_REQUIRE(fan_out >= 2, "tree fan-out must be at least 2");
  TreeTopology topology;
  topology.leaves_ = leaves;
  topology.fan_out_ = fan_out;
  static_cast<void>(topology.build(0, 0, leaves, 0));
  return topology;
}

std::size_t TreeTopology::depth() const {
  std::size_t deepest = 0;
  for (const TreeNode& node : nodes_) {
    deepest = std::max(deepest, node.depth);
  }
  return deepest;
}

std::size_t TreeTopology::leaf_node(std::size_t leaf) const {
  PS_REQUIRE(leaf < leaves_, "leaf index out of range");
  std::size_t index = root();
  while (!nodes_[index].is_leaf()) {
    bool descended = false;
    for (std::size_t child : nodes_[index].children) {
      if (leaf >= nodes_[child].first_leaf &&
          leaf < nodes_[child].first_leaf + nodes_[child].leaf_count) {
        index = child;
        descended = true;
        break;
      }
    }
    PS_CHECK_STATE(descended, "tree leaf ranges are inconsistent");
  }
  return index;
}

std::vector<double> TreeTopology::aggregate(
    const std::vector<double>& leaf_values,
    const std::function<double(double, double)>& combine) const {
  PS_REQUIRE(leaf_values.size() == leaves_,
             "need exactly one value per leaf");
  std::vector<double> values(nodes_.size(), 0.0);
  // Children always come after their parent in nodes_ (preorder), so a
  // reverse sweep folds bottom-up.
  for (std::size_t i = nodes_.size(); i-- > 0;) {
    const TreeNode& node = nodes_[i];
    if (node.is_leaf()) {
      values[i] = leaf_values[node.first_leaf];
    } else {
      values[i] = values[node.children.front()];
      for (std::size_t c = 1; c < node.children.size(); ++c) {
        values[i] = combine(values[i], values[node.children[c]]);
      }
    }
  }
  return values;
}

std::vector<double> TreeTopology::aggregate_sum(
    const std::vector<double>& leaf_values) const {
  return aggregate(leaf_values,
                   [](double a, double b) { return a + b; });
}

std::vector<double> TreeTopology::aggregate_max(
    const std::vector<double>& leaf_values) const {
  return aggregate(leaf_values,
                   [](double a, double b) { return std::max(a, b); });
}

TreeBalancerAgent::TreeBalancerAgent(double job_budget_watts,
                                     const TreeBalancerOptions& options)
    : budget_watts_(job_budget_watts), options_(options) {
  PS_REQUIRE(job_budget_watts > 0.0, "job power budget must be positive");
  PS_REQUIRE(options.fan_out >= 2, "tree fan-out must be at least 2");
  PS_REQUIRE(options.tolerated_slowdown >= 0.0,
             "tolerated slowdown cannot be negative");
}

void TreeBalancerAgent::setup(sim::JobSimulation& job) {
  const double share =
      budget_watts_ / static_cast<double>(job.host_count());
  for (std::size_t h = 0; h < job.host_count(); ++h) {
    job.set_host_cap(h, share);
  }
  has_observation_ = false;
  balanced_ = false;
  steady_caps_.clear();
  observed_critical_seconds_ = 0.0;
}

void TreeBalancerAgent::observe(sim::JobSimulation& job,
                                const sim::IterationResult& result) {
  static_cast<void>(job);
  observed_critical_seconds_ = result.iteration_seconds;
  observed_wait_fraction_.assign(result.hosts.size(), 0.0);
  for (std::size_t h = 0; h < result.hosts.size(); ++h) {
    if (result.iteration_seconds > 0.0) {
      observed_wait_fraction_[h] =
          result.hosts[h].poll_seconds / result.iteration_seconds;
    }
  }
  has_observation_ = true;
}

void TreeBalancerAgent::adjust(sim::JobSimulation& job) {
  if (!has_observation_ || balanced_) {
    return;
  }
  const std::size_t hosts = job.host_count();
  const TreeTopology tree =
      TreeTopology::balanced(hosts, options_.fan_out);
  BalancerOptions search;
  search.cap_tolerance_watts = options_.cap_tolerance_watts;

  // --- Up phase: leaves compute local (needed, useful) watts. ---
  // needed: hold the measured critical path (with the tolerated slack);
  // useful: the point past which more watts buy no local speedup.
  const double target =
      observed_critical_seconds_ * (1.0 + options_.tolerated_slowdown);
  std::vector<double> needed(hosts);
  std::vector<double> useful(hosts);
  for (std::size_t h = 0; h < hosts; ++h) {
    needed[h] = min_cap_for_time(job, h, target, search);
    if (h < observed_wait_fraction_.size() &&
        observed_wait_fraction_[h] > 0.02) {
      // This host polled at the barrier: extra watts would only make it
      // wait faster. Zero marginal utility.
      useful[h] = needed[h];
      continue;
    }
    const double local_best =
        host_busy_seconds(job, h, job.host(h).tdp());
    useful[h] = min_cap_for_time(
        job, h, local_best * (1.0 + options_.tolerated_slowdown), search);
    useful[h] = std::max(useful[h], needed[h]);
  }
  const std::vector<double> needed_sum = tree.aggregate_sum(needed);
  const std::vector<double> useful_sum = tree.aggregate_sum(useful);

  // --- Down phase: budgets split at each internal node. ---
  std::vector<double> node_budget(tree.nodes().size(), 0.0);
  node_budget[tree.root()] = budget_watts_;
  steady_caps_.assign(hosts, 0.0);
  for (std::size_t i = 0; i < tree.nodes().size(); ++i) {
    const TreeNode& node = tree.nodes()[i];
    if (node.is_leaf()) {
      const double floor = job.host(node.first_leaf).min_cap();
      const double tdp = job.host(node.first_leaf).tdp();
      steady_caps_[node.first_leaf] =
          std::clamp(node_budget[i], floor, tdp);
      continue;
    }
    double budget = node_budget[i];
    // Needed power first (scaled if the budget falls short)...
    const double need = needed_sum[i];
    if (budget <= need) {
      for (std::size_t child : node.children) {
        node_budget[child] = needed_sum[child] * budget / need;
      }
      continue;
    }
    // ...then surplus proportional to remaining useful headroom.
    double headroom = useful_sum[i] - need;
    const double surplus = budget - need;
    for (std::size_t child : node.children) {
      const double child_headroom = useful_sum[child] - needed_sum[child];
      const double share =
          headroom > 0.0 ? surplus * child_headroom / headroom : 0.0;
      node_budget[child] = needed_sum[child] + share;
    }
  }

  for (std::size_t h = 0; h < hosts; ++h) {
    job.set_host_cap(h, steady_caps_[h]);
    steady_caps_[h] = job.host_cap(h);
  }
  balanced_ = true;
}

}  // namespace ps::runtime
