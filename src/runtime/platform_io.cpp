#include "runtime/platform_io.hpp"

#include <algorithm>

#include "hw/quartz_spec.hpp"
#include "util/error.hpp"

namespace ps::runtime {

namespace {
constexpr std::size_t kPackagesPerNode = hw::QuartzSpec::kSocketsPerNode;

constexpr const char* kSignalNames[] = {
    "ENERGY",        "POWER_CAP",     "POWER_CAP_MIN",     "POWER_CAP_MAX",
    "FREQUENCY_CAP", "FREQUENCY_MIN", "FREQUENCY_MAX",     "GPU_ENERGY",
    "GPU_POWER_CAP", "GPU_POWER_CAP_MIN", "GPU_POWER_CAP_MAX",
    "GPU_OCCUPANCY"};
constexpr const char* kControlNames[] = {"POWER_CAP", "FREQUENCY_CAP",
                                         "GPU_POWER_CAP"};

bool is_gpu_signal(std::string_view name) {
  return name.substr(0, 4) == "GPU_";
}
}  // namespace

std::string_view to_string(Domain domain) noexcept {
  switch (domain) {
    case Domain::kBoard:
      return "board";
    case Domain::kNode:
      return "node";
    case Domain::kPackage:
      return "package";
    case Domain::kGpu:
      return "gpu";
  }
  return "?";
}

PlatformIO::PlatformIO(std::vector<hw::NodeModel*> nodes)
    : nodes_(std::move(nodes)) {
  PS_REQUIRE(!nodes_.empty(), "PlatformIO needs at least one node");
  for (const auto* node : nodes_) {
    PS_REQUIRE(node != nullptr, "node must not be null");
  }
}

std::size_t PlatformIO::domain_size(Domain domain) const {
  switch (domain) {
    case Domain::kBoard:
      return 1;
    case Domain::kNode:
      return nodes_.size();
    case Domain::kPackage:
      return nodes_.size() * kPackagesPerNode;
    case Domain::kGpu: {
      std::size_t devices = 0;
      for (const auto* node : nodes_) {
        devices += node->gpu_count();
      }
      return devices;
    }
  }
  throw InvalidArgument("unknown domain");
}

bool PlatformIO::is_valid_signal(std::string_view name) {
  return std::any_of(std::begin(kSignalNames), std::end(kSignalNames),
                     [&](const char* candidate) { return name == candidate; });
}

bool PlatformIO::is_valid_control(std::string_view name) {
  return std::any_of(std::begin(kControlNames), std::end(kControlNames),
                     [&](const char* candidate) { return name == candidate; });
}

std::vector<std::string> PlatformIO::signal_names() {
  return {std::begin(kSignalNames), std::end(kSignalNames)};
}

std::vector<std::string> PlatformIO::control_names() {
  return {std::begin(kControlNames), std::end(kControlNames)};
}

hw::NodeModel& PlatformIO::node_at(Domain domain, std::size_t index) {
  PS_REQUIRE(index < domain_size(domain), "domain index out of range");
  switch (domain) {
    case Domain::kNode:
      return *nodes_[index];
    case Domain::kPackage:
      return *nodes_[index / kPackagesPerNode];
    case Domain::kBoard:
    case Domain::kGpu:
      break;
  }
  throw InvalidArgument("board domain has no single node");
}

hw::GpuModel& PlatformIO::gpu_at(std::size_t index) {
  for (auto* node : nodes_) {
    if (index < node->gpu_count()) {
      return node->gpu(index);
    }
    index -= node->gpu_count();
  }
  throw InvalidArgument("GPU index out of range");
}

double PlatformIO::read_node_gpu_signal(std::string_view name,
                                        hw::NodeModel& node) {
  if (name == "GPU_ENERGY") {
    return node.read_gpu_energy_joules();
  }
  if (name == "GPU_POWER_CAP") {
    return node.gpu_power_cap();
  }
  if (name == "GPU_POWER_CAP_MIN") {
    return node.gpu_min_cap();
  }
  if (name == "GPU_POWER_CAP_MAX") {
    return node.gpu_tdp();
  }
  if (name == "GPU_OCCUPANCY") {
    if (node.gpu_count() == 0) {
      return 0.0;
    }
    double total = 0.0;
    for (std::size_t g = 0; g < node.gpu_count(); ++g) {
      total += node.gpu(g).last_occupancy();
    }
    return total / static_cast<double>(node.gpu_count());
  }
  throw NotFound("unknown signal '" + std::string(name) + "'");
}

double PlatformIO::read_node_signal(std::string_view name,
                                    hw::NodeModel& node) {
  if (name == "ENERGY") {
    return node.read_energy_joules();
  }
  if (name == "POWER_CAP") {
    return node.power_cap();
  }
  if (name == "POWER_CAP_MIN") {
    return node.min_cap();
  }
  if (name == "POWER_CAP_MAX") {
    return node.tdp();
  }
  if (name == "FREQUENCY_CAP") {
    return node.frequency_cap();
  }
  if (name == "FREQUENCY_MIN") {
    return node.params().power.min_frequency_ghz;
  }
  if (name == "FREQUENCY_MAX") {
    return node.params().power.max_frequency_ghz;
  }
  throw NotFound("unknown signal '" + std::string(name) + "'");
}

double PlatformIO::read_signal(std::string_view name, Domain domain,
                               std::size_t index) {
  if (!is_valid_signal(name)) {
    throw NotFound("unknown signal '" + std::string(name) + "'");
  }
  PS_REQUIRE(index < domain_size(domain), "domain index out of range");
  switch (domain) {
    case Domain::kBoard: {
      // Energy and caps sum over nodes; frequencies and occupancy average.
      const bool averages =
          name == "FREQUENCY_CAP" || name == "FREQUENCY_MIN" ||
          name == "FREQUENCY_MAX" || name == "GPU_OCCUPANCY";
      double total = 0.0;
      for (auto* node : nodes_) {
        total += is_gpu_signal(name) ? read_node_gpu_signal(name, *node)
                                     : read_node_signal(name, *node);
      }
      return averages ? total / static_cast<double>(nodes_.size()) : total;
    }
    case Domain::kNode:
      return is_gpu_signal(name)
                 ? read_node_gpu_signal(name, *nodes_[index])
                 : read_node_signal(name, *nodes_[index]);
    case Domain::kGpu: {
      hw::GpuModel& gpu = gpu_at(index);
      if (name == "GPU_ENERGY") {
        return gpu.read_energy_joules();
      }
      if (name == "GPU_POWER_CAP") {
        return gpu.power_cap();
      }
      if (name == "GPU_POWER_CAP_MIN") {
        return gpu.min_cap();
      }
      if (name == "GPU_POWER_CAP_MAX") {
        return gpu.tdp();
      }
      if (name == "GPU_OCCUPANCY") {
        return gpu.last_occupancy();
      }
      // CPU signals read at the gpu domain are a mismatch, as in GEOPM.
      throw InvalidArgument("signal '" + std::string(name) +
                            "' is not gpu-scoped");
    }
    case Domain::kPackage: {
      hw::NodeModel& node = node_at(domain, index);
      const std::size_t pkg = index % kPackagesPerNode;
      if (name == "ENERGY") {
        // Package energy excludes the DRAM plane; expose the RAPL view.
        return node.package(pkg).read_energy_joules();
      }
      if (name == "POWER_CAP") {
        return node.package(pkg).power_limit();
      }
      if (name == "POWER_CAP_MIN") {
        return node.package(pkg).min_limit();
      }
      if (name == "POWER_CAP_MAX") {
        return node.package(pkg).tdp();
      }
      // Frequency signals are node-scoped; reading them per package is a
      // domain mismatch, as in GEOPM.
      throw InvalidArgument("signal '" + std::string(name) +
                            "' is not package-scoped");
    }
  }
  throw InvalidArgument("unknown domain");
}

double PlatformIO::write_control(std::string_view name, Domain domain,
                                 std::size_t index, double value) {
  if (!is_valid_control(name)) {
    throw NotFound("unknown control '" + std::string(name) + "'");
  }
  PS_REQUIRE(index < domain_size(domain), "domain index out of range");
  if (domain == Domain::kBoard) {
    double last = 0.0;
    for (std::size_t n = 0; n < nodes_.size(); ++n) {
      if (name == "GPU_POWER_CAP" && nodes_[n]->gpu_count() == 0) {
        continue;  // GPU fan-out skips GPU-less nodes
      }
      last = write_control(name, Domain::kNode, n, value);
    }
    return last;
  }
  if (name == "GPU_POWER_CAP") {
    if (domain == Domain::kGpu) {
      return gpu_at(index).set_power_cap(value);
    }
    PS_REQUIRE(domain == Domain::kNode,
               "GPU_POWER_CAP is a gpu- or node-scoped control");
    return nodes_[index]->set_gpu_power_cap(value);
  }
  if (name == "POWER_CAP") {
    PS_REQUIRE(domain != Domain::kGpu,
               "POWER_CAP is not a gpu-scoped control");
    if (domain == Domain::kNode) {
      return nodes_[index]->set_power_cap(value);
    }
    hw::NodeModel& node = node_at(domain, index);
    return node.package(index % kPackagesPerNode).set_power_limit(value);
  }
  if (name == "FREQUENCY_CAP") {
    PS_REQUIRE(domain == Domain::kNode,
               "FREQUENCY_CAP is a node-scoped control");
    return nodes_[index]->set_frequency_cap(value);
  }
  throw NotFound("unknown control '" + std::string(name) + "'");
}

}  // namespace ps::runtime
