#include "runtime/report_writer.hpp"

#include <ostream>
#include <sstream>

#include "util/table.hpp"

namespace ps::runtime {

void write_text_report(std::ostream& out, const JobReport& report) {
  out << "##### powerstack job report #####\n";
  out << "Job: " << report.job_name << '\n';
  out << "Agent: " << report.agent_name << '\n';
  out << "Workload: " << report.workload_name << '\n';
  out << "Iterations: " << report.iterations << '\n';
  out << "Elapsed (s): "
      << util::format_fixed(report.elapsed_seconds, 4) << '\n';
  out << "Energy (J): "
      << util::format_fixed(report.total_energy_joules, 1) << '\n';
  out << "GFLOP: " << util::format_fixed(report.total_gflop, 1) << '\n';
  out << "Average node power (W): "
      << util::format_fixed(report.average_node_power_watts(), 1) << '\n';
  out << "GFLOPS/W: "
      << util::format_fixed(report.gflops_per_watt(), 3) << '\n';
  if (!report.phase_starts.empty()) {
    out << "Phase starts at iterations:";
    for (std::size_t start : report.phase_starts) {
      out << ' ' << start;
    }
    out << '\n';
  }
  for (const auto& host : report.hosts) {
    out << "\nHost: node-" << host.node
        << (host.waiting_host ? " (waiting ranks)" : "") << '\n';
    out << "    energy (J): "
        << util::format_fixed(host.energy_joules, 1) << '\n';
    out << "    busy (s): " << util::format_fixed(host.busy_seconds, 4)
        << '\n';
    out << "    barrier wait (s): "
        << util::format_fixed(host.poll_seconds, 4) << '\n';
    out << "    average power (W): "
        << util::format_fixed(host.average_power_watts, 1) << '\n';
    out << "    power cap (W): "
        << util::format_fixed(host.final_cap_watts, 1) << '\n';
  }
}

std::string to_text_report(const JobReport& report) {
  std::ostringstream out;
  write_text_report(out, report);
  return out.str();
}

void write_host_csv(std::ostream& out, const JobReport& report) {
  util::CsvWriter csv(out);
  csv.write_row({"job", "node", "waiting_host", "energy_joules",
                 "busy_seconds", "poll_seconds", "average_power_watts",
                 "max_power_watts", "final_cap_watts", "gflop"});
  for (const auto& host : report.hosts) {
    csv.write_row({report.job_name, std::to_string(host.node),
                   host.waiting_host ? "1" : "0",
                   util::format_fixed(host.energy_joules, 3),
                   util::format_fixed(host.busy_seconds, 6),
                   util::format_fixed(host.poll_seconds, 6),
                   util::format_fixed(host.average_power_watts, 3),
                   util::format_fixed(host.max_power_watts, 3),
                   util::format_fixed(host.final_cap_watts, 3),
                   util::format_fixed(host.gflop, 3)});
  }
}

void write_trace_csv(std::ostream& out, const JobReport& report) {
  util::CsvWriter csv(out);
  csv.write_row({"iteration", "seconds", "energy_joules"});
  for (std::size_t i = 0; i < report.iteration_seconds.size(); ++i) {
    csv.write_row({std::to_string(i),
                   util::format_fixed(report.iteration_seconds[i], 6),
                   util::format_fixed(report.iteration_energy_joules[i], 3)});
  }
}

}  // namespace ps::runtime
