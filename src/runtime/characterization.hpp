#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "runtime/power_balancer_agent.hpp"
#include "sim/job_sim.hpp"

namespace ps::runtime {

/// Result of a GEOPM monitor-agent characterization run: observed behavior
/// with no power constraints (paper Section IV-B, metric (a) / Fig. 4).
struct MonitorCharacterization {
  std::string workload_name;
  std::vector<double> host_average_power_watts;
  double average_node_power_watts = 0.0;
  double max_host_power_watts = 0.0;
  double min_host_power_watts = 0.0;
  double iteration_seconds = 0.0;  ///< Mean steady-state iteration time.
};

/// Result of a power-balancer characterization run under a TDP budget:
/// the minimum power each host needs to sustain the critical path (paper
/// Section IV-B, metric (b) / Fig. 5).
struct BalancerCharacterization {
  std::string workload_name;
  /// The balancer's steady per-host caps — the "needed" power.
  std::vector<double> host_needed_power_watts;
  /// Power actually drawn under those caps.
  std::vector<double> host_average_power_watts;
  double average_node_power_watts = 0.0;
  double max_host_needed_watts = 0.0;
  double min_host_needed_watts = 0.0;
  double iteration_seconds = 0.0;
};

/// Everything a resource-manager policy may know about one job ahead of
/// time. The paper emulates an RM/runtime feedback loop with exactly this
/// pre-characterized data (Section III-A).
struct JobCharacterization {
  MonitorCharacterization monitor;
  BalancerCharacterization balancer;
  /// Lowest settable node cap (2 x 68 W on the modeled system).
  double min_settable_cap_watts = 0.0;
  /// Highest node cap settable on every host of this job (2 x package TDP
  /// plus the DRAM plane). 0 = unknown: policies fall back to the
  /// context-wide node_tdp_watts (characterizations that predate this
  /// field, e.g. ones parsed off the wire or from CSV).
  double node_tdp_watts = 0.0;
  std::size_t host_count = 0;

  /// --- Second (GPU) power domain ---------------------------------------
  /// Empty vectors = a CPU-only job. When present, both vectors carry one
  /// entry per host: the GPU-domain "needed" power (the lowest node-level
  /// GPU cap sustaining the critical path) and the observed GPU draw.
  std::vector<double> host_gpu_needed_watts;
  std::vector<double> host_gpu_observed_watts;
  /// GPU-domain limit range per host (sums over the host's devices).
  double gpu_min_cap_watts = 0.0;
  double gpu_tdp_watts = 0.0;

  /// Multi-tenant service class: degradation under scarcity sheds
  /// lower-class jobs toward their floors first. kStandard (the default)
  /// keeps single-tenant mixes on every legacy code path.
  sim::SlaClass sla_class = sim::SlaClass::kStandard;

  [[nodiscard]] bool has_gpu_domain() const noexcept {
    return !host_gpu_needed_watts.empty();
  }
  [[nodiscard]] double total_needed_power() const;
  [[nodiscard]] double total_monitor_power() const;
};

/// Runs the monitor agent on the job's own hosts (uncapped) and summarizes.
[[nodiscard]] MonitorCharacterization characterize_monitor(
    sim::JobSimulation& job, std::size_t iterations = 10);

/// Runs the power balancer under `budget_watts` (default: hosts x TDP, the
/// paper's setting) and extracts the steady power distribution.
[[nodiscard]] BalancerCharacterization characterize_balancer(
    sim::JobSimulation& job, std::size_t iterations = 10,
    double budget_watts = 0.0, const BalancerOptions& options = {});

/// Convenience: both characterizations, with caps reset in between.
[[nodiscard]] JobCharacterization characterize_job(
    sim::JobSimulation& job, std::size_t iterations = 10,
    const BalancerOptions& options = {});

/// Keyed store of characterizations, as a site would maintain per
/// (workload, node-set) from prior runs.
class CharacterizationStore {
 public:
  void put(const std::string& job_name, JobCharacterization data);
  [[nodiscard]] bool contains(const std::string& job_name) const;
  /// Throws ps::NotFound for unknown jobs.
  [[nodiscard]] const JobCharacterization& get(
      const std::string& job_name) const;
  [[nodiscard]] std::size_t size() const noexcept { return store_.size(); }

 private:
  std::unordered_map<std::string, JobCharacterization> store_;
};

}  // namespace ps::runtime
