#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "hw/node.hpp"

namespace ps::runtime {

/// Aggregation scope of a signal or control (GEOPM's domain concept,
/// reduced to the three levels this stack manages).
enum class Domain {
  kBoard,    ///< The whole managed node set (index must be 0).
  kNode,     ///< One node.
  kPackage,  ///< One CPU package: index = node * packages_per_node + pkg.
  kGpu,      ///< One GPU device, indexed flat across nodes in node order.
};

[[nodiscard]] std::string_view to_string(Domain domain) noexcept;

/// GEOPM-style PlatformIO: a string-named signal/control abstraction over
/// the hardware substrate. Agents and tools read telemetry and program
/// knobs through names rather than poking MSRs, which is what makes them
/// portable across platform plugins in the real GEOPM.
///
/// Signals (read_signal):
///   ENERGY            J    cumulative consumed energy (RAPL + DRAM)
///   POWER_CAP         W    currently programmed cap
///   POWER_CAP_MIN     W    lowest settable cap
///   POWER_CAP_MAX     W    highest settable cap (TDP)
///   FREQUENCY_CAP     GHz  DVFS ceiling (node domain and up)
///   FREQUENCY_MIN     GHz
///   FREQUENCY_MAX     GHz
///
/// GPU-domain signals (valid at gpu, node, and board domains):
///   GPU_ENERGY        J    monotone consumed energy of the device(s)
///   GPU_POWER_CAP     W    programmed GPU limit
///   GPU_POWER_CAP_MIN W    lowest settable GPU limit
///   GPU_POWER_CAP_MAX W    highest settable GPU limit (GPU TDP)
///   GPU_OCCUPANCY     -    occupancy of the most recent kernel, in [0, 1]
///
/// Controls (write_control):
///   POWER_CAP         W    node or package power limit
///   FREQUENCY_CAP     GHz  node DVFS ceiling
///   GPU_POWER_CAP     W    one device's limit, or a node-level GPU cap
///                          split evenly across the node's devices
///
/// Board-domain reads aggregate over nodes: ENERGY and the cap signals
/// sum; frequency signals and GPU_OCCUPANCY average. Board-domain writes
/// fan out the same value to every node; GPU_POWER_CAP fans out only to
/// nodes that have GPU devices. Node-domain GPU reads sum the node's
/// devices (0.0 on GPU-less nodes); GPU writes there require devices.
class PlatformIO {
 public:
  /// Nodes are borrowed and must outlive the PlatformIO.
  explicit PlatformIO(std::vector<hw::NodeModel*> nodes);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  /// Number of valid indices in `domain`.
  [[nodiscard]] std::size_t domain_size(Domain domain) const;

  /// Reads a signal. Throws ps::NotFound for unknown names and
  /// ps::InvalidArgument for bad domains or indices.
  [[nodiscard]] double read_signal(std::string_view name, Domain domain,
                                   std::size_t index);

  /// Writes a control; returns the value actually applied (after
  /// hardware clamping). Throws like read_signal.
  double write_control(std::string_view name, Domain domain,
                       std::size_t index, double value);

  [[nodiscard]] static std::vector<std::string> signal_names();
  [[nodiscard]] static std::vector<std::string> control_names();
  [[nodiscard]] static bool is_valid_signal(std::string_view name);
  [[nodiscard]] static bool is_valid_control(std::string_view name);

 private:
  [[nodiscard]] hw::NodeModel& node_at(Domain domain, std::size_t index);
  [[nodiscard]] double read_node_signal(std::string_view name,
                                        hw::NodeModel& node);
  [[nodiscard]] double read_node_gpu_signal(std::string_view name,
                                            hw::NodeModel& node);
  /// Resolves a flat GPU index to (node, device-within-node).
  [[nodiscard]] hw::GpuModel& gpu_at(std::size_t index);

  std::vector<hw::NodeModel*> nodes_;
};

}  // namespace ps::runtime
