#include "runtime/controller.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ps::runtime {

Controller::Controller(std::size_t iterations, std::size_t warmup_iterations)
    : iterations_(iterations), warmup_(warmup_iterations) {
  PS_REQUIRE(iterations > 0, "controller needs at least one iteration");
}

namespace {
/// No-op phase schedule used by the single-phase run().
void no_phase_switch(sim::JobSimulation&, std::size_t, JobReport*) {}
}  // namespace

JobReport Controller::run(sim::JobSimulation& job, Agent& agent) const {
  return run_with_schedule(job, agent, no_phase_switch);
}

JobReport Controller::run_phases(sim::JobSimulation& job, Agent& agent,
                                 const kernel::PhasedWorkload& phases) const {
  phases.validate();
  return run_with_schedule(
      job, agent,
      [&phases](sim::JobSimulation& running_job, std::size_t iteration,
                JobReport* report) {
        const kernel::WorkloadPhase& phase = phases.phase_at(iteration);
        if (!(running_job.workload() == phase.config)) {
          running_job.set_workload(phase.config);
          if (report != nullptr) {
            report->phase_starts.push_back(
                report->iteration_seconds.size());
          }
        }
      });
}

template <typename Schedule>
JobReport Controller::run_with_schedule(sim::JobSimulation& job,
                                        Agent& agent,
                                        Schedule&& schedule) const {
  agent.setup(job);
  for (std::size_t w = 0; w < warmup_; ++w) {
    schedule(job, w, nullptr);
    agent.adjust(job);
    const sim::IterationResult result = job.run_iteration();
    agent.observe(job, result);
  }

  JobReport report;
  report.job_name = job.name();
  report.agent_name = std::string(agent.name());
  report.workload_name = job.workload().name();
  report.iterations = iterations_;
  report.hosts.resize(job.host_count());
  report.iteration_seconds.reserve(iterations_);
  report.iteration_energy_joules.reserve(iterations_);

  for (std::size_t i = 0; i < job.host_count(); ++i) {
    report.hosts[i].node = job.host(i).id();
    report.hosts[i].waiting_host = job.is_waiting_host(i);
  }

  for (std::size_t iteration = 0; iteration < iterations_; ++iteration) {
    schedule(job, warmup_ + iteration, &report);
    agent.adjust(job);
    const sim::IterationResult result = job.run_iteration();
    agent.observe(job, result);

    report.elapsed_seconds += result.iteration_seconds;
    report.total_energy_joules += result.total_energy_joules;
    report.total_gflop += result.total_gflop;
    report.iteration_seconds.push_back(result.iteration_seconds);
    report.iteration_energy_joules.push_back(result.total_energy_joules);
    for (std::size_t i = 0; i < job.host_count(); ++i) {
      const auto& host_result = result.hosts[i];
      auto& host_report = report.hosts[i];
      host_report.energy_joules += host_result.energy_joules;
      host_report.busy_seconds += host_result.busy_seconds;
      host_report.poll_seconds += host_result.poll_seconds;
      host_report.gflop += host_result.gflop;
      host_report.max_power_watts = std::max(
          host_report.max_power_watts, host_result.average_power_watts);
    }
  }

  for (std::size_t i = 0; i < job.host_count(); ++i) {
    auto& host_report = report.hosts[i];
    host_report.average_power_watts =
        report.elapsed_seconds > 0.0
            ? host_report.energy_joules / report.elapsed_seconds
            : 0.0;
    host_report.final_cap_watts = job.host_cap(i);
  }
  return report;
}

}  // namespace ps::runtime
