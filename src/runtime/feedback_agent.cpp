#include "runtime/feedback_agent.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ps::runtime {

FeedbackPowerAgent::FeedbackPowerAgent(double job_budget_watts,
                                       const FeedbackOptions& options)
    : budget_watts_(job_budget_watts), options_(options) {
  PS_REQUIRE(job_budget_watts > 0.0, "job power budget must be positive");
  PS_REQUIRE(options.gain > 0.0 && options.gain <= 1.0,
             "gain must be in (0, 1]");
  PS_REQUIRE(options.max_step_watts > 0.0, "step limit must be positive");
  PS_REQUIRE(options.slack_deadband >= 0.0,
             "slack deadband cannot be negative");
}

void FeedbackPowerAgent::setup(sim::JobSimulation& job) {
  const double share =
      budget_watts_ / static_cast<double>(job.host_count());
  for (std::size_t h = 0; h < job.host_count(); ++h) {
    job.set_host_cap(h, share);
  }
  has_observation_ = false;
  last_step_watts_ = 0.0;
  wait_fraction_.clear();
}

void FeedbackPowerAgent::observe(sim::JobSimulation& job,
                                 const sim::IterationResult& result) {
  static_cast<void>(job);
  wait_fraction_.assign(result.hosts.size(), 0.0);
  for (std::size_t h = 0; h < result.hosts.size(); ++h) {
    if (result.iteration_seconds > 0.0) {
      wait_fraction_[h] =
          result.hosts[h].poll_seconds / result.iteration_seconds;
    }
  }
  has_observation_ = true;
}

void FeedbackPowerAgent::adjust(sim::JobSimulation& job) {
  if (!has_observation_) {
    return;
  }
  const std::size_t hosts = job.host_count();
  PS_CHECK_STATE(wait_fraction_.size() == hosts,
                 "observation does not match the job");

  // Trim hosts with measured slack (proportional to how much of the
  // iteration they spent polling), collecting the reclaimed watts.
  double pool = 0.0;
  std::vector<std::size_t> critical;
  last_step_watts_ = 0.0;
  for (std::size_t h = 0; h < hosts; ++h) {
    const double cap = job.host_cap(h);
    if (wait_fraction_[h] > options_.slack_deadband) {
      const double headroom = cap - job.host(h).min_cap();
      const double step = std::min(
          options_.max_step_watts,
          options_.gain * wait_fraction_[h] * std::max(headroom, 0.0));
      if (step > 0.0) {
        job.set_host_cap(h, cap - step);
        const double applied = cap - job.host_cap(h);
        pool += applied;
        last_step_watts_ = std::max(last_step_watts_, applied);
      }
    } else {
      critical.push_back(h);
    }
  }

  // Hand the pool to the critical-path hosts, evenly, TDP-capped;
  // whatever they cannot take returns to the slack hosts so the budget
  // stays fully assigned.
  double undelivered = pool;
  if (!critical.empty() && pool > 0.0) {
    const double share = pool / static_cast<double>(critical.size());
    for (std::size_t h : critical) {
      const double cap = job.host_cap(h);
      const double take =
          std::min(share, job.host(h).tdp() - cap);
      if (take > 0.0) {
        job.set_host_cap(h, cap + take);
        undelivered -= take;
        last_step_watts_ = std::max(last_step_watts_, take);
      }
    }
  }
  if (undelivered > 1e-6) {
    // Return the remainder uniformly to everyone below TDP (keeps the
    // controller budget-neutral without a second bookkeeping pass).
    const double refund = undelivered / static_cast<double>(hosts);
    for (std::size_t h = 0; h < hosts; ++h) {
      job.set_host_cap(h,
                       std::min(job.host_cap(h) + refund,
                                job.host(h).tdp()));
    }
  }
}

}  // namespace ps::runtime
