#pragma once

#include "runtime/agent.hpp"

namespace ps::runtime {

/// GEOPM "monitor" agent: observes requested metrics without modifying
/// system behavior (paper Section III-B). Leaves every cap where it is.
class MonitorAgent final : public Agent {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "monitor";
  }
};

/// GEOPM "power_governor" agent: enforces a uniform per-host power cap
/// equal to budget / host_count and keeps it there.
class PowerGovernorAgent final : public Agent {
 public:
  /// `job_budget_watts` is the total power allocated to the job.
  explicit PowerGovernorAgent(double job_budget_watts);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "power_governor";
  }

  void setup(sim::JobSimulation& job) override;

  [[nodiscard]] double job_budget() const noexcept { return budget_watts_; }

 private:
  double budget_watts_;
};

}  // namespace ps::runtime
