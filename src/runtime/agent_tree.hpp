#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "runtime/agent.hpp"

namespace ps::runtime {

/// One node of a balanced aggregation tree. Leaves map 1:1 onto compute
/// hosts; internal nodes aggregate their subtree.
struct TreeNode {
  std::size_t parent = 0;  ///< Root points at itself.
  std::vector<std::size_t> children;
  std::size_t first_leaf = 0;
  std::size_t leaf_count = 0;
  std::size_t depth = 0;

  [[nodiscard]] bool is_leaf() const noexcept { return children.empty(); }
};

/// A balanced k-ary aggregation tree over `leaves` hosts — the
/// communication topology real GEOPM runs its agents on, where telemetry
/// flows up and policy flows down with O(log N) hops instead of a flat
/// O(N) gather at the root.
class TreeTopology {
 public:
  /// Builds a balanced tree: every internal node has at most `fan_out`
  /// children; leaf ranges are contiguous and nearly equal.
  static TreeTopology balanced(std::size_t leaves, std::size_t fan_out);

  [[nodiscard]] const std::vector<TreeNode>& nodes() const noexcept {
    return nodes_;
  }
  [[nodiscard]] std::size_t root() const noexcept { return 0; }
  [[nodiscard]] std::size_t leaf_count() const noexcept { return leaves_; }
  [[nodiscard]] std::size_t fan_out() const noexcept { return fan_out_; }
  /// Tree height (root depth 0; a single-leaf tree has depth 0).
  [[nodiscard]] std::size_t depth() const;
  /// Index (into nodes()) of the leaf node covering host `leaf`.
  [[nodiscard]] std::size_t leaf_node(std::size_t leaf) const;

  /// Bottom-up aggregation: `combine(accumulator, child_value)` folds
  /// children into parents; leaves take `leaf_values`. Returns one value
  /// per tree node.
  [[nodiscard]] std::vector<double> aggregate(
      const std::vector<double>& leaf_values,
      const std::function<double(double, double)>& combine) const;

  /// Convenience reductions.
  [[nodiscard]] std::vector<double> aggregate_sum(
      const std::vector<double>& leaf_values) const;
  [[nodiscard]] std::vector<double> aggregate_max(
      const std::vector<double>& leaf_values) const;

 private:
  std::size_t build(std::size_t parent, std::size_t first_leaf,
                    std::size_t leaf_count, std::size_t depth);

  std::vector<TreeNode> nodes_;
  std::size_t leaves_ = 0;
  std::size_t fan_out_ = 2;
};

/// Options for the tree balancer.
struct TreeBalancerOptions {
  std::size_t fan_out = 8;
  /// Allowed slowdown of the measured critical path when trimming
  /// non-critical hosts (mirrors BalancerOptions::tolerated_slowdown).
  double tolerated_slowdown = 0.035;
  /// Cap search precision, watts.
  double cap_tolerance_watts = 0.05;
};

/// Hierarchical power balancer: the same objective as PowerBalancerAgent,
/// reached with tree-local information only. Each epoch:
///
///   up:   every leaf reports (needed, max-useful) watts for the job's
///         measured critical path; internal nodes sum their subtrees;
///   down: every internal node splits its budget among children — needed
///         power first, then surplus proportional to remaining useful
///         headroom — until leaves program their caps.
///
/// Converges to within a few percent of the flat balancer's iteration
/// time while each tree node only ever touches fan_out numbers.
class TreeBalancerAgent final : public Agent {
 public:
  TreeBalancerAgent(double job_budget_watts,
                    const TreeBalancerOptions& options = {});

  [[nodiscard]] std::string_view name() const noexcept override {
    return "tree_balancer";
  }

  void setup(sim::JobSimulation& job) override;
  void adjust(sim::JobSimulation& job) override;
  void observe(sim::JobSimulation& job,
               const sim::IterationResult& result) override;

  [[nodiscard]] bool balanced() const noexcept { return balanced_; }
  [[nodiscard]] const std::vector<double>& steady_caps() const noexcept {
    return steady_caps_;
  }

 private:
  double budget_watts_;
  TreeBalancerOptions options_;
  double observed_critical_seconds_ = 0.0;
  /// Fraction of the last iteration each host spent polling at the
  /// barrier — the *local* signal that more watts would be wasted on it.
  std::vector<double> observed_wait_fraction_;
  bool has_observation_ = false;
  bool balanced_ = false;
  std::vector<double> steady_caps_;
};

}  // namespace ps::runtime
