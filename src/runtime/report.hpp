#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "hw/node.hpp"

namespace ps::runtime {

/// Per-host section of a job report (GEOPM report analogue).
struct HostReport {
  hw::NodeId node = 0;
  double average_power_watts = 0.0;
  double max_power_watts = 0.0;  ///< Max per-iteration average power.
  double energy_joules = 0.0;
  double busy_seconds = 0.0;
  double poll_seconds = 0.0;
  double gflop = 0.0;
  double final_cap_watts = 0.0;
  bool waiting_host = false;
};

/// Aggregate job report produced by the Controller after a run.
struct JobReport {
  std::string job_name;
  std::string agent_name;
  std::string workload_name;
  std::size_t iterations = 0;
  double elapsed_seconds = 0.0;
  double total_energy_joules = 0.0;
  double total_gflop = 0.0;
  std::vector<HostReport> hosts;
  /// Per-iteration critical-path times (for confidence intervals).
  std::vector<double> iteration_seconds;
  /// Per-iteration total job energy (for confidence intervals).
  std::vector<double> iteration_energy_joules;
  /// Measured-iteration indices where a new workload phase began (only
  /// populated by Controller::run_phases).
  std::vector<std::size_t> phase_starts;

  [[nodiscard]] double average_node_power_watts() const;
  [[nodiscard]] double max_host_average_power_watts() const;
  [[nodiscard]] double min_host_average_power_watts() const;
  [[nodiscard]] double achieved_gflops() const;
  [[nodiscard]] double gflops_per_watt() const;
  [[nodiscard]] double energy_delay_product() const;
};

}  // namespace ps::runtime
