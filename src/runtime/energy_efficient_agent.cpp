#include "runtime/energy_efficient_agent.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ps::runtime {

namespace {
double busy_at_frequency(const sim::JobSimulation& job, std::size_t host,
                         double frequency_ghz) {
  const auto& workload = job.workload();
  return job.host(host)
      .preview_compute(job.host_gigabytes(host), workload.intensity,
                       workload.vector_width, job.host(host).power_cap(),
                       frequency_ghz)
      .seconds;
}
}  // namespace

double min_frequency_for_time(const sim::JobSimulation& job,
                              std::size_t host, double target_seconds,
                              double step_ghz) {
  PS_REQUIRE(target_seconds > 0.0, "target time must be positive");
  PS_REQUIRE(step_ghz > 0.0, "frequency step must be positive");
  const auto& power = job.host(host).params().power;
  if (busy_at_frequency(job, host, power.min_frequency_ghz) <=
      target_seconds) {
    return power.min_frequency_ghz;
  }
  // Walk down from f_max in steps; the time-vs-frequency curve is
  // monotone, so the first step that misses the target ends the walk.
  double chosen = power.max_frequency_ghz;
  for (double f = power.max_frequency_ghz - step_ghz;
       f > power.min_frequency_ghz; f -= step_ghz) {
    if (busy_at_frequency(job, host, f) > target_seconds) {
      break;
    }
    chosen = f;
  }
  return chosen;
}

EnergyEfficientAgent::EnergyEfficientAgent(
    const EnergyEfficientOptions& options)
    : options_(options) {
  PS_REQUIRE(options.performance_tolerance >= 0.0,
             "performance tolerance cannot be negative");
  PS_REQUIRE(options.frequency_step_ghz > 0.0,
             "frequency step must be positive");
}

void EnergyEfficientAgent::setup(sim::JobSimulation& job) {
  for (std::size_t h = 0; h < job.host_count(); ++h) {
    job.host(h).set_frequency_cap(
        job.host(h).params().power.max_frequency_ghz);
  }
  has_observation_ = false;
  tuned_ = false;
  steady_frequencies_.clear();
}

void EnergyEfficientAgent::adjust(sim::JobSimulation& job) {
  if (!has_observation_ || tuned_) {
    return;
  }
  // Critical path at full frequency under the current power caps.
  double critical = 0.0;
  for (std::size_t h = 0; h < job.host_count(); ++h) {
    critical = std::max(
        critical,
        busy_at_frequency(job, h,
                          job.host(h).params().power.max_frequency_ghz));
  }
  const double target = critical * (1.0 + options_.performance_tolerance);
  steady_frequencies_.resize(job.host_count());
  for (std::size_t h = 0; h < job.host_count(); ++h) {
    steady_frequencies_[h] = min_frequency_for_time(
        job, h, target, options_.frequency_step_ghz);
    job.host(h).set_frequency_cap(steady_frequencies_[h]);
  }
  tuned_ = true;
}

void EnergyEfficientAgent::observe(sim::JobSimulation& job,
                                   const sim::IterationResult& result) {
  static_cast<void>(job);
  static_cast<void>(result);
  has_observation_ = true;
}

}  // namespace ps::runtime
