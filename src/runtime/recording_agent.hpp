#pragma once

#include <memory>

#include "runtime/agent.hpp"
#include "sim/telemetry.hpp"

namespace ps::runtime {

/// Decorator agent: forwards every hook to an inner agent and records a
/// per-iteration trace (iteration time, per-host power and caps) into a
/// TraceRecorder — the "geopmread --trace" counterpart. Composes with any
/// agent, e.g. RecordingAgent(PowerBalancerAgent(...)).
class RecordingAgent final : public Agent {
 public:
  /// `inner` may be null for a record-only (monitor-like) agent.
  /// `capacity` bounds the trace (0 = unbounded).
  explicit RecordingAgent(Agent* inner = nullptr, std::size_t capacity = 0);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "recording";
  }

  void setup(sim::JobSimulation& job) override;
  void adjust(sim::JobSimulation& job) override;
  void observe(sim::JobSimulation& job,
               const sim::IterationResult& result) override;

  /// The trace so far; columns: iteration_seconds, then per host
  /// power_<n> and cap_<n>. Throws ps::InvalidState before setup().
  [[nodiscard]] const sim::TraceRecorder& trace() const;

 private:
  Agent* inner_;
  std::size_t capacity_;
  std::unique_ptr<sim::TraceRecorder> trace_;
  double simulated_time_seconds_ = 0.0;
};

}  // namespace ps::runtime
