#pragma once

#include <cstddef>

#include "kernel/phased.hpp"
#include "runtime/agent.hpp"
#include "runtime/report.hpp"
#include "sim/job_sim.hpp"

namespace ps::runtime {

/// Drives a job under an agent for a fixed number of bulk-synchronous
/// iterations and assembles the GEOPM-style JobReport (the paper's
/// experiments run 100 iterations per benchmark configuration).
class Controller {
 public:
  /// `warmup_iterations` run before measurement starts (the balancer needs
  /// one observed iteration to rebalance; the paper's steady-state numbers
  /// exclude the ramp).
  explicit Controller(std::size_t iterations,
                      std::size_t warmup_iterations = 0);

  [[nodiscard]] JobReport run(sim::JobSimulation& job, Agent& agent) const;

  /// Multi-phase variant (paper future work): the job's workload is
  /// switched according to `phases` (repeating the sequence) before each
  /// iteration, and the agent sees each switch through adjust(). Runs
  /// this controller's iteration count; phase boundaries within the
  /// measured window are recorded in the report.
  [[nodiscard]] JobReport run_phases(
      sim::JobSimulation& job, Agent& agent,
      const kernel::PhasedWorkload& phases) const;

  [[nodiscard]] std::size_t iterations() const noexcept {
    return iterations_;
  }
  [[nodiscard]] std::size_t warmup_iterations() const noexcept {
    return warmup_;
  }

 private:
  /// Shared driver: `schedule(job, global_iteration, report_or_null)` is
  /// invoked before each iteration (warmup iterations pass nullptr).
  template <typename Schedule>
  JobReport run_with_schedule(sim::JobSimulation& job, Agent& agent,
                              Schedule&& schedule) const;

  std::size_t iterations_;
  std::size_t warmup_;
};

}  // namespace ps::runtime
