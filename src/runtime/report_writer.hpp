#pragma once

#include <iosfwd>
#include <string>

#include "runtime/report.hpp"

namespace ps::runtime {

/// Renders a JobReport in the spirit of a GEOPM report file: a header
/// block (job, agent, workload, totals) followed by one section per host
/// with its energy/time/power counters.
void write_text_report(std::ostream& out, const JobReport& report);
[[nodiscard]] std::string to_text_report(const JobReport& report);

/// Writes the per-host summary as CSV (one row per host) with a header
/// row — the format downstream analysis scripts ingest.
void write_host_csv(std::ostream& out, const JobReport& report);

/// Writes the per-iteration trace (iteration, seconds, joules) as CSV.
void write_trace_csv(std::ostream& out, const JobReport& report);

}  // namespace ps::runtime
