#include "runtime/report.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ps::runtime {

double JobReport::average_node_power_watts() const {
  if (elapsed_seconds <= 0.0 || hosts.empty()) {
    return 0.0;
  }
  return total_energy_joules / elapsed_seconds /
         static_cast<double>(hosts.size());
}

double JobReport::max_host_average_power_watts() const {
  PS_CHECK_STATE(!hosts.empty(), "report has no hosts");
  double best = hosts.front().average_power_watts;
  for (const auto& host : hosts) {
    best = std::max(best, host.average_power_watts);
  }
  return best;
}

double JobReport::min_host_average_power_watts() const {
  PS_CHECK_STATE(!hosts.empty(), "report has no hosts");
  double best = hosts.front().average_power_watts;
  for (const auto& host : hosts) {
    best = std::min(best, host.average_power_watts);
  }
  return best;
}

double JobReport::achieved_gflops() const {
  if (elapsed_seconds <= 0.0) {
    return 0.0;
  }
  return total_gflop / elapsed_seconds;
}

double JobReport::gflops_per_watt() const {
  if (total_energy_joules <= 0.0) {
    return 0.0;
  }
  return total_gflop / total_energy_joules;
}

double JobReport::energy_delay_product() const {
  return total_energy_joules * elapsed_seconds;
}

}  // namespace ps::runtime
