#include "runtime/power_balancer_agent.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ps::runtime {

double host_busy_seconds(const sim::JobSimulation& job, std::size_t host,
                         double node_cap_watts) {
  const auto& workload = job.workload();
  const hw::PhaseResult result = job.host(host).preview_compute(
      job.host_gigabytes(host), workload.intensity, workload.vector_width,
      node_cap_watts);
  return result.seconds;
}

double host_gpu_seconds(const sim::JobSimulation& job, std::size_t host,
                        double gpu_cap_watts) {
  return job.preview_gpu_seconds(host, gpu_cap_watts);
}

double min_gpu_cap_for_time(const sim::JobSimulation& job, std::size_t host,
                            double target_seconds,
                            const BalancerOptions& options) {
  PS_REQUIRE(target_seconds > 0.0, "target time must be positive");
  const double floor_cap = job.host_gpu_min_cap(host);
  const double ceil_cap = job.host_gpu_tdp(host);
  if (host_gpu_seconds(job, host, ceil_cap) > target_seconds) {
    return ceil_cap;  // Even full power cannot meet the target.
  }
  if (host_gpu_seconds(job, host, floor_cap) <= target_seconds) {
    return floor_cap;
  }
  double lo = floor_cap;  // gpu(lo) > target
  double hi = ceil_cap;   // gpu(hi) <= target
  while (hi - lo > options.cap_tolerance_watts) {
    const double mid = 0.5 * (lo + hi);
    if (host_gpu_seconds(job, host, mid) <= target_seconds) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

double uncapped_iteration_seconds(const sim::JobSimulation& job) {
  double critical = 0.0;
  for (std::size_t i = 0; i < job.host_count(); ++i) {
    double busy = host_busy_seconds(job, i, job.host(i).tdp());
    if (job.host_has_gpu_phase(i)) {
      busy = std::max(busy,
                      host_gpu_seconds(job, i, job.host_gpu_tdp(i)));
    }
    critical = std::max(critical, busy);
  }
  return critical;
}

double min_cap_for_time(const sim::JobSimulation& job, std::size_t host,
                        double target_seconds,
                        const BalancerOptions& options) {
  PS_REQUIRE(target_seconds > 0.0, "target time must be positive");
  const double floor_cap = job.host(host).min_cap();
  const double ceil_cap = job.host(host).tdp();
  if (host_busy_seconds(job, host, ceil_cap) > target_seconds) {
    return ceil_cap;  // Even full power cannot meet the target.
  }
  if (host_busy_seconds(job, host, floor_cap) <= target_seconds) {
    return floor_cap;
  }
  double lo = floor_cap;   // busy(lo) > target
  double hi = ceil_cap;    // busy(hi) <= target
  while (hi - lo > options.cap_tolerance_watts) {
    const double mid = 0.5 * (lo + hi);
    if (host_busy_seconds(job, host, mid) <= target_seconds) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

std::vector<double> balance_power(const sim::JobSimulation& job,
                                  double job_budget_watts,
                                  const BalancerOptions& options) {
  PS_REQUIRE(job_budget_watts > 0.0, "job budget must be positive");
  const std::size_t hosts = job.host_count();

  // Fastest conceivable iteration: every host uncapped (at TDP); slowest
  // useful target: every host at its settable floor.
  double best_time = 0.0;
  double worst_time = 0.0;
  double floor_power = 0.0;
  for (std::size_t i = 0; i < hosts; ++i) {
    best_time = std::max(best_time,
                         host_busy_seconds(job, i, job.host(i).tdp()));
    worst_time = std::max(worst_time,
                          host_busy_seconds(job, i, job.host(i).min_cap()));
    floor_power += job.host(i).min_cap();
  }

  std::vector<double> caps(hosts);
  const auto caps_for_time = [&](double target) {
    double total = 0.0;
    for (std::size_t i = 0; i < hosts; ++i) {
      caps[i] = min_cap_for_time(job, i, target, options);
      total += caps[i];
    }
    return total;
  };

  if (job_budget_watts <= floor_power) {
    // The budget cannot be honored; everything runs at the floor.
    caps_for_time(worst_time);
    for (std::size_t i = 0; i < hosts; ++i) {
      caps[i] = job.host(i).min_cap();
    }
    return caps;
  }

  // The balancer trades `tolerated_slowdown` of iteration time for power:
  // it never targets anything faster than that, even with budget to spare.
  const double tolerated = best_time * (1.0 + options.tolerated_slowdown);
  if (caps_for_time(tolerated) <= job_budget_watts) {
    return caps;
  }

  double lo = tolerated;  // known to be infeasible within the budget
  double hi = worst_time * (1.0 + options.performance_epsilon);
  if (caps_for_time(hi) > job_budget_watts) {
    // Budget is between the floor and the floor-speed demand; run at floor.
    for (std::size_t i = 0; i < hosts; ++i) {
      caps[i] = job.host(i).min_cap();
    }
    return caps;
  }
  // Invariant: caps_for_time(hi) fits the budget; lo may not.
  while (hi - lo > options.time_tolerance * best_time) {
    const double mid = 0.5 * (lo + hi);
    if (caps_for_time(mid) <= job_budget_watts) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  caps_for_time(hi * (1.0 + options.performance_epsilon));
  return caps;
}

PowerBalancerAgent::PowerBalancerAgent(double job_budget_watts,
                                       const BalancerOptions& options)
    : budget_watts_(job_budget_watts), options_(options) {
  PS_REQUIRE(job_budget_watts > 0.0, "job power budget must be positive");
}

void PowerBalancerAgent::setup(sim::JobSimulation& job) {
  const double per_host =
      budget_watts_ / static_cast<double>(job.host_count());
  for (std::size_t i = 0; i < job.host_count(); ++i) {
    job.set_host_cap(i, per_host);
  }
  has_observation_ = false;
  balanced_ = false;
  steady_caps_.clear();
}

void PowerBalancerAgent::adjust(sim::JobSimulation& job) {
  if (!has_observation_ || balanced_) {
    return;
  }
  steady_caps_ = balance_power(job, budget_watts_, options_);
  for (std::size_t i = 0; i < job.host_count(); ++i) {
    job.set_host_cap(i, steady_caps_[i]);
  }
  balanced_ = true;
}

void PowerBalancerAgent::observe(sim::JobSimulation& job,
                                 const sim::IterationResult& result) {
  static_cast<void>(job);
  static_cast<void>(result);
  has_observation_ = true;
}

}  // namespace ps::runtime
