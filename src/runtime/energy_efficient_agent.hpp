#pragma once

#include <vector>

#include "runtime/agent.hpp"

namespace ps::runtime {

/// Tuning knobs for the DVFS search.
struct EnergyEfficientOptions {
  /// Allowed per-host slowdown relative to its uncapped-frequency time.
  double performance_tolerance = 0.035;
  /// Granularity of the frequency search, GHz.
  double frequency_step_ghz = 0.025;
};

/// GEOPM "energy efficient" agent analogue: instead of power caps, it
/// programs per-host DVFS frequency ceilings, lowering frequency wherever
/// the roofline says performance barely depends on it (memory-bound hosts
/// and barrier-waiting hosts) within a configured performance tolerance.
///
/// Power capping and frequency capping reach similar steady states on
/// steady workloads; the ext_dvfs_vs_capping bench quantifies the gap.
class EnergyEfficientAgent final : public Agent {
 public:
  explicit EnergyEfficientAgent(const EnergyEfficientOptions& options = {});

  [[nodiscard]] std::string_view name() const noexcept override {
    return "energy_efficient";
  }

  void setup(sim::JobSimulation& job) override;
  void adjust(sim::JobSimulation& job) override;
  void observe(sim::JobSimulation& job,
               const sim::IterationResult& result) override;

  [[nodiscard]] bool tuned() const noexcept { return tuned_; }
  /// Frequency ceilings chosen by the last tuning pass (empty before).
  [[nodiscard]] const std::vector<double>& steady_frequencies()
      const noexcept {
    return steady_frequencies_;
  }

 private:
  EnergyEfficientOptions options_;
  bool has_observation_ = false;
  bool tuned_ = false;
  std::vector<double> steady_frequencies_;
};

/// Lowest frequency cap (>= f_min) at which `host` still finishes its
/// per-iteration work within `target_seconds` under its current power
/// cap. Exposed for tests and for the DVFS bench.
[[nodiscard]] double min_frequency_for_time(
    const sim::JobSimulation& job, std::size_t host, double target_seconds,
    double step_ghz = 0.025);

}  // namespace ps::runtime
