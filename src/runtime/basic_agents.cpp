#include "runtime/basic_agents.hpp"

#include "util/error.hpp"

namespace ps::runtime {

PowerGovernorAgent::PowerGovernorAgent(double job_budget_watts)
    : budget_watts_(job_budget_watts) {
  PS_REQUIRE(job_budget_watts > 0.0, "job power budget must be positive");
}

void PowerGovernorAgent::setup(sim::JobSimulation& job) {
  const double per_host =
      budget_watts_ / static_cast<double>(job.host_count());
  for (std::size_t i = 0; i < job.host_count(); ++i) {
    job.set_host_cap(i, per_host);
  }
}

}  // namespace ps::runtime
