#include "runtime/agent_registry.hpp"

#include "runtime/agent_tree.hpp"
#include "runtime/basic_agents.hpp"
#include "runtime/energy_efficient_agent.hpp"
#include "runtime/feedback_agent.hpp"
#include "runtime/power_balancer_agent.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace ps::runtime {

std::string_view to_string(AgentKind kind) noexcept {
  switch (kind) {
    case AgentKind::kMonitor:
      return "monitor";
    case AgentKind::kPowerGovernor:
      return "power_governor";
    case AgentKind::kPowerBalancer:
      return "power_balancer";
    case AgentKind::kTreeBalancer:
      return "tree_balancer";
    case AgentKind::kFeedbackShifter:
      return "feedback_shifter";
    case AgentKind::kEnergyEfficient:
      return "energy_efficient";
  }
  return "?";
}

std::vector<AgentKind> all_agent_kinds() {
  return {AgentKind::kMonitor,        AgentKind::kPowerGovernor,
          AgentKind::kPowerBalancer,  AgentKind::kTreeBalancer,
          AgentKind::kFeedbackShifter, AgentKind::kEnergyEfficient};
}

AgentKind agent_kind_from_name(std::string_view name) {
  for (AgentKind kind : all_agent_kinds()) {
    if (util::iequals(name, to_string(kind))) {
      return kind;
    }
  }
  throw NotFound("unknown agent '" + std::string(name) + "'");
}

std::unique_ptr<Agent> make_agent(AgentKind kind,
                                  double job_budget_watts) {
  switch (kind) {
    case AgentKind::kMonitor:
      return std::make_unique<MonitorAgent>();
    case AgentKind::kPowerGovernor:
      return std::make_unique<PowerGovernorAgent>(job_budget_watts);
    case AgentKind::kPowerBalancer:
      return std::make_unique<PowerBalancerAgent>(job_budget_watts);
    case AgentKind::kTreeBalancer:
      return std::make_unique<TreeBalancerAgent>(job_budget_watts);
    case AgentKind::kFeedbackShifter:
      return std::make_unique<FeedbackPowerAgent>(job_budget_watts);
    case AgentKind::kEnergyEfficient:
      return std::make_unique<EnergyEfficientAgent>();
  }
  throw InvalidArgument("unknown agent kind");
}

}  // namespace ps::runtime
