#include "runtime/characterization_io.hpp"

#include <algorithm>
#include <map>
#include <ostream>

#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace ps::runtime {

namespace {
constexpr std::string_view kHeader =
    "job,host,monitor_watts,needed_watts,min_cap_watts";

void write_rows(std::ostream& out, const std::string& job,
                const JobCharacterization& data) {
  util::CsvWriter csv(out);
  for (std::size_t h = 0; h < data.host_count; ++h) {
    csv.write_row(
        {job, std::to_string(h),
         util::format_fixed(data.monitor.host_average_power_watts[h], 3),
         util::format_fixed(data.balancer.host_needed_power_watts[h], 3),
         util::format_fixed(data.min_settable_cap_watts, 3)});
  }
}

/// Recomputes the aggregate fields from the per-host vectors.
void finalize(JobCharacterization& data) {
  data.host_count = data.monitor.host_average_power_watts.size();
  PS_REQUIRE(data.host_count > 0, "characterization has no hosts");
  const auto& monitor = data.monitor.host_average_power_watts;
  const auto& needed = data.balancer.host_needed_power_watts;
  data.monitor.max_host_power_watts =
      *std::max_element(monitor.begin(), monitor.end());
  data.monitor.min_host_power_watts =
      *std::min_element(monitor.begin(), monitor.end());
  data.balancer.max_host_needed_watts =
      *std::max_element(needed.begin(), needed.end());
  data.balancer.min_host_needed_watts =
      *std::min_element(needed.begin(), needed.end());
  double monitor_total = 0.0;
  for (double w : monitor) {
    monitor_total += w;
  }
  data.monitor.average_node_power_watts =
      monitor_total / static_cast<double>(data.host_count);
  data.balancer.host_average_power_watts = needed;
  double needed_total = 0.0;
  for (double w : needed) {
    needed_total += w;
  }
  data.balancer.average_node_power_watts =
      needed_total / static_cast<double>(data.host_count);
}
}  // namespace

void write_characterization_csv(std::ostream& out, const std::string& job,
                                const JobCharacterization& data) {
  PS_REQUIRE(data.host_count ==
                     data.monitor.host_average_power_watts.size() &&
                 data.host_count ==
                     data.balancer.host_needed_power_watts.size(),
             "characterization host vectors are inconsistent");
  out << kHeader << '\n';
  write_rows(out, job, data);
}

void write_store_csv(std::ostream& out, const CharacterizationStore& store,
                     const std::vector<std::string>& job_names) {
  out << kHeader << '\n';
  for (const std::string& job : job_names) {
    write_rows(out, job, store.get(job));
  }
}

CharacterizationStore read_store_csv(std::string_view text) {
  std::map<std::string, JobCharacterization> partial;
  std::size_t line_number = 0;
  for (const std::string& line : util::split(text, '\n')) {
    ++line_number;
    const std::string_view trimmed = util::trim(line);
    if (trimmed.empty() || trimmed == kHeader) {
      continue;
    }
    const std::vector<std::string> fields = util::split(trimmed, ',');
    PS_REQUIRE(fields.size() == 5, "characterization CSV line " +
                                       std::to_string(line_number) +
                                       " needs 5 fields");
    double monitor = 0.0;
    double needed = 0.0;
    double min_cap = 0.0;
    std::size_t host = 0;
    try {
      host = std::stoul(fields[1]);
      monitor = std::stod(fields[2]);
      needed = std::stod(fields[3]);
      min_cap = std::stod(fields[4]);
    } catch (const std::exception&) {
      throw InvalidArgument("characterization CSV line " +
                            std::to_string(line_number) +
                            " is not numeric");
    }
    JobCharacterization& data = partial[fields[0]];
    PS_REQUIRE(host == data.monitor.host_average_power_watts.size(),
               "characterization CSV line " + std::to_string(line_number) +
                   " breaks host ordering");
    data.monitor.host_average_power_watts.push_back(monitor);
    data.balancer.host_needed_power_watts.push_back(needed);
    data.min_settable_cap_watts = min_cap;
    data.monitor.workload_name = fields[0];
    data.balancer.workload_name = fields[0];
  }
  CharacterizationStore store;
  for (auto& [job, data] : partial) {
    finalize(data);
    store.put(job, std::move(data));
  }
  return store;
}

}  // namespace ps::runtime
