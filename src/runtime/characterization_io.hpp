#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "runtime/characterization.hpp"

namespace ps::runtime {

/// Serializes one job characterization as CSV: a header row, then one row
/// per host:
///
///   job,host,monitor_watts,needed_watts,min_cap_watts
///   lulesh-512,0,214.125,186.000,152.000
///
/// A site keeps exactly this per (workload, node-set) from prior runs —
/// the paper's pre-characterization data at rest.
void write_characterization_csv(std::ostream& out, const std::string& job,
                                const JobCharacterization& data);

/// Serializes a whole store (rows of all jobs under one header).
void write_store_csv(std::ostream& out, const CharacterizationStore& store,
                     const std::vector<std::string>& job_names);

/// Parses rows produced by the writers back into a store. Aggregate
/// fields (min/max/needed totals) are recomputed from the host rows.
/// Throws ps::InvalidArgument on malformed rows or inconsistent host
/// numbering.
[[nodiscard]] CharacterizationStore read_store_csv(std::string_view text);

}  // namespace ps::runtime
