#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "runtime/agent.hpp"

namespace ps::runtime {

/// The agent plugins this runtime ships, in the GEOPM sense of
/// `geopmlaunch --geopm-agent=<name>`.
enum class AgentKind {
  kMonitor,          ///< Observe only.
  kPowerGovernor,    ///< Uniform power caps.
  kPowerBalancer,    ///< Model-driven global search (the paper's agent).
  kTreeBalancer,     ///< Hierarchical search over the aggregation tree.
  kFeedbackShifter,  ///< Measurement-only closed-loop control.
  kEnergyEfficient,  ///< DVFS frequency ceilings instead of power caps.
};

[[nodiscard]] std::string_view to_string(AgentKind kind) noexcept;
[[nodiscard]] std::vector<AgentKind> all_agent_kinds();

/// Looks an agent up by its name ("power_balancer", ...). Throws
/// ps::NotFound for unknown names.
[[nodiscard]] AgentKind agent_kind_from_name(std::string_view name);

/// Instantiates an agent. `job_budget_watts` is required by the
/// budget-driven agents (governor / balancers / shifter) and ignored by
/// monitor and energy_efficient.
[[nodiscard]] std::unique_ptr<Agent> make_agent(AgentKind kind,
                                                double job_budget_watts);

}  // namespace ps::runtime
