#include "runtime/recording_agent.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ps::runtime {

RecordingAgent::RecordingAgent(Agent* inner, std::size_t capacity)
    : inner_(inner), capacity_(capacity) {}

void RecordingAgent::setup(sim::JobSimulation& job) {
  std::vector<std::string> columns;
  columns.emplace_back("iteration_seconds");
  for (std::size_t h = 0; h < job.host_count(); ++h) {
    columns.push_back("power_" + std::to_string(job.host(h).id()));
  }
  for (std::size_t h = 0; h < job.host_count(); ++h) {
    columns.push_back("cap_" + std::to_string(job.host(h).id()));
  }
  trace_ = std::make_unique<sim::TraceRecorder>(std::move(columns),
                                                capacity_);
  simulated_time_seconds_ = 0.0;
  if (inner_ != nullptr) {
    inner_->setup(job);
  }
}

void RecordingAgent::adjust(sim::JobSimulation& job) {
  if (inner_ != nullptr) {
    inner_->adjust(job);
  }
}

void RecordingAgent::observe(sim::JobSimulation& job,
                             const sim::IterationResult& result) {
  PS_CHECK_STATE(trace_ != nullptr, "observe before setup");
  // Validate before accumulating: a NaN or negative iteration time would
  // otherwise corrupt the running timestamp even though the recorder
  // rejects the row, leaving every later row mis-stamped.
  PS_REQUIRE(std::isfinite(result.iteration_seconds) &&
                 result.iteration_seconds >= 0.0,
             "iteration time must be finite and non-negative");
  PS_REQUIRE(result.hosts.size() == job.host_count(),
             "iteration result must cover every host");
  simulated_time_seconds_ += result.iteration_seconds;
  std::vector<double> row;
  row.reserve(1 + 2 * job.host_count());
  row.push_back(result.iteration_seconds);
  for (const auto& host : result.hosts) {
    row.push_back(host.average_power_watts);
  }
  for (std::size_t h = 0; h < job.host_count(); ++h) {
    row.push_back(job.host_cap(h));
  }
  trace_->append(simulated_time_seconds_, row);
  if (inner_ != nullptr) {
    inner_->observe(job, result);
  }
}

const sim::TraceRecorder& RecordingAgent::trace() const {
  PS_CHECK_STATE(trace_ != nullptr, "no trace before setup");
  return *trace_;
}

}  // namespace ps::runtime
