#pragma once

#include <vector>

#include "runtime/agent.hpp"

namespace ps::runtime {

/// Tuning knobs for the power-balancer search.
struct BalancerOptions {
  /// Binary-search precision on per-host caps, in watts.
  double cap_tolerance_watts = 0.05;
  /// Relative precision of the iteration-time bisection.
  double time_tolerance = 1e-4;
  /// Numerical slack applied to the final bisection target so caps do not
  /// sit on a knife edge.
  double performance_epsilon = 1e-3;
  /// Iteration-time degradation (relative to the uncapped critical path)
  /// the balancer trades for power: it "reduces the power limit where it
  /// does not [meaningfully] impact performance". Calibrated at 3.5% so
  /// that memory-bound hosts are trimmed to ~186 W, matching the per-node
  /// demand implied by the paper's Table III budgets.
  double tolerated_slowdown = 0.035;
};

/// Lowest cap (>= the node's min settable cap) at which `host` of `job`
/// finishes its per-iteration work within `target_seconds`. Returns the
/// node TDP if even TDP cannot meet the target. Pure query (preview only).
[[nodiscard]] double min_cap_for_time(const sim::JobSimulation& job,
                                      std::size_t host,
                                      double target_seconds,
                                      const BalancerOptions& options = {});

/// Per-iteration busy time of `host` under `node_cap_watts` (preview).
[[nodiscard]] double host_busy_seconds(const sim::JobSimulation& job,
                                       std::size_t host,
                                       double node_cap_watts);

/// Per-iteration GPU-phase time of `host` under a node-level GPU cap
/// (preview). Requires a host with a GPU phase.
[[nodiscard]] double host_gpu_seconds(const sim::JobSimulation& job,
                                      std::size_t host,
                                      double gpu_cap_watts);

/// GPU-domain analogue of min_cap_for_time: the lowest node-level GPU cap
/// at which `host`'s offloaded phase finishes within `target_seconds`.
/// Returns the host's GPU TDP when even TDP cannot meet the target.
[[nodiscard]] double min_gpu_cap_for_time(const sim::JobSimulation& job,
                                          std::size_t host,
                                          double target_seconds,
                                          const BalancerOptions& options = {});

/// Critical-path iteration time with every domain uncapped (CPU at TDP,
/// GPUs at their TDP) — the hetero baseline for slack targets.
[[nodiscard]] double uncapped_iteration_seconds(const sim::JobSimulation& job);

/// The balancer's core search (paper Section III-A): finds the distribution
/// of `job_budget_watts` across the job's hosts that minimizes the
/// bulk-synchronous iteration time, by bisecting on the achievable
/// iteration time T and setting each host to its min_cap_for_time(T).
///
/// Returns one cap per host; the sum never exceeds max(job_budget_watts,
/// hosts * min_settable_cap) — like real RAPL, a budget below the floor
/// cannot be honored.
[[nodiscard]] std::vector<double> balance_power(
    const sim::JobSimulation& job, double job_budget_watts,
    const BalancerOptions& options = {});

/// GEOPM "power_balancer" agent: reduces the power limit where it does not
/// impact performance and redistributes that power where it can improve
/// performance, during execution (paper Section III-A).
///
/// The agent starts from a uniform distribution of the job budget, then on
/// the first observed iteration runs the balance_power search and applies
/// the resulting per-host caps. The model-driven search converges in one
/// step, so subsequent iterations run in the balanced steady state — the
/// "final power distribution" the paper's pre-characterization extracts.
class PowerBalancerAgent final : public Agent {
 public:
  explicit PowerBalancerAgent(double job_budget_watts,
                              const BalancerOptions& options = {});

  [[nodiscard]] std::string_view name() const noexcept override {
    return "power_balancer";
  }

  void setup(sim::JobSimulation& job) override;
  void adjust(sim::JobSimulation& job) override;
  void observe(sim::JobSimulation& job,
               const sim::IterationResult& result) override;

  [[nodiscard]] bool balanced() const noexcept { return balanced_; }
  [[nodiscard]] double job_budget() const noexcept { return budget_watts_; }
  /// Caps applied by the last rebalance (empty before it happens).
  [[nodiscard]] const std::vector<double>& steady_caps() const noexcept {
    return steady_caps_;
  }

 private:
  double budget_watts_;
  BalancerOptions options_;
  bool has_observation_ = false;
  bool balanced_ = false;
  std::vector<double> steady_caps_;
};

}  // namespace ps::runtime
