#include "fault/partition.hpp"

namespace ps::fault {

namespace {

std::chrono::steady_clock::rep deadline_in(
    std::chrono::milliseconds window) {
  return (std::chrono::steady_clock::now() + window).time_since_epoch()
      .count();
}

}  // namespace

void PartitionControl::isolate() noexcept {
  block_inbound();
  block_outbound();
}

void PartitionControl::block_inbound() noexcept {
  inbound_.store(true, std::memory_order_release);
}

void PartitionControl::block_outbound() noexcept {
  outbound_.store(true, std::memory_order_release);
}

void PartitionControl::heal() noexcept {
  inbound_.store(false, std::memory_order_release);
  outbound_.store(false, std::memory_order_release);
  inbound_until_.store(0, std::memory_order_release);
  outbound_until_.store(0, std::memory_order_release);
}

void PartitionControl::isolate_for(
    std::chrono::milliseconds window) noexcept {
  block_inbound_for(window);
  block_outbound_for(window);
}

void PartitionControl::block_inbound_for(
    std::chrono::milliseconds window) noexcept {
  inbound_until_.store(deadline_in(window), std::memory_order_release);
}

void PartitionControl::block_outbound_for(
    std::chrono::milliseconds window) noexcept {
  outbound_until_.store(deadline_in(window), std::memory_order_release);
}

bool PartitionControl::window_open(
    const std::atomic<Clock::rep>& until) noexcept {
  const Clock::rep deadline = until.load(std::memory_order_acquire);
  return deadline != 0 &&
         Clock::now().time_since_epoch().count() < deadline;
}

bool PartitionControl::inbound_blocked() const noexcept {
  return inbound_.load(std::memory_order_acquire) ||
         window_open(inbound_until_);
}

bool PartitionControl::outbound_blocked() const noexcept {
  return outbound_.load(std::memory_order_acquire) ||
         window_open(outbound_until_);
}

}  // namespace ps::fault
