#pragma once

#include <array>
#include <memory>
#include <string>

#include "fault/fault_plan.hpp"
#include "net/transport.hpp"

namespace ps::fault {

/// A net::Transport decorator that injects the FaultPlan's schedule into
/// a live connection: drops (the peer resets), partial reads/writes,
/// single-bit corruption of inbound payload bytes, duplicated outbound
/// frames, and bounded spurious would-blocks. Both the daemon (via
/// DaemonOptions::transport_wrapper) and the client (via a
/// TransportConnector) can wear it.
///
/// The decorator is frame-aware: it parses the length-prefixed stream in
/// both directions so corruption only ever lands on payload bytes (a
/// corrupted length prefix could stall the stream for megabytes before
/// the CRC notices — a wedge, not a recoverable fault) and duplication
/// replays exactly one whole frame (mid-frame splices would desync the
/// stream rather than exercise the receiver's duplicate handling).
///
/// The plan is shared: a client that reconnects wears a fresh
/// FaultyTransport over the same plan, so the injection budget spans the
/// whole scenario and the schedule stays reproducible from one seed.
class FaultyTransport final : public net::Transport {
 public:
  FaultyTransport(std::unique_ptr<net::Transport> inner,
                  std::shared_ptr<FaultPlan> plan);

  [[nodiscard]] int fd() const noexcept override { return inner_->fd(); }
  [[nodiscard]] bool valid() const noexcept override {
    return inner_->valid();
  }
  void close() noexcept override { inner_->close(); }

  net::IoResult read_some(char* out, std::size_t max_bytes) override;
  net::IoResult write_some(std::string_view bytes) override;

  [[nodiscard]] bool wait_readable(
      std::chrono::milliseconds timeout) override {
    return inner_->wait_readable(timeout);
  }
  [[nodiscard]] bool wait_writable(
      std::chrono::milliseconds timeout) override {
    return inner_->wait_writable(timeout);
  }

  [[nodiscard]] const FaultPlan& plan() const noexcept { return *plan_; }

 private:
  void track_outbound(std::string_view accepted);
  void complete_outbound_frame();

  std::unique_ptr<net::Transport> inner_;
  std::shared_ptr<FaultPlan> plan_;

  // Inbound stream position (header = 4 length + 4 CRC bytes, then
  // payload): lets corruption pick payload bytes only.
  std::size_t in_header_seen_ = 0;
  std::array<unsigned char, 4> in_length_bytes_{};
  std::size_t in_payload_left_ = 0;

  // Outbound frame reassembly for kDuplicateFrame.
  std::size_t out_header_seen_ = 0;
  std::array<unsigned char, 4> out_length_bytes_{};
  std::size_t out_payload_left_ = 0;
  std::string out_frame_;
  bool duplicate_armed_ = false;
  std::string pending_injection_;  ///< Duplicate bytes awaiting the wire.
};

/// Wraps `inner` in a FaultyTransport over `plan`.
[[nodiscard]] std::unique_ptr<net::Transport> make_faulty_transport(
    std::unique_ptr<net::Transport> inner, std::shared_ptr<FaultPlan> plan);

}  // namespace ps::fault
