#pragma once

#include <array>
#include <chrono>
#include <memory>
#include <string>

#include "fault/fault_plan.hpp"
#include "fault/partition.hpp"
#include "net/transport.hpp"

namespace ps::fault {

/// A net::Transport decorator that injects the FaultPlan's schedule into
/// a live connection: drops (the peer resets), partial reads/writes,
/// single-bit corruption of inbound payload bytes, duplicated outbound
/// frames, and bounded spurious would-blocks. Both the daemon (via
/// DaemonOptions::transport_wrapper) and the client (via a
/// TransportConnector) can wear it.
///
/// The decorator is frame-aware: it parses the length-prefixed stream in
/// both directions so corruption only ever lands on payload bytes (a
/// corrupted length prefix could stall the stream for megabytes before
/// the CRC notices — a wedge, not a recoverable fault) and duplication
/// replays exactly one whole frame (mid-frame splices would desync the
/// stream rather than exercise the receiver's duplicate handling).
///
/// The plan is shared: a client that reconnects wears a fresh
/// FaultyTransport over the same plan, so the injection budget spans the
/// whole scenario and the schedule stays reproducible from one seed.
///
/// An optional PartitionControl adds unbudgeted partition windows on top
/// of the plan's faults. While the inbound direction is blocked the
/// decorator drains the inner socket into a holding buffer (so a poll
/// loop on the raw fd does not spin hot on undeliverable data) and
/// reports would-block; healing delivers the held bytes through the
/// normal fault pipeline, like a switch flushing its queues. A blocked
/// outbound direction refuses writes outright — the peer simply never
/// hears from us. Partition-wearing transports belong on synchronous
/// (client-driven) endpoints: an event loop flushing its outbox through
/// a blocked outbound side would busy-poll on a writable socket.
class FaultyTransport final : public net::Transport {
 public:
  FaultyTransport(std::unique_ptr<net::Transport> inner,
                  std::shared_ptr<FaultPlan> plan);
  FaultyTransport(std::unique_ptr<net::Transport> inner,
                  std::shared_ptr<FaultPlan> plan,
                  std::shared_ptr<PartitionControl> partition);

  [[nodiscard]] int fd() const noexcept override { return inner_->fd(); }
  [[nodiscard]] bool valid() const noexcept override {
    return inner_->valid();
  }
  void close() noexcept override { inner_->close(); }

  net::IoResult read_some(char* out, std::size_t max_bytes) override;
  net::IoResult write_some(std::string_view bytes) override;

  /// With a partition attached these wait out blocked windows in short
  /// naps so a heal is observed promptly (instead of sleeping the whole
  /// timeout on a socket whose readability we must not act on).
  [[nodiscard]] bool wait_readable(
      std::chrono::milliseconds timeout) override;
  [[nodiscard]] bool wait_writable(
      std::chrono::milliseconds timeout) override;

  [[nodiscard]] const FaultPlan& plan() const noexcept { return *plan_; }

 private:
  using Clock = std::chrono::steady_clock;

  void track_outbound(std::string_view accepted);
  void complete_outbound_frame();
  /// Drains the inner socket into held_ while inbound is blocked.
  void capture_inbound();

  std::unique_ptr<net::Transport> inner_;
  std::shared_ptr<FaultPlan> plan_;
  std::shared_ptr<PartitionControl> partition_;
  std::string held_;  ///< Bytes captured during an inbound block.

  // Inbound stream position (header = 4 length + 4 CRC bytes, then
  // payload): lets corruption pick payload bytes only.
  std::size_t in_header_seen_ = 0;
  std::array<unsigned char, 4> in_length_bytes_{};
  std::size_t in_payload_left_ = 0;

  // Outbound frame reassembly for kDuplicateFrame.
  std::size_t out_header_seen_ = 0;
  std::array<unsigned char, 4> out_length_bytes_{};
  std::size_t out_payload_left_ = 0;
  std::string out_frame_;
  bool duplicate_armed_ = false;
  std::string pending_injection_;  ///< Duplicate bytes awaiting the wire.
};

/// Wraps `inner` in a FaultyTransport over `plan`.
[[nodiscard]] std::unique_ptr<net::Transport> make_faulty_transport(
    std::unique_ptr<net::Transport> inner, std::shared_ptr<FaultPlan> plan);

/// Same, with a partition switchboard attached (may be null).
[[nodiscard]] std::unique_ptr<net::Transport> make_faulty_transport(
    std::unique_ptr<net::Transport> inner, std::shared_ptr<FaultPlan> plan,
    std::shared_ptr<PartitionControl> partition);

}  // namespace ps::fault
