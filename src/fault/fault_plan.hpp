#pragma once

#include <cstdint>
#include <cstddef>

#include "util/rng.hpp"

namespace ps::fault {

/// Which side of the byte stream an operation touches.
enum class FaultOp { kRead, kWrite };

/// The fault injected into one transport operation. Read operations can
/// draw kDrop / kPartial / kDelay / kCorrupt; write operations can draw
/// kDrop / kPartial / kDelay / kDuplicateFrame.
enum class FaultKind {
  kNone,
  kDrop,            ///< The connection resets under the operation.
  kPartial,         ///< The operation moves only a few bytes.
  kCorrupt,         ///< One inbound payload byte is flipped.
  kDuplicateFrame,  ///< The just-completed outbound frame is sent twice.
  kDelay,           ///< The operation spuriously reports would-block.
};

/// Everything a FaultPlan needs to be reproducible: one seed plus the
/// per-operation probabilities and the global injection budget. The
/// budget is what guarantees healing — once max_faults injections have
/// been drawn, the plan goes permanently quiet and the protocol's
/// recovery machinery (reconnect, resend, CRC) converges the system.
struct FaultSpec {
  std::uint64_t seed = 1;
  /// Operations before the first fault may be drawn (lets a session
  /// register and bootstrap cleanly when a scenario wants that).
  std::size_t warmup_ops = 0;
  /// Total injections across all kinds; 0 means the plan never fires.
  std::size_t max_faults = 8;
  double drop_probability = 0.0;
  double partial_probability = 0.0;
  double corrupt_probability = 0.0;
  double duplicate_probability = 0.0;
  double delay_probability = 0.0;
  /// kDelay reports would-block on data that is actually ready, so it
  /// must be bounded to keep pollers from spinning forever.
  std::size_t max_consecutive_delays = 2;
};

struct FaultStats {
  std::size_t ops = 0;
  std::size_t drops = 0;
  std::size_t partials = 0;
  std::size_t corruptions = 0;
  std::size_t duplicates = 0;
  std::size_t delays = 0;

  [[nodiscard]] std::size_t injected() const noexcept {
    return drops + partials + corruptions + duplicates + delays;
  }
};

/// A deterministic schedule of faults: the decision sequence is a pure
/// function of the spec (seed included), so a failing run replays from
/// its seed. Decisions are drawn per operation; fork() derives an
/// independent child plan (stable for a given label) so each client in a
/// fleet gets its own reproducible schedule from one scenario seed.
class FaultPlan {
 public:
  explicit FaultPlan(const FaultSpec& spec);

  /// Draws the fault for the next operation on `op`'s side.
  [[nodiscard]] FaultKind next(FaultOp op);

  /// For kPartial: how many bytes the operation is allowed to move
  /// (1..min(8, want); `want` must be > 0).
  [[nodiscard]] std::size_t partial_bytes(std::size_t want);

  /// For kCorrupt: which of `count` candidate payload bytes to flip.
  [[nodiscard]] std::size_t corrupt_offset(std::size_t count);

  /// True once the injection budget is spent: the plan is quiet forever.
  [[nodiscard]] bool exhausted() const noexcept {
    return stats_.injected() >= spec_.max_faults;
  }

  [[nodiscard]] const FaultStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const FaultSpec& spec() const noexcept { return spec_; }

  /// Derives an independent child plan with the same probabilities.
  [[nodiscard]] FaultPlan fork(std::uint64_t label) const;

 private:
  FaultSpec spec_;
  util::Rng rng_;
  FaultStats stats_;
  std::size_t consecutive_delays_ = 0;
};

}  // namespace ps::fault
