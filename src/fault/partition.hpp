#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace ps::fault {

/// A thread-safe switchboard for network partitions. One PartitionControl
/// describes the link state of a single peering as seen from the side
/// that wears the partition-aware FaultyTransport: `inbound` blocks bytes
/// flowing peer -> us, `outbound` blocks us -> peer. Blocking both
/// directions isolates the peer; blocking one direction models the
/// asymmetric partitions real networks produce (a host that can send
/// heartbeats but never hears acks, and vice versa).
///
/// Unlike FaultPlan faults — which consume a bounded budget so scenarios
/// are guaranteed to heal — a partition holds until heal() or until its
/// scheduled window expires. The chaos harness flips these switches from
/// the test thread while transports are mid-exchange on worker threads,
/// hence the atomics: a flip is visible to the very next read/write on
/// the wire, with no lock shared with the data path.
class PartitionControl {
 public:
  /// Blocks both directions until heal().
  void isolate() noexcept;
  void block_inbound() noexcept;
  void block_outbound() noexcept;
  /// Reopens both directions and cancels any scheduled windows. Bytes a
  /// transport captured while its inbound side was blocked are not lost:
  /// they sit in that transport's holding buffer and are delivered on
  /// the next read, exactly like a healed link flushing switch queues.
  void heal() noexcept;

  /// Scheduled windows: block now, auto-heal once `window` elapses. The
  /// transports themselves observe the expiry, so no timer thread is
  /// needed and healing is race-free with an explicit heal().
  void isolate_for(std::chrono::milliseconds window) noexcept;
  void block_inbound_for(std::chrono::milliseconds window) noexcept;
  void block_outbound_for(std::chrono::milliseconds window) noexcept;

  [[nodiscard]] bool inbound_blocked() const noexcept;
  [[nodiscard]] bool outbound_blocked() const noexcept;

  /// Data-path traffic refused so far (reads/writes that hit a closed
  /// direction) — lets tests assert a partition actually bit.
  [[nodiscard]] std::uint64_t blocked_reads() const noexcept {
    return blocked_reads_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t blocked_writes() const noexcept {
    return blocked_writes_.load(std::memory_order_relaxed);
  }

  void note_blocked_read() noexcept {
    blocked_reads_.fetch_add(1, std::memory_order_relaxed);
  }
  void note_blocked_write() noexcept {
    blocked_writes_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  using Clock = std::chrono::steady_clock;

  [[nodiscard]] static bool window_open(
      const std::atomic<Clock::rep>& until) noexcept;

  std::atomic<bool> inbound_{false};
  std::atomic<bool> outbound_{false};
  /// Scheduled-window deadlines as steady_clock ticks; 0 = no window.
  std::atomic<Clock::rep> inbound_until_{0};
  std::atomic<Clock::rep> outbound_until_{0};
  std::atomic<std::uint64_t> blocked_reads_{0};
  std::atomic<std::uint64_t> blocked_writes_{0};
};

}  // namespace ps::fault
