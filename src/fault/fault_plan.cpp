#include "fault/fault_plan.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ps::fault {

namespace {
void require_probability(double p, const char* what) {
  PS_REQUIRE(p >= 0.0 && p <= 1.0,
             std::string(what) + " probability must be in [0, 1]");
}
}  // namespace

FaultPlan::FaultPlan(const FaultSpec& spec)
    : spec_(spec), rng_(spec.seed) {
  require_probability(spec.drop_probability, "drop");
  require_probability(spec.partial_probability, "partial");
  require_probability(spec.corrupt_probability, "corrupt");
  require_probability(spec.duplicate_probability, "duplicate");
  require_probability(spec.delay_probability, "delay");
  PS_REQUIRE(spec.drop_probability + spec.partial_probability +
                     spec.corrupt_probability + spec.duplicate_probability +
                     spec.delay_probability <=
                 1.0,
             "fault probabilities must sum to at most 1");
}

FaultKind FaultPlan::next(FaultOp op) {
  ++stats_.ops;
  // One draw per operation regardless of outcome, so the decision stream
  // stays aligned with the operation stream for a given seed.
  const double roll = rng_.uniform();
  if (stats_.ops <= spec_.warmup_ops || exhausted()) {
    consecutive_delays_ = 0;
    return FaultKind::kNone;
  }

  double cursor = spec_.drop_probability;
  if (roll < cursor) {
    consecutive_delays_ = 0;
    ++stats_.drops;
    return FaultKind::kDrop;
  }
  cursor += spec_.partial_probability;
  if (roll < cursor) {
    consecutive_delays_ = 0;
    ++stats_.partials;
    return FaultKind::kPartial;
  }
  cursor += spec_.delay_probability;
  if (roll < cursor) {
    if (consecutive_delays_ >= spec_.max_consecutive_delays) {
      return FaultKind::kNone;  // bounded: a poller must make progress
    }
    ++consecutive_delays_;
    ++stats_.delays;
    return FaultKind::kDelay;
  }
  consecutive_delays_ = 0;
  if (op == FaultOp::kRead) {
    cursor += spec_.corrupt_probability;
    if (roll < cursor) {
      ++stats_.corruptions;
      return FaultKind::kCorrupt;
    }
  } else {
    cursor += spec_.duplicate_probability;
    if (roll < cursor) {
      ++stats_.duplicates;
      return FaultKind::kDuplicateFrame;
    }
  }
  return FaultKind::kNone;
}

std::size_t FaultPlan::partial_bytes(std::size_t want) {
  PS_REQUIRE(want > 0, "partial operation needs at least one byte");
  const std::size_t cap = std::min<std::size_t>(want, 8);
  return 1 + static_cast<std::size_t>(rng_.uniform_index(cap));
}

std::size_t FaultPlan::corrupt_offset(std::size_t count) {
  PS_REQUIRE(count > 0, "corruption needs at least one candidate byte");
  return static_cast<std::size_t>(rng_.uniform_index(count));
}

FaultPlan FaultPlan::fork(std::uint64_t label) const {
  FaultPlan child(spec_);
  util::Rng parent = rng_;  // fork() draws state, so fork from a copy
  child.rng_ = parent.fork(label);
  return child;
}

}  // namespace ps::fault
