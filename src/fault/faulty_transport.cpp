#include "fault/faulty_transport.hpp"

#include <vector>

#include "util/error.hpp"

namespace ps::fault {

namespace {
std::size_t decode_be32(const std::array<unsigned char, 4>& bytes) {
  return (static_cast<std::size_t>(bytes[0]) << 24) |
         (static_cast<std::size_t>(bytes[1]) << 16) |
         (static_cast<std::size_t>(bytes[2]) << 8) |
         static_cast<std::size_t>(bytes[3]);
}
}  // namespace

FaultyTransport::FaultyTransport(std::unique_ptr<net::Transport> inner,
                                 std::shared_ptr<FaultPlan> plan)
    : inner_(std::move(inner)), plan_(std::move(plan)) {
  PS_REQUIRE(inner_ != nullptr, "faulty transport needs an inner transport");
  PS_REQUIRE(plan_ != nullptr, "faulty transport needs a fault plan");
}

net::IoResult FaultyTransport::read_some(char* out, std::size_t max_bytes) {
  if (!inner_->valid()) {
    return {net::IoStatus::kClosed, 0};
  }
  const FaultKind kind = plan_->next(FaultOp::kRead);
  if (kind == FaultKind::kDrop) {
    inner_->close();  // the connection resets under the reader
    return {net::IoStatus::kClosed, 0};
  }
  if (kind == FaultKind::kDelay) {
    return {net::IoStatus::kWouldBlock, 0};
  }
  std::size_t limit = max_bytes;
  if (kind == FaultKind::kPartial && max_bytes > 0) {
    limit = plan_->partial_bytes(max_bytes);
  }
  const net::IoResult result = inner_->read_some(out, limit);
  if (result.status != net::IoStatus::kOk) {
    return result;
  }

  // Walk the chunk through the inbound frame grammar to find which of
  // its bytes are payload (corruption candidates).
  std::vector<std::size_t> payload_positions;
  for (std::size_t i = 0; i < result.bytes; ++i) {
    if (in_payload_left_ == 0) {
      const auto byte = static_cast<unsigned char>(out[i]);
      if (in_header_seen_ < 4) {
        in_length_bytes_[in_header_seen_] = byte;
      }
      ++in_header_seen_;
      if (in_header_seen_ == 8) {
        in_payload_left_ = decode_be32(in_length_bytes_);
        if (in_payload_left_ == 0) {
          in_header_seen_ = 0;  // empty frame: straight to the next header
        }
      }
    } else {
      payload_positions.push_back(i);
      --in_payload_left_;
      if (in_payload_left_ == 0) {
        in_header_seen_ = 0;
      }
    }
  }
  if (kind == FaultKind::kCorrupt && !payload_positions.empty()) {
    // A single bit flip: CRC-32 detects every 1-bit error, so this can
    // never be silently accepted downstream. (A corrupt draw landing on
    // a headers-only chunk spends its budget without effect.)
    const std::size_t pick =
        payload_positions[plan_->corrupt_offset(payload_positions.size())];
    out[pick] = static_cast<char>(static_cast<unsigned char>(out[pick]) ^
                                  0x01u);
  }
  return result;
}

net::IoResult FaultyTransport::write_some(std::string_view bytes) {
  if (!inner_->valid()) {
    return {net::IoStatus::kClosed, 0};
  }
  // Stream order: an armed duplicate must hit the wire before any new
  // bytes, or the frames would interleave into garbage.
  while (!pending_injection_.empty()) {
    const net::IoResult r = inner_->write_some(pending_injection_);
    if (r.status == net::IoStatus::kOk) {
      pending_injection_.erase(0, r.bytes);
      continue;
    }
    if (r.status == net::IoStatus::kClosed) {
      return r;
    }
    return {net::IoStatus::kWouldBlock, 0};
  }

  const FaultKind kind = plan_->next(FaultOp::kWrite);
  if (kind == FaultKind::kDrop) {
    inner_->close();
    return {net::IoStatus::kClosed, 0};
  }
  if (kind == FaultKind::kDelay) {
    return {net::IoStatus::kWouldBlock, 0};
  }
  std::string_view view = bytes;
  if (kind == FaultKind::kPartial && !view.empty()) {
    view = view.substr(0, plan_->partial_bytes(view.size()));
  }
  if (kind == FaultKind::kDuplicateFrame) {
    duplicate_armed_ = true;  // fires when the current frame completes
  }
  const net::IoResult result = inner_->write_some(view);
  if (result.status == net::IoStatus::kOk) {
    track_outbound(view.substr(0, result.bytes));
  }
  return result;
}

void FaultyTransport::track_outbound(std::string_view accepted) {
  for (const char c : accepted) {
    out_frame_.push_back(c);
    if (out_payload_left_ == 0) {
      const auto byte = static_cast<unsigned char>(c);
      if (out_header_seen_ < 4) {
        out_length_bytes_[out_header_seen_] = byte;
      }
      ++out_header_seen_;
      if (out_header_seen_ == 8) {
        out_payload_left_ = decode_be32(out_length_bytes_);
        if (out_payload_left_ == 0) {
          complete_outbound_frame();
        }
      }
    } else {
      --out_payload_left_;
      if (out_payload_left_ == 0) {
        complete_outbound_frame();
      }
    }
  }
}

void FaultyTransport::complete_outbound_frame() {
  if (duplicate_armed_) {
    pending_injection_.append(out_frame_);
    duplicate_armed_ = false;
  }
  out_frame_.clear();
  out_header_seen_ = 0;
}

std::unique_ptr<net::Transport> make_faulty_transport(
    std::unique_ptr<net::Transport> inner, std::shared_ptr<FaultPlan> plan) {
  return std::make_unique<FaultyTransport>(std::move(inner),
                                           std::move(plan));
}

}  // namespace ps::fault
