#include "fault/faulty_transport.hpp"

#include <algorithm>
#include <cstring>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace ps::fault {

namespace {

std::size_t decode_be32(const std::array<unsigned char, 4>& bytes) {
  return (static_cast<std::size_t>(bytes[0]) << 24) |
         (static_cast<std::size_t>(bytes[1]) << 16) |
         (static_cast<std::size_t>(bytes[2]) << 8) |
         static_cast<std::size_t>(bytes[3]);
}

/// How long a partitioned wait naps between heal checks.
constexpr std::chrono::milliseconds kPartitionNap{1};

}  // namespace

FaultyTransport::FaultyTransport(std::unique_ptr<net::Transport> inner,
                                 std::shared_ptr<FaultPlan> plan)
    : FaultyTransport(std::move(inner), std::move(plan), nullptr) {}

FaultyTransport::FaultyTransport(std::unique_ptr<net::Transport> inner,
                                 std::shared_ptr<FaultPlan> plan,
                                 std::shared_ptr<PartitionControl> partition)
    : inner_(std::move(inner)),
      plan_(std::move(plan)),
      partition_(std::move(partition)) {
  PS_REQUIRE(inner_ != nullptr, "faulty transport needs an inner transport");
  PS_REQUIRE(plan_ != nullptr, "faulty transport needs a fault plan");
}

void FaultyTransport::capture_inbound() {
  if (!inner_->valid()) {
    return;
  }
  char buffer[4096];
  for (;;) {
    const net::IoResult r = inner_->read_some(buffer, sizeof(buffer));
    if (r.status != net::IoStatus::kOk || r.bytes == 0) {
      break;
    }
    held_.append(buffer, r.bytes);
  }
}

net::IoResult FaultyTransport::read_some(char* out, std::size_t max_bytes) {
  if (!inner_->valid() && held_.empty()) {
    return {net::IoStatus::kClosed, 0};
  }
  if (partition_ != nullptr && partition_->inbound_blocked()) {
    // Swallow the socket's bytes raw (no plan draws — the plan budget
    // belongs to delivered traffic) so the fd stops polling readable.
    capture_inbound();
    partition_->note_blocked_read();
    return {net::IoStatus::kWouldBlock, 0};
  }
  const FaultKind kind = plan_->next(FaultOp::kRead);
  if (kind == FaultKind::kDrop) {
    inner_->close();  // the connection resets under the reader
    held_.clear();    // a reset loses anything queued behind it too
    return {net::IoStatus::kClosed, 0};
  }
  if (kind == FaultKind::kDelay) {
    return {net::IoStatus::kWouldBlock, 0};
  }
  std::size_t limit = max_bytes;
  if (kind == FaultKind::kPartial && max_bytes > 0) {
    limit = plan_->partial_bytes(max_bytes);
  }
  net::IoResult result{net::IoStatus::kOk, 0};
  if (!held_.empty()) {
    // Healed link: flush capture-buffer bytes before touching the
    // socket, preserving stream order. They pass through the same
    // grammar walk and corruption below as live bytes.
    const std::size_t take = std::min(limit, held_.size());
    std::memcpy(out, held_.data(), take);
    held_.erase(0, take);
    result.bytes = take;
  } else {
    if (!inner_->valid()) {
      return {net::IoStatus::kClosed, 0};
    }
    result = inner_->read_some(out, limit);
    if (result.status != net::IoStatus::kOk) {
      return result;
    }
  }

  // Walk the chunk through the inbound frame grammar to find which of
  // its bytes are payload (corruption candidates).
  std::vector<std::size_t> payload_positions;
  for (std::size_t i = 0; i < result.bytes; ++i) {
    if (in_payload_left_ == 0) {
      const auto byte = static_cast<unsigned char>(out[i]);
      if (in_header_seen_ < 4) {
        in_length_bytes_[in_header_seen_] = byte;
      }
      ++in_header_seen_;
      if (in_header_seen_ == 8) {
        in_payload_left_ = decode_be32(in_length_bytes_);
        if (in_payload_left_ == 0) {
          in_header_seen_ = 0;  // empty frame: straight to the next header
        }
      }
    } else {
      payload_positions.push_back(i);
      --in_payload_left_;
      if (in_payload_left_ == 0) {
        in_header_seen_ = 0;
      }
    }
  }
  if (kind == FaultKind::kCorrupt && !payload_positions.empty()) {
    // A single bit flip: CRC-32 detects every 1-bit error, so this can
    // never be silently accepted downstream. (A corrupt draw landing on
    // a headers-only chunk spends its budget without effect.)
    const std::size_t pick =
        payload_positions[plan_->corrupt_offset(payload_positions.size())];
    out[pick] = static_cast<char>(static_cast<unsigned char>(out[pick]) ^
                                  0x01u);
  }
  return result;
}

net::IoResult FaultyTransport::write_some(std::string_view bytes) {
  if (!inner_->valid()) {
    return {net::IoStatus::kClosed, 0};
  }
  if (partition_ != nullptr && partition_->outbound_blocked()) {
    partition_->note_blocked_write();
    return {net::IoStatus::kWouldBlock, 0};
  }
  // Stream order: an armed duplicate must hit the wire before any new
  // bytes, or the frames would interleave into garbage.
  while (!pending_injection_.empty()) {
    const net::IoResult r = inner_->write_some(pending_injection_);
    if (r.status == net::IoStatus::kOk) {
      pending_injection_.erase(0, r.bytes);
      continue;
    }
    if (r.status == net::IoStatus::kClosed) {
      return r;
    }
    return {net::IoStatus::kWouldBlock, 0};
  }

  const FaultKind kind = plan_->next(FaultOp::kWrite);
  if (kind == FaultKind::kDrop) {
    inner_->close();
    return {net::IoStatus::kClosed, 0};
  }
  if (kind == FaultKind::kDelay) {
    return {net::IoStatus::kWouldBlock, 0};
  }
  std::string_view view = bytes;
  if (kind == FaultKind::kPartial && !view.empty()) {
    view = view.substr(0, plan_->partial_bytes(view.size()));
  }
  if (kind == FaultKind::kDuplicateFrame) {
    duplicate_armed_ = true;  // fires when the current frame completes
  }
  const net::IoResult result = inner_->write_some(view);
  if (result.status == net::IoStatus::kOk) {
    track_outbound(view.substr(0, result.bytes));
  }
  return result;
}

void FaultyTransport::track_outbound(std::string_view accepted) {
  for (const char c : accepted) {
    out_frame_.push_back(c);
    if (out_payload_left_ == 0) {
      const auto byte = static_cast<unsigned char>(c);
      if (out_header_seen_ < 4) {
        out_length_bytes_[out_header_seen_] = byte;
      }
      ++out_header_seen_;
      if (out_header_seen_ == 8) {
        out_payload_left_ = decode_be32(out_length_bytes_);
        if (out_payload_left_ == 0) {
          complete_outbound_frame();
        }
      }
    } else {
      --out_payload_left_;
      if (out_payload_left_ == 0) {
        complete_outbound_frame();
      }
    }
  }
}

void FaultyTransport::complete_outbound_frame() {
  if (duplicate_armed_) {
    pending_injection_.append(out_frame_);
    duplicate_armed_ = false;
  }
  out_frame_.clear();
  out_header_seen_ = 0;
}

bool FaultyTransport::wait_readable(std::chrono::milliseconds timeout) {
  if (partition_ == nullptr) {
    return inner_->wait_readable(timeout);
  }
  const bool bounded = timeout.count() >= 0;
  const Clock::time_point deadline = Clock::now() + timeout;
  for (;;) {
    if (!partition_->inbound_blocked()) {
      if (!held_.empty()) {
        return true;  // healed, with captured bytes ready to deliver
      }
      std::chrono::milliseconds remaining = timeout;
      if (bounded) {
        remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - Clock::now());
        if (remaining.count() <= 0) {
          return false;
        }
      }
      return inner_->wait_readable(remaining);
    }
    capture_inbound();  // keep the fd drained while blocked
    if (bounded && Clock::now() >= deadline) {
      return false;
    }
    std::this_thread::sleep_for(kPartitionNap);
  }
}

bool FaultyTransport::wait_writable(std::chrono::milliseconds timeout) {
  if (partition_ == nullptr) {
    return inner_->wait_writable(timeout);
  }
  const bool bounded = timeout.count() >= 0;
  const Clock::time_point deadline = Clock::now() + timeout;
  for (;;) {
    if (!partition_->outbound_blocked()) {
      std::chrono::milliseconds remaining = timeout;
      if (bounded) {
        remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - Clock::now());
        if (remaining.count() <= 0) {
          return false;
        }
      }
      return inner_->wait_writable(remaining);
    }
    if (bounded && Clock::now() >= deadline) {
      return false;
    }
    std::this_thread::sleep_for(kPartitionNap);
  }
}

std::unique_ptr<net::Transport> make_faulty_transport(
    std::unique_ptr<net::Transport> inner, std::shared_ptr<FaultPlan> plan) {
  return std::make_unique<FaultyTransport>(std::move(inner),
                                           std::move(plan));
}

std::unique_ptr<net::Transport> make_faulty_transport(
    std::unique_ptr<net::Transport> inner, std::shared_ptr<FaultPlan> plan,
    std::shared_ptr<PartitionControl> partition) {
  return std::make_unique<FaultyTransport>(std::move(inner), std::move(plan),
                                           std::move(partition));
}

}  // namespace ps::fault
