#include "ha/standby.hpp"

#include <algorithm>
#include <thread>

#include "ha/replication.hpp"
#include "net/framing.hpp"
#include "util/error.hpp"

namespace ps::ha {

StandbyDaemon::StandbyDaemon(StandbyOptions options)
    : options_(std::move(options)) {
  PS_REQUIRE(options_.primary != nullptr,
             "standby needs a primary connector");
  PS_REQUIRE(options_.lease.count() > 0, "standby lease must be positive");
  PS_REQUIRE(options_.dial_retry.count() > 0,
             "dial retry must be positive");
}

void StandbyDaemon::run() {
  // The loop cadence: short enough that a heal, a heartbeat, or a stop()
  // is noticed promptly, long enough not to busy-wait.
  const auto nap = std::min(options_.dial_retry,
                            std::chrono::milliseconds(25));
  std::unique_ptr<net::Transport> transport;
  net::FrameDecoder decoder;
  // The promotion timer starts when replication starts: a standby that
  // syncs and then hears nothing owes its clients a daemon one lease
  // later no matter when the silence began.
  Clock::time_point last_traffic = Clock::now();

  while (!stop_requested_.load(std::memory_order_acquire)) {
    if (synced_.load(std::memory_order_relaxed) &&
        Clock::now() - last_traffic > options_.lease) {
      promote_and_serve();
      return;
    }
    if (transport == nullptr) {
      try {
        transport = options_.primary();
        PS_REQUIRE(transport != nullptr, "primary connector returned null");
        decoder = net::FrameDecoder{};
        outbox_ = net::encode_frame(
            serialize(HaSyncRequest{highest_fence_}));
        const std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.dials;
        ++stats_.syncs_sent;
      } catch (const Error&) {
        transport.reset();
        {
          const std::lock_guard<std::mutex> lock(mutex_);
          ++stats_.dial_failures;
        }
        std::this_thread::sleep_for(nap);
        continue;
      }
    }
    // Flush whatever is queued (the sync request, pending acks).
    while (!outbox_.empty()) {
      const net::IoResult r = transport->write_some(outbox_);
      if (r.status == net::IoStatus::kOk) {
        outbox_.erase(0, r.bytes);
        continue;
      }
      if (r.status == net::IoStatus::kClosed) {
        transport.reset();
      }
      break;  // would-block: retry next cycle
    }
    if (transport == nullptr) {
      continue;
    }
    if (!transport->wait_readable(nap)) {
      continue;
    }
    char buffer[4096];
    bool closed = false;
    for (;;) {
      const net::IoResult r = transport->read_some(buffer, sizeof(buffer));
      if (r.status == net::IoStatus::kOk) {
        try {
          decoder.feed(std::string_view(buffer, r.bytes));
        } catch (const Error&) {
          closed = true;  // framing CRC failure: stream untrustworthy
          break;
        }
        continue;
      }
      closed = r.status == net::IoStatus::kClosed;
      break;
    }
    while (auto payload = decoder.next()) {
      traffic_heard_ = false;
      handle_payload(*payload);
      if (traffic_heard_) {
        last_traffic = Clock::now();
      }
    }
    if (closed) {
      transport.reset();
    }
  }
}

void StandbyDaemon::handle_payload(const std::string& payload) {
  switch (ha_message_kind(payload)) {
    case HaMessageKind::kUpdate: {
      HaStateUpdate update;
      try {
        update = parse_state_update(payload);
      } catch (const Error&) {
        // Malformed state: refuse the payload, keep the previous state.
        // Not counted as liveness — a primary producing garbage should
        // lose its lease like a dead one.
        const std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.updates_rejected;
        options_.obs.count("ha.standby.updates_rejected");
        return;
      }
      if (update.fence_epoch < highest_fence_) {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.updates_rejected;
        options_.obs.count("ha.standby.updates_rejected");
        return;  // zombie primary: state must never roll backwards
      }
      highest_fence_ = update.fence_epoch;
      state_ = std::move(update.state);
      synced_.store(true, std::memory_order_release);
      traffic_heard_ = true;
      outbox_ += net::encode_frame(serialize(HaAck{update.rounds}));
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.updates_applied;
        ++stats_.acks_sent;
        stats_.rounds = update.rounds;
        stats_.fence_epoch = highest_fence_;
        stats_.synced = true;
      }
      options_.obs.count("ha.standby.updates_applied");
      options_.obs.set_gauge("ha.standby.replicated_rounds",
                             static_cast<double>(update.rounds));
      return;
    }
    case HaMessageKind::kHeartbeat: {
      HaHeartbeat heartbeat;
      try {
        heartbeat = parse_heartbeat(payload);
      } catch (const Error&) {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.updates_rejected;
        return;
      }
      if (heartbeat.fence_epoch < highest_fence_) {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.updates_rejected;
        return;
      }
      traffic_heard_ = true;
      const std::uint64_t rounds =
          state_.has_value() ? state_->allocations : 0;
      outbox_ += net::encode_frame(serialize(HaAck{rounds}));
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.heartbeats;
        ++stats_.acks_sent;
      }
      return;
    }
    default: {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.updates_rejected;
      return;
    }
  }
}

void StandbyDaemon::promote_and_serve() {
  net::DaemonOptions daemon_options = options_.daemon;
  daemon_options.initial_state = state_;
  // The successor identity: one fence above everything the predecessor
  // ever stamped. Clients ratchet to this on their first exchange with
  // us and reject the predecessor's caps from then on.
  daemon_options.fence_epoch = highest_fence_ + 1;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stop_requested_.load(std::memory_order_acquire)) {
      return;  // stop() won the race; do not start serving
    }
    daemon_ = std::make_unique<net::PowerDaemon>(daemon_options);
    stats_.promoted = true;
    stats_.fence_epoch = daemon_options.fence_epoch;
  }
  promoted_.store(true, std::memory_order_release);
  options_.obs.count("ha.standby.promotions");
  options_.obs.emit(state_.has_value() ? state_->allocations : 0,
                    obs::cat::kHa, "promote",
                    {{"fence", daemon_options.fence_epoch},
                     {"rounds", state_.has_value() ? state_->allocations
                                                   : std::uint64_t{0}}});
  if (options_.bind) {
    options_.bind(*daemon_);
  }
  daemon_->run();
}

void StandbyDaemon::stop() {
  stop_requested_.store(true, std::memory_order_release);
  const std::lock_guard<std::mutex> lock(mutex_);
  if (daemon_ != nullptr) {
    daemon_->stop();
  }
}

StandbyStats StandbyDaemon::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

net::PowerDaemon* StandbyDaemon::daemon() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return daemon_.get();
}

}  // namespace ps::ha
