#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "net/snapshot.hpp"

namespace ps::ha {

/// The hot-standby replication protocol. Like the client protocol it is
/// line-based text carried in CRC-guarded frames (net::encode_frame /
/// net::FrameDecoder), so a corrupted update is rejected at the framing
/// layer before the codec ever sees it. The state payload itself is the
/// daemon's snapshot serialization — including the snapshot's own
/// trailing checksum line — so replicated state is guarded twice and a
/// standby applies exactly the bytes a restarted primary would have read
/// from disk.
///
/// Message flow (standby dials the primary's replication listener):
///   standby -> primary   sync       "send me your full state"
///   primary -> standby   update     full state snapshot + fence + rounds
///   primary -> standby   heartbeat  fence + rounds, between updates
///   standby -> primary   ack        rounds last applied
///
/// The primary counts on acks for its fencing decision (no acks for half
/// a lease => stop allocating); the standby counts on updates/heartbeats
/// for its promotion decision (no traffic for a full lease => promote at
/// fence + 1). Both directions therefore carry the fencing epoch, and a
/// standby rejects any message fenced below the highest it has seen — a
/// zombie primary cannot roll replicated state backwards.

enum class HaMessageKind {
  kSync,
  kUpdate,
  kHeartbeat,
  kAck,
  kUnknown,
};

/// Classifies a frame payload by its first line (cheap dispatch; the
/// matching parse_* call does full validation).
[[nodiscard]] HaMessageKind ha_message_kind(std::string_view payload);

/// standby -> primary: request a full state update. Carries the highest
/// fence the standby has ever seen so a superseded primary can tell it
/// has been replaced.
struct HaSyncRequest {
  std::uint64_t fence_epoch = 0;
};

/// primary -> standby: the primary's full coordination state. The fence
/// and rounds fields are echoed outside the embedded snapshot so the
/// standby can validate internal consistency (a mismatch means the
/// message was assembled wrong, not merely corrupted in flight).
struct HaStateUpdate {
  std::uint64_t fence_epoch = 0;
  std::uint64_t rounds = 0;  ///< The snapshot's allocation count.
  net::DaemonSnapshot state;
};

/// primary -> standby: liveness between state changes.
struct HaHeartbeat {
  std::uint64_t fence_epoch = 0;
  std::uint64_t rounds = 0;
};

/// standby -> primary: the newest state the standby holds. Acks are what
/// keep an engaged primary unfenced.
struct HaAck {
  std::uint64_t rounds = 0;
};

[[nodiscard]] std::string serialize(const HaSyncRequest& message);
[[nodiscard]] std::string serialize(const HaStateUpdate& message);
[[nodiscard]] std::string serialize(const HaHeartbeat& message);
[[nodiscard]] std::string serialize(const HaAck& message);

/// Parsers throw ps::Error on malformed input; the receiver's contract
/// is to refuse the payload and keep its previous state.
[[nodiscard]] HaSyncRequest parse_sync_request(std::string_view payload);
[[nodiscard]] HaStateUpdate parse_state_update(std::string_view payload);
[[nodiscard]] HaHeartbeat parse_heartbeat(std::string_view payload);
[[nodiscard]] HaAck parse_ack(std::string_view payload);

}  // namespace ps::ha
