#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/event_loop.hpp"
#include "net/framing.hpp"
#include "net/snapshot.hpp"
#include "net/socket.hpp"
#include "net/transport.hpp"
#include "obs/obs.hpp"

namespace ps::ha {

struct ReplicatorOptions {
  /// The failover lease shared with the standby. The replicator
  /// heartbeats every lease/4, and should_fence() trips after lease/2
  /// without an ack — strictly inside the full lease the standby waits
  /// before promoting, so the fenced primary stops allocating before its
  /// successor starts. No clock synchronization is required: both sides
  /// measure only their own monotonic elapsed time.
  std::chrono::milliseconds lease{1'000};
  /// Observability seam ("ha.replicator.*" counters; no trace events —
  /// replication follows transport timing, never golden traces).
  obs::Observability obs{};
};

struct ReplicatorStats {
  std::size_t standby_connects = 0;
  std::size_t updates_sent = 0;
  std::size_t heartbeats_sent = 0;
  std::size_t acks_received = 0;
  std::size_t syncs_served = 0;
  std::size_t protocol_errors = 0;
  std::uint64_t last_ack_rounds = 0;
  bool standby_connected = false;
  bool engaged = false;  ///< An ack has been heard; fencing is armed.
  bool fenced = false;   ///< should_fence() at the time of the call.
};

/// The primary side of hot-standby replication: a listener (separate
/// from the client-facing sockets — the daemon's own protocol is
/// untouched) serving one standby at a time, run on its own thread so
/// replication I/O never blocks an allocation round.
///
/// Wiring: DaemonOptions::replication_sink = replicator.sink() hands
/// every write-ahead state snapshot to publish(), which coalesces to the
/// newest state and ships it from the replication thread. A fresh
/// standby first sends a sync request and gets the full state
/// immediately; heartbeats cover the gaps between updates.
///
/// Fencing: the replicator is "engaged" once the first ack arrives —
/// before that, should_fence() is permanently false, so a deployment
/// that starts a primary alone (or never attaches a standby) is
/// indistinguishable from one with no replicator at all. Engaged,
/// should_fence() trips after lease/2 without an ack and releases as
/// soon as acks resume (a healed partition un-fences the primary it
/// interrupted; a promoted standby never acks again, so a zombie stays
/// fenced forever).
class Replicator {
 public:
  explicit Replicator(ReplicatorOptions options = {});
  ~Replicator();

  Replicator(const Replicator&) = delete;
  Replicator& operator=(const Replicator&) = delete;

  /// Binds the replication listener. Call before start().
  void listen_unix(const std::string& path);
  void listen_tcp(std::uint16_t port);
  [[nodiscard]] std::uint16_t tcp_port() const noexcept {
    return tcp_port_;
  }

  /// Starts the replication thread. stop() joins it; so does ~Replicator.
  void start();
  void stop();

  /// Thread-safe: records `state` as the newest state and wakes the
  /// replication thread to ship it. Coalesces — a burst of allocation
  /// rounds replicates as one update carrying the final state, which is
  /// sufficient because updates are full snapshots, not deltas.
  void publish(const net::DaemonSnapshot& state);

  /// Thread-safe: the primary's fencing signal (see class comment).
  [[nodiscard]] bool should_fence() const noexcept;

  /// Adapters for DaemonOptions. The returned callables reference this
  /// replicator; it must outlive the daemon wearing them.
  [[nodiscard]] std::function<void(const net::DaemonSnapshot&)> sink();
  [[nodiscard]] std::function<bool()> fence_check();

  [[nodiscard]] ReplicatorStats stats() const;

 private:
  using Clock = std::chrono::steady_clock;

  void on_listener_ready(std::size_t listener_index);
  void on_session_ready(short revents);
  void attach_standby(net::Socket socket);
  void drop_session(bool protocol_error);
  void handle_payload(const std::string& payload);
  void queue_payload(const std::string& payload);
  void flush_outbox();
  void update_session_events();
  void maybe_send_update();
  void send_update_now();
  void on_tick();

  ReplicatorOptions options_;
  net::EventLoop loop_;
  std::vector<net::Listener> listeners_;
  std::thread thread_;
  bool started_ = false;
  std::uint16_t tcp_port_ = 0;

  /// Session state, replication thread only.
  std::unique_ptr<net::Transport> transport_;
  net::FrameDecoder decoder_;
  std::string outbox_;
  bool standby_synced_ = false;  ///< Sync received; updates may flow.
  Clock::time_point last_send_{};

  mutable std::mutex mutex_;  ///< Guards latest_, dirty_, stats_.
  std::optional<net::DaemonSnapshot> latest_;
  bool dirty_ = false;
  ReplicatorStats stats_;

  /// Fencing state read from the daemon thread.
  std::atomic<bool> engaged_{false};
  std::atomic<Clock::rep> last_ack_ticks_{0};
};

}  // namespace ps::ha
