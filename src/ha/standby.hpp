#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>

#include "net/daemon.hpp"
#include "net/snapshot.hpp"
#include "net/transport.hpp"
#include "obs/obs.hpp"

namespace ps::ha {

struct StandbyOptions {
  /// Dials the primary's replication listener (not its client socket).
  /// Fault decorators slot in here exactly as they do for RuntimeClient,
  /// which is how the chaos harness partitions the replication link.
  std::function<std::unique_ptr<net::Transport>()> primary;
  /// Template for the daemon this standby becomes on promotion: budget,
  /// policy, scheduled revisions, observability — everything a fresh
  /// primary would have been configured with. The standby fills in
  /// initial_state (the replicated snapshot) and fence_epoch (the
  /// predecessor's fence + 1) at promotion time.
  net::DaemonOptions daemon;
  /// Failover lease shared with the primary's Replicator: promotion
  /// fires after a full lease without valid replication traffic.
  std::chrono::milliseconds lease{1'000};
  /// Redial cadence while the primary is unreachable.
  std::chrono::milliseconds dial_retry{50};
  /// Called with the freshly promoted daemon before it serves — the
  /// place to bind listeners / adopt sockets (the standby's client
  /// endpoint must exist before clients can fail over to it).
  std::function<void(net::PowerDaemon&)> bind;
  /// Observability seam ("ha.standby.*" counters only).
  obs::Observability obs{};
};

struct StandbyStats {
  std::size_t dials = 0;
  std::size_t dial_failures = 0;
  std::size_t updates_applied = 0;
  std::size_t updates_rejected = 0;  ///< Malformed or fenced-stale.
  std::size_t heartbeats = 0;
  std::size_t acks_sent = 0;
  std::size_t syncs_sent = 0;
  std::uint64_t rounds = 0;       ///< Allocations in the replicated state.
  std::uint64_t fence_epoch = 0;  ///< Highest fence seen; ours once promoted.
  bool synced = false;
  bool promoted = false;
};

/// The standby side of control-plane failover: replicates the primary's
/// state until the lease lapses, then becomes a PowerDaemon seeded with
/// the last replicated snapshot at the next fencing epoch.
///
/// Promotion is deterministic: it happens exactly when a synced standby
/// has heard no valid replication traffic for a full lease — whether the
/// primary died, was partitioned away, or just stopped heartbeating.
/// By then the primary has already self-fenced (its fence window is half
/// the lease), so at most one daemon allocates watts at any moment, and
/// the promoted fence (predecessor + 1) makes clients reject anything a
/// zombie predecessor still manages to send.
///
/// A standby that never synced never promotes: with no replicated state
/// there is nothing safe to serve, and a cold takeover could double-grant
/// watts the old primary's clients still hold.
class StandbyDaemon {
 public:
  explicit StandbyDaemon(StandbyOptions options);

  StandbyDaemon(const StandbyDaemon&) = delete;
  StandbyDaemon& operator=(const StandbyDaemon&) = delete;

  /// Replicates, and on promotion serves the daemon. Blocks the calling
  /// thread until stop().
  void run();
  /// Thread-safe: ends run() in either phase.
  void stop();

  [[nodiscard]] bool promoted() const noexcept {
    return promoted_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool synced() const noexcept {
    return synced_.load(std::memory_order_acquire);
  }
  [[nodiscard]] StandbyStats stats() const;
  /// The promoted daemon (null before promotion). Valid until the
  /// StandbyDaemon is destroyed.
  [[nodiscard]] net::PowerDaemon* daemon() const;

 private:
  using Clock = std::chrono::steady_clock;

  void handle_payload(const std::string& payload);
  void promote_and_serve();

  StandbyOptions options_;

  /// Replication-phase state, run() thread only.
  std::optional<net::DaemonSnapshot> state_;
  std::uint64_t highest_fence_ = 0;
  std::string outbox_;

  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> synced_{false};
  std::atomic<bool> promoted_{false};
  bool traffic_heard_ = false;  ///< run() thread: did this payload count?

  mutable std::mutex mutex_;  ///< Guards stats_ and daemon_.
  StandbyStats stats_;
  std::unique_ptr<net::PowerDaemon> daemon_;
};

}  // namespace ps::ha
