#include "ha/replicator.hpp"

#include <poll.h>

#include <algorithm>
#include <utility>

#include "ha/replication.hpp"
#include "util/error.hpp"

namespace ps::ha {

Replicator::Replicator(ReplicatorOptions options)
    : options_(options) {
  PS_REQUIRE(options_.lease.count() > 0, "replication lease must be positive");
  const auto tick = std::max(options_.lease / 4,
                             std::chrono::milliseconds(1));
  loop_.set_tick(tick, [this] { on_tick(); });
}

Replicator::~Replicator() { stop(); }

void Replicator::listen_unix(const std::string& path) {
  PS_REQUIRE(!started_, "listen before start()");
  listeners_.push_back(net::listen_unix(path));
  const std::size_t index = listeners_.size() - 1;
  loop_.add_fd(listeners_.back().fd(), POLLIN,
               [this, index](short) { on_listener_ready(index); });
}

void Replicator::listen_tcp(std::uint16_t port) {
  PS_REQUIRE(!started_, "listen before start()");
  std::uint16_t bound = 0;
  listeners_.push_back(net::listen_tcp(port, &bound));
  tcp_port_ = bound;
  const std::size_t index = listeners_.size() - 1;
  loop_.add_fd(listeners_.back().fd(), POLLIN,
               [this, index](short) { on_listener_ready(index); });
}

void Replicator::start() {
  PS_REQUIRE(!started_, "replicator already started");
  started_ = true;
  thread_ = std::thread([this] {
    while (loop_.run_once(std::chrono::milliseconds(-1))) {
      maybe_send_update();
    }
  });
}

void Replicator::stop() {
  loop_.stop();
  if (thread_.joinable()) {
    thread_.join();
  }
}

void Replicator::publish(const net::DaemonSnapshot& state) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    latest_ = state;
    dirty_ = true;
  }
  loop_.wake();
}

bool Replicator::should_fence() const noexcept {
  if (!engaged_.load(std::memory_order_acquire)) {
    return false;
  }
  const Clock::rep last = last_ack_ticks_.load(std::memory_order_acquire);
  const auto elapsed = Clock::now() -
                       Clock::time_point(Clock::duration(last));
  return elapsed > options_.lease / 2;
}

std::function<void(const net::DaemonSnapshot&)> Replicator::sink() {
  return [this](const net::DaemonSnapshot& state) { publish(state); };
}

std::function<bool()> Replicator::fence_check() {
  return [this] { return should_fence(); };
}

ReplicatorStats Replicator::stats() const {
  ReplicatorStats out;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    out = stats_;
  }
  out.engaged = engaged_.load(std::memory_order_acquire);
  out.fenced = should_fence();
  return out;
}

void Replicator::on_listener_ready(std::size_t listener_index) {
  while (auto socket = listeners_[listener_index].accept()) {
    attach_standby(std::move(*socket));
  }
}

void Replicator::attach_standby(net::Socket socket) {
  // One standby at a time; the newest connection wins (a standby that
  // restarted replaces its stale predecessor).
  drop_session(false);
  transport_ = net::make_transport(std::move(socket));
  decoder_ = net::FrameDecoder{};
  outbox_.clear();
  standby_synced_ = false;
  loop_.add_fd(transport_->fd(), POLLIN,
               [this](short revents) { on_session_ready(revents); });
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.standby_connects;
    stats_.standby_connected = true;
  }
  options_.obs.count("ha.replicator.standby_connects");
}

void Replicator::drop_session(bool protocol_error) {
  if (transport_ == nullptr) {
    return;
  }
  loop_.remove_fd(transport_->fd());
  transport_.reset();
  outbox_.clear();
  standby_synced_ = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stats_.standby_connected = false;
    if (protocol_error) {
      ++stats_.protocol_errors;
    }
  }
}

void Replicator::on_session_ready(short revents) {
  if (transport_ == nullptr) {
    return;
  }
  if ((revents & POLLOUT) != 0) {
    flush_outbox();
    if (transport_ == nullptr) {
      return;
    }
  }
  if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
    char buffer[4096];
    for (;;) {
      const net::IoResult r = transport_->read_some(buffer, sizeof(buffer));
      if (r.status == net::IoStatus::kOk) {
        try {
          decoder_.feed(std::string_view(buffer, r.bytes));
        } catch (const Error&) {
          drop_session(true);
          return;
        }
        continue;
      }
      if (r.status == net::IoStatus::kClosed) {
        drop_session(false);
        return;
      }
      break;  // would-block: drained
    }
    while (auto payload = decoder_.next()) {
      handle_payload(*payload);
      if (transport_ == nullptr) {
        return;
      }
    }
  }
  update_session_events();
}

void Replicator::handle_payload(const std::string& payload) {
  try {
    switch (ha_message_kind(payload)) {
      case HaMessageKind::kSync: {
        const HaSyncRequest sync = parse_sync_request(payload);
        static_cast<void>(sync);
        standby_synced_ = true;
        {
          const std::lock_guard<std::mutex> lock(mutex_);
          ++stats_.syncs_served;
        }
        options_.obs.count("ha.replicator.syncs_served");
        send_update_now();
        return;
      }
      case HaMessageKind::kAck: {
        const HaAck ack = parse_ack(payload);
        last_ack_ticks_.store(
            Clock::now().time_since_epoch().count(),
            std::memory_order_release);
        engaged_.store(true, std::memory_order_release);
        {
          const std::lock_guard<std::mutex> lock(mutex_);
          ++stats_.acks_received;
          stats_.last_ack_rounds =
              std::max(stats_.last_ack_rounds, ack.rounds);
        }
        options_.obs.count("ha.replicator.acks_received");
        return;
      }
      default:
        throw Error("unexpected replication message from standby");
    }
  } catch (const Error&) {
    drop_session(true);
  }
}

void Replicator::queue_payload(const std::string& payload) {
  outbox_ += net::encode_frame(payload);
  last_send_ = Clock::now();
  flush_outbox();
  if (transport_ != nullptr) {
    update_session_events();
  }
}

void Replicator::flush_outbox() {
  while (transport_ != nullptr && !outbox_.empty()) {
    const net::IoResult r = transport_->write_some(outbox_);
    if (r.status == net::IoStatus::kOk) {
      outbox_.erase(0, r.bytes);
      continue;
    }
    if (r.status == net::IoStatus::kClosed) {
      drop_session(false);
    }
    return;  // would-block: POLLOUT will resume
  }
}

void Replicator::update_session_events() {
  if (transport_ == nullptr) {
    return;
  }
  loop_.set_events(transport_->fd(),
                   outbox_.empty() ? POLLIN
                                   : static_cast<short>(POLLIN | POLLOUT));
}

void Replicator::maybe_send_update() {
  if (transport_ == nullptr || !standby_synced_) {
    return;
  }
  bool send = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    send = dirty_ && latest_.has_value();
  }
  if (send) {
    send_update_now();
  }
}

void Replicator::send_update_now() {
  if (transport_ == nullptr || !standby_synced_) {
    return;
  }
  HaStateUpdate update;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!latest_.has_value()) {
      return;  // nothing published yet; the sync answer waits for state
    }
    update.state = *latest_;
    dirty_ = false;
    ++stats_.updates_sent;
  }
  update.fence_epoch = update.state.fence_epoch;
  update.rounds = update.state.allocations;
  options_.obs.count("ha.replicator.updates_sent");
  options_.obs.set_gauge("ha.replicator.replicated_rounds",
                         static_cast<double>(update.rounds));
  queue_payload(serialize(update));
}

void Replicator::on_tick() {
  flush_outbox();
  if (transport_ == nullptr || !standby_synced_) {
    return;
  }
  // Heartbeat when the wire has been quiet for a quarter lease, so the
  // standby's promotion timer only runs when the primary is truly gone.
  if (Clock::now() - last_send_ < options_.lease / 4) {
    return;
  }
  HaHeartbeat heartbeat;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (latest_.has_value()) {
      heartbeat.fence_epoch = latest_->fence_epoch;
      heartbeat.rounds = latest_->allocations;
    }
    ++stats_.heartbeats_sent;
  }
  options_.obs.count("ha.replicator.heartbeats_sent");
  queue_payload(serialize(heartbeat));
}

}  // namespace ps::ha
