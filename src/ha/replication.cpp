#include "ha/replication.hpp"

#include <charconv>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace ps::ha {

namespace {

constexpr std::string_view kSyncHeader = "powerstack-ha-sync v1";
constexpr std::string_view kUpdateHeader = "powerstack-ha-update v1";
constexpr std::string_view kHeartbeatHeader = "powerstack-ha-heartbeat v1";
constexpr std::string_view kAckHeader = "powerstack-ha-ack v1";

std::uint64_t parse_u64(std::string_view token, std::string_view what) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  PS_REQUIRE(ec == std::errc{} && ptr == token.data() + token.size(),
             "non-numeric " + std::string(what) + " field");
  return value;
}

std::string_view expect_field(std::string_view line, std::string_view key) {
  PS_REQUIRE(util::starts_with(line, key),
             "expected '" + std::string(key) + "' line");
  return util::trim(line.substr(key.size()));
}

/// Consumes one '\n'-terminated line from `payload` starting at `pos`.
std::string_view take_line(std::string_view payload, std::size_t& pos,
                           std::string_view what) {
  const std::size_t end = payload.find('\n', pos);
  PS_REQUIRE(end != std::string_view::npos,
             "truncated " + std::string(what) + " message");
  const std::string_view line = payload.substr(pos, end - pos);
  pos = end + 1;
  return line;
}

}  // namespace

HaMessageKind ha_message_kind(std::string_view payload) {
  const std::size_t eol = payload.find('\n');
  const std::string_view first =
      eol == std::string_view::npos ? payload : payload.substr(0, eol);
  if (first == kSyncHeader) {
    return HaMessageKind::kSync;
  }
  if (first == kUpdateHeader) {
    return HaMessageKind::kUpdate;
  }
  if (first == kHeartbeatHeader) {
    return HaMessageKind::kHeartbeat;
  }
  if (first == kAckHeader) {
    return HaMessageKind::kAck;
  }
  return HaMessageKind::kUnknown;
}

std::string serialize(const HaSyncRequest& message) {
  std::ostringstream out;
  out << kSyncHeader << '\n';
  out << "fence " << message.fence_epoch << '\n';
  return out.str();
}

std::string serialize(const HaStateUpdate& message) {
  std::ostringstream out;
  out << kUpdateHeader << '\n';
  out << "fence " << message.fence_epoch << '\n';
  out << "rounds " << message.rounds << '\n';
  out << "state" << '\n';
  out << net::serialize(message.state);
  return out.str();
}

std::string serialize(const HaHeartbeat& message) {
  std::ostringstream out;
  out << kHeartbeatHeader << '\n';
  out << "fence " << message.fence_epoch << '\n';
  out << "rounds " << message.rounds << '\n';
  return out.str();
}

std::string serialize(const HaAck& message) {
  std::ostringstream out;
  out << kAckHeader << '\n';
  out << "rounds " << message.rounds << '\n';
  return out.str();
}

HaSyncRequest parse_sync_request(std::string_view payload) {
  std::size_t pos = 0;
  PS_REQUIRE(take_line(payload, pos, "ha sync") == kSyncHeader,
             "not a ha sync request");
  HaSyncRequest message;
  message.fence_epoch = parse_u64(
      expect_field(take_line(payload, pos, "ha sync"), "fence "), "fence");
  PS_REQUIRE(pos == payload.size(), "unexpected trailing ha sync bytes");
  return message;
}

HaStateUpdate parse_state_update(std::string_view payload) {
  std::size_t pos = 0;
  PS_REQUIRE(take_line(payload, pos, "ha update") == kUpdateHeader,
             "not a ha state update");
  HaStateUpdate message;
  message.fence_epoch = parse_u64(
      expect_field(take_line(payload, pos, "ha update"), "fence "), "fence");
  message.rounds = parse_u64(
      expect_field(take_line(payload, pos, "ha update"), "rounds "),
      "rounds");
  PS_REQUIRE(take_line(payload, pos, "ha update") == "state",
             "expected 'state' marker line");
  // The remainder is a complete snapshot serialization; its own checksum
  // line guards the state bytes end to end.
  message.state = net::parse_snapshot(payload.substr(pos));
  PS_REQUIRE(message.state.fence_epoch == message.fence_epoch,
             "ha update fence disagrees with its state");
  PS_REQUIRE(message.state.allocations == message.rounds,
             "ha update rounds disagree with its state");
  return message;
}

HaHeartbeat parse_heartbeat(std::string_view payload) {
  std::size_t pos = 0;
  PS_REQUIRE(take_line(payload, pos, "ha heartbeat") == kHeartbeatHeader,
             "not a ha heartbeat");
  HaHeartbeat message;
  message.fence_epoch = parse_u64(
      expect_field(take_line(payload, pos, "ha heartbeat"), "fence "),
      "fence");
  message.rounds = parse_u64(
      expect_field(take_line(payload, pos, "ha heartbeat"), "rounds "),
      "rounds");
  PS_REQUIRE(pos == payload.size(),
             "unexpected trailing ha heartbeat bytes");
  return message;
}

HaAck parse_ack(std::string_view payload) {
  std::size_t pos = 0;
  PS_REQUIRE(take_line(payload, pos, "ha ack") == kAckHeader,
             "not a ha ack");
  HaAck message;
  message.rounds = parse_u64(
      expect_field(take_line(payload, pos, "ha ack"), "rounds "), "rounds");
  PS_REQUIRE(pos == payload.size(), "unexpected trailing ha ack bytes");
  return message;
}

}  // namespace ps::ha
