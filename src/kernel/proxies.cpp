#include "kernel/proxies.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace ps::kernel {

namespace {
WorkloadConfig make_config(double intensity, hw::VectorWidth width,
                           double waiting, double imbalance) {
  WorkloadConfig config;
  config.intensity = intensity;
  config.vector_width = width;
  config.waiting_fraction = waiting;
  config.imbalance = imbalance;
  return config;
}

std::vector<WorkloadProxy> build_catalogue() {
  return {
      {"stream", "STREAM triad",
       make_config(0.25, hw::VectorWidth::kYmm256, 0.0, 1.0)},
      {"dgemm", "HPL / DGEMM",
       make_config(32.0, hw::VectorWidth::kYmm256, 0.0, 1.0)},
      {"spmv", "HPCG / SpMV",
       make_config(0.5, hw::VectorWidth::kXmm128, 0.25, 2.0)},
      {"stencil", "miniFE / structured stencils",
       make_config(8.0, hw::VectorWidth::kYmm256, 0.0, 1.0)},
      {"graph", "BFS-style graph analytics",
       make_config(0.25, hw::VectorWidth::kScalar, 0.5, 3.0)},
      {"mc", "Monte Carlo transport",
       make_config(16.0, hw::VectorWidth::kYmm256, 0.5, 2.0)},
  };
}
}  // namespace

const std::vector<WorkloadProxy>& workload_proxies() {
  static const std::vector<WorkloadProxy> catalogue = build_catalogue();
  return catalogue;
}

const WorkloadProxy& proxy_by_name(std::string_view name) {
  for (const WorkloadProxy& proxy : workload_proxies()) {
    if (util::iequals(proxy.name, name)) {
      return proxy;
    }
  }
  throw NotFound("unknown workload proxy '" + std::string(name) + "'");
}

}  // namespace ps::kernel
