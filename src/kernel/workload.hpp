#pragma once

#include <string>
#include <string_view>

#include "hw/perf_model.hpp"

namespace ps::kernel {

/// Configuration of the synthetic arithmetic-intensity kernel (paper
/// Section IV-A, Fig. 2). One bulk-synchronous iteration looks like:
///
///   - every rank performs the common work (a streaming phase moving
///     `gigabytes_per_iteration` at `intensity` FLOPs/byte);
///   - ranks on the critical path perform `imbalance` times the common
///     work in total;
///   - the remaining ranks ("waiting ranks") busy-poll at the barrier
///     until the critical path finishes the iteration.
///
/// `waiting_fraction` is the fraction of ranks on the non-critical path.
/// With imbalance == 1 there is no critical path and waiting ranks incur
/// no polling time.
struct WorkloadConfig {
  double intensity = 1.0;  ///< FLOPs per byte; 0 = pure memory streaming.
  hw::VectorWidth vector_width = hw::VectorWidth::kYmm256;
  double waiting_fraction = 0.0;  ///< In [0, 1): fraction of waiting ranks.
  double imbalance = 1.0;         ///< Critical-path work multiplier (>= 1).
  double gigabytes_per_iteration = 2.0;  ///< Common-work data movement.

  /// Optional offloaded GPU phase, run concurrently with the CPU phase on
  /// hosts that have GPU devices. 0 GB (the default) means a CPU-only
  /// workload; hosts without GPUs skip the phase either way. Like
  /// gigabytes_per_iteration these are not encoded in name().
  double gpu_gigabytes_per_iteration = 0.0;  ///< Offloaded data movement.
  double gpu_intensity = 8.0;     ///< GPU FLOPs per byte.
  double gpu_occupancy = 1.0;     ///< Achieved occupancy, in (0, 1].

  /// Throws ps::InvalidArgument if any field is out of its domain.
  void validate() const;

  /// Stable short name, e.g. "ymm-i8-w50-x2" (intensity 8, 50% waiting
  /// ranks, 2x imbalance, 256-bit vectors).
  [[nodiscard]] std::string name() const;

  /// Human-oriented description matching the paper's Table II wording,
  /// e.g. "8 FLOPs/byte, 50% waiting ranks, 2x imbalance, ymm".
  [[nodiscard]] std::string description() const;

  [[nodiscard]] bool operator==(const WorkloadConfig&) const = default;
};

/// Work performed by the critical path in one iteration, in gigabytes.
[[nodiscard]] double critical_gigabytes(const WorkloadConfig& config);

/// Parses the stable short name back into a configuration — the inverse
/// of WorkloadConfig::name(), e.g. "ymm-i8-w50-x2". Throws
/// ps::InvalidArgument on malformed names. gigabytes_per_iteration is
/// not encoded in the name and keeps its default.
[[nodiscard]] WorkloadConfig parse_workload(std::string_view name);

}  // namespace ps::kernel
