#pragma once

#include <string_view>
#include <vector>

#include "kernel/workload.hpp"

namespace ps::kernel {

/// A named workload proxy: a kernel configuration chosen to land in the
/// same roofline/imbalance regime as a well-known HPC code. These are
/// positioning proxies, not ports — they give examples, facility traces,
/// and docs recognizable handles ("a STREAM-like job") instead of raw
/// parameter tuples.
struct WorkloadProxy {
  std::string_view name;      ///< e.g. "stream".
  std::string_view stands_for;  ///< The code family it positions like.
  WorkloadConfig config{};
};

/// The shipped proxy catalogue:
///
///   stream     STREAM triad        memory-bound, balanced
///   dgemm      HPL / DGEMM         compute-bound, balanced
///   spmv       HPCG / SpMV         low intensity, mildly imbalanced
///   stencil    miniFE / stencils   near the ridge, balanced
///   graph      BFS-style analytics memory-bound, heavily imbalanced
///   mc         Monte Carlo         compute-bound, embarrassingly uneven
[[nodiscard]] const std::vector<WorkloadProxy>& workload_proxies();

/// Looks a proxy up by name. Throws ps::NotFound for unknown names.
[[nodiscard]] const WorkloadProxy& proxy_by_name(std::string_view name);

}  // namespace ps::kernel
