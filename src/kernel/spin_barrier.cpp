#include "kernel/spin_barrier.hpp"

#include <thread>

#include "util/error.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define PS_SPIN_PAUSE() _mm_pause()
#else
#define PS_SPIN_PAUSE() \
  do {                  \
  } while (false)
#endif

namespace ps::kernel {

SpinBarrier::SpinBarrier(std::size_t participants)
    : participants_(participants) {
  PS_REQUIRE(participants > 0, "barrier needs at least one participant");
}

void SpinBarrier::arrive_and_wait() noexcept {
  const std::size_t my_generation =
      generation_.load(std::memory_order_acquire);
  const std::size_t position =
      arrived_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (position == participants_) {
    arrived_.store(0, std::memory_order_relaxed);
    generation_.fetch_add(1, std::memory_order_release);
    return;
  }
  // Busy-poll (the MPI-like behavior under study), but yield periodically
  // so oversubscribed hosts — e.g. unit tests on small CI machines — do
  // not starve the threads still computing.
  std::uint32_t spins = 0;
  while (generation_.load(std::memory_order_acquire) == my_generation) {
    PS_SPIN_PAUSE();
    if (++spins == 4096) {
      spins = 0;
      std::this_thread::yield();
    }
  }
}

}  // namespace ps::kernel
