#pragma once

#include <cstddef>
#include <vector>

#include "kernel/workload.hpp"

namespace ps::kernel {

/// Options for the *real* (natively executed) arithmetic-intensity kernel.
///
/// This is the runnable counterpart of the analytic WorkloadConfig: threads
/// stand in for MPI ranks, a spin barrier stands in for MPI_Barrier, and
/// the per-element FMA count realizes the configured FLOPs/byte. It mirrors
/// the public benchmark the paper links
/// (github.com/dannosliwcd/arithmetic-intensity).
struct KernelOptions {
  WorkloadConfig config{};
  std::size_t threads = 4;
  /// Working-set doubles per thread (one sweep moves 16 bytes/element:
  /// one read + one write stream).
  std::size_t elements_per_thread = 1 << 15;
  std::size_t iterations = 8;
};

/// Per-thread outcome of a kernel run.
struct ThreadReport {
  double busy_seconds = 0.0;  ///< Time spent in compute sweeps.
  double wait_seconds = 0.0;  ///< Time spent polling at the barrier.
  double gflop = 0.0;         ///< Floating point work performed.
  bool waiting_rank = false;  ///< True if this thread was a waiting rank.
  /// Numeric sink defeating dead-code elimination; the value is meaningless.
  double checksum = 0.0;
};

/// Aggregate outcome of a kernel run.
struct KernelReport {
  double elapsed_seconds = 0.0;
  double total_gflop = 0.0;
  double achieved_gflops = 0.0;  ///< total_gflop / elapsed_seconds.
  double total_gigabytes = 0.0;  ///< Data volume moved by all sweeps.
  std::size_t iterations = 0;
  std::vector<ThreadReport> threads;

  /// Mean barrier wait of waiting ranks divided by elapsed time: the
  /// measured "slack" the paper's balancer exploits. Zero if no waiting
  /// ranks were configured.
  [[nodiscard]] double waiting_slack_fraction() const;
};

/// Runs the kernel on the calling machine. Throws ps::InvalidArgument on
/// invalid options (e.g. zero threads, waiting fraction that leaves no
/// critical rank). Deterministic in structure but timing-dependent in the
/// reported seconds, as any real benchmark is.
[[nodiscard]] KernelReport run_arithmetic_kernel(const KernelOptions& options);

/// Number of fused multiply-adds issued per array element for a given
/// computational intensity (16 bytes and 2 FLOPs per FMA => fma/element =
/// intensity * 8). Exposed for tests and for the roofline sweep.
[[nodiscard]] double fma_per_element(double intensity) noexcept;

}  // namespace ps::kernel
