#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "kernel/workload.hpp"

namespace ps::kernel {

/// One phase of a multi-phase application: a workload configuration and
/// how many bulk-synchronous iterations it persists.
struct WorkloadPhase {
  WorkloadConfig config{};
  std::size_t iterations = 1;
};

/// A multi-phase application (the paper's future-work extension:
/// "applications with multiple phases that have varying design
/// characteristics"). Phases execute in order; the whole sequence may be
/// repeated.
struct PhasedWorkload {
  std::string name;
  std::vector<WorkloadPhase> phases;

  /// Throws ps::InvalidArgument unless every phase is valid and has at
  /// least one iteration.
  void validate() const;

  [[nodiscard]] std::size_t total_iterations() const;

  /// The phase active at global iteration `iteration` (wraps around when
  /// the sequence repeats).
  [[nodiscard]] const WorkloadPhase& phase_at(std::size_t iteration) const;

  /// A representative two-phase example: a memory-bound streaming phase
  /// followed by an imbalanced compute phase.
  [[nodiscard]] static PhasedWorkload example();
};

}  // namespace ps::kernel
