#pragma once

#include <atomic>
#include <cstddef>

namespace ps::kernel {

/// Busy-polling barrier.
///
/// MPI implementations typically busy-poll at MPI_Barrier, which is why the
/// paper's waiting ranks consume close to full power while making no
/// progress. std::barrier may block in the kernel, which would not
/// reproduce that behavior, so the real kernel uses this spin barrier.
class SpinBarrier {
 public:
  explicit SpinBarrier(std::size_t participants);

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  /// Blocks (spinning) until all participants have arrived.
  void arrive_and_wait() noexcept;

  [[nodiscard]] std::size_t participants() const noexcept {
    return participants_;
  }

 private:
  const std::size_t participants_;
  std::atomic<std::size_t> arrived_{0};
  std::atomic<std::size_t> generation_{0};
};

}  // namespace ps::kernel
