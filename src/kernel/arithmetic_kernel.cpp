#include "kernel/arithmetic_kernel.hpp"

#include <chrono>
#include <cmath>
#include <thread>

#include "kernel/spin_barrier.hpp"
#include "util/error.hpp"

namespace ps::kernel {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point begin, Clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

/// SIMD register of `Lanes` doubles via the GCC/Clang vector extension;
/// Lanes == 1 degrades to a plain double (the scalar path), so the three
/// instantiations genuinely issue scalar / 128-bit / 256-bit operations.
template <std::size_t Lanes>
struct SimdReg {
  using type [[gnu::vector_size(Lanes * sizeof(double))]] = double;
};
template <>
struct SimdReg<1> {
  using type = double;
};

/// One streaming sweep over [0, elements) issuing `whole_fma` FMAs per
/// element plus a fractional FMA realized by error accumulation. Four
/// independent register chains per tile hide the FMA latency so the loop
/// is throughput-bound, as the paper's kernel is.
template <std::size_t Lanes>
double sweep(const double* in, double* out, std::size_t elements,
             std::size_t whole_fma, double fractional_fma) {
  using Reg = typename SimdReg<Lanes>::type;
  constexpr std::size_t kChains = 4;
  constexpr std::size_t kTile = Lanes * kChains;
  const double scale = 1.0000001;
  const double addend = 0.0625;
  double err = 0.0;
  std::size_t i = 0;
  for (; i + kTile <= elements; i += kTile) {
    err += fractional_fma * static_cast<double>(kTile);
    std::size_t extra = 0;
    if (err >= 1.0) {
      err -= 1.0;
      extra = 1;
    }
    Reg x[kChains];
    __builtin_memcpy(&x, in + i, sizeof(x));
    for (std::size_t k = 0; k < whole_fma + extra; ++k) {
      for (std::size_t c = 0; c < kChains; ++c) {
        x[c] = x[c] * scale + addend;
      }
    }
    __builtin_memcpy(out + i, &x, sizeof(x));
  }
  for (; i < elements; ++i) {
    double x = in[i];
    for (std::size_t k = 0; k < whole_fma; ++k) {
      x = x * scale + addend;
    }
    out[i] = x;
  }
  return out[0] + out[elements - 1];
}

double dispatch_sweep(hw::VectorWidth width, const double* in, double* out,
                      std::size_t elements, std::size_t whole_fma,
                      double fractional_fma) {
  switch (width) {
    case hw::VectorWidth::kScalar:
      return sweep<1>(in, out, elements, whole_fma, fractional_fma);
    case hw::VectorWidth::kXmm128:
      return sweep<2>(in, out, elements, whole_fma, fractional_fma);
    case hw::VectorWidth::kYmm256:
      return sweep<4>(in, out, elements, whole_fma, fractional_fma);
  }
  return 0.0;
}

}  // namespace

double fma_per_element(double intensity) noexcept {
  // One sweep moves 16 bytes per element (read + write); one FMA is
  // 2 FLOPs, so FLOPs/byte = fma * 2 / 16.
  return intensity * 8.0;
}

double KernelReport::waiting_slack_fraction() const {
  double wait_sum = 0.0;
  std::size_t waiting_count = 0;
  for (const auto& thread : threads) {
    if (thread.waiting_rank) {
      wait_sum += thread.wait_seconds;
      ++waiting_count;
    }
  }
  if (waiting_count == 0 || elapsed_seconds <= 0.0) {
    return 0.0;
  }
  return wait_sum / static_cast<double>(waiting_count) / elapsed_seconds;
}

KernelReport run_arithmetic_kernel(const KernelOptions& options) {
  options.config.validate();
  PS_REQUIRE(options.threads > 0, "kernel needs at least one thread");
  PS_REQUIRE(options.elements_per_thread >= 8,
             "working set too small to be meaningful");
  PS_REQUIRE(options.iterations > 0, "kernel needs at least one iteration");

  const std::size_t waiting_count = std::min(
      static_cast<std::size_t>(options.config.waiting_fraction *
                               static_cast<double>(options.threads)),
      options.threads - 1);

  const double fma_exact = fma_per_element(options.config.intensity);
  const auto whole_fma = static_cast<std::size_t>(std::floor(fma_exact));
  const double fractional_fma = fma_exact - static_cast<double>(whole_fma);

  SpinBarrier barrier(options.threads);
  std::vector<ThreadReport> reports(options.threads);
  std::vector<std::thread> workers;
  workers.reserve(options.threads);

  const auto run_start = Clock::now();
  for (std::size_t t = 0; t < options.threads; ++t) {
    workers.emplace_back([&, t] {
      const bool waiting_rank = t < waiting_count;
      const double sweeps_per_iteration =
          waiting_rank ? 1.0 : options.config.imbalance;
      std::vector<double> in(options.elements_per_thread, 1.0);
      std::vector<double> out(options.elements_per_thread, 0.0);
      double checksum = 0.0;
      double busy = 0.0;
      double wait = 0.0;
      double gflop = 0.0;
      for (std::size_t iteration = 0; iteration < options.iterations;
           ++iteration) {
        const auto busy_start = Clock::now();
        double remaining = sweeps_per_iteration;
        while (remaining > 0.0) {
          const double portion = std::min(remaining, 1.0);
          const auto elements = static_cast<std::size_t>(
              portion * static_cast<double>(options.elements_per_thread));
          if (elements > 0) {
            checksum += dispatch_sweep(options.config.vector_width,
                                       in.data(), out.data(), elements,
                                       whole_fma, fractional_fma);
            gflop += fma_exact * 2.0 * static_cast<double>(elements) / 1e9;
          }
          remaining -= portion;
        }
        const auto busy_end = Clock::now();
        barrier.arrive_and_wait();
        const auto wait_end = Clock::now();
        busy += seconds_between(busy_start, busy_end);
        wait += seconds_between(busy_end, wait_end);
      }
      reports[t].busy_seconds = busy;
      reports[t].wait_seconds = wait;
      reports[t].gflop = gflop;
      reports[t].waiting_rank = waiting_rank;
      reports[t].checksum = checksum;
    });
  }
  for (auto& worker : workers) {
    worker.join();
  }
  const auto run_end = Clock::now();

  KernelReport report;
  report.elapsed_seconds = seconds_between(run_start, run_end);
  report.iterations = options.iterations;
  report.threads = std::move(reports);
  for (const auto& thread : report.threads) {
    report.total_gflop += thread.gflop;
  }
  const double sweeps_total =
      static_cast<double>(waiting_count) +
      static_cast<double>(options.threads - waiting_count) *
          options.config.imbalance;
  report.total_gigabytes = sweeps_total *
                           static_cast<double>(options.iterations) *
                           static_cast<double>(options.elements_per_thread) *
                           16.0 / 1e9;
  if (report.elapsed_seconds > 0.0) {
    report.achieved_gflops = report.total_gflop / report.elapsed_seconds;
  }
  return report;
}

}  // namespace ps::kernel
