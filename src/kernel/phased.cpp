#include "kernel/phased.hpp"

#include "util/error.hpp"

namespace ps::kernel {

void PhasedWorkload::validate() const {
  PS_REQUIRE(!phases.empty(), "phased workload needs at least one phase");
  for (const auto& phase : phases) {
    phase.config.validate();
    PS_REQUIRE(phase.iterations > 0,
               "every phase needs at least one iteration");
  }
}

std::size_t PhasedWorkload::total_iterations() const {
  std::size_t total = 0;
  for (const auto& phase : phases) {
    total += phase.iterations;
  }
  return total;
}

const WorkloadPhase& PhasedWorkload::phase_at(std::size_t iteration) const {
  validate();
  const std::size_t cycle = iteration % total_iterations();
  std::size_t offset = 0;
  for (const auto& phase : phases) {
    if (cycle < offset + phase.iterations) {
      return phase;
    }
    offset += phase.iterations;
  }
  return phases.back();  // unreachable; keeps the compiler satisfied
}

PhasedWorkload PhasedWorkload::example() {
  PhasedWorkload workload;
  workload.name = "stream-then-solve";
  WorkloadPhase stream;
  stream.config.intensity = 0.25;  // memory-bound assembly/IO phase
  stream.iterations = 4;
  WorkloadPhase solve;
  solve.config.intensity = 16.0;  // imbalanced compute phase
  solve.config.waiting_fraction = 0.5;
  solve.config.imbalance = 2.0;
  solve.iterations = 6;
  workload.phases = {stream, solve};
  return workload;
}

}  // namespace ps::kernel
