#include "kernel/workload.hpp"

#include <cmath>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace ps::kernel {

void WorkloadConfig::validate() const {
  PS_REQUIRE(intensity >= 0.0, "intensity cannot be negative");
  PS_REQUIRE(waiting_fraction >= 0.0 && waiting_fraction < 1.0,
             "waiting fraction must be in [0, 1)");
  PS_REQUIRE(imbalance >= 1.0, "imbalance multiplier must be >= 1");
  PS_REQUIRE(gigabytes_per_iteration > 0.0,
             "per-iteration data movement must be positive");
  PS_REQUIRE(gpu_gigabytes_per_iteration >= 0.0,
             "GPU data movement cannot be negative");
  PS_REQUIRE(gpu_intensity >= 0.0, "GPU intensity cannot be negative");
  PS_REQUIRE(gpu_occupancy > 0.0 && gpu_occupancy <= 1.0,
             "GPU occupancy must be in (0, 1]");
}

namespace {
std::string format_intensity(double intensity) {
  // Render 0.25 as "0.25" but 8.0 as "8".
  if (intensity == std::floor(intensity)) {
    return std::to_string(static_cast<long long>(intensity));
  }
  return ps::util::format_fixed(intensity, 2);
}
}  // namespace

std::string WorkloadConfig::name() const {
  std::ostringstream out;
  out << hw::to_string(vector_width) << "-i" << format_intensity(intensity)
      << "-w" << static_cast<int>(std::lround(waiting_fraction * 100.0))
      << "-x" << static_cast<int>(std::lround(imbalance));
  return out.str();
}

std::string WorkloadConfig::description() const {
  std::ostringstream out;
  out << format_intensity(intensity) << " FLOPs/byte";
  if (waiting_fraction > 0.0) {
    out << ", " << static_cast<int>(std::lround(waiting_fraction * 100.0))
        << "% waiting ranks";
  } else {
    out << ", no waiting ranks";
  }
  if (imbalance > 1.0) {
    out << ", " << static_cast<int>(std::lround(imbalance)) << "x imbalance";
  }
  out << ", " << hw::to_string(vector_width);
  return out.str();
}

double critical_gigabytes(const WorkloadConfig& config) {
  config.validate();
  return config.gigabytes_per_iteration * config.imbalance;
}

WorkloadConfig parse_workload(std::string_view name) {
  const std::vector<std::string> pieces = util::split(name, '-');
  PS_REQUIRE(pieces.size() == 4,
             "workload name must look like 'ymm-i8-w50-x2'");
  WorkloadConfig config;
  if (pieces[0] == "scalar") {
    config.vector_width = hw::VectorWidth::kScalar;
  } else if (pieces[0] == "xmm") {
    config.vector_width = hw::VectorWidth::kXmm128;
  } else if (pieces[0] == "ymm") {
    config.vector_width = hw::VectorWidth::kYmm256;
  } else {
    throw InvalidArgument("unknown vector width '" + pieces[0] + "'");
  }
  PS_REQUIRE(pieces[1].size() > 1 && pieces[1][0] == 'i',
             "second field must be 'i<intensity>'");
  PS_REQUIRE(pieces[2].size() > 1 && pieces[2][0] == 'w',
             "third field must be 'w<waiting percent>'");
  PS_REQUIRE(pieces[3].size() > 1 && pieces[3][0] == 'x',
             "fourth field must be 'x<imbalance>'");
  try {
    config.intensity = std::stod(pieces[1].substr(1));
    config.waiting_fraction = std::stod(pieces[2].substr(1)) / 100.0;
    config.imbalance = std::stod(pieces[3].substr(1));
  } catch (const std::exception&) {
    throw InvalidArgument("workload name '" + std::string(name) +
                          "' has non-numeric fields");
  }
  config.validate();
  return config;
}

}  // namespace ps::kernel
